"""Tests for the fast functional execution mode (`repro.sampling`)."""

import pytest

from repro.isa import run_program
from repro.sampling.functional import (
    FunctionalEngine,
    WarmupState,
    functional_rate,
)
from repro.workloads import make_workload


class TestArchitecturalEquivalence:
    @pytest.mark.parametrize("name", ["bfs", "xz", "mcf"])
    def test_matches_golden_interpreter(self, name):
        workload = make_workload(name, "tiny")
        ref = run_program(workload.program, workload.fresh_memory())

        engine = FunctionalEngine(workload.program, workload.fresh_memory())
        executed = engine.run_to_halt(5_000_000)

        assert engine.halted
        assert executed == ref.instructions_executed
        assert list(engine.regs) == list(ref.registers)
        assert engine.memory.snapshot() == ref.memory.snapshot()

    def test_equivalence_holds_without_warmup_tracking(self):
        workload = make_workload("sssp", "tiny")
        ref = run_program(workload.program, workload.fresh_memory())
        engine = FunctionalEngine(
            workload.program, workload.fresh_memory(), track_warmup=False
        )
        engine.run_to_halt(5_000_000)
        assert engine.warmup is None
        assert list(engine.regs) == list(ref.registers)
        assert engine.memory.snapshot() == ref.memory.snapshot()


class TestAdvance:
    def test_advance_stops_exactly_at_count(self):
        workload = make_workload("bfs", "tiny")
        engine = FunctionalEngine(workload.program, workload.fresh_memory())
        assert engine.advance(1000) == 1000
        assert engine.instructions_executed == 1000
        assert not engine.halted

    def test_advance_resumes_to_same_final_state(self):
        workload = make_workload("bfs", "tiny")
        whole = FunctionalEngine(workload.program, workload.fresh_memory())
        total = whole.run_to_halt(5_000_000)

        pieces = FunctionalEngine(workload.program, workload.fresh_memory())
        executed = 0
        for chunk in (1, 7, 500, 5_000_000):
            executed += pieces.advance(chunk)
        assert pieces.halted
        assert executed == total
        assert list(pieces.regs) == list(whole.regs)
        assert pieces.memory.snapshot() == whole.memory.snapshot()

    def test_run_to_halt_times_out_like_the_interpreter(self):
        from repro.isa.interpreter import InterpreterTimeout

        workload = make_workload("bfs", "tiny")
        engine = FunctionalEngine(workload.program, workload.fresh_memory())
        with pytest.raises(InterpreterTimeout):
            engine.run_to_halt(max_steps=100)
        assert not engine.halted


class TestWarmupState:
    def test_warmup_state_populates_in_stride(self):
        workload = make_workload("bfs", "tiny")
        engine = FunctionalEngine(workload.program, workload.fresh_memory())
        engine.run_to_halt(5_000_000)
        warmup = engine.warmup
        assert warmup.ghr > 0
        assert warmup.btb  # taken transfers recorded
        assert warmup.trace  # bounded branch-event trace
        assert warmup.dlines  # touched 64-byte data lines
        for line in warmup.dlines:
            assert line % 64 == 0
        assert all(count > 0 for count in
                   warmup.mispredict_counts().values())

    def test_trace_events_are_well_formed(self):
        workload = make_workload("xz", "tiny")
        engine = FunctionalEngine(workload.program, workload.fresh_memory())
        engine.run_to_halt(5_000_000)
        kinds = set()
        for event in engine.warmup.trace:
            kinds.add(event[0])
            if event[0] == "c":
                assert len(event) == 4  # ("c", pc, taken, target)
                assert event[2] in (0, 1)
            else:
                assert len(event) == 3  # (kind, pc, target)
        assert kinds <= {"c", "i", "j", "r"}
        assert "c" in kinds

    def test_fresh_warmup_state_is_empty(self):
        warmup = WarmupState()
        assert warmup.ghr == 0
        assert warmup.path == 0
        assert not warmup.btb
        assert not warmup.trace
        assert not warmup.dlines
        assert warmup.mispredict_counts() == {}


class TestFunctionalRate:
    def test_rate_measures_full_run(self):
        workload = make_workload("bfs", "tiny")
        ref = run_program(workload.program, workload.fresh_memory())
        executed, elapsed = functional_rate(
            workload.program, workload.fresh_memory()
        )
        assert executed == ref.instructions_executed
        assert elapsed > 0.0
