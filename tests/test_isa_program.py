"""Unit tests for the Program container and basic-block derivation."""

from repro.isa import assemble


class TestBasicBlocks:
    def test_single_block_program(self):
        program = assemble("li r1, 1\nadd r2, r1, r1\nhalt")
        blocks = program.basic_blocks
        assert list(blocks) == [0]
        assert blocks[0].num_instructions == 3

    def test_branch_splits_blocks(self):
        program = assemble(
            """
            li r1, 0
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
            """
        )
        # Blocks: [li], [addi, blt], [halt]
        starts = sorted(program.basic_blocks)
        assert starts == [0, 4, 12]
        assert program.basic_blocks[4].end_pc == 8

    def test_branch_target_is_leader(self):
        program = assemble(
            """
            beq r1, r2, mid
            nop
        mid:
            nop
            halt
            """
        )
        assert program.labels["mid"] in program.basic_blocks

    def test_block_containing(self):
        program = assemble(
            """
            li r1, 0
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
            """
        )
        block = program.block_containing(8)  # the blt
        assert block is not None
        assert block.start_pc == 4

    def test_every_pc_maps_to_exactly_one_block(self):
        program = assemble(
            """
            li r1, 5
        a:  beq r1, r0, b
            addi r1, r1, -1
            jmp a
        b:  call c
            halt
        c:  ret
            """
        )
        covered = []
        for block in program.basic_blocks.values():
            covered.extend(block.pcs())
        assert sorted(covered) == [i.pc for i in program.instructions]

    def test_fallthrough_after_branch_is_leader(self):
        program = assemble("beq r1, r2, x\nnop\nx: halt")
        assert 4 in program.basic_blocks  # the nop after the branch


class TestLookups:
    def test_instruction_at(self):
        program = assemble("nop\nhalt")
        assert program.instruction_at(0).opcode == "nop"
        assert program.instruction_at(4).opcode == "halt"
        assert program.instruction_at(8) is None
        assert program.instruction_at(2) is None  # unaligned

    def test_contains_and_len(self):
        program = assemble("nop\nnop\nhalt")
        assert len(program) == 3
        assert program.contains(8)
        assert not program.contains(12)

    def test_label_pc(self):
        program = assemble("nop\nx: halt")
        assert program.label_pc("x") == 4
