"""Behavioural tests for the Fig. 10 ablations: each feature must
matter on a kernel crafted to need exactly that feature."""

import random

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.tea import tea_ablation


def run(source, mem_snapshot, mode):
    pipeline = Pipeline(
        assemble(source), MemoryImage(mem_snapshot), SimConfig(tea=tea_ablation(mode))
    )
    stats = pipeline.run(max_cycles=5_000_000)
    assert pipeline.halted
    return pipeline, stats


class TestMasksFeature:
    """§III-E: multi-path control flow needs OR-combined masks."""

    SOURCE = """
        li r1, 0
        li r2, 0
        li r3, 2500
        li r4, 4096      # data
        li r7, 36864     # selector
    loop:
        shli r5, r2, 3
        add r6, r5, r7
        ld r8, 0(r6)     # selector[i] (short repeating pattern)
        add r5, r5, r4
        beqz r8, path_b  # predictable intermediate branch
        ld r9, 0(r5)     # path A input
        jmp join
    path_b:
        ld r9, 8(r5)     # path B input (different load!)
    join:
        blt r9, r0, skip # H2P: depends on whichever path ran
        addi r1, r1, 1
    skip:
        addi r2, r2, 1
        blt r2, r3, loop
        halt
    """

    def _memory(self):
        rng = random.Random(71)
        mem = MemoryImage()
        mem.write_array(4096, [rng.choice([-3, 3]) for _ in range(2600)])
        pattern = (1, 1, 0, 1, 0)
        mem.write_array(36864, [pattern[i % 5] for i in range(2500)])
        return mem.snapshot()

    def test_masks_preserve_accuracy_on_multipath(self):
        snap = self._memory()
        _, full = run(self.SOURCE, snap, "tea")
        _, nomask = run(self.SOURCE, snap, "no_masks")
        # Removing masks must not *gain* accuracy, and typically loses
        # accuracy or coverage on two-path chains.
        assert full.tea_accuracy >= nomask.tea_accuracy - 0.01
        assert (full.coverage, full.tea_accuracy) >= (
            nomask.coverage - 0.05,
            nomask.tea_accuracy - 0.01,
        )


class TestMemoryFeature:
    """§III-D: chains through store->load (argument passing) need the
    memory Source List."""

    SOURCE = """
        li sp, 65536
        li r1, 0
        li r2, 0
        li r3, 2000
        li r4, 4096
    loop:
        shli r5, r2, 3
        add r5, r5, r4
        ld r6, 0(r5)
        st r6, -8(sp)    # pass via memory (like a call argument)
        ld r7, -8(sp)
        blt r7, r0, skip # H2P fed through the store->load pair
        addi r1, r1, 1
    skip:
        addi r2, r2, 1
        blt r2, r3, loop
        halt
    """

    def _memory(self):
        rng = random.Random(73)
        mem = MemoryImage()
        mem.write_array(4096, [rng.choice([-2, 2]) for _ in range(2000)])
        return mem.snapshot()

    def test_memory_tracing_needed_for_store_load_chain(self):
        snap = self._memory()
        pipe_full, full = run(self.SOURCE, snap, "tea")
        pipe_nomem, nomem = run(self.SOURCE, snap, "no_mem")
        # With memory tracing the chain is complete and coverage high;
        # without it the chain is cut at the store.
        assert full.coverage > nomem.coverage
        # Correctness in both cases.
        assert (
            pipe_full.architectural_register(1)
            == pipe_nomem.architectural_register(1)
        )


class TestOnlyLoopsFeature:
    """§III-C: chains longer than one iteration need walk re-seeding."""

    SOURCE = """
        li r1, 0
        li r2, 0
        li r3, 2000
        li r4, 4096
    loop:
        # stretch the per-iteration dependence chain
        shli r5, r2, 3
        add r5, r5, r4
        add r5, r5, r0
        add r5, r5, r0
        add r5, r5, r0
        ld r6, 0(r5)
        blt r6, r0, skip
        addi r1, r1, 1
    skip:
        addi r2, r2, 1
        blt r2, r3, loop
        halt
    """

    def _memory(self):
        rng = random.Random(79)
        mem = MemoryImage()
        mem.write_array(4096, [rng.choice([-5, 5]) for _ in range(2000)])
        return mem.snapshot()

    def test_full_config_at_least_matches_only_loops(self):
        snap = self._memory()
        _, full = run(self.SOURCE, snap, "tea")
        _, loops = run(self.SOURCE, snap, "only_loops")
        assert full.coverage >= loops.coverage - 0.05
        # The headline claim of Fig. 10: the full configuration's
        # performance (IPC) is never meaningfully below any ablation.
        assert full.ipc >= loops.ipc * 0.97
