"""Unit tests for the TAGE predictor and its trainability."""

import random

from repro.frontend import HistoryState, Tage, TageConfig


def make_tage(**kwargs):
    history = HistoryState()
    return Tage(TageConfig(**kwargs), history), history


def run_stream(tage, history, outcomes, pc=0x40):
    """Feed (predict, update history, train) for an outcome stream;
    returns the number of mispredictions."""
    mispredicts = 0
    for taken in outcomes:
        pred = tage.predict(pc)
        if pred.taken != taken:
            mispredicts += 1
        history.push_conditional(taken)
        tage.train(pc, taken, pred)
    return mispredicts


class TestConfig:
    def test_history_lengths_geometric_and_increasing(self):
        lengths = TageConfig().history_lengths()
        assert lengths[0] == 4
        assert lengths[-1] == 256
        assert all(b > a for a, b in zip(lengths, lengths[1:]))

    def test_single_table(self):
        assert TageConfig(num_tables=1).history_lengths() == [4]


class TestLearning:
    def test_always_taken_branch_converges(self):
        tage, history = make_tage()
        missed = run_stream(tage, history, [True] * 200)
        assert missed <= 5  # cold start only

    def test_alternating_pattern_learned(self):
        tage, history = make_tage()
        pattern = [True, False] * 200
        run_stream(tage, history, pattern)
        # The tail must be essentially perfect once tagged tables train.
        tail_missed = run_stream(tage, history, pattern[:100])
        assert tail_missed <= 5

    def test_long_period_pattern_uses_long_history(self):
        tage, history = make_tage()
        period = [True] * 7 + [False]
        stream = period * 120
        run_stream(tage, history, stream)
        tail_missed = run_stream(tage, history, period * 20)
        assert tail_missed <= 6

    def test_random_branch_stays_hard(self):
        """An unpredictable branch must keep mispredicting — this is
        the property the whole paper depends on (H2P branches)."""
        tage, history = make_tage()
        rng = random.Random(3)
        outcomes = [rng.random() < 0.5 for _ in range(800)]
        missed = run_stream(tage, history, outcomes)
        assert missed > 0.3 * len(outcomes)

    def test_distinct_pcs_do_not_destructively_alias(self):
        tage, history = make_tage()
        for _ in range(300):
            for pc, taken in ((0x100, True), (0x200, False)):
                pred = tage.predict(pc)
                history.push_conditional(taken)
                tage.train(pc, taken, pred)
        assert tage.predict(0x100).taken is True
        assert tage.predict(0x200).taken is False


class TestInternals:
    def test_allocation_on_mispredict(self):
        tage, history = make_tage()
        run_stream(tage, history, [True, False] * 50)
        assert tage.allocations > 0

    def test_prediction_metadata_complete(self):
        tage, history = make_tage()
        pred = tage.predict(0x40)
        assert len(pred.indices) == tage.config.num_tables
        assert len(pred.tags) == tage.config.num_tables
        assert pred.provider == -1  # nothing allocated yet

    def test_useful_counter_reset_period(self):
        tage, history = make_tage(useful_reset_period=64)
        run_stream(tage, history, [True, False] * 100)
        # Just exercising the reset path; counters must stay in range.
        for table in tage.tables:
            for entry in table:
                assert 0 <= entry.useful <= 3
