"""Determinism: identical configurations produce bit-identical runs.

The whole experimental methodology depends on this — figures must be
exactly reproducible, and (workload, mode) results cacheable.
"""

import pytest

from repro import Pipeline
from repro.harness import make_config
from repro.workloads import make_workload


def run_twice(name: str, mode: str):
    results = []
    for _ in range(2):
        wl = make_workload(name, "tiny")
        pipeline = Pipeline(wl.program, wl.fresh_memory(), make_config(mode))
        stats = pipeline.run(max_cycles=5_000_000)
        results.append(
            (
                stats.cycles,
                stats.retired_instructions,
                stats.total_mispredicts,
                stats.flushes,
                stats.early_flushes,
                stats.tea_resolved_branches,
                stats.runahead_overrides,
            )
        )
    return results


@pytest.mark.parametrize("mode", ["baseline", "tea", "runahead"])
def test_bit_identical_reruns(mode):
    first, second = run_twice("xz", mode)
    assert first == second


def test_different_seeds_differ():
    from repro.workloads import gap

    a = gap.bfs(num_nodes=100, seed=1)
    b = gap.bfs(num_nodes=100, seed=2)
    assert a.memory.snapshot() != b.memory.snapshot()
