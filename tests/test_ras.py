"""Unit + property tests for the persistent return-address stack."""

from hypothesis import given, settings, strategies as st

from repro.frontend import ReturnAddressStack


class TestBasicStack:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack()
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_peek_and_depth(self):
        ras = ReturnAddressStack()
        assert ras.peek() is None
        ras.push(0x40)
        assert ras.peek() == 0x40
        assert ras.depth == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(max_depth=3)
        for addr in (1, 2, 3, 4):
            ras.push(addr)
        assert ras.depth == 3
        assert ras.pop() == 4
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was dropped


class TestSnapshots:
    def test_snapshot_is_o1_and_immutable(self):
        ras = ReturnAddressStack()
        ras.push(0x10)
        snap = ras.snapshot()
        ras.push(0x20)
        ras.pop()
        ras.pop()
        ras.restore(snap)
        assert ras.pop() == 0x10

    def test_snapshot_survives_pops(self):
        """The persistent structure means a snapshot taken before pops
        still sees the popped entries (hardware checkpointing)."""
        ras = ReturnAddressStack()
        for addr in (1, 2, 3):
            ras.push(addr)
        snap = ras.snapshot()
        assert ras.pop() == 3
        assert ras.pop() == 2
        ras.restore(snap)
        assert ras.pop() == 3

    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(min_value=0, max_value=2**20)),
                st.tuples(st.just("pop"), st.none()),
            ),
            max_size=60,
        ),
        st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(min_value=0, max_value=2**20)),
                st.tuples(st.just("pop"), st.none()),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=60)
    def test_restore_equals_reference_model(self, ops, wrong_path):
        """Snapshot/restore behaves exactly like a plain-list model."""
        ras = ReturnAddressStack(max_depth=1000)
        model: list[int] = []
        for op, value in ops:
            if op == "push":
                ras.push(value)
                model.append(value)
            else:
                got = ras.pop()
                expected = model.pop() if model else None
                assert got == expected
        snap = ras.snapshot()
        for op, value in wrong_path:
            if op == "push":
                ras.push(value)
            else:
                ras.pop()
        ras.restore(snap)
        # Drain both and compare exactly.
        while model:
            assert ras.pop() == model.pop()
        assert ras.pop() is None
