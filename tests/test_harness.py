"""Tests for the experiment harness: runner modes, suite caching,
reporting helpers."""

import pytest

from repro.harness import (
    ExperimentSuite,
    MODES,
    format_table,
    geomean,
    make_config,
    run_workload,
    speedup_percent,
)


class TestReporting:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)
        assert geomean([]) == 0.0

    def test_geomean_tolerates_zero(self):
        assert geomean([0.0, 4.0]) >= 0.0

    def test_speedup_percent(self):
        assert speedup_percent(1.1, 1.0) == pytest.approx(10.0)
        assert speedup_percent(1.0, 0.0) == 0.0

    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", 1.5], ["bb", 20.25]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text and "20.25" in text
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows aligned


class TestModes:
    def test_every_mode_builds(self):
        for mode in MODES:
            config = make_config(mode)
            assert config is not None

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_config("warp_drive")

    def test_mode_semantics(self):
        assert make_config("baseline").tea is None
        assert make_config("tea").tea is not None
        assert make_config("tea_dedicated").tea.dedicated_engine
        assert not make_config("tea_prefetch_only").tea.early_resolution
        assert make_config("tea_only_loops").tea.only_loops
        assert not make_config("tea_no_masks").tea.use_masks
        assert not make_config("tea_no_mem").tea.trace_memory
        assert make_config("runahead").runahead is not None


class TestRunner:
    def test_run_workload_validates(self):
        result = run_workload("xz", "baseline", "tiny")
        assert result.validated
        assert result.halted
        assert result.ipc > 0

    def test_accepts_workload_object(self):
        from repro.workloads import make_workload

        wl = make_workload("xz", "tiny")
        result = run_workload(wl, "baseline")
        assert result.workload == "xz"


class TestSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return ExperimentSuite(scale="tiny", workloads=("xz", "mcf"))

    def test_result_caching(self, suite):
        first = suite.result("xz", "baseline")
        second = suite.result("xz", "baseline")
        assert first is second

    def test_fig5_structure(self, suite):
        data = suite.fig5()
        assert set(data["speedup_pct"]) == {"xz", "mcf"}
        assert "geomean_pct" in data
        assert data["paper_geomean_pct"] == 10.1

    def test_fig6_mpki_positive(self, suite):
        data = suite.fig6()
        assert all(v > 0 for v in data["mpki"].values())

    def test_fig7_breakdown_sums_to_100(self, suite):
        data = suite.fig7()
        for name, b in data["breakdown"].items():
            total = (
                b["covered_timely"] + b["covered_late"] + b["incorrect"] + b["uncovered"]
            )
            assert total == pytest.approx(100.0, abs=0.1)

    def test_fig8_categories(self, suite):
        data = suite.fig8()
        assert "xz" in data["simple_names"]
        assert "mcf" in data["complex_names"]

    def test_fig10_modes_present(self, suite):
        data = suite.fig10()
        assert set(data["accuracy_pct"]) == {
            "TEA",
            "only loops",
            "no masks",
            "no mem",
            "no features",
        }

    def test_table3_footprint(self, suite):
        data = suite.table3()
        # The TEA thread always fetches *something* extra.
        assert data["mean_pct"] > 0

    def test_renderers_produce_tables(self, suite):
        for render in (
            suite.render_fig5,
            suite.render_fig6,
            suite.render_fig7,
            suite.render_fig8,
            suite.render_fig9,
            suite.render_fig10,
            suite.render_table3,
        ):
            text = render()
            assert "benchmark" in text
            assert "xz" in text
