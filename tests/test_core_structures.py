"""Unit tests for rename structures, LSQ, scheduler, IFBQ, stats."""

from repro.core import (
    DynUop,
    InFlightBranchQueue,
    LoadQueue,
    PhysicalRegisterFile,
    RegisterAliasTable,
    Scheduler,
    SimStats,
    StoreQueue,
    ZERO_PREG,
)
from repro.core.config import CoreConfig
from repro.core.rename import rename_sources
from repro.frontend.decoupled import BranchInfo
from repro.isa import Instruction, UopClass


def make_uop(seq, opcode="add", dst=1, srcs=(2, 3), is_tea=False, pc=0):
    instr = Instruction(opcode=opcode, dst=dst, srcs=srcs, pc=pc)
    return DynUop(seq, instr, is_tea=is_tea)


class TestPhysicalRegisterFile:
    def test_zero_preg_always_ready_zero(self):
        prf = PhysicalRegisterFile(8)
        assert prf.ready[ZERO_PREG]
        prf.write(ZERO_PREG, 99)
        assert prf.read(ZERO_PREG) == 0

    def test_allocate_until_exhausted(self):
        prf = PhysicalRegisterFile(2)
        assert prf.allocate() is not None
        assert prf.allocate() is not None
        assert prf.allocate() is None

    def test_free_recycles(self):
        prf = PhysicalRegisterFile(1)
        preg = prf.allocate()
        assert prf.allocate() is None
        prf.free(preg)
        assert prf.allocate() == preg

    def test_tea_pool_is_separate(self):
        prf = PhysicalRegisterFile(2, tea_size=2)
        main = prf.allocate()
        tea = prf.allocate(tea=True)
        assert prf.is_tea_preg(tea)
        assert not prf.is_tea_preg(main)
        prf.free(tea)
        assert prf.tea_available() == 2

    def test_write_sets_ready(self):
        prf = PhysicalRegisterFile(4)
        preg = prf.allocate()
        assert not prf.ready[preg]
        prf.write(preg, 42)
        assert prf.ready[preg]
        assert prf.read(preg) == 42


class TestRat:
    def test_set_returns_old_mapping(self):
        rat = RegisterAliasTable()
        assert rat.set(5, 7) == ZERO_PREG
        assert rat.set(5, 9) == 7
        assert rat.lookup(5) == 9

    def test_checkpoint_restore(self):
        rat = RegisterAliasTable()
        rat.set(1, 10)
        snap = rat.checkpoint()
        rat.set(1, 20)
        rat.restore(snap)
        assert rat.lookup(1) == 10

    def test_copy_from_is_independent(self):
        a, b = RegisterAliasTable(), RegisterAliasTable()
        a.set(3, 4)
        b.copy_from(a)
        a.set(3, 5)
        assert b.lookup(3) == 4

    def test_rename_sources_zero_register(self):
        rat = RegisterAliasTable()
        rat.set(1, 10)
        assert rename_sources(rat, (0, 1)) == (ZERO_PREG, 10)


class TestStoreQueue:
    def _store(self, seq, addr=None, value=None):
        uop = make_uop(seq, "st", dst=None, srcs=(1, 2))
        uop.mem_addr = addr
        uop.store_value = value
        return uop

    def test_forward_from_youngest_older(self):
        sq = StoreQueue(8)
        sq.insert(self._store(1, 64, 10))
        sq.insert(self._store(2, 64, 20))
        status, value = sq.forward(64, seq=5)
        assert (status, value) == ("hit", 20)

    def test_forward_ignores_younger_stores(self):
        sq = StoreQueue(8)
        sq.insert(self._store(9, 64, 99))
        assert sq.forward(64, seq=5) == ("none", None)

    def test_forward_waits_for_data(self):
        sq = StoreQueue(8)
        sq.insert(self._store(1, 64, None))
        assert sq.forward(64, seq=5) == ("wait", None)

    def test_addresses_resolved_gate(self):
        sq = StoreQueue(8)
        sq.insert(self._store(1, None))
        assert not sq.addresses_resolved_before(5)
        assert sq.addresses_resolved_before(1)  # only strictly older
        sq.entries[0].mem_addr = 64
        assert sq.addresses_resolved_before(5)

    def test_squash_younger(self):
        sq = StoreQueue(8)
        sq.insert(self._store(1, 64, 1))
        sq.insert(self._store(5, 64, 2))
        sq.squash_younger(3)
        assert len(sq) == 1

    def test_word_granularity_match(self):
        sq = StoreQueue(8)
        sq.insert(self._store(1, 64, 7))
        assert sq.forward(68, seq=2) == ("hit", 7)  # same 8B word
        assert sq.forward(72, seq=2) == ("none", None)


class TestLoadQueue:
    def test_capacity(self):
        lq = LoadQueue(2)
        lq.insert(make_uop(1, "ld", dst=1, srcs=(2,)))
        lq.insert(make_uop(2, "ld", dst=1, srcs=(2,)))
        assert lq.full()
        lq.squash_younger(1)
        assert not lq.full()


class TestScheduler:
    def _config(self):
        return CoreConfig(alu_ports=2, load_ports=1, store_ports=1, fp_ports=1)

    def test_port_limits_respected(self):
        sched = Scheduler(self._config())
        for seq in range(5):
            sched.insert(make_uop(seq))
        picked = sched.select(lambda u: True)
        assert len(picked) == 2  # only 2 ALU ports

    def test_oldest_first(self):
        sched = Scheduler(self._config())
        for seq in (1, 2, 3):
            sched.insert(make_uop(seq))
        picked = sched.select(lambda u: True)
        assert [u.seq for u in picked] == [1, 2]

    def test_tea_priority(self):
        sched = Scheduler(self._config(), tea_rs_entries=8)
        sched.insert(make_uop(10))
        sched.insert(make_uop(11))
        sched.insert(make_uop(50, is_tea=True))
        picked = sched.select(lambda u: True)
        assert picked[0].seq == 50  # TEA first despite being youngest

    def test_dedicated_units_do_not_consume_ports(self):
        sched = Scheduler(self._config(), tea_rs_entries=8, tea_dedicated_units=4)
        for seq in (1, 2):
            sched.insert(make_uop(seq))
        for seq in (10, 11):
            sched.insert(make_uop(seq, is_tea=True))
        picked = sched.select(lambda u: True)
        assert len(picked) == 4  # 2 TEA on dedicated units + 2 main on ALU

    def test_gate_rejected_parks_until_store_event(self):
        sched = Scheduler(self._config())
        sched.insert(make_uop(1))
        sched.insert(make_uop(2))
        picked = sched.select(lambda u: u.seq != 1)
        assert [u.seq for u in picked] == [2]
        assert sched.occupancy == (1, 0)
        # The rejected uop is parked: select() no longer re-polls it.
        assert sched.select(lambda u: True) == []
        # A store beginning execution re-arms the blocked pool.
        sched.store_executed(tea=False)
        assert [u.seq for u in sched.select(lambda u: True)] == [1]

    def test_squash_younger_both_partitions(self):
        sched = Scheduler(self._config(), tea_rs_entries=8)
        sched.insert(make_uop(1))
        sched.insert(make_uop(5))
        sched.insert(make_uop(6, is_tea=True))
        sched.squash_younger(3)
        assert sched.occupancy == (1, 0)


class TestIfbq:
    def _info(self, seq, pc=0x40):
        return BranchInfo(
            seq=seq,
            pc=pc,
            uop_class=UopClass.BR_COND,
            predicted_taken=False,
            predicted_target=0x80,
            fallthrough=pc + 4,
            can_mispredict=True,
        )

    def test_add_get_remove(self):
        ifbq = InFlightBranchQueue()
        entry = ifbq.add(self._info(5))
        assert ifbq.get(5) is entry
        ifbq.remove(5)
        assert ifbq.get(5) is None

    def test_squash_younger_returns_removed(self):
        ifbq = InFlightBranchQueue()
        for seq in (1, 5, 9):
            ifbq.add(self._info(seq))
        removed = ifbq.squash_younger(5)
        assert sorted(e.seq for e in removed) == [9]
        assert len(ifbq) == 2


class TestStats:
    def test_derived_metrics(self):
        stats = SimStats()
        stats.cycles = 100
        stats.retired_instructions = 250
        stats.direction_mispredicts = 5
        assert stats.ipc == 2.5
        assert stats.mpki == 20.0

    def test_coverage_and_accuracy(self):
        stats = SimStats()
        stats.covered_timely = 6
        stats.covered_late = 2
        stats.incorrect_precomputations = 1
        stats.uncovered_mispredicts = 1
        stats.tea_resolved_branches = 10
        stats.tea_wrong_resolutions = 1
        assert stats.coverage == 0.8
        assert stats.tea_accuracy == 0.9

    def test_start_measurement_resets(self):
        stats = SimStats()
        stats.cycles = 99
        stats.start_measurement()
        assert stats.cycles == 0
        assert stats.measuring

    def test_as_dict_has_derived_keys(self):
        data = SimStats().as_dict()
        for key in ("ipc", "mpki", "coverage", "tea_accuracy", "footprint_uops"):
            assert key in data
