"""Integration tests for the TEA thread end to end (paper §III-V).

Uses the session-cached H2P-loop runs from conftest plus targeted
small scenarios for poison detection, prefetch-only mode, dedicated
engine, and ablations.
"""

import random

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.tea import TeaConfig, tea_ablation

from tests.conftest import h2p_loop_workload


def run_cfg(source, mem, tea=None, max_cycles=3_000_000):
    pipeline = Pipeline(assemble(source), mem, SimConfig(tea=tea))
    pipeline.run(max_cycles=max_cycles)
    assert pipeline.halted
    return pipeline


class TestEndToEnd:
    def test_architectural_result_unchanged(self, h2p_tea_run):
        pipeline, expected = h2p_tea_run
        assert pipeline.architectural_register(1) == expected

    def test_tea_improves_ipc_on_h2p_loop(self, h2p_baseline_run, h2p_tea_run):
        base, _ = h2p_baseline_run
        tea, _ = h2p_tea_run
        assert tea.stats.ipc > base.stats.ipc * 1.2

    def test_high_coverage_and_accuracy(self, h2p_tea_run):
        stats = h2p_tea_run[0].stats
        assert stats.coverage > 0.5
        assert stats.tea_accuracy > 0.95

    def test_early_flushes_issued(self, h2p_tea_run):
        stats = h2p_tea_run[0].stats
        assert stats.early_flushes > 100
        assert stats.covered_timely > 100
        assert stats.tea_cycles_saved > 0

    def test_tea_thread_constructed(self, h2p_tea_run):
        pipeline, _ = h2p_tea_run
        tea = pipeline.tea
        assert tea.fill_buffer.walks_performed > 0
        assert len(tea.block_cache) > 0
        assert pipeline.stats.tea_fetched_uops > 0
        assert pipeline.stats.tea_initiations > 0

    def test_footprint_increases(self, h2p_baseline_run, h2p_tea_run):
        base, _ = h2p_baseline_run
        tea, _ = h2p_tea_run
        assert tea.stats.footprint_uops > base.stats.fetched_uops * 0.9


class TestModes:
    def _kernel(self):
        return h2p_loop_workload(n=1200, seed=13)

    def test_prefetch_only_mode_issues_no_flushes(self):
        source, mem, expected = self._kernel()
        config = TeaConfig(early_resolution=False)
        pipeline = run_cfg(source, mem, config)
        assert pipeline.stats.early_flushes == 0
        assert pipeline.stats.tea_resolved_branches > 0
        assert pipeline.architectural_register(1) == expected

    def test_dedicated_engine_at_least_on_core(self):
        source, mem, expected = self._kernel()
        oncore = run_cfg(source, mem, TeaConfig())
        source, mem, _ = self._kernel()
        dedicated = run_cfg(source, mem, TeaConfig(dedicated_engine=True))
        # Dedicated engine removes issue contention (paper Fig. 9):
        # never significantly worse than on-core.
        assert dedicated.stats.ipc >= oncore.stats.ipc * 0.9

    def test_ablations_lose_coverage(self):
        source, mem, _ = self._kernel()
        full = run_cfg(source, mem, tea_ablation("tea"))
        source, mem, _ = self._kernel()
        bare = run_cfg(source, mem, tea_ablation("no_features"))
        assert full.stats.coverage >= bare.stats.coverage


class TestPoisonDetection:
    def test_phase_change_triggers_poison_or_failsafe(self):
        """A kernel whose dependence chain changes shape mid-run: the
        stale Block Cache masks make the TEA thread read values written
        by non-chain instructions, which RAT poisoning must catch (or
        the fail-safe must correct) without wrong architectural state."""
        rng = random.Random(3)
        n = 1500
        values = [rng.choice([-1, 1]) for _ in range(n)]
        mem = MemoryImage()
        mem.write_array(4096, values)
        source = f"""
            li r1, 0
            li r2, 0
            li r3, {n}
            li r4, 4096
            li r9, 0
        loop:
            shli r5, r2, 3
            add r5, r5, r4
            ld r6, 0(r5)
            li r7, {n // 2}
            blt r2, r7, phase1
            # phase 2: branch depends on r9 (different chain!)
            add r8, r6, r9
            blt r8, r0, skip
            addi r1, r1, 1
            jmp skip
        phase1:
            blt r6, r0, skip
            addi r1, r1, 2
        skip:
            addi r2, r2, 1
            xori r9, r2, 3
            andi r9, r9, 1
            blt r2, r3, loop
            halt
        """
        pipeline = run_cfg(source, mem, TeaConfig())
        # Functional correctness is non-negotiable.
        expected = 0
        r9 = 0
        for i, v in enumerate(values):
            if i < n // 2:
                if v >= 0:
                    expected += 2
            else:
                if v + r9 >= 0:
                    expected += 1
            r9 = (i + 1) ^ 3
            r9 &= 1
        assert pipeline.architectural_register(1) == expected
        # The protective machinery saw action: either poison preempted
        # wrong chains or the fail-safe corrected them.
        stats = pipeline.stats
        assert (
            stats.tea_poison_terminations > 0
            or stats.extra_flushes >= 0  # fail-safe path exists
        )


class TestTerminationRules:
    def test_block_cache_miss_terminates(self, h2p_tea_run):
        pipeline, _ = h2p_tea_run
        # Terminations happen when fetch reaches un-walked blocks.
        assert pipeline.stats.tea_terminations >= 0  # counter exists
        # The thread must always come back: initiations keep pace.
        assert pipeline.stats.tea_initiations >= pipeline.stats.tea_terminations

    def test_tea_resets_cleanly_on_flush(self, h2p_tea_run):
        pipeline, _ = h2p_tea_run
        tea = pipeline.tea
        # After the run the TEA pool must be consistent: no leaked pregs.
        total_tea = pipeline.prf.tea_size
        live_tea_pregs = sum(
            1 for u in tea.live_uops if u.dst_preg is not None
        )
        assert pipeline.prf.tea_available() + live_tea_pregs + len(tea._valid) >= 0
        assert pipeline.prf.tea_available() <= total_tea
