"""Failure-injection and stress tests: tiny TEA structures, reference
counter saturation, Block Cache thrash, loop-predictor integration,
and the misprediction telemetry."""

import random

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.tea import TeaConfig

from tests.conftest import h2p_loop_workload


def run_tea(source, mem, tea_config, max_cycles=3_000_000):
    pipeline = Pipeline(assemble(source), mem, SimConfig(tea=tea_config))
    pipeline.run(max_cycles=max_cycles)
    assert pipeline.halted
    return pipeline


class TestTinyTeaStructures:
    """Shrunken structures must degrade performance, never correctness."""

    def test_tiny_block_cache(self):
        source, mem, expected = h2p_loop_workload(n=800, seed=41)
        pipeline = run_tea(
            source, mem, TeaConfig(block_cache_entries=2, empty_tag_entries=2)
        )
        assert pipeline.architectural_register(1) == expected

    def test_tiny_fill_buffer(self):
        source, mem, expected = h2p_loop_workload(n=800, seed=41)
        pipeline = run_tea(source, mem, TeaConfig(fill_buffer_size=16))
        assert pipeline.architectural_register(1) == expected
        assert pipeline.tea.fill_buffer.walks_performed > 5

    def test_tiny_tea_partition(self):
        source, mem, expected = h2p_loop_workload(n=800, seed=41)
        pipeline = run_tea(
            source, mem, TeaConfig(rs_entries=4, physical_registers=4)
        )
        assert pipeline.architectural_register(1) == expected

    def test_tiny_store_cache(self):
        source, mem, expected = h2p_loop_workload(n=600, seed=41)
        pipeline = run_tea(source, mem, TeaConfig(store_cache_halflines=1))
        assert pipeline.architectural_register(1) == expected

    def test_instant_walks(self):
        source, mem, expected = h2p_loop_workload(n=600, seed=41)
        pipeline = run_tea(source, mem, TeaConfig(walk_cycles=0))
        assert pipeline.architectural_register(1) == expected

    def test_aggressive_mask_reset(self):
        source, mem, expected = h2p_loop_workload(n=1200, seed=41)
        pipeline = run_tea(source, mem, TeaConfig(mask_reset_period=500))
        assert pipeline.architectural_register(1) == expected
        assert pipeline.tea.block_cache.mask_resets > 0

    def test_zero_late_tolerance(self):
        source, mem, expected = h2p_loop_workload(n=600, seed=41)
        pipeline = run_tea(source, mem, TeaConfig(max_late_resolutions=0))
        assert pipeline.architectural_register(1) == expected


class TestRefcountSaturation:
    def test_saturated_pregs_are_pinned_not_corrupted(self):
        """Force the 5-bit reference counter toward saturation by
        renaming many readers of one TEA value; the pool must pin the
        preg rather than double-free it."""
        source, mem, expected = h2p_loop_workload(n=800, seed=43)
        pipeline = run_tea(source, mem, TeaConfig())
        assert pipeline.architectural_register(1) == expected
        # Whatever happened internally, the free list can never exceed
        # the pool size and never contain duplicates.
        free = list(pipeline.prf.tea_free)
        assert len(free) == len(set(free))
        assert len(free) <= pipeline.prf.tea_size


class TestBlockCacheThrash:
    def test_many_basic_blocks_thrash_gracefully(self):
        """A branchy program with far more blocks than Block Cache
        entries: the TEA thread keeps terminating on misses but must
        never wedge the machine."""
        rng = random.Random(5)
        chunks = []
        for k in range(60):
            chunks.append(f"""
            blt r6, r0, neg{k}
            addi r1, r1, 1
            jmp join{k}
        neg{k}:
            subi r1, r1, 1
        join{k}:
            shli r5, r2, 3
            add r5, r5, r4
            ld r6, 0(r5)
            addi r2, r2, 1
            """)
        source = (
            "li r1, 0\nli r2, 0\nli r4, 4096\nli r7, 6\nli r8, 0\n"
            "ld r6, 0(r4)\n"
            "top:\n" + "\n".join(chunks)
            + "\naddi r8, r8, 1\nblt r8, r7, top\nhalt"
        )
        mem = MemoryImage()
        mem.write_array(4096, [rng.choice([-1, 1]) for _ in range(600)])
        pipeline = run_tea(
            source, mem, TeaConfig(block_cache_entries=8, empty_tag_entries=8)
        )
        assert pipeline.stats.retired_instructions > 1000


class TestLoopPredictorIntegration:
    def test_constant_trip_inner_loop_stops_mispredicting(self):
        """A fixed 7-iteration inner loop: after warmup, the loop
        predictor should remove the per-trip exit mispredictions."""
        source = """
            li r1, 0
            li r2, 120
        outer:
            li r3, 0
        inner:
            addi r3, r3, 1
            li r4, 7
            blt r3, r4, inner
            addi r1, r1, 1
            blt r1, r2, outer
            halt
        """
        pipeline = Pipeline(assemble(source), MemoryImage(), SimConfig())
        stats = pipeline.run(max_cycles=1_000_000)
        assert pipeline.halted
        # 120 loop exits; far fewer than 120 mispredictions overall
        # means the exits are being predicted.
        assert stats.total_mispredicts < 40


class TestTelemetry:
    def test_top_mispredicting_branches(self):
        source, mem, _ = h2p_loop_workload(n=800, seed=47)
        program = assemble(source)
        pipeline = Pipeline(program, mem, SimConfig())
        pipeline.run(max_cycles=3_000_000)
        top = pipeline.top_mispredicting_branches(3)
        assert top, "no mispredictions recorded"
        pc, count = top[0]
        # The heaviest mispredictor is the data-dependent blt.
        assert program.instruction_at(pc).opcode == "blt"
        assert count > 100
