"""Structural-hazard tests: tiny resource configurations must stall,
never deadlock or corrupt state."""

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.core.config import CoreConfig
from repro.memory import MemoryConfig


def run_with_core(source, core, mem=None, memory_cfg=None):
    config = SimConfig(core=core, memory=memory_cfg or MemoryConfig())
    pipeline = Pipeline(assemble(source), mem or MemoryImage(), config)
    pipeline.run(max_cycles=2_000_000)
    assert pipeline.halted, "tiny-resource machine deadlocked"
    return pipeline


LONG_CHAIN = "\n".join(
    ["li r1, 1"] + [f"add r{2 + i % 6}, r1, r{2 + (i + 1) % 6}" for i in range(60)]
) + "\nhalt"

LOOP = """
    li r1, 0
    li r2, 30
top:
    shli r3, r1, 3
    addi r4, r3, 4096
    ld r5, 0(r4)
    st r5, 512(r4)
    addi r1, r1, 1
    blt r1, r2, top
    halt
"""


class TestTinyResources:
    def test_tiny_rob(self):
        core = CoreConfig(rob_entries=8)
        pipeline = run_with_core(LONG_CHAIN, core)
        assert pipeline.stats.retired_instructions == 62

    def test_tiny_rs(self):
        core = CoreConfig(rs_entries=4)
        run_with_core(LONG_CHAIN, core)

    def test_tiny_prf(self):
        # Just enough pregs beyond the architectural mappings in use.
        core = CoreConfig(physical_registers=12)
        run_with_core(LONG_CHAIN, core)

    def test_tiny_lsq(self):
        core = CoreConfig(load_queue=2, store_queue=2)
        pipeline = run_with_core(LOOP, core)
        assert pipeline.memory.load(4096 + 512) == 0  # data[0] was 0

    def test_single_wide_machine(self):
        core = CoreConfig(
            fetch_width=1, rename_width=1, issue_width=1, retire_width=1,
            alu_ports=1, load_ports=1, store_ports=1, fp_ports=1,
        )
        pipeline = run_with_core(LOOP, core)
        assert pipeline.stats.ipc <= 1.0

    def test_tiny_frontend_buffer(self):
        core = CoreConfig(frontend_buffer=4)
        run_with_core(LOOP, core)

    def test_tiny_mshrs(self):
        memory_cfg = MemoryConfig(mshr_entries=1)
        mem = MemoryImage({4096 + 8 * i: i for i in range(30)})
        pipeline = run_with_core(LOOP, CoreConfig(), mem, memory_cfg)
        assert pipeline.hierarchy.mshr_full_events >= 0

    def test_deep_frontend(self):
        core = CoreConfig(frontend_depth=30)
        pipeline = run_with_core(LOOP, core)
        # Deeper frontend -> strictly more cycles than the default.
        shallow = run_with_core(LOOP, CoreConfig())
        assert pipeline.stats.cycles > shallow.stats.cycles


class TestIpcSanity:
    def test_wide_machine_exploits_ilp(self):
        """Independent instructions in a warm loop reach IPC > 2."""
        body = "\n".join(f"li r{1 + i % 14}, {i}" for i in range(60))
        source = f"""
            li r20, 0
            li r21, 40
        top:
            {body}
            addi r20, r20, 1
            blt r20, r21, top
            halt
        """
        pipeline = run_with_core(source, CoreConfig())
        assert pipeline.stats.ipc > 2.0

    def test_serial_chain_is_ipc_bound(self):
        """A fully serial dependence chain cannot exceed IPC 1."""
        body = "li r1, 1\n" + "\n".join("add r1, r1, r1" for _ in range(300))
        pipeline = run_with_core(body + "\nhalt", CoreConfig())
        assert pipeline.stats.ipc <= 1.1

    def test_load_latency_visible(self):
        """Pointer-chasing loads serialize at L1 latency or worse."""
        mem = MemoryImage({4096 + 8 * i: 4096 + 8 * (i + 1) for i in range(64)})
        source = """
            li r1, 4096
            li r2, 0
        top:
            ld r1, 0(r1)
            addi r2, r2, 1
            li r3, 60
            blt r2, r3, top
            halt
        """
        pipeline = run_with_core(source, CoreConfig(), mem)
        cycles_per_load = pipeline.stats.cycles / 60
        assert cycles_per_load >= 3.5  # ~L1 latency per chased load
