"""Gated runs of the configured external linters.

ruff and mypy are CI dependencies (the ``lint`` optional extra), not
runtime ones; when absent locally these tests skip rather than fail.
The configuration they exercise lives in pyproject.toml: ruff with the
correctness rule families tree-wide, mypy strict on ``repro.analysis``
and report-free elsewhere.
"""

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def run(*argv):
    return subprocess.run(
        argv, cwd=ROOT, capture_output=True, text=True, timeout=600
    )


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = run("ruff", "check", "src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():
    proc = run("mypy")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_arch_lint_module_runs():
    # Pure stdlib, always available; the module must be runnable as
    # ``python -m`` exactly as CI invokes it.
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.arch_lint"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=120,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK" in proc.stdout
