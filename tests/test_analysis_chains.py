"""Static chain analyzer: construction, classification, the runtime
soundness oracle, the TeaConfig branch mask, and timeliness.

Acceptance gates (ISSUE 9):

* zero unsound runtime chains on the pinned workload matrix;
* every hand-seeded unsound fixture is detected;
* an allow-all static mask leaves a TEA run cycle-exact;
* static timeliness agrees with measured leads on >= 80% of branches
  with >= 10 resolutions, per decisive workload.
"""

from dataclasses import replace

import pytest

from repro import assemble
from repro.analysis import analyze_chains
from repro.analysis.chains import (
    CLASS_CHAINABLE,
    CLASS_TRIVIAL,
    CLASS_UNCHAINABLE,
    StaticChain,
    build_chain_report,
    check_chain,
    render_chain_report,
    run_chain_oracle,
    verify_walks,
)
from repro.analysis.slicer import slice_program
from repro.core.config import ConfigError
from repro.harness.runner import make_config, run_workload
from repro.obs import Observation
from repro.tea.config import TeaConfig
from repro.tea.fill_buffer import FillEntry
from repro.workloads import make_workload


def pcs_of(program, *opcodes):
    return [ins.pc for ins in program.instructions if ins.opcode in opcodes]


def fe(pc, dst=None, srcs=(), is_load=False, h2p=False):
    """A Fill Buffer entry with only the fields the oracle reads."""
    return FillEntry(
        pc=pc, dst=dst, srcs=tuple(srcs), is_load=is_load, is_store=False,
        mem_addr=None, is_h2p_branch=h2p, chain_seed=False,
        bb_start=0, bb_offset=0,
    )


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------

def test_counted_loop_is_trivially_predictable():
    program = assemble("""
        li r1, 0
        li r2, 10
    top:
        addi r1, r1, 1
        blt r1, r2, top
        halt
    """)
    chains = analyze_chains(program)
    [branch_pc] = pcs_of(program, "blt")
    chain = chains.chain_at(branch_pc)
    assert chain.classification == CLASS_TRIVIAL
    # Taken for r1 = 1..9, falls through at 10.
    assert chain.trip_count == 9
    assert chain.induction_regs == {1}
    # Trivial branches never make the allow mask.
    assert branch_pc not in chains.allow_mask()


def test_one_sided_branch_is_trivially_predictable():
    program = assemble("""
        li r1, 5
        li r3, 2
    top:
        addi r3, r3, 1
        beq r1, r0, top
        halt
    """)
    chains = analyze_chains(program)
    [branch_pc] = pcs_of(program, "beq")
    chain = chains.chain_at(branch_pc)
    assert chain.one_sided
    assert chain.classification == CLASS_TRIVIAL


def test_pointer_chase_exceeds_load_budget():
    program = assemble("""
        li r1, 4096
        ld r1, 0(r1)
        ld r1, 0(r1)
        ld r1, 0(r1)
        ld r1, 0(r1)
        ld r1, 0(r1)
        beq r1, r0, out
        addi r3, r3, 1
    out:
        halt
    """)
    chains = analyze_chains(program)
    [branch_pc] = pcs_of(program, "beq")
    chain = chains.chain_at(branch_pc)
    assert chain.load_depth == 5
    assert chain.classification == CLASS_UNCHAINABLE
    # The chase loads have no statically known producing store.
    assert chain.mem_live_ins


def test_data_dependent_loop_is_chainable():
    program = assemble("""
        li r10, 4096
        ld r2, 0(r10)
        li r1, 0
    top:
        addi r1, r1, 1
        blt r1, r2, top
        halt
    """)
    chains = analyze_chains(program)
    [branch_pc] = pcs_of(program, "blt")
    chain = chains.chain_at(branch_pc)
    assert chain.classification == CLASS_CHAINABLE
    # Every producer is in the slice, so the chain has no live-ins.
    assert chain.live_in_regs == frozenset()
    assert {1, 2, 10} <= set(chain.written_regs)
    assert chains.allow_mask() == (branch_pc,)


def test_ret_edge_over_approximation_is_unchainable():
    # The branch source is produced in the callee; the slice crosses
    # the conservative ret edge and must refuse to chain.
    program = assemble("""
        li r1, 7
        call fn
        beq r2, r0, out
        addi r3, r3, 1
    out:
        halt
    fn:
        addi r2, r1, 1
        ret
    """)
    chains = analyze_chains(program)
    [branch_pc] = pcs_of(program, "beq")
    chain = chains.chain_at(branch_pc)
    assert chain.has_indirect
    assert chain.classification == CLASS_UNCHAINABLE
    assert chains.allow_mask() == ()


def test_jump_table_dispatch_is_unchainable():
    # Generated programs dispatch through a runtime-built jr jump
    # table; every slice that crosses the indirect edge must be
    # refused (the fuzz `indirect_fanout` profile).
    from repro.fuzz.generator import GeneratorProfile, generate_program

    generated = generate_program(0, GeneratorProfile(indirect_fanout=8))
    chains = analyze_chains(generated.unit.program)
    indirect = [c for c in chains.chains.values() if c.has_indirect]
    assert indirect, "generator produced no indirect-crossing slice"
    for chain in indirect:
        assert chain.classification == CLASS_UNCHAINABLE


# ----------------------------------------------------------------------
# Runtime soundness oracle: hand-seeded unsound fixtures
# ----------------------------------------------------------------------

@pytest.fixture()
def simple_chain():
    program = assemble("""
        li r10, 4096
        ld r2, 0(r10)
        li r1, 0
    top:
        addi r1, r1, 1
        blt r1, r2, top
        halt
    """)
    chains = analyze_chains(program)
    [branch_pc] = pcs_of(program, "blt")
    return chains, chains.chain_at(branch_pc)


def test_check_chain_flags_uop_outside_slice(simple_chain):
    _, chain = simple_chain
    rogue = 0x99c
    assert rogue not in chain.pcs
    entries = [fe(rogue, dst=7), fe(chain.branch_pc, srcs=(1, 2), h2p=True)]
    findings = check_chain(chain, entries, [True, True])
    assert [f.kind for f in findings] == ["uop_not_in_slice"]
    assert findings[0].detail["pcs"] == [rogue]


def test_check_chain_flags_uncovered_live_in(simple_chain):
    _, chain = simple_chain
    assert 9 not in chain.live_in_regs | chain.written_regs
    entries = [fe(min(chain.pcs), dst=1, srcs=(9,))]
    findings = check_chain(chain, entries, [True])
    assert [f.kind for f in findings] == ["live_in_uncovered"]
    assert findings[0].detail["regs"] == [9]


def test_check_chain_flags_depth_escape(simple_chain):
    # A dynamic chain deeper than the static bound is impossible for a
    # correctly computed chain (induced-subgraph longest paths only
    # shrink), so the fixture lies about its depth.
    _, real = simple_chain
    lying = replace(real, depth=1)
    entries = [fe(pc, dst=1, srcs=(1,)) for pc in sorted(real.pcs)]
    findings = check_chain(lying, entries, [True] * len(entries))
    kinds = {f.kind for f in findings}
    assert "depth_exceeded" in kinds
    [finding] = [f for f in findings if f.kind == "depth_exceeded"]
    assert finding.detail["dynamic"] > 1


def test_check_chain_accepts_sound_chain(simple_chain):
    _, chain = simple_chain
    # Replayed truthfully: the loop's own uops, slice-internal reads.
    entries = [fe(min(chain.pcs), dst=10), fe(chain.branch_pc, srcs=(1, 2))]
    assert check_chain(chain, entries, [True, True]) == []


def test_verify_walks_skips_initiators_without_a_slice(simple_chain):
    chains, _ = simple_chain
    walk = [fe(0x40, srcs=(1,), h2p=True)]  # no conditional branch here
    assert chains.chain_at(0x40) is None
    report = verify_walks(chains, [(walk, None)], TeaConfig())
    assert report["walks_captured"] == 1
    assert report["skipped_no_slice"] == 1
    assert report["branches_checked"] == 0
    assert report["unsound_total"] == 0


# ----------------------------------------------------------------------
# TeaConfig.branch_mask: validation + machine behavior
# ----------------------------------------------------------------------

def test_branch_mask_must_be_sorted_unique_non_negative():
    TeaConfig(branch_mask=(4, 8, 12))  # valid
    TeaConfig(branch_mask=())          # deny-all is valid
    with pytest.raises(ConfigError):
        TeaConfig(branch_mask=(8, 4))
    with pytest.raises(ConfigError):
        TeaConfig(branch_mask=(4, 4, 8))
    with pytest.raises(ConfigError):
        TeaConfig(branch_mask=(-4,))


def test_allow_all_mask_is_cycle_exact():
    bundle = make_workload("bfs", "tiny")
    every_branch = tuple(sorted(slice_program(bundle.program).branches))
    base = run_workload(bundle, "tea", "tiny")
    cfg = make_config("tea")
    masked = run_workload(
        bundle, "tea", "tiny",
        config=replace(cfg, tea=replace(cfg.tea, branch_mask=every_branch)),
    )
    assert base.stats == masked.stats


def test_deny_all_mask_runs_clean_and_reports_denials():
    bundle = make_workload("bfs", "tiny")
    cfg = make_config("tea")
    obs = Observation(record_events=False)
    result = run_workload(
        bundle, "tea", "tiny", observe=obs,
        config=replace(cfg, tea=replace(cfg.tea, branch_mask=())),
    )
    assert result.halted and result.validated
    # Each vetoed H2P PC is reported exactly once.
    assert obs.bus.counts.get("tea_mask_denied", 0) >= 1
    assert obs.bus.counts.get("tea_mask_denied") <= len(
        slice_program(bundle.program).branches
    ) + 4  # conditionals + a few indirect H2P candidates


# ----------------------------------------------------------------------
# End-to-end oracle on the pinned matrix
# ----------------------------------------------------------------------

MATRIX = ["bfs", "xz"]


@pytest.fixture(scope="module", params=MATRIX)
def oracle_report(request):
    return run_chain_oracle(request.param, scale="tiny", mode="tea")


def test_oracle_attributes_walks(oracle_report):
    assert oracle_report["soundness"]["walks_captured"] > 0
    assert oracle_report["soundness"]["branches_checked"] > 0


def test_zero_unsound_chains_on_matrix(oracle_report):
    assert oracle_report["soundness"]["unsound_total"] == 0, (
        oracle_report["soundness"]["findings"]
    )


def test_timeliness_agreement_meets_bar(oracle_report):
    timeliness = oracle_report["timeliness"]
    assert timeliness["compared"] >= 1
    assert timeliness["agreement"] >= 0.80


def test_report_is_json_safe_and_renders(oracle_report):
    import json

    json.dumps(oracle_report)
    text = render_chain_report(oracle_report)
    assert "conditional branches" in text
    assert "soundness: 0 unsound" in text


def test_masked_oracle_run_stays_sound():
    report = run_chain_oracle("bfs", scale="tiny", mode="tea", use_mask=True)
    assert report["masked"]
    assert report["soundness"]["unsound_total"] == 0
    assert report["ipc"] > 0


def test_static_report_shape():
    bundle = make_workload("mcf", "tiny")
    chains = analyze_chains(bundle.program)
    report = build_chain_report(chains, workload="mcf")
    assert report["conditional_branches"] == len(chains.chains)
    assert sum(report["counts"].values()) == report["conditional_branches"]
    assert report["allow_mask"] == list(chains.allow_mask())
    for rec in report["branches"]:
        assert rec["classification"] in (
            CLASS_TRIVIAL, CLASS_CHAINABLE, CLASS_UNCHAINABLE
        )
        assert rec["depth"] >= 1 and rec["size"] >= 1
