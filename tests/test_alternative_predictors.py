"""Tests for the perceptron and gshare predictors, and the paper's
claim that H2P branches defeat *all* modern predictor families."""

import random

import pytest

from repro import Pipeline, SimConfig, assemble
from repro.frontend import FrontendConfig, HistoryState
from repro.frontend.alternatives import Gshare, HashedPerceptron

from tests.conftest import h2p_loop_workload


def train_stream(predictor, history, outcomes, pc=0x40):
    missed = 0
    for taken in outcomes:
        pred = predictor.predict(pc)
        if predictor.predicted_taken(pred) != taken:
            missed += 1
        history.push_conditional(taken)
        predictor.train(pc, taken, pred)
    return missed


class TestHashedPerceptron:
    def test_learns_bias(self):
        history = HistoryState()
        p = HashedPerceptron(history=history)
        missed = train_stream(p, history, [True] * 300)
        assert missed < 10

    def test_learns_history_pattern(self):
        history = HistoryState()
        p = HashedPerceptron(history=history)
        pattern = ([True] * 3 + [False]) * 150
        train_stream(p, history, pattern)
        tail = train_stream(p, history, pattern[:100])
        assert tail <= 8

    def test_linearly_inseparable_is_hard(self):
        """XOR of two history bits is the classic perceptron failure."""
        history = HistoryState()
        p = HashedPerceptron(history=history)
        rng = random.Random(1)
        missed = 0
        bits = [rng.random() < 0.5 for _ in range(600)]
        for i in range(2, len(bits)):
            taken = bits[i - 1] ^ bits[i - 2]
            pred = p.predict(0x40)
            if p.predicted_taken(pred) != taken:
                missed += 1
            history.push_conditional(taken)
            p.train(0x40, taken, pred)
        # Single-layer perceptrons cannot represent XOR exactly, but
        # hashed multi-table variants capture some of it; it must
        # still be clearly imperfect.
        assert missed > 30

    def test_weights_saturate(self):
        history = HistoryState()
        p = HashedPerceptron(history=history)
        train_stream(p, history, [True] * 500)
        for table in p.tables:
            assert all(p._wmin <= w <= p._wmax for w in table)


class TestGshare:
    def test_learns_bias(self):
        history = HistoryState()
        g = Gshare(history=history)
        missed = train_stream(g, history, [False] * 200)
        assert missed <= 2

    def test_learns_alternation(self):
        history = HistoryState()
        g = Gshare(history=history)
        pattern = [True, False] * 200
        train_stream(g, history, pattern)
        tail = train_stream(g, history, pattern[:100])
        assert tail <= 4


class TestPipelineIntegration:
    @pytest.mark.parametrize("kind", ["perceptron", "gshare"])
    def test_pipeline_runs_and_validates(self, kind):
        source, mem, expected = h2p_loop_workload(n=600, seed=31)
        config = SimConfig(
            frontend=FrontendConfig(conditional_predictor=kind)
        )
        pipeline = Pipeline(assemble(source), mem, config)
        pipeline.run(max_cycles=2_000_000)
        assert pipeline.halted
        assert pipeline.architectural_register(1) == expected

    def test_unknown_predictor_rejected(self):
        source, mem, _ = h2p_loop_workload(n=100, seed=31)
        config = SimConfig(
            frontend=FrontendConfig(conditional_predictor="oracle")
        )
        with pytest.raises(ValueError, match="unknown conditional"):
            Pipeline(assemble(source), mem, config)

    def test_h2p_branch_defeats_every_family(self):
        """The paper's premise: data-dependent random branches stay
        hard under TAGE-SC-L, perceptron, and gshare alike."""
        mpki = {}
        for kind in ("tagescl", "perceptron", "gshare"):
            source, mem, _ = h2p_loop_workload(n=1500, seed=31)
            config = SimConfig(
                frontend=FrontendConfig(conditional_predictor=kind)
            )
            pipeline = Pipeline(assemble(source), mem, config)
            stats = pipeline.run(max_cycles=3_000_000)
            mpki[kind] = stats.mpki
        for kind, value in mpki.items():
            assert value > 30, f"{kind} should not predict random data ({value})"
