"""Unit tests for the H2P branch identification table (paper §IV-B)."""

from repro.tea import H2PTable, TeaConfig


class TestClassification:
    def test_single_mispredict_is_not_h2p(self):
        table = H2PTable()
        table.record_mispredict(0x40)
        assert not table.is_h2p(0x40)
        assert table.counter(0x40) == 1

    def test_repeated_mispredicts_become_h2p(self):
        table = H2PTable()
        table.record_mispredict(0x40)
        table.record_mispredict(0x40)
        assert table.is_h2p(0x40)

    def test_counter_saturates_at_3_bits(self):
        table = H2PTable()
        for _ in range(100):
            table.record_mispredict(0x40)
        assert table.counter(0x40) == 7

    def test_unknown_branch(self):
        table = H2PTable()
        assert not table.is_h2p(0x123 << 2)
        assert table.counter(0x123 << 2) == 0


class TestDecay:
    def test_periodic_decrement_demotes(self):
        table = H2PTable()
        table.record_mispredict(0x40)
        table.record_mispredict(0x40)
        assert table.is_h2p(0x40)
        table.periodic_decrement()
        assert not table.is_h2p(0x40)  # counter back to 1

    def test_decrement_floors_at_zero(self):
        table = H2PTable()
        table.record_mispredict(0x40)
        for _ in range(5):
            table.periodic_decrement()
        assert table.counter(0x40) == 0

    def test_infrequent_mispredictors_decay_out(self):
        """The paper's rationale: < 0.02 MPKI branches tend to zero."""
        table = H2PTable()
        for _ in range(3):
            table.record_mispredict(0x40)
            table.periodic_decrement()
            table.periodic_decrement()
        assert not table.is_h2p(0x40)


class TestReplacement:
    def test_zero_counter_victims_preferred(self):
        config = TeaConfig(h2p_entries=8, h2p_ways=8)
        table = H2PTable(config)  # one set
        pcs = [i << 2 for i in range(8)]
        for pc in pcs:
            table.record_mispredict(pc)
            table.record_mispredict(pc)
        table.periodic_decrement()
        table.periodic_decrement()  # pcs[0..7] all at 0
        table.record_mispredict(pcs[1])  # bump one back up
        table.record_mispredict(0x1000)  # needs a victim
        assert table.counter(pcs[1]) == 1  # survivor (non-zero)
        assert table.counter(0x1000) == 1

    def test_capacity_respected(self):
        config = TeaConfig(h2p_entries=8, h2p_ways=2)
        table = H2PTable(config)
        for i in range(40):
            table.record_mispredict(i << 2)
        for cset in table._sets:
            assert len(cset) <= 2

    def test_h2p_pcs_listing(self):
        table = H2PTable()
        for pc in (0x40, 0x80):
            table.record_mispredict(pc)
            table.record_mispredict(pc)
        table.record_mispredict(0xC0)
        assert table.h2p_pcs() == {0x40, 0x80}
