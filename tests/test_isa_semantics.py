"""Unit + property tests for the functional instruction semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, branch_taken, branch_target, to_signed64
from repro.isa.semantics import compute_result, effective_address

i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


def _instr(opcode, dst=None, srcs=(), imm=None, target=None, pc=0):
    return Instruction(opcode=opcode, dst=dst, srcs=srcs, imm=imm, target=target, pc=pc)


class TestIntegerAlu:
    @pytest.mark.parametrize(
        "opcode,a,b,expected",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 4, 16),
            ("slt", -1, 0, 1),
            ("slt", 1, 0, 0),
            ("sltu", -1, 0, 0),  # -1 is the max unsigned value
            ("min", 4, -2, -2),
            ("max", 4, -2, 4),
            ("mul", -3, 7, -21),
        ],
    )
    def test_binary_ops(self, opcode, a, b, expected):
        assert compute_result(_instr(opcode, dst=1, srcs=(2, 3)), (a, b)) == expected

    def test_shr_is_logical(self):
        # -1 shifted right pulls in zeros (unsigned shift).
        result = compute_result(_instr("shr", dst=1, srcs=(2, 3)), (-1, 60))
        assert result == 15

    @pytest.mark.parametrize(
        "a,b,q,r", [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1)]
    )
    def test_division_truncates_toward_zero(self, a, b, q, r):
        assert compute_result(_instr("div", dst=1, srcs=(2, 3)), (a, b)) == q
        assert compute_result(_instr("rem", dst=1, srcs=(2, 3)), (a, b)) == r

    def test_division_by_zero_yields_zero(self):
        assert compute_result(_instr("div", dst=1, srcs=(2, 3)), (5, 0)) == 0
        assert compute_result(_instr("rem", dst=1, srcs=(2, 3)), (5, 0)) == 0

    def test_immediates(self):
        assert compute_result(_instr("addi", dst=1, srcs=(2,), imm=-5), (3,)) == -2
        assert compute_result(_instr("li", dst=1, imm=42), ()) == 42
        assert compute_result(_instr("mov", dst=1, srcs=(2,)), (9,)) == 9

    @given(i64, i64)
    def test_add_wraps_to_64_bits(self, a, b):
        result = compute_result(_instr("add", dst=1, srcs=(2, 3)), (a, b))
        assert result == to_signed64(a + b)
        assert -(2**63) <= result < 2**63

    @given(i64, i64)
    def test_div_rem_identity(self, a, b):
        q = compute_result(_instr("div", dst=1, srcs=(2, 3)), (a, b))
        r = compute_result(_instr("rem", dst=1, srcs=(2, 3)), (a, b))
        if b != 0:
            assert to_signed64(q * b + r) == a


class TestFloatingPoint:
    def test_basic_arith(self):
        assert compute_result(_instr("fadd", dst=33, srcs=(34, 35)), (1.5, 2.5)) == 4.0
        assert compute_result(_instr("fdiv", dst=33, srcs=(34, 35)), (1.0, 0.0)) == 0.0

    def test_fli_scales_by_256(self):
        assert compute_result(_instr("fli", dst=33, imm=256), ()) == 1.0
        assert compute_result(_instr("fli", dst=33, imm=128), ()) == 0.5

    def test_conversions(self):
        assert compute_result(_instr("itof", dst=33, srcs=(2,)), (7,)) == 7.0
        assert compute_result(_instr("ftoi", dst=1, srcs=(33,)), (7.9,)) == 7

    def test_fcmplt_returns_int(self):
        assert compute_result(_instr("fcmplt", dst=1, srcs=(33, 34)), (1.0, 2.0)) == 1
        assert compute_result(_instr("fcmplt", dst=1, srcs=(33, 34)), (2.0, 1.0)) == 0


class TestBranches:
    @pytest.mark.parametrize(
        "opcode,a,b,taken",
        [
            ("beq", 1, 1, True),
            ("beq", 1, 2, False),
            ("bne", 1, 2, True),
            ("blt", -1, 0, True),
            ("bge", 0, 0, True),
            ("ble", 1, 1, True),
            ("bgt", 2, 1, True),
            ("bgt", 1, 1, False),
        ],
    )
    def test_conditionals(self, opcode, a, b, taken):
        instr = _instr(opcode, srcs=(1, 2), target=100)
        assert branch_taken(instr, (a, b)) is taken

    def test_unconditional_always_taken(self):
        assert branch_taken(_instr("jmp", target=64), ()) is True
        assert branch_taken(_instr("ret", srcs=(31,)), (80,)) is True

    def test_direct_target(self):
        assert branch_target(_instr("beq", srcs=(1, 2), target=200), (0, 0)) == 200

    def test_indirect_target_from_register(self):
        assert branch_target(_instr("jr", srcs=(5,)), (0x140,)) == 0x140

    def test_call_produces_return_address(self):
        instr = _instr("call", dst=31, target=400, pc=96)
        assert compute_result(instr, ()) == 100


class TestEffectiveAddress:
    def test_load_uses_first_source(self):
        instr = _instr("ld", dst=1, srcs=(2,), imm=16)
        assert effective_address(instr, (1000,)) == 1016

    def test_store_uses_second_source(self):
        instr = _instr("st", srcs=(1, 2), imm=-8)
        assert effective_address(instr, (555, 1000)) == 992

    @given(i64, st.integers(min_value=-4096, max_value=4096))
    def test_address_wraps(self, base, offset):
        instr = _instr("ld", dst=1, srcs=(2,), imm=offset)
        assert effective_address(instr, (base,)) == to_signed64(base + offset)


class TestToSigned64:
    @given(st.integers())
    def test_range_and_idempotence(self, value):
        wrapped = to_signed64(value)
        assert -(2**63) <= wrapped < 2**63
        assert to_signed64(wrapped) == wrapped

    @given(i64)
    def test_identity_in_range(self, value):
        assert to_signed64(value) == value
