"""Tests for campaign persistence and regression diffing."""

import pytest

from repro.harness import ExperimentSuite
from repro.harness.campaign import (
    campaign_to_dict,
    diff_campaigns,
    load_campaign,
    save_campaign,
)


@pytest.fixture(scope="module")
def small_suite():
    suite = ExperimentSuite(scale="tiny", workloads=("xz",))
    suite.result("xz", "baseline")
    suite.result("xz", "tea")
    return suite


class TestSerialization:
    def test_roundtrip(self, small_suite, tmp_path):
        path = save_campaign(small_suite, tmp_path / "campaign.json")
        data = load_campaign(path)
        assert data["scale"] == "tiny"
        assert "xz/baseline" in data["runs"]
        assert "xz/tea" in data["runs"]

    def test_run_payload_complete(self, small_suite):
        data = campaign_to_dict(small_suite)
        run = data["runs"]["xz/tea"]
        for key in ("ipc", "mpki", "coverage", "accuracy", "early_flushes"):
            assert key in run
        assert run["validated"] is True

    def test_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "runs": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_campaign(path)


class TestDiff:
    def test_identical_campaigns_no_movements(self, small_suite):
        data = campaign_to_dict(small_suite)
        assert diff_campaigns(data, data) == []

    def test_regression_detected(self, small_suite):
        before = campaign_to_dict(small_suite)
        after = campaign_to_dict(small_suite)
        after["runs"]["xz/tea"] = dict(after["runs"]["xz/tea"])
        after["runs"]["xz/tea"]["ipc"] *= 0.9
        movements = diff_campaigns(before, after)
        assert movements
        assert movements[0]["run"] == "xz/tea"
        assert movements[0]["delta_pct"] == pytest.approx(-10.0, abs=0.1)

    def test_threshold_filters_noise(self, small_suite):
        before = campaign_to_dict(small_suite)
        after = campaign_to_dict(small_suite)
        after["runs"]["xz/tea"] = dict(after["runs"]["xz/tea"])
        after["runs"]["xz/tea"]["ipc"] *= 1.005
        assert diff_campaigns(before, after, threshold_pct=1.0) == []

    def test_new_runs_ignored(self, small_suite):
        before = campaign_to_dict(small_suite)
        after = campaign_to_dict(small_suite)
        after["runs"]["new/one"] = {"ipc": 1.0}
        assert diff_campaigns(before, after) == []
