"""Tests for campaign persistence and regression diffing."""

import json

import pytest

from repro.harness import CampaignExecutor, ExperimentSuite, RunSpec
from repro.harness.campaign import (
    campaign_to_dict,
    diff_campaigns,
    load_campaign,
    save_campaign,
)


@pytest.fixture(scope="module")
def small_suite():
    suite = ExperimentSuite(scale="tiny", workloads=("xz",))
    suite.result("xz", "baseline")
    suite.result("xz", "tea")
    return suite


class TestSerialization:
    def test_roundtrip(self, small_suite, tmp_path):
        path = save_campaign(small_suite, tmp_path / "campaign.json")
        data = load_campaign(path)
        assert data["scale"] == "tiny"
        assert "xz/baseline" in data["runs"]
        assert "xz/tea" in data["runs"]

    def test_run_payload_complete(self, small_suite):
        data = campaign_to_dict(small_suite)
        run = data["runs"]["xz/tea"]
        for key in ("ipc", "mpki", "coverage", "accuracy", "early_flushes"):
            assert key in run
        assert run["validated"] is True

    def test_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "runs": {}}')
        with pytest.raises(ValueError, match="schema"):
            load_campaign(path)


def _ok_task(record):
    return {
        "stats": {"cycles": 100, "retired_instructions": 200},
        "validated": True,
        "halted": True,
    }


class TestTolerantLoading:
    def test_corrupt_json_raises_typed_error(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text('{"schema": 1, "runs": {"xz/tea": {"ipc": 1.2')
        with pytest.raises(ValueError, match="corrupt campaign file"):
            load_campaign(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_campaign(path)

    def test_corrupt_run_record_skipped_with_warning(self, small_suite, tmp_path):
        path = save_campaign(small_suite, tmp_path / "campaign.json")
        data = json.loads(path.read_text())
        data["runs"]["xz/tea"] = "not-a-dict"
        path.write_text(json.dumps(data))
        with pytest.warns(UserWarning, match="corrupt run record 'xz/tea'"):
            loaded = load_campaign(path)
        assert "xz/tea" not in loaded["runs"]
        assert "xz/baseline" in loaded["runs"]

    def test_executor_journal_loads_as_campaign(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = [RunSpec("xz", m, "tiny") for m in ("baseline", "tea")]
        CampaignExecutor(jobs=0, task=_ok_task).run(specs, checkpoint=path)
        data = load_campaign(path)
        assert data["scale"] == "tiny"
        assert data["workloads"] == ["xz"]
        assert set(data["runs"]) == {"xz/baseline", "xz/tea"}
        assert data["runs"]["xz/tea"]["ipc"] == pytest.approx(2.0)

    def test_single_record_journal_loads(self, tmp_path):
        path = tmp_path / "one.jsonl"
        CampaignExecutor(jobs=0, task=_ok_task).run(
            [RunSpec("xz", "tea", "tiny")], checkpoint=path
        )
        data = load_campaign(path)
        assert set(data["runs"]) == {"xz/tea"}

    def test_journal_with_corrupt_tail_loads_rest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        specs = [RunSpec("xz", m, "tiny") for m in ("baseline", "tea")]
        CampaignExecutor(jobs=0, task=_ok_task).run(specs, checkpoint=path)
        with open(path, "a") as fh:
            fh.write('{"spec": {"workload": "mcf", "mo')  # crash mid-append
        with pytest.warns(UserWarning, match="journal damage"):
            data = load_campaign(path)
        assert set(data["runs"]) == {"xz/baseline", "xz/tea"}

    def test_failed_cell_preserved_in_loaded_campaign(self, tmp_path):
        def failing(record):
            if record["mode"] == "tea":
                raise ValueError("model bug")
            return _ok_task(record)

        path = tmp_path / "journal.jsonl"
        specs = [RunSpec("xz", m, "tiny") for m in ("baseline", "tea")]
        CampaignExecutor(jobs=0, task=failing).run(specs, checkpoint=path)
        data = load_campaign(path)
        assert data["runs"]["xz/tea"]["failure"] == "fatal"
        assert "model bug" in data["runs"]["xz/tea"]["error"]
        # Failed cells never contribute to diffs.
        assert diff_campaigns(data, data) == []


class TestDiff:
    def test_identical_campaigns_no_movements(self, small_suite):
        data = campaign_to_dict(small_suite)
        assert diff_campaigns(data, data) == []

    def test_regression_detected(self, small_suite):
        before = campaign_to_dict(small_suite)
        after = campaign_to_dict(small_suite)
        after["runs"]["xz/tea"] = dict(after["runs"]["xz/tea"])
        after["runs"]["xz/tea"]["ipc"] *= 0.9
        movements = diff_campaigns(before, after)
        assert movements
        assert movements[0]["run"] == "xz/tea"
        assert movements[0]["delta_pct"] == pytest.approx(-10.0, abs=0.1)

    def test_threshold_filters_noise(self, small_suite):
        before = campaign_to_dict(small_suite)
        after = campaign_to_dict(small_suite)
        after["runs"]["xz/tea"] = dict(after["runs"]["xz/tea"])
        after["runs"]["xz/tea"]["ipc"] *= 1.005
        assert diff_campaigns(before, after, threshold_pct=1.0) == []

    def test_new_runs_ignored(self, small_suite):
        before = campaign_to_dict(small_suite)
        after = campaign_to_dict(small_suite)
        after["runs"]["new/one"] = {"ipc": 1.0}
        assert diff_campaigns(before, after) == []
