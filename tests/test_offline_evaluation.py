"""Tests for trace-driven offline predictor evaluation."""

import random

import pytest

from repro import MemoryImage, assemble
from repro.frontend import HistoryState
from repro.frontend.alternatives import Gshare
from repro.frontend.offline import evaluate_predictor
from repro.isa import run_program


def collect_trace(source, mem=None):
    result = run_program(assemble(source), mem or MemoryImage(), collect_trace=True)
    # Keep conditional branches only (the offline evaluator's domain).
    program = assemble(source)
    return [
        (pc, taken)
        for pc, taken in result.trace
        if program.instruction_at(pc).is_conditional
    ]


class TestEvaluate:
    def test_predictable_loop_near_perfect(self):
        trace = collect_trace(
            """
            li r1, 0
            li r2, 300
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
            """
        )
        result = evaluate_predictor(trace)
        assert result.branches == 300
        assert result.mispredicts < 10
        assert result.accuracy > 0.95

    def test_random_branch_stays_hard(self):
        rng = random.Random(3)
        mem = MemoryImage({4096 + 8 * i: rng.choice([-1, 1]) for i in range(500)})
        trace = collect_trace(
            """
            li r1, 0
            li r2, 500
            li r3, 4096
        top:
            shli r4, r1, 3
            add r4, r4, r3
            ld r5, 0(r4)
            blt r5, r0, skip
            nop
        skip:
            addi r1, r1, 1
            blt r1, r2, top
            halt
            """,
            mem,
        )
        result = evaluate_predictor(trace)
        assert result.mpkb > 150  # the random branch dominates

    def test_hardest_branches_identifies_the_h2p(self):
        rng = random.Random(3)
        mem = MemoryImage({4096 + 8 * i: rng.choice([-1, 1]) for i in range(400)})
        source = """
            li r1, 0
            li r2, 400
            li r3, 4096
        top:
            shli r4, r1, 3
            add r4, r4, r3
            ld r5, 0(r4)
            blt r5, r0, skip
            nop
        skip:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        program = assemble(source)
        trace = collect_trace(source, mem)
        result = evaluate_predictor(trace)
        pc, rate, seen = result.hardest_branches(1)[0]
        # The data-dependent branch, not the loop branch.
        assert program.instruction_at(pc).srcs[0] == 5
        assert rate > 0.25

    def test_custom_predictor(self):
        history = HistoryState()
        gshare = Gshare(history=history)
        # The first ~14 branches walk distinct histories (cold indices);
        # afterwards the index is stable and prediction is perfect.
        trace = [(0x40, True)] * 300
        result = evaluate_predictor(trace, gshare, history)
        assert result.accuracy > 0.9

    def test_custom_predictor_requires_history(self):
        class Opaque:
            pass

        with pytest.raises(ValueError, match="HistoryState"):
            evaluate_predictor([(0x40, True)], Opaque())

    def test_empty_trace(self):
        result = evaluate_predictor([])
        assert result.accuracy == 1.0
        assert result.mpkb == 0.0
