"""Property tests on decoupled-frontend invariants over random programs.

The FTQ stream is the contract between the predictor, the main thread,
and the TEA thread; these invariants are what the synchronized
timestamps rely on.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import assemble
from repro.frontend import DecoupledFrontend
from repro.isa import INSTRUCTION_BYTES


def _random_branchy_source(rng: random.Random) -> str:
    """A random program of small blocks joined by jumps/branches."""
    num_blocks = rng.randint(3, 8)
    lines = []
    for b in range(num_blocks):
        lines.append(f"blk{b}:")
        for _ in range(rng.randint(1, 5)):
            r = rng.randint(1, 8)
            lines.append(f"    addi r{r}, r{r}, 1")
        target = rng.randrange(num_blocks)
        kind = rng.random()
        if kind < 0.5:
            lines.append(f"    beq r1, r2, blk{target}")
            lines.append(f"    jmp blk{rng.randrange(num_blocks)}")
        else:
            lines.append(f"    jmp blk{target}")
    lines.append("    halt")
    return "\n".join(lines)


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=30, deadline=None)
def test_block_stream_invariants(seed):
    rng = random.Random(seed)
    frontend = DecoupledFrontend(assemble(_random_branchy_source(rng)))
    last_seq = -1
    for _ in range(120):
        block = frontend.tick()
        if block is None:
            break
        assert block.uops, "empty block emitted"
        # 1. Sequence numbers are strictly increasing, gap-free inside
        #    a block (gaps may only appear across flushes).
        seqs = [u.seq for u in block.uops]
        assert seqs[0] > last_seq
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        last_seq = seqs[-1]
        # 2. PCs are sequential within the block.
        pcs = [u.instr.pc for u in block.uops]
        assert pcs == [
            block.start_pc + i * INSTRUCTION_BYTES for i in range(len(pcs))
        ]
        # 3. Only the final uop may be predicted-taken.
        for uop in block.uops[:-1]:
            if uop.branch is not None:
                assert not uop.branch.predicted_taken
        # 4. next_fetch_pc matches the last uop's prediction.
        tail = block.uops[-1]
        if tail.branch is not None and block.next_fetch_pc is not None:
            assert block.next_fetch_pc == tail.branch.predicted_next_pc
        # 5. Block length respects the 32-uop (128B) cap.
        assert len(block.uops) <= frontend.config.max_block_uops


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=20, deadline=None)
def test_flush_restores_prediction_determinism(seed):
    """Flushing a branch and re-running from its snapshot must produce
    the same downstream decisions as an unflushed twin frontend."""
    rng = random.Random(seed)
    source = _random_branchy_source(rng)
    program = assemble(source)
    frontend = DecoupledFrontend(program)

    # Produce a few blocks; find the first recoverable branch.
    branch = None
    for _ in range(20):
        block = frontend.tick()
        if block is None:
            break
        for uop in block.uops:
            if uop.branch is not None and uop.branch.can_mispredict:
                branch = uop.branch
                break
        if branch:
            break
    if branch is None:
        return  # nothing to flush in this program
    # Flush at the branch with its own predicted outcome: state must
    # be restored to "as if the prediction had just been made".
    frontend.flush_at(
        branch,
        branch.predicted_taken,
        branch.predicted_target if branch.predicted_taken else branch.fallthrough,
    )
    assert frontend.next_pc == branch.predicted_next_pc
    # The FTQ holds nothing younger than the branch.
    for block in frontend.ftq:
        assert all(u.seq <= branch.seq for u in block.uops)
