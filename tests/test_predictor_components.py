"""Unit tests for loop predictor, statistical corrector, ITTAGE, BTB."""

import pytest

from repro.frontend import (
    Btb,
    BtbConfig,
    HistoryState,
    Ittage,
    LoopPredictor,
    LoopPredictorConfig,
    StatisticalCorrector,
)


class TestLoopPredictor:
    def test_constant_trip_count_predicted(self):
        lp = LoopPredictor(LoopPredictorConfig(confidence_threshold=2))
        pc = 0x80
        # Train: loops of exactly 4 iterations (3 taken, 1 not-taken).
        for _ in range(4):
            for taken in (True, True, True, False):
                lp.train(pc, taken)
        # Now the predictor should override: T, T, T, NT.
        assert lp.predict(pc) is True
        assert lp.predict(pc) is True
        assert lp.predict(pc) is True
        assert lp.predict(pc) is False

    def test_unconfident_defers(self):
        lp = LoopPredictor()
        assert lp.predict(0x80) is None

    def test_varying_trip_count_never_confident(self):
        lp = LoopPredictor()
        pc = 0x80
        for trip in (3, 5, 2, 7, 4, 6):
            for i in range(trip):
                lp.train(pc, True)
            lp.train(pc, False)
        assert lp.predict(pc) is None

    def test_snapshot_restore(self):
        lp = LoopPredictor(LoopPredictorConfig(confidence_threshold=1))
        pc = 0x80
        for _ in range(3):
            for taken in (True, True, False):
                lp.train(pc, taken)
        snap = lp.snapshot()
        first = lp.predict(pc)
        lp.restore(snap)
        assert lp.predict(pc) == first

    def test_capacity_eviction(self):
        lp = LoopPredictor(LoopPredictorConfig(entries=2))
        for pc in (0x10, 0x20, 0x30):
            lp.train(pc, False)
        assert len(lp._entries) <= 2


class TestStatisticalCorrector:
    def test_biased_branch_flips_weak_tage(self):
        history = HistoryState()
        sc = StatisticalCorrector(history=history)
        pc = 0x44
        for _ in range(30):
            _, meta = sc.correct(pc, tage_taken=False, tage_weak=True)
            sc.train(meta, True)  # branch is actually always taken
        taken, _ = sc.correct(pc, tage_taken=False, tage_weak=True)
        assert taken is True
        assert sc.flips > 0

    def test_strong_tage_never_flipped(self):
        history = HistoryState()
        sc = StatisticalCorrector(history=history)
        pc = 0x44
        for _ in range(30):
            _, meta = sc.correct(pc, tage_taken=False, tage_weak=False)
            sc.train(meta, True)
        taken, _ = sc.correct(pc, tage_taken=False, tage_weak=False)
        assert taken is False

    def test_counters_saturate(self):
        history = HistoryState()
        sc = StatisticalCorrector(history=history)
        for _ in range(200):
            _, meta = sc.correct(0x44, True, True)
            sc.train(meta, True)
        assert max(sc._bias) <= 31


class TestIttage:
    def test_learns_single_target(self):
        history = HistoryState()
        it = Ittage(history=history)
        pc, target = 0x50, 0x400
        for _ in range(5):
            pred = it.predict(pc)
            it.train(pc, target, pred)
        assert it.predict(pc).target == target

    def test_history_correlated_targets(self):
        """Targets alternating with a preceding branch direction are
        separable using global history."""
        history = HistoryState()
        it = Ittage(history=history)
        pc = 0x50
        missed_late = 0
        for i in range(400):
            context = i % 2 == 0
            history.push_conditional(context)
            target = 0x400 if context else 0x800
            pred = it.predict(pc)
            if i > 300 and pred.target != target:
                missed_late += 1
            it.train(pc, target, pred)
        assert missed_late <= 6

    def test_unknown_pc_returns_none(self):
        it = Ittage(history=HistoryState())
        assert it.predict(0x77 << 2).target is None


class TestBtb:
    def test_miss_then_hit(self):
        btb = Btb()
        assert btb.lookup(0x100) is None
        btb.install(0x100, 0x200)
        assert btb.lookup(0x100) == 0x200

    def test_update_existing(self):
        btb = Btb()
        btb.install(0x100, 0x200)
        btb.install(0x100, 0x300)
        assert btb.lookup(0x100) == 0x300

    def test_capacity_eviction_lru(self):
        btb = Btb(BtbConfig(entries=8, ways=2))  # 4 sets
        set_stride = 4 * 4  # same set every 4 words
        pcs = [0x100 + i * set_stride for i in range(3)]
        for pc in pcs:
            btb.install(pc, pc + 4)
        assert btb.lookup(pcs[0]) is None  # evicted (LRU)
        assert btb.lookup(pcs[2]) is not None

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Btb(BtbConfig(entries=12, ways=2))
