"""CFG construction: edges, reachability, conservative indirect flow."""

from repro import assemble
from repro.analysis import build_cfg
from repro.isa.instructions import INSTRUCTION_BYTES


def starts(cfg):
    return sorted(cfg.blocks)


def test_straight_line_single_block():
    cfg = build_cfg(assemble("""
        li r1, 1
        addi r1, r1, 2
        halt
    """))
    assert starts(cfg) == [0]
    assert cfg.successors[0] == ()
    assert cfg.reachable == {0}
    assert not cfg.falls_off_end


def test_conditional_branch_has_target_and_fallthrough():
    cfg = build_cfg(assemble("""
        li r1, 5
    top:
        addi r1, r1, -1
        bne r1, r0, top
        halt
    """))
    # Blocks: [li], [addi, bne], [halt]
    assert len(cfg.blocks) == 3
    loop = 0x4
    assert set(cfg.successors[loop]) == {loop, 0xC}
    assert cfg.predecessors[loop] == (0, loop)
    assert cfg.reachable == {0, loop, 0xC}


def test_unconditional_jump_skips_fallthrough():
    cfg = build_cfg(assemble("""
        jmp over
        li r1, 1          # dead
    over:
        halt
    """))
    assert cfg.successors[0] == (0x8,)
    assert 0x4 not in cfg.reachable
    assert 0x8 in cfg.reachable


def test_call_registers_return_site_and_ret_edges():
    cfg = build_cfg(assemble("""
        call fn
        halt
    fn:
        addi r1, r1, 1
        ret
    """))
    ret_block = 0x8
    assert cfg.successors[0] == (ret_block,)
    # The instruction after the call is the return site; ret points there.
    assert cfg.return_sites == {0x4}
    assert cfg.successors[ret_block] == (0x4,)
    assert ret_block in cfg.indirect_blocks


def test_indirect_jump_targets_every_label_block():
    program = assemble("""
        la r1, a
        jr r1
    a:
        halt
    b:
        halt
    """)
    cfg = build_cfg(program)
    jr_block = 0x0
    # Conservative: every block holding a label is a possible target.
    label_starts = {
        program.block_containing(pc).start_pc
        for pc in program.labels.values()
    }
    assert set(cfg.successors[jr_block]) == label_starts
    assert jr_block in cfg.indirect_blocks
    assert label_starts <= cfg.indirect_targets


def test_fall_off_end_detected():
    cfg = build_cfg(assemble("""
        li r1, 1
        addi r1, r1, 1
    """))
    assert cfg.falls_off_end == {0}


def test_mid_block_halt_stops_execution():
    # Trailing code after halt shares its block (leaders come from
    # branch structure), but control cannot pass the halt: the block
    # must have no out-edges and no fall-off-the-end report.
    cfg = build_cfg(assemble("""
        halt
        addi r1, r1, 1
    """))
    assert not cfg.falls_off_end
    assert cfg.successors[0] == ()


def test_unreachable_block_detected():
    cfg = build_cfg(assemble("""
        jmp done
    dead:
        addi r1, r1, 1
        jmp dead
    done:
        halt
    """))
    assert INSTRUCTION_BYTES in cfg.blocks
    assert INSTRUCTION_BYTES not in cfg.reachable


def test_terminator_helper():
    cfg = build_cfg(assemble("""
        li r1, 1
        beq r1, r0, done
        addi r1, r1, 1
    done:
        halt
    """))
    assert cfg.terminator(0).opcode == "beq"
