"""Unit tests for the decoupled branch-prediction unit and FTQ."""

from repro.frontend import DecoupledFrontend, FrontendConfig
from repro.isa import UopClass, assemble


def make_frontend(source, **cfg_kwargs):
    program = assemble(source)
    config = FrontendConfig(**cfg_kwargs) if cfg_kwargs else None
    return DecoupledFrontend(program, config), program


class TestBlockGeneration:
    def test_sequential_block_capped_at_32(self):
        source = "\n".join(["nop"] * 40) + "\nhalt"
        frontend, _ = make_frontend(source)
        block = frontend.tick()
        assert len(block.uops) == 32
        assert block.next_fetch_pc == 32 * 4

    def test_block_ends_at_taken_branch(self):
        frontend, program = make_frontend("nop\njmp target\nnop\ntarget: halt")
        block = frontend.tick()
        assert [u.instr.opcode for u in block.uops] == ["nop", "jmp"]
        assert block.next_fetch_pc == program.labels["target"]

    def test_not_taken_branch_does_not_end_block(self):
        # Cold conditional branches predict not-taken (BTB miss).
        frontend, _ = make_frontend("beq r1, r2, away\nnop\nhalt\naway: halt")
        block = frontend.tick()
        assert len(block.uops) == 3  # beq, nop, halt

    def test_sequence_numbers_monotonic(self):
        frontend, _ = make_frontend("nop\nnop\njmp x\nx: nop\nhalt")
        seqs = []
        for _ in range(3):
            block = frontend.tick()
            if block:
                seqs.extend(u.seq for u in block.uops)
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_halt_stalls_the_frontend(self):
        frontend, _ = make_frontend("nop\nhalt")
        frontend.tick()
        assert frontend.stalled()
        assert frontend.tick() is None

    def test_ftq_capacity_backpressure(self):
        source = "x: jmp x"
        frontend, _ = make_frontend(source, ftq_capacity=4)
        for _ in range(10):
            frontend.tick()
        assert len(frontend.ftq) == 4
        assert frontend.stall_cycles > 0

    def test_shadow_ftq_mirrors_blocks(self):
        frontend, _ = make_frontend("nop\nnop\nhalt")
        block = frontend.tick()
        assert frontend.shadow_ftq[0] is block


class TestPredictionKinds:
    def test_direct_call_and_return(self):
        source = """
            call fn
            halt
        fn: ret
        """
        frontend, program = make_frontend(source)
        b1 = frontend.tick()
        call_info = b1.uops[0].branch
        assert call_info.uop_class is UopClass.BR_CALL
        assert not call_info.can_mispredict
        b2 = frontend.tick()  # fetches at fn
        ret_info = b2.uops[0].branch
        assert ret_info.uop_class is UopClass.BR_RET
        assert ret_info.predicted_target == 4  # return address after call

    def test_indirect_without_history_predicts_fallthrough(self):
        frontend, _ = make_frontend("jr r1\nhalt")
        block = frontend.tick()
        info = block.uops[0].branch
        assert info.predicted_target == info.fallthrough

    def test_conditional_taken_needs_btb(self):
        source = """
        top: beq r0, r0, top
             halt
        """
        frontend, _ = make_frontend(source)
        block = frontend.tick()
        info = block.uops[0].branch
        # Cold BTB forces not-taken even if TAGE said taken.
        assert info.predicted_taken is False


class TestFlushRecovery:
    def test_flush_truncates_and_redirects(self):
        source = """
            beq r1, r2, away
            nop
            nop
            halt
        away:
            halt
        """
        frontend, program = make_frontend(source)
        block = frontend.tick()
        info = block.uops[0].branch
        frontend.tick()  # may produce more wrong-path blocks
        frontend.flush_at(info, True, program.labels["away"])
        assert frontend.next_pc == program.labels["away"]
        # Everything younger than the branch is gone from the FTQ.
        for queue in (frontend.ftq, frontend.shadow_ftq):
            for blk in queue:
                assert all(u.seq <= info.seq for u in blk.uops)

    def test_flush_restores_history(self):
        source = """
            beq r1, r2, away
            beq r3, r4, away
            halt
        away:
            halt
        """
        frontend, program = make_frontend(source)
        block = frontend.tick()
        first = block.uops[0].branch
        snap_at_first = first.history_snapshot
        frontend.flush_at(first, True, program.labels["away"])
        # History = snapshot + the corrected outcome applied.
        expected = frontend.history.snapshot()
        frontend.history.restore(snap_at_first)
        frontend.history.push_conditional(True)
        assert frontend.history.snapshot() == expected

    def test_flush_recovers_ras(self):
        source = """
            call fn
            halt
        fn: beq r1, r2, out
            ret
        out: ret
        """
        frontend, program = make_frontend(source)
        frontend.tick()               # call block (pushes RAS)
        depth_after_call = frontend.ras.depth
        block = frontend.tick()       # fn block with beq + ret (pops RAS)
        beq_info = block.uops[0].branch
        frontend.flush_at(beq_info, True, program.labels["out"])
        assert frontend.ras.depth == depth_after_call


class TestTraining:
    def test_btb_trained_on_taken_resolution(self):
        source = "top: beq r0, r0, top\nhalt"
        frontend, _ = make_frontend(source)
        block = frontend.tick()
        info = block.uops[0].branch
        assert frontend.btb.lookup(info.pc) is None
        frontend.train_resolved(info, True, 0)
        assert frontend.btb.lookup(info.pc) == 0

    def test_override_hook_consulted(self):
        source = "top: beq r0, r0, top\nhalt"
        frontend, _ = make_frontend(source)
        frontend.btb.install(0, 0)  # allow taken predictions
        calls = []
        frontend.direction_override = lambda pc: calls.append(pc) or True
        block = frontend.tick()
        assert calls == [0]
        assert block.uops[0].branch.override_used
        assert block.uops[0].branch.predicted_taken is True
