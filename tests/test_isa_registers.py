"""Unit tests for architectural register naming and indexing."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    REG_RA,
    REG_SP,
    REG_ZERO,
    is_fp_register,
    parse_register,
    register_name,
)


class TestParseRegister:
    def test_integer_registers(self):
        assert parse_register("r0") == 0
        assert parse_register("r31") == 31

    def test_fp_registers_are_offset(self):
        assert parse_register("f0") == NUM_INT_REGS
        assert parse_register("f15") == NUM_INT_REGS + 15

    def test_aliases(self):
        assert parse_register("zero") == REG_ZERO
        assert parse_register("ra") == REG_RA
        assert parse_register("sp") == REG_SP

    def test_case_and_whitespace_insensitive(self):
        assert parse_register(" R7 ") == 7
        assert parse_register("ZERO") == 0

    @pytest.mark.parametrize("bad", ["r32", "f16", "x1", "r-1", "", "r", "reg1"])
    def test_rejects_invalid_names(self, bad):
        with pytest.raises(ValueError):
            parse_register(bad)


class TestRegisterName:
    def test_roundtrip_all_registers(self):
        for idx in range(NUM_ARCH_REGS):
            assert parse_register(register_name(idx)) == idx

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            register_name(NUM_ARCH_REGS)
        with pytest.raises(ValueError):
            register_name(-1)


class TestFpPredicate:
    def test_boundary(self):
        assert not is_fp_register(NUM_INT_REGS - 1)
        assert is_fp_register(NUM_INT_REGS)
        assert is_fp_register(NUM_ARCH_REGS - 1)

    @given(st.integers(min_value=0, max_value=NUM_ARCH_REGS - 1))
    def test_matches_name_prefix(self, idx):
        assert is_fp_register(idx) == register_name(idx).startswith("f")


def test_register_file_sizes():
    assert NUM_ARCH_REGS == NUM_INT_REGS + NUM_FP_REGS
    assert NUM_INT_REGS == 32
    assert NUM_FP_REGS == 16
