"""Chaos harness tests: classifier units, the exactly-once worker
fault task, and the full kill-and-restart chaos campaign."""

import json
import os

import pytest

from repro.service.chaos import (
    CHAOS_ENV,
    CHAOS_KINDS,
    _assigned_kind,
    cache_probe_tokens,
    chaos_execute_spec,
    default_chaos_jobs,
    run_chaos_campaign,
    write_chaos_plan,
)
from repro.verify import classify_chaos


# ----------------------------------------------------------------------
# Classifier units (pure dicts in, verdict out)
# ----------------------------------------------------------------------
def good_evidence():
    report = json.dumps({"cells": [1]})
    return {
        "submitted": [
            {"token": "t1", "id": "j1"},
            {"token": "t1", "id": "j1"},   # deduped resubmit
            {"token": "t2", "id": "j2"},
        ],
        "job_ids": ["j1", "j2"],
        "tokens": {"j1": "t1", "j2": "t2"},
        "cache_probes": ["t2"],
        "statuses": {
            "j1": {"state": "done",
                   "cells": {"total": 2, "cached": 0, "simulated": 2}},
            "j2": {"state": "done",
                   "cells": {"total": 2, "cached": 2, "simulated": 0}},
        },
        "reports": {"j1": report, "j2": report},
        "reference": {"t1": report, "t2": report},
        "metrics": {"cache": {"hits": 2, "integrity_failures": 0}},
        "duplicate_terminals": {},
        "drain_exit_code": 0,
    }


class TestClassifier:
    def test_clean_campaign_passes(self):
        report = classify_chaos(good_evidence())
        assert report["ok"], report["violations"]
        assert all(report["checks"].values())

    def test_lost_job_detected(self):
        evidence = good_evidence()
        evidence["statuses"]["j2"]["state"] = "running"
        report = classify_chaos(evidence)
        assert not report["ok"]
        assert not report["checks"]["all_terminal"]

    def test_duplicated_token_detected(self):
        evidence = good_evidence()
        evidence["submitted"][1]["id"] = "j9"   # token t1 → two ids
        report = classify_chaos(evidence)
        assert not report["checks"]["token_dedupe"]

    def test_duplicate_terminal_detected(self):
        evidence = good_evidence()
        evidence["duplicate_terminals"] = {"j1": 1}
        report = classify_chaos(evidence)
        assert not report["checks"]["exactly_once_terminal"]

    def test_corrupted_report_detected(self):
        evidence = good_evidence()
        evidence["reports"]["j1"] = json.dumps({"cells": [999]})
        report = classify_chaos(evidence)
        assert not report["checks"]["reports_byte_identical"]

    def test_recomputed_cache_probe_detected(self):
        evidence = good_evidence()
        evidence["statuses"]["j2"]["cells"] = {
            "total": 2, "cached": 1, "simulated": 1,
        }
        report = classify_chaos(evidence)
        assert not report["checks"]["cached_cells_not_recomputed"]

    def test_unclean_drain_detected(self):
        evidence = good_evidence()
        evidence["drain_exit_code"] = -9
        report = classify_chaos(evidence)
        assert not report["checks"]["clean_drain"]


# ----------------------------------------------------------------------
# The chaos worker task
# ----------------------------------------------------------------------
class TestChaosTask:
    def test_fault_fires_exactly_once_per_cell(self, tmp_path, monkeypatch):
        chaos_dir = write_chaos_plan(
            tmp_path, seed=3, kinds=("worker_flaky",)
        )
        monkeypatch.setenv(CHAOS_ENV, str(chaos_dir))
        calls = []
        monkeypatch.setattr(
            "repro.service.chaos.execute_spec",
            lambda record: calls.append(record) or {"stats": {}},
        )
        record = {"workload": "xz", "mode": "baseline", "scale": "tiny"}
        with pytest.raises(OSError, match="chaos"):
            chaos_execute_spec(record)
        assert not calls                      # faulted before simulating
        assert chaos_execute_spec(record) == {"stats": {}}   # retry clean
        assert len(calls) == 1
        # A different cell faults independently.
        other = dict(record, mode="tea")
        with pytest.raises(OSError, match="chaos"):
            chaos_execute_spec(other)

    def test_no_plan_degrades_to_plain_execution(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        monkeypatch.setattr(
            "repro.service.chaos.execute_spec", lambda record: {"ok": 1}
        )
        assert chaos_execute_spec({"workload": "xz"}) == {"ok": 1}

    def test_kind_assignment_deterministic(self):
        plan = {"seed": 42, "kinds": list(CHAOS_KINDS)}
        kinds = {_assigned_kind(plan, f"cell-{i}") for i in range(64)}
        assert kinds == set(CHAOS_KINDS)      # all kinds reachable
        assert _assigned_kind(plan, "cell-0") == _assigned_kind(
            plan, "cell-0"
        )

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            write_chaos_plan(tmp_path, kinds=("worker_meltdown",))


class TestCacheProbes:
    def test_probe_detection(self):
        records = default_chaos_jobs(seed=0)
        assert cache_probe_tokens(records) == {"chaos-3"}

    def test_distinct_cells_are_not_probes(self):
        records = [
            {"workloads": ["xz"], "modes": ["baseline"], "token": "a"},
            {"workloads": ["xz"], "modes": ["tea"], "token": "b"},
        ]
        assert cache_probe_tokens(records) == set()


# ----------------------------------------------------------------------
# The full campaign: concurrent clients, worker faults, SIGKILL +
# restart, byte-identical reports, cache survival — the PR's
# acceptance scenario.
# ----------------------------------------------------------------------
class TestChaosCampaign:
    def test_campaign_survives_and_classifies_clean(self, tmp_path):
        logs = []
        report = run_chaos_campaign(
            tmp_path / "chaos-state",
            seed=0,
            kill_after_jobs=1,
            run_timeout=15.0,
            log=logs.append,
        )
        assert report["ok"], (report["violations"], logs)
        assert report["summary"]["compared_reports"] == 3
        assert report["summary"]["cache_probe_jobs"] == 1
        assert report["summary"]["cache_hits"] >= 2
        # The worker faults actually fired (markers are claims).
        markers = list((tmp_path / "chaos-state" / "chaos" / "markers").iterdir())
        assert markers, "no chaos fault ever fired"
