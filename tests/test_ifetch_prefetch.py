"""Tests for the next-line instruction prefetcher."""

from repro.memory import MemoryConfig, MemoryHierarchy


def make(depth=12):
    return MemoryHierarchy(MemoryConfig(ifetch_prefetch_depth=depth))


class TestPrefetchBehaviour:
    def test_next_lines_installed(self):
        h = make(depth=3)
        h.access_ifetch(0, 0)
        for line in (64, 128, 192):
            assert h.l1i.lookup(line), f"line {line} not prefetched"
        assert not h.l1i.lookup(256)

    def test_prefetch_disabled(self):
        h = make(depth=0)
        h.access_ifetch(0, 0)
        assert not h.l1i.lookup(64)

    def test_demand_merges_with_prefetch(self):
        """A demand fetch for a prefetched line must complete when the
        prefetch does — not start a new DRAM trip."""
        h = make(depth=2)
        first = h.access_ifetch(0, 0)
        second = h.access_ifetch(64, 1)
        # Line 64's prefetch was issued at cycle 0; the demand merges.
        assert second <= first + 64  # same DRAM epoch, not a fresh trip

    def test_streaming_is_pipelined(self):
        """Sequential code must stream: the Nth block's ready time
        grows far slower than N cold DRAM round-trips."""
        h = make()
        cold = h.access_ifetch(0, 0)
        last_ready = cold
        for i in range(1, 10):
            last_ready = h.access_ifetch(i * 128, last_ready)
        # 10 blocks in much less than 10 cold misses.
        assert last_ready < cold * 5

    def test_prefetch_does_not_refetch_present_lines(self):
        h = make(depth=2)
        h.l1i.fill(64)
        h.l1i.fill(128)
        before = h.dram.requests
        h.access_ifetch(0, 0)
        after = h.dram.requests
        assert after - before == 1  # only the demand line went out
