"""Tests for sampled-window scheduling, execution, and extrapolation."""

import json

import pytest

from repro.sampling.validate import validate_cell
from repro.sampling.windows import (
    place_windows,
    run_sampled,
    write_report,
)


class TestPlacement:
    def test_even_is_endpoint_inclusive(self):
        positions = place_windows(10_000, windows=5, measure=1000)
        assert positions[0] == 0
        assert positions[-1] == 9000  # last segment ends at the halt
        assert positions == sorted(set(positions))

    def test_single_window_measures_the_start(self):
        assert place_windows(10_000, windows=1, measure=1000) == [0]

    def test_short_program_collapses_windows(self):
        # measure exceeds the program, so the span degenerates and the
        # requested windows dedup down to the start.
        positions = place_windows(500, windows=4, measure=1000)
        assert len(positions) < 4
        assert positions[0] == 0

    def test_random_is_seed_deterministic(self):
        a = place_windows(1_000_000, 8, 1000, placement="random", seed=7)
        b = place_windows(1_000_000, 8, 1000, placement="random", seed=7)
        c = place_windows(1_000_000, 8, 1000, placement="random", seed=8)
        assert a == b
        assert a != c

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            place_windows(10_000, windows=0, measure=1000)
        with pytest.raises(ValueError):
            place_windows(10_000, windows=4, measure=1000,
                          placement="clustered")


class TestRunSampled:
    def test_report_shape_and_estimates(self, tmp_path):
        report = run_sampled(
            "bfs", mode="tea", scale="tiny",
            windows=3, warmup=500, measure=1000,
            workdir=tmp_path,
        )
        assert report["kind"] == "sampled"
        assert report["functional"]["total_instructions"] > 0
        assert 1 <= len(report["windows"]) <= 3
        est = report["estimates"]
        assert est["ipc"]["value"] > 0
        assert est["mpki"]["value"] > 0
        if len(report["windows"]) >= 2:
            assert est["ipc"]["ci95"] is not None
        assert est["tea_accuracy"]["value"] is not None

    def test_single_window_has_no_ci(self, tmp_path):
        report = run_sampled(
            "sssp", mode="baseline", scale="tiny",
            windows=1, warmup=500, measure=1000,
            workdir=tmp_path,
        )
        assert len(report["windows"]) == 1
        assert report["estimates"]["ipc"]["ci95"] is None

    def test_parallel_report_is_byte_identical_to_serial(self, tmp_path):
        kwargs = dict(
            mode="tea", scale="tiny",
            windows=3, warmup=500, measure=1000, seed=0,
        )
        serial = run_sampled("bfs", jobs=0,
                             workdir=tmp_path / "serial", **kwargs)
        parallel = run_sampled("bfs", jobs=2,
                               workdir=tmp_path / "parallel", **kwargs)
        a = write_report(serial, tmp_path / "serial.json")
        b = write_report(parallel, tmp_path / "parallel.json")
        assert a.read_bytes() == b.read_bytes()

    def test_window_files_are_self_contained(self, tmp_path):
        run_sampled(
            "bfs", mode="tea", scale="tiny",
            windows=2, warmup=500, measure=1000,
            workdir=tmp_path,
        )
        files = sorted(tmp_path.glob("window-*.json"))
        assert files
        window = json.loads(files[0].read_text())
        assert window["schema"] == 1
        assert window["measure"] == 1000
        assert window["checkpoint"]["workload"] == "bfs"


class TestValidation:
    def test_pinned_cell_is_inside_tolerance(self):
        """The acceptance gate, on one cell: sampled tracks full."""
        row = validate_cell("bfs", "tea", scale="tiny")
        assert row["full"]["instructions"] > 0
        assert row["ipc_ok"], row
        assert row["mpki_ok"], row
        assert row["sampled"]["ipc_ci95"] is not None
