"""Unit tests for the reference interpreter (the golden model)."""

import pytest

from repro.isa import (
    InterpreterError,
    InterpreterTimeout,
    assemble,
    run_program,
)
from repro.memory import MemoryImage


class TestStraightLine:
    def test_arithmetic(self):
        result = run_program(assemble("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt"))
        assert result.registers[3] == 42
        assert result.halted

    def test_zero_register_is_immutable(self):
        result = run_program(assemble("li r0, 99\nadd r1, r0, r0\nhalt"))
        assert result.registers[0] == 0
        assert result.registers[1] == 0


class TestControlFlow:
    def test_counted_loop(self):
        src = """
            li r1, 0
            li r2, 10
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        result = run_program(assemble(src))
        assert result.registers[1] == 10

    def test_call_ret(self):
        src = """
            li sp, 1024
            li r1, 5
            call double
            halt
        double:
            add r1, r1, r1
            ret
        """
        result = run_program(assemble(src))
        assert result.registers[1] == 10

    def test_indirect_jump(self):
        src = """
            la r1, there
            jr r1
            li r2, 111
        there:
            li r2, 222
            halt
        """
        result = run_program(assemble(src))
        assert result.registers[2] == 222

    def test_trace_collects_branch_outcomes(self):
        src = """
            li r1, 0
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        mem = MemoryImage()
        result = run_program(assemble(src), mem, collect_trace=True)
        # r2 = 0, so the branch executes exactly once, not taken.
        assert result.trace == [(4 + 4, False)]


class TestMemory:
    def test_load_store_roundtrip(self):
        src = """
            li r1, 4096
            li r2, 77
            st r2, 0(r1)
            ld r3, 0(r1)
            halt
        """
        result = run_program(assemble(src))
        assert result.registers[3] == 77
        assert result.memory.load(4096) == 77

    def test_preloaded_memory(self):
        mem = MemoryImage({4096: 5, 4104: 6})
        src = "li r1, 4096\nld r2, 0(r1)\nld r3, 8(r1)\nadd r4, r2, r3\nhalt"
        result = run_program(assemble(src), mem)
        assert result.registers[4] == 11


class TestFailureModes:
    def test_runaway_raises(self):
        with pytest.raises(InterpreterError, match="did not halt"):
            run_program(assemble("x: jmp x"), max_steps=100)

    def test_runaway_raises_typed_timeout(self):
        with pytest.raises(InterpreterTimeout) as excinfo:
            run_program(assemble("x: jmp x"), max_steps=100)
        assert excinfo.value.steps == 100
        assert excinfo.value.pc == 0  # the one-instruction self-loop

    def test_timeout_is_an_interpreter_error(self):
        # Existing catch-all handlers keep working.
        assert issubclass(InterpreterTimeout, InterpreterError)

    def test_timeout_carries_looping_pc(self):
        # Budget runs out inside the loop, not on the prologue.
        with pytest.raises(InterpreterTimeout) as excinfo:
            run_program(
                assemble("li r1, 0\nspin: addi r1, r1, 1\njmp spin\nhalt"),
                max_steps=101,
            )
        assert excinfo.value.pc in (4, 8)  # spin body or backedge

    def test_falling_off_image_raises(self):
        with pytest.raises(InterpreterError, match="left the image"):
            run_program(assemble("nop\nnop"))  # no halt
