"""Contract tests for the harness runner's failure modes and the
ablation config factory."""

import pytest

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.harness import run_workload
from repro.tea import TeaConfig, tea_ablation
from repro.workloads import build
from repro.workloads.base import Arena


class TestValidationEnforcement:
    def test_failing_validator_raises(self):
        """A simulator that computes wrong answers must never silently
        produce performance numbers (runner contract)."""

        def populate(arena: Arena) -> dict:
            return {}

        workload = build(
            "lying",
            "li r1, 42\nhalt",
            populate,
            "simple",
            validate=lambda pipeline: False,
        )
        with pytest.raises(RuntimeError, match="validation FAILED"):
            run_workload(workload, "baseline")

    def test_passing_validator_recorded(self):
        def populate(arena: Arena) -> dict:
            return {}

        workload = build(
            "honest",
            "li r1, 42\nhalt",
            populate,
            "simple",
            validate=lambda pipeline: pipeline.architectural_register(1) == 42,
        )
        result = run_workload(workload, "baseline")
        assert result.validated

    def test_non_halting_workload_reports(self):
        def populate(arena: Arena) -> dict:
            return {}

        workload = build("spinner", "x: jmp x", populate, "simple")
        result = run_workload(workload, "baseline", max_cycles=2_000)
        assert not result.halted


class TestAblationFactory:
    def test_known_names(self):
        assert tea_ablation("tea") == TeaConfig()
        assert tea_ablation("only_loops").only_loops
        assert not tea_ablation("no_masks").use_masks
        assert not tea_ablation("no_mem").trace_memory
        bare = tea_ablation("no_features")
        assert bare.only_loops and not bare.use_masks and not bare.trace_memory

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown ablation"):
            tea_ablation("extra_crispy")

    def test_configs_are_frozen(self):
        with pytest.raises(Exception):
            tea_ablation("tea").rs_entries = 5


class TestConfigIndependence:
    def test_two_pipelines_do_not_share_state(self):
        """Predictors, caches, and stats must be per-instance."""
        program = assemble(
            """
            li r1, 0
            li r2, 50
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
            """
        )
        a = Pipeline(program, MemoryImage(), SimConfig())
        a.run()
        b = Pipeline(program, MemoryImage(), SimConfig())
        assert b.stats.retired_instructions == 0
        assert b.frontend.cond.tage.predictions == 0
        b.run()
        assert a.stats.cycles == b.stats.cycles  # determinism too
