"""Unit + integration tests for the Branch Runahead baseline."""

import random

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.isa import Instruction
from repro.runahead import (
    ChainCaptureBuffer,
    DependenceChainTable,
    RunaheadConfig,
)
from repro.runahead.engine import loop_carried_interval

from tests.conftest import h2p_loop_workload


def _instr(opcode, dst=None, srcs=(), imm=None, pc=0, target=None):
    return Instruction(opcode=opcode, dst=dst, srcs=srcs, imm=imm, pc=pc, target=target)


class TestChainCapture:
    def _loop_records(self, iterations=3):
        """Simulated retire stream of a simple induction loop:
        addi r2,r2,1 ; shli r5,r2,3 ; ld r6 ; blt r6,r0 (H2P)."""
        records = []
        for _ in range(iterations):
            records.append((_instr("addi", dst=2, srcs=(2,), imm=1, pc=0x00), None))
            records.append((_instr("shli", dst=5, srcs=(2,), imm=3, pc=0x04), None))
            records.append((_instr("ld", dst=6, srcs=(5,), imm=0, pc=0x08), 4096))
            records.append((_instr("blt", srcs=(6, 0), pc=0x0C, target=0x0), None))
        return records

    def test_capture_between_consecutive_instances(self):
        buf = ChainCaptureBuffer()
        for instr, addr in self._loop_records():
            buf.record(instr, addr)
        chain = buf.capture_chain(0x0C)
        assert chain is not None
        assert [i.pc for i in chain] == [0x00, 0x04, 0x08, 0x0C]

    def test_no_previous_instance_returns_none(self):
        buf = ChainCaptureBuffer()
        for instr, addr in self._loop_records(iterations=1):
            buf.record(instr, addr)
        assert buf.capture_chain(0x0C) is None

    def test_unrelated_instructions_excluded(self):
        buf = ChainCaptureBuffer()
        records = self._loop_records(2)
        # Inject an unrelated instruction between the instances.
        records.insert(5, (_instr("add", dst=9, srcs=(9, 9), pc=0x20), None))
        for instr, addr in records:
            buf.record(instr, addr)
        chain = buf.capture_chain(0x0C)
        assert 0x20 not in [i.pc for i in chain]


class TestChainTable:
    def _chain(self, pcs):
        return tuple(_instr("addi", dst=2, srcs=(2,), imm=1, pc=pc) for pc in pcs)

    def test_stable_captures_enable(self):
        table = DependenceChainTable(RunaheadConfig(stable_threshold=2))
        for _ in range(2):
            table.observe_capture(0x40, self._chain([0, 4]))
        assert table.is_enabled(0x40)

    def test_alternating_signatures_never_enable(self):
        """The complex-control-flow gate (paper Fig. 8)."""
        table = DependenceChainTable(RunaheadConfig(stable_threshold=2))
        for i in range(20):
            sig = [0, 4] if i % 2 == 0 else [8, 12]
            table.observe_capture(0x40, self._chain(sig))
        assert not table.is_enabled(0x40)

    def test_minority_path_does_not_destroy_majority(self):
        table = DependenceChainTable(RunaheadConfig(stable_threshold=2))
        for i in range(20):
            sig = [0, 4] if i % 5 else [8, 12]  # 80/20 mix
            table.observe_capture(0x40, self._chain(sig))
        assert table.is_enabled(0x40)
        entry = table.get(0x40)
        assert [i.pc for i in entry.chain] == [0, 4]

    def test_accuracy_strikes_disable(self):
        config = RunaheadConfig(accuracy_window=4, max_accuracy_strikes=2)
        table = DependenceChainTable(config)
        for _ in range(3):
            table.observe_capture(0x40, self._chain([0, 4]))
        entry = table.get(0x40)
        for _ in range(8):
            entry.record_override(False, config)
        assert entry.disabled
        assert not table.is_enabled(0x40)

    def test_head_divergence_disables(self):
        config = RunaheadConfig(accuracy_window=4, max_accuracy_strikes=2)
        table = DependenceChainTable(config)
        entry = table.observe_capture(0x40, self._chain([0, 4]))
        for _ in range(8):
            entry.record_head_check(False, config)
        assert entry.disabled


class TestLoopCarriedInterval:
    def test_induction_only_is_one_cycle(self):
        chain = (
            _instr("addi", dst=2, srcs=(2,), imm=1, pc=0),
            _instr("shli", dst=5, srcs=(2,), imm=3, pc=4),
            _instr("ld", dst=6, srcs=(5,), imm=0, pc=8),
            _instr("blt", srcs=(6, 0), pc=12, target=0),
        )
        assert loop_carried_interval(chain) == 1

    def test_pointer_chase_includes_load_latency(self):
        chain = (
            _instr("ld", dst=2, srcs=(2,), imm=0, pc=0),   # p = *p
            _instr("blt", srcs=(2, 0), pc=4, target=0),
        )
        assert loop_carried_interval(chain) >= 4

    def test_no_loop_carried_regs(self):
        chain = (_instr("blt", srcs=(6, 0), pc=4, target=0),)
        assert loop_carried_interval(chain) == 1


class TestIntegration:
    def test_runahead_improves_h2p_loop(self):
        source, mem, expected = h2p_loop_workload(n=2500, seed=21)
        base = Pipeline(assemble(source), MemoryImage(mem.snapshot()), SimConfig())
        base_stats = base.run(max_cycles=3_000_000)
        ra = Pipeline(
            assemble(source), MemoryImage(mem.snapshot()),
            SimConfig(runahead=RunaheadConfig()),
        )
        ra_stats = ra.run(max_cycles=3_000_000)
        assert ra.halted and base.halted
        assert ra.architectural_register(1) == expected
        # The H2P loop is BR's best case: big MPKI reduction.
        assert ra_stats.mpki < base_stats.mpki * 0.5
        assert ra_stats.ipc > base_stats.ipc * 1.3
        assert ra_stats.runahead_overrides > 0

    def test_architectural_state_never_corrupted(self):
        """Overrides only steer speculation; results must be exact."""
        rng = random.Random(17)
        n = 800
        values = [rng.randint(-5, 5) for _ in range(n)]
        mem = MemoryImage()
        mem.write_array(4096, values)
        source = f"""
            li r1, 0
            li r2, 0
            li r3, {n}
            li r4, 4096
        loop:
            shli r5, r2, 3
            add r5, r5, r4
            ld r6, 0(r5)
            ble r6, r0, skip
            add r1, r1, r6
        skip:
            addi r2, r2, 1
            blt r2, r3, loop
            halt
        """
        pipeline = Pipeline(assemble(source), mem, SimConfig(runahead=RunaheadConfig()))
        pipeline.run(max_cycles=3_000_000)
        assert pipeline.halted
        assert pipeline.architectural_register(1) == sum(v for v in values if v > 0)
