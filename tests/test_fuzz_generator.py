"""The seeded program generator: determinism, lint gate, knob contract."""

import pytest

from repro.fuzz import GeneratorProfile, generate_program
from repro.isa import run_program
from repro.isa.data_directives import assemble_unit

# Small enough to keep the whole module fast; still exercises nesting,
# data-dependent branches, chases, calls, and indirect dispatch.
FAST = GeneratorProfile(
    loops=1, loop_depth=2, body_ops=3, pointer_chase=2, call_depth=1,
    indirect_fanout=2, array_len=16,
)

SEEDS = range(8)


class TestDeterminism:
    def test_same_seed_same_source(self):
        a = generate_program(7, FAST)
        b = generate_program(7, FAST)
        assert a.source == b.source
        assert a.attempt == b.attempt

    def test_different_seeds_differ(self):
        sources = {generate_program(s, FAST).source for s in SEEDS}
        assert len(sources) > 1

    def test_profile_changes_output(self):
        fat = GeneratorProfile(
            loops=2, loop_depth=2, body_ops=6, pointer_chase=2,
            call_depth=1, indirect_fanout=2, array_len=16,
        )
        assert generate_program(3, FAST).source != generate_program(3, fat).source


class TestLintGate:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_programs_are_lint_clean(self, seed):
        generated = generate_program(seed, FAST)
        assert generated.lint.clean  # no errors AND no warnings

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_programs_halt_in_interpreter(self, seed):
        generated = generate_program(seed, FAST)
        unit = assemble_unit(generated.source)
        result = run_program(unit.program, unit.memory, max_steps=200_000)
        assert result.halted

    def test_source_reassembles_identically(self):
        generated = generate_program(5, FAST)
        unit = assemble_unit(generated.source)
        assert len(unit.program) == generated.num_instructions


class TestProfile:
    def test_record_round_trip(self):
        assert GeneratorProfile.from_record(FAST.as_record()) == FAST

    @pytest.mark.parametrize(
        "bad",
        [
            dict(loops=0),
            dict(loop_depth=5),
            dict(trip_min=4, trip_max=2),
            dict(branch_frac=1.5),
            dict(array_len=2),
            dict(max_attempts=0),
        ],
    )
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            GeneratorProfile(**bad)

    def test_knobs_shape_the_program(self):
        no_calls = GeneratorProfile(
            loops=1, loop_depth=1, body_ops=2, pointer_chase=0,
            call_depth=0, indirect_fanout=0, branch_frac=0.0, fp_frac=0.0,
        )
        source = generate_program(0, no_calls).source
        assert "call" not in source
        assert "jr " not in source
        with_calls = GeneratorProfile(
            loops=1, loop_depth=1, body_ops=4, pointer_chase=0,
            call_depth=2, indirect_fanout=4, branch_frac=0.0, fp_frac=0.0,
        )
        sources = [generate_program(s, with_calls).source for s in range(6)]
        # The dispatch loop is unconditional with indirect_fanout > 0;
        # call sites are drawn from the body-op menu, so scan a few seeds.
        assert all("jr " in source for source in sources)
        assert any("call fn_0" in source for source in sources)
