"""Unit tests for workload-construction internals: the arena allocator,
symbol substitution, jump-table patching, and reference algorithms."""

from repro import MemoryImage
from repro.isa import UopClass
from repro.workloads import Arena, build, make_workload
from repro.workloads.gap import _bfs_reference, _cc_reference, _sssp_reference
from repro.workloads.data import uniform_graph


class TestArena:
    def test_alloc_returns_line_padded_bases(self):
        mem = MemoryImage()
        arena = Arena(mem, base=0x1000)
        a = arena.alloc([1, 2, 3])
        b = arena.alloc([4])
        assert a == 0x1000
        assert b % 64 == 0
        assert b >= a + 3 * 8
        assert mem.read_array(a, 3) == [1, 2, 3]

    def test_reserve_zeroes(self):
        mem = MemoryImage()
        arena = Arena(mem)
        base = arena.reserve(4)
        assert mem.read_array(base, 4) == [0, 0, 0, 0]

    def test_arrays_never_overlap(self):
        mem = MemoryImage()
        arena = Arena(mem)
        bases = [arena.alloc(list(range(n))) for n in (1, 17, 3, 64)]
        spans = sorted((b, b + 8 * n) for b, n in zip(bases, (1, 17, 3, 64)))
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0


class TestBuild:
    def test_symbol_substitution(self):
        def populate(arena):
            return {"base": arena.alloc([7]), "count": 5}

        workload = build(
            "sub", "li r1, {base}\nli r2, {count}\nhalt", populate, "simple"
        )
        assert workload.program.instructions[1].imm == 5
        base = workload.program.instructions[0].imm
        assert workload.memory.load(base) == 7


class TestJumpTablePatching:
    def test_gcc_table_points_at_handlers(self):
        workload = make_workload("gcc", "tiny")
        labels = workload.program.labels
        # The dispatch table in memory must hold the handler PCs.
        table_base = None
        for instr in workload.program.instructions:
            if instr.opcode == "li" and instr.imm is not None:
                values = workload.memory.read_array(instr.imm, 8)
                if values == [labels[f"h{k}"] for k in range(8)]:
                    table_base = instr.imm
                    break
        assert table_base is not None, "patched jump table not found"

    def test_perlbench_table_points_at_handlers(self):
        workload = make_workload("perlbench", "tiny")
        labels = workload.program.labels
        expected = [
            labels["op_push"], labels["op_add"], labels["op_hash"],
            labels["op_cmp"], labels["op_xor"], labels["op_store"],
        ]
        found = False
        for instr in workload.program.instructions:
            if instr.opcode == "li" and instr.imm is not None:
                if workload.memory.read_array(instr.imm, 6) == expected:
                    found = True
                    break
        assert found

    def test_indirect_dispatch_present(self):
        for name in ("gcc", "perlbench"):
            workload = make_workload(name, "tiny")
            classes = {i.uop_class for i in workload.program.instructions}
            assert UopClass.BR_IND in classes, f"{name} lost its dispatch"


class TestReferenceAlgorithms:
    def test_bfs_reference_visits_reachable_set(self):
        graph = uniform_graph(40, 4, seed=5)
        parent = _bfs_reference(graph, 0)
        assert parent[0] == 0
        # Every visited node's parent must also be visited.
        for node, p in enumerate(parent):
            if p >= 0 and node != 0:
                assert parent[p] >= 0
                assert node in graph.out_neighbors(p)

    def test_cc_reference_is_fixed_point_bounded(self):
        graph = uniform_graph(30, 4, seed=6)
        labels = _cc_reference(graph, max_iters=50)
        # At convergence, no edge can lower a label further.
        for u in range(30):
            for v in graph.out_neighbors(u):
                assert labels[u] <= labels[v]

    def test_sssp_reference_respects_triangle_inequality(self):
        graph = uniform_graph(30, 4, seed=7)
        dist = _sssp_reference(graph, 0, rounds=30)
        for u in range(30):
            if dist[u] >= 1 << 40:
                continue
            for v, w in zip(graph.out_neighbors(u), graph.out_weights(u)):
                assert dist[v] <= dist[u] + w
