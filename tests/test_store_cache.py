"""Unit tests for the TEA store data cache (paper §IV-E)."""

from repro.tea import TeaConfig, TeaStoreCache


class TestBasic:
    def test_store_then_load(self):
        cache = TeaStoreCache()
        cache.store(4096, 42)
        assert cache.load(4096) == 42
        assert cache.load_hits == 1

    def test_load_miss_returns_none(self):
        cache = TeaStoreCache()
        assert cache.load(4096) is None

    def test_word_granularity_within_half_line(self):
        cache = TeaStoreCache()
        cache.store(4096, 1)
        cache.store(4104, 2)   # same 32B half-line, different word
        assert cache.load(4096) == 1
        assert cache.load(4104) == 2
        assert cache.load(4112) is None

    def test_overwrite_same_word(self):
        cache = TeaStoreCache()
        cache.store(4096, 1)
        cache.store(4096, 2)
        assert cache.load(4096) == 2


class TestCapacity:
    def test_sixteen_half_lines_fifo(self):
        cache = TeaStoreCache(TeaConfig(store_cache_halflines=2))
        cache.store(0, 10)     # half-line 0
        cache.store(32, 20)    # half-line 1
        cache.store(64, 30)    # evicts half-line 0
        assert cache.load(0) is None
        assert cache.load(32) == 20
        assert cache.load(64) == 30
        assert cache.evictions == 1

    def test_clear(self):
        cache = TeaStoreCache()
        cache.store(0, 1)
        cache.clear()
        assert cache.load(0) is None
        assert len(cache) == 0
