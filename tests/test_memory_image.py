"""Unit + property tests for the functional memory image."""

from hypothesis import given, strategies as st

from repro.memory import WORD_BYTES, MemoryImage, align_word


class TestAlignment:
    def test_align_word(self):
        assert align_word(0) == 0
        assert align_word(7) == 0
        assert align_word(8) == 8
        assert align_word(4097) == 4096

    def test_unaligned_access_hits_containing_word(self):
        mem = MemoryImage()
        mem.store(4096, 42)
        assert mem.load(4099) == 42
        mem.store(4103, 43)  # same word
        assert mem.load(4096) == 43


class TestBasicOps:
    def test_unwritten_reads_zero(self):
        assert MemoryImage().load(123456) == 0

    def test_store_load_roundtrip(self):
        mem = MemoryImage()
        mem.store(64, -17)
        assert mem.load(64) == -17

    def test_float_values(self):
        mem = MemoryImage()
        mem.store(8, 2.5)
        assert mem.load(8) == 2.5

    def test_initial_contents(self):
        mem = MemoryImage({0: 1, 8: 2})
        assert mem.load(0) == 1
        assert mem.load(8) == 2
        assert len(mem) == 2


class TestArrays:
    def test_write_array_returns_next_address(self):
        mem = MemoryImage()
        end = mem.write_array(100, [1, 2, 3])  # aligns 100 -> 96
        assert end == 96 + 3 * WORD_BYTES
        assert mem.read_array(96, 3) == [1, 2, 3]

    def test_read_array_fills_zeros(self):
        mem = MemoryImage()
        mem.store(0, 5)
        assert mem.read_array(0, 3) == [5, 0, 0]

    @given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=50))
    def test_array_roundtrip(self, values):
        mem = MemoryImage()
        mem.write_array(4096, values)
        assert mem.read_array(4096, len(values)) == values


class TestSnapshot:
    def test_snapshot_is_independent_copy(self):
        mem = MemoryImage()
        mem.store(0, 1)
        snap = mem.snapshot()
        mem.store(0, 2)
        assert snap[0] == 1

    def test_snapshot_rebuilds_identical_image(self):
        mem = MemoryImage()
        mem.write_array(0, [1, 2, 3])
        clone = MemoryImage(mem.snapshot())
        assert clone.read_array(0, 3) == [1, 2, 3]
