"""Tests for .data/.text sections and external assembler symbols."""

import pytest

from repro import Pipeline, SimConfig, assemble
from repro.isa import AssemblerError, assemble_unit, run_program


class TestDataLayout:
    def test_words_and_labels(self):
        unit = assemble_unit(
            """
            .data
            a: .word 10, 20
            b: .word -5
            .text
                li r1, a
                li r2, b
                halt
            """
        )
        a = unit.symbols["a"]
        b = unit.symbols["b"]
        assert unit.memory.read_array(a, 2) == [10, 20]
        assert unit.memory.load(b) == -5
        assert b == a + 16

    def test_space_zeroes(self):
        unit = assemble_unit(".data\nbuf: .space 4\n.text\nhalt")
        assert unit.memory.read_array(unit.symbols["buf"], 4) == [0, 0, 0, 0]

    def test_align_to_cache_line(self):
        unit = assemble_unit(
            ".data\na: .word 1\n.align\nb: .word 2\n.text\nhalt"
        )
        assert unit.symbols["b"] % 64 == 0

    def test_float_values(self):
        unit = assemble_unit(".data\nf: .word 2.5\n.text\nhalt")
        assert unit.memory.load(unit.symbols["f"]) == 2.5

    def test_symbols_usable_as_immediates(self):
        unit = assemble_unit(
            """
            .data
            arr: .word 7, 8, 9
            .text
                li r1, arr
                ld r2, 8(r1)
                halt
            """
        )
        result = run_program(unit.program, unit.memory)
        assert result.registers[2] == 8

    def test_full_pipeline_run(self):
        unit = assemble_unit(
            """
            .data
            data: .word 5, -3, 8, -1, 2
            out:  .word 0
            .text
                li r1, data
                li r2, 0
                li r3, 5
                li r5, 0
            top:
                shli r4, r2, 3
                add r4, r4, r1
                ld r6, 0(r4)
                blt r6, r0, skip
                add r5, r5, r6
            skip:
                addi r2, r2, 1
                blt r2, r3, top
                li r7, out
                st r5, 0(r7)
                halt
            """
        )
        pipeline = Pipeline(unit.program, unit.memory, SimConfig())
        pipeline.run(max_cycles=100_000)
        assert pipeline.halted
        assert pipeline.memory.load(unit.symbols["out"]) == 15


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            ".data\nx: .word\n.text\nhalt",          # no values
            ".data\nx: .space 0\n.text\nhalt",       # non-positive
            ".data\nx: .blob 3\n.text\nhalt",        # unknown directive
            ".data\nx: .word 1\nx: .word 2\n.text\nhalt",  # duplicate
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(AssemblerError):
            assemble_unit(bad)

    def test_code_label_shadows_data_symbol(self):
        unit = assemble_unit(
            """
            .data
            spot: .word 42
            .text
            spot: nop
                la r1, spot
                halt
            """
        )
        # `la` resolves to the *code* label.
        assert unit.program.instructions[1].imm == unit.program.labels["spot"]


class TestExternalSymbols:
    def test_assemble_accepts_symbols(self):
        program = assemble("li r1, magic\nhalt", symbols={"magic": 1234})
        assert program.instructions[0].imm == 1234

    def test_pure_text_source_unchanged(self):
        unit = assemble_unit("li r1, 7\nhalt")
        assert len(unit.memory) == 0
        assert unit.program.instructions[0].imm == 7
