"""Unit + property tests for speculative history and folded registers."""

from hypothesis import given, settings, strategies as st

from repro.frontend import HistoryState, fold_history

import pytest


class TestBasicHistory:
    def test_push_conditional_shifts(self):
        h = HistoryState()
        h.push_conditional(True)
        h.push_conditional(False)
        h.push_conditional(True)
        assert h.ghr & 0b111 == 0b101

    def test_push_target_updates_path_and_ghr(self):
        h = HistoryState()
        h.push_target(0x104, 0x200)
        assert h.ghr & 1 == 1
        assert h.path != 0

    def test_snapshot_restore_roundtrip(self):
        h = HistoryState()
        h.register_fold(8, 4)
        for bit in (1, 0, 1, 1, 0):
            h.push_conditional(bool(bit))
        snap = h.snapshot()
        h.push_conditional(True)
        h.push_target(4, 8)
        h.restore(snap)
        assert h.snapshot() == snap


class TestFoldedRegisters:
    def test_register_after_push_rejected(self):
        h = HistoryState()
        h.push_conditional(True)
        with pytest.raises(ValueError):
            h.register_fold(8, 4)

    def test_bad_spec_rejected(self):
        h = HistoryState()
        with pytest.raises(ValueError):
            h.register_fold(0, 4)
        with pytest.raises(ValueError):
            h.register_fold(8, 0)

    def test_fold_width_bound(self):
        h = HistoryState()
        idx = h.register_fold(12, 5)
        for _ in range(100):
            h.push_conditional(True)
            assert 0 <= h.fold(idx) < (1 << 5)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_fold_is_pure_function_of_history_window(self, bits):
        """Two histories that agree on the last L bits agree on the fold."""
        length, width = 8, 3
        a = HistoryState()
        ia = a.register_fold(length, width)
        b = HistoryState()
        ib = b.register_fold(length, width)
        # b sees a different prefix first, then the same last `length` bits.
        for bit in (True, False, True, True, False, False, True, False):
            b.push_conditional(bit)
        window = bits[-length:]
        prefix = bits[:-length]
        for bit in prefix:
            a.push_conditional(bit)
        for bit in window:
            a.push_conditional(bit)
            b.push_conditional(bit)
        if len(bits) >= length:
            assert a.fold(ia) == b.fold(ib)

    @given(st.lists(st.booleans(), max_size=100), st.lists(st.booleans(), max_size=20))
    @settings(max_examples=60)
    def test_restore_then_replay_is_deterministic(self, prefix, suffix):
        h = HistoryState()
        idx = h.register_fold(16, 6)
        for bit in prefix:
            h.push_conditional(bit)
        snap = h.snapshot()
        for bit in suffix:
            h.push_conditional(bit)
        after_first = (h.ghr, h.fold(idx))
        h.restore(snap)
        for bit in suffix:
            h.push_conditional(bit)
        assert (h.ghr, h.fold(idx)) == after_first


class TestFoldHistoryFunction:
    def test_zero_cases(self):
        assert fold_history(0b1010, 0, 4) == 0
        assert fold_history(0, 16, 4) == 0

    def test_short_history_identity(self):
        assert fold_history(0b101, 3, 4) == 0b101

    def test_chunked_xor(self):
        # 8 bits folded to 4: low nibble XOR high nibble.
        assert fold_history(0xA5, 8, 4) == 0xA ^ 0x5

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_result_in_range(self, history, length, width):
        assert 0 <= fold_history(history, length, width) < (1 << width)
