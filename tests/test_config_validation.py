"""Tests for eager config validation, the forward-progress watchdog,
and typed functional-validation failures."""

import pytest

from repro import ConfigError, Pipeline, SimulationError
from repro.core import CoreConfig, SimConfig
from repro.harness import ValidationError, run_workload
from repro.harness.runner import _first_divergence
from repro.isa import assemble
from repro.memory import MemoryImage
from repro.tea import TeaConfig
from repro.workloads.base import Workload


class TestCoreConfigValidation:
    def test_zero_rob_rejected(self):
        with pytest.raises(ConfigError, match="rob_entries must be >= 1"):
            CoreConfig(rob_entries=0)

    def test_negative_width_rejected(self):
        with pytest.raises(ConfigError, match="fetch_width must be >= 1"):
            CoreConfig(fetch_width=-4)

    def test_prf_needs_zero_preg_plus_one(self):
        with pytest.raises(ConfigError, match="physical_registers"):
            CoreConfig(physical_registers=1)
        # A tiny-but-legal PRF must still construct (the structural
        # stall tests run with 12 pregs).
        CoreConfig(physical_registers=12)

    def test_zero_ports_allowed(self):
        # Livelock configs (no ALU ports) are legal: the watchdog, not
        # the validator, is the guard for schedulability.
        CoreConfig(alu_ports=0)
        with pytest.raises(ConfigError, match="alu_ports must be >= 0"):
            CoreConfig(alu_ports=-1)

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_entries=0)


class TestSimConfigValidation:
    def test_core_type_checked(self):
        with pytest.raises(ConfigError, match="must be a CoreConfig"):
            SimConfig(core={"rob_entries": 512})

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigError, match="warmup_instructions"):
            SimConfig(warmup_instructions=-1)

    def test_max_cycles_bounds(self):
        with pytest.raises(ConfigError, match="max_cycles must be None or >= 1"):
            SimConfig(max_cycles=0)
        SimConfig(max_cycles=None)
        SimConfig(max_cycles=1)

    def test_watchdog_must_be_positive(self):
        with pytest.raises(ConfigError, match="watchdog_cycles must be >= 1"):
            SimConfig(watchdog_cycles=0)


class TestTeaConfigValidation:
    def test_zero_h2p_entries_rejected(self):
        with pytest.raises(ConfigError, match="h2p_entries must be >= 1"):
            TeaConfig(h2p_entries=0)

    def test_ways_cannot_exceed_entries(self):
        with pytest.raises(ConfigError, match="h2p_ways"):
            TeaConfig(h2p_entries=4, h2p_ways=8)

    def test_threshold_below_counter_max(self):
        with pytest.raises(ConfigError, match="h2p_threshold"):
            TeaConfig(h2p_threshold=16, h2p_counter_max=16)

    def test_tiny_test_configs_still_valid(self):
        # The failure-injection tests build deliberately tiny TEA
        # structures; eager validation must not reject them.
        TeaConfig(h2p_entries=2, h2p_ways=1, block_cache_entries=2,
                  fill_buffer_size=2)


class TestForwardProgressWatchdog:
    def _livelocked_pipeline(self, watchdog_cycles=300):
        # No ALU ports: the first ALU uop can never issue, so the ROB
        # head wedges forever — exactly the livelock the watchdog exists
        # to catch.
        config = SimConfig(
            core=CoreConfig(alu_ports=0), watchdog_cycles=watchdog_cycles
        )
        return Pipeline(assemble("li r1, 1\nhalt"), MemoryImage(), config)

    def test_watchdog_trips_on_livelock(self):
        with pytest.raises(SimulationError, match="no retirement for"):
            self._livelocked_pipeline().run()

    def test_watchdog_diagnostics_dump(self):
        try:
            self._livelocked_pipeline().run()
        except SimulationError as exc:
            diag = exc.diagnostics
        assert diag is not None
        assert diag["cycle"] == 301
        assert diag["last_retire_cycle"] == 0
        assert diag["rob_depth"] >= 1
        head = diag["rob_head"]
        assert head["seq"] == 0
        assert head["opcode"] == "li"
        assert head["state"] == "RENAMED"
        assert diag["scheduler_main_rs"] == 1
        assert "ftq_depth" in diag
        assert "free_pregs" in diag
        # JSON-safe: the dump must journal cleanly.
        import json

        json.dumps(diag)

    def test_watchdog_threshold_honored(self):
        with pytest.raises(SimulationError) as info:
            self._livelocked_pipeline(watchdog_cycles=50).run()
        assert info.value.diagnostics["cycle"] == 51

    def test_healthy_run_never_trips(self):
        result = run_workload("xz", "baseline", "tiny")
        assert result.halted and result.validated

    def test_tea_diagnostics_present(self):
        config = SimConfig(
            core=CoreConfig(alu_ports=0),
            tea=TeaConfig(),
            watchdog_cycles=50,
        )
        pipeline = Pipeline(assemble("li r1, 1\nhalt"), MemoryImage(), config)
        with pytest.raises(SimulationError) as info:
            pipeline.run()
        assert "tea" in info.value.diagnostics


class TestValidationError:
    def _lying_workload(self):
        program = assemble("li r1, 5\nhalt")
        return Workload(
            name="liar",
            program=program,
            memory=MemoryImage(),
            category="SIMPLE",
            validate=lambda pipeline: False,
        )

    def test_typed_error_with_context(self):
        workload = self._lying_workload()
        with pytest.raises(ValidationError) as info:
            run_workload(workload, "baseline")
        err = info.value
        assert err.workload == "liar"
        assert err.mode == "baseline"
        # Pipeline state actually matches the golden model here, so no
        # divergence is reported — the validator's verdict still stands.
        assert err.divergence is None
        assert "validation FAILED" in str(err)
        assert isinstance(err, RuntimeError)  # legacy catch sites keep working

    def test_first_divergence_reports_register(self):
        workload = self._lying_workload()
        pipeline = Pipeline(
            workload.program, workload.fresh_memory(), SimConfig()
        )
        pipeline.run()
        pipeline.committed_regs[1] ^= 0xFF
        divergence = _first_divergence(workload, pipeline)
        assert divergence == {
            "kind": "register",
            "index": 1,
            "expected": 5,
            "got": 5 ^ 0xFF,
        }

    def test_divergence_message_names_register(self):
        err = ValidationError(
            "liar", "tea",
            {"kind": "register", "index": 3, "expected": 7, "got": 9},
        )
        assert "first divergence at r3: expected 7, got 9" in str(err)

    def test_divergence_message_names_memory_word(self):
        err = ValidationError(
            "liar", "tea",
            {"kind": "memory", "index": 0x40, "expected": 1, "got": 0},
        )
        assert "mem[0x40]" in str(err)
