"""Integration tests: the OoO pipeline commits architectural state
identical to the sequential reference interpreter."""

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.isa import run_program


def run_both(source, mem_init=None):
    """Run pipeline + interpreter on the same program; return both."""
    program = assemble(source)
    pipe_mem = MemoryImage(mem_init or {})
    ref_mem = MemoryImage(mem_init or {})
    pipeline = Pipeline(program, pipe_mem, SimConfig())
    pipeline.run(max_cycles=1_000_000)
    assert pipeline.halted
    reference = run_program(program, ref_mem)
    return pipeline, reference


def assert_state_matches(pipeline, reference, regs=range(1, 28)):
    for reg in regs:
        assert pipeline.architectural_register(reg) == reference.registers[reg], (
            f"r{reg}: pipeline={pipeline.architectural_register(reg)} "
            f"reference={reference.registers[reg]}"
        )
    assert pipeline.memory.snapshot() == reference.memory.snapshot()


class TestStraightLine:
    def test_dependent_arithmetic_chain(self):
        src = """
            li r1, 3
            mul r2, r1, r1
            add r3, r2, r1
            sub r4, r3, r1
            div r5, r4, r1
            halt
        """
        assert_state_matches(*run_both(src))

    def test_wide_independent_ops(self):
        body = "\n".join(f"li r{i}, {i * 11}" for i in range(1, 20))
        assert_state_matches(*run_both(body + "\nhalt"))

    def test_fp_pipeline(self):
        src = """
            fli f0, 512
            fli f1, 256
            fadd f2, f0, f1
            fmul f3, f2, f2
            ftoi r1, f3
            halt
        """
        pipeline, reference = run_both(src)
        assert pipeline.architectural_register(1) == reference.registers[1] == 9


class TestMemoryOrdering:
    def test_store_to_load_forwarding(self):
        src = """
            li r1, 4096
            li r2, 77
            st r2, 0(r1)
            ld r3, 0(r1)
            add r4, r3, r3
            halt
        """
        pipeline, reference = run_both(src)
        assert pipeline.architectural_register(4) == 154
        assert_state_matches(pipeline, reference)

    def test_store_store_load_same_address(self):
        src = """
            li r1, 4096
            li r2, 1
            li r3, 2
            st r2, 0(r1)
            st r3, 0(r1)
            ld r4, 0(r1)
            halt
        """
        pipeline, _ = run_both(src)
        assert pipeline.architectural_register(4) == 2

    def test_loads_see_preinitialized_memory(self):
        src = "li r1, 4096\nld r2, 0(r1)\nld r3, 8(r1)\nadd r4, r2, r3\nhalt"
        pipeline, reference = run_both(src, {4096: 30, 4104: 12})
        assert pipeline.architectural_register(4) == 42
        assert_state_matches(pipeline, reference)

    def test_memory_only_updated_at_retire(self):
        """A wrong-path store must never reach architectural memory."""
        src = """
            li r1, 4096
            li r2, 5
            beq r2, r2, over     # always taken; cold predict = not-taken
            st r2, 0(r1)         # wrong path!
        over:
            halt
        """
        pipeline, reference = run_both(src)
        assert pipeline.memory.load(4096) == 0
        assert_state_matches(pipeline, reference)


class TestControlFlow:
    def test_counted_loop(self):
        src = """
            li r1, 0
            li r2, 50
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        pipeline, reference = run_both(src)
        assert pipeline.architectural_register(1) == 50
        assert_state_matches(pipeline, reference)

    def test_nested_loops(self):
        src = """
            li r1, 0
            li r2, 0
        outer:
            li r3, 0
        inner:
            addi r1, r1, 1
            addi r3, r3, 1
            li r4, 5
            blt r3, r4, inner
            addi r2, r2, 1
            li r4, 6
            blt r2, r4, outer
            halt
        """
        pipeline, reference = run_both(src)
        assert pipeline.architectural_register(1) == 30

    def test_call_ret_nesting(self):
        src = """
            li sp, 65536
            li r1, 2
            call f1
            halt
        f1:
            subi sp, sp, 8
            st ra, 0(sp)
            add r1, r1, r1
            call f2
            ld ra, 0(sp)
            addi sp, sp, 8
            ret
        f2:
            addi r1, r1, 100
            ret
        """
        pipeline, reference = run_both(src)
        assert pipeline.architectural_register(1) == 104
        assert_state_matches(pipeline, reference)

    def test_recursion(self):
        src = """
            li sp, 65536
            li r1, 6
            call fact
            halt
        fact:                      # r2 = r1!
            li r3, 2
            bge r1, r3, rec
            li r2, 1
            ret
        rec:
            subi sp, sp, 16
            st ra, 0(sp)
            st r1, 8(sp)
            subi r1, r1, 1
            call fact
            ld r1, 8(sp)
            ld ra, 0(sp)
            addi sp, sp, 16
            mul r2, r2, r1
            ret
        """
        pipeline, reference = run_both(src)
        assert pipeline.architectural_register(2) == 720

    def test_indirect_jump_table(self):
        src = """
            li r1, 4096
            la r2, h0
            st r2, 0(r1)
            la r2, h1
            st r2, 8(r1)
            li r3, 1             # select handler 1
            shli r4, r3, 3
            add r4, r4, r1
            ld r5, 0(r4)
            jr r5
        h0: li r6, 100
            halt
        h1: li r6, 200
            halt
        """
        pipeline, reference = run_both(src)
        assert pipeline.architectural_register(6) == 200

    def test_data_dependent_branching(self):
        pipeline, reference = run_both(
            """
            li r1, 4096
            li r2, 0          # sum of odd entries
            li r3, 0          # i
            li r4, 20
        top:
            shli r5, r3, 3
            add r5, r5, r1
            ld r6, 0(r5)
            andi r7, r6, 1
            beqz r7, even
            add r2, r2, r6
        even:
            addi r3, r3, 1
            blt r3, r4, top
            halt
            """,
            {4096 + 8 * i: (i * 7 + 3) % 23 for i in range(20)},
        )
        assert_state_matches(pipeline, reference)


class TestZeroRegister:
    def test_writes_to_r0_discarded(self):
        pipeline, reference = run_both("li r0, 9\nadd r1, r0, r0\nhalt")
        assert pipeline.architectural_register(0) == 0
        assert pipeline.architectural_register(1) == 0


class TestLimits:
    def test_max_cycles_stops_runaway(self):
        program = assemble("x: jmp x")
        pipeline = Pipeline(program, MemoryImage(), SimConfig())
        pipeline.run(max_cycles=500)
        assert not pipeline.halted
        assert pipeline.cycle >= 500

    def test_max_instructions_limit(self):
        program = assemble("x: addi r1, r1, 1\njmp x")
        pipeline = Pipeline(program, MemoryImage(), SimConfig())
        stats = pipeline.run(max_instructions=100, max_cycles=100_000)
        assert not pipeline.halted
        assert stats.retired_instructions >= 100
