"""Unit-level tests of TEA controller internals on a live pipeline:
physical-register reference counting, chain-seq tagging, poison bits,
store-cache routing, and rename-width accounting."""

import random

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.tea import TeaConfig

from tests.conftest import h2p_loop_workload


def tea_pipeline(source=None, mem=None, config=None):
    source = source or h2p_loop_workload(n=600, seed=5)[0]
    if mem is None:
        mem = h2p_loop_workload(n=600, seed=5)[1]
    pipeline = Pipeline(assemble(source), mem, SimConfig(tea=config or TeaConfig()))
    return pipeline


class TestRefCounting:
    def test_no_preg_leak_after_run(self):
        source, mem, _ = h2p_loop_workload(n=800, seed=5)
        pipeline = tea_pipeline(source, mem)
        pipeline.run(max_cycles=2_000_000)
        assert pipeline.halted
        tea = pipeline.tea
        # After halt, all TEA activity has drained or been flushed;
        # every unavailable preg must be accounted for by the shadow
        # RAT mappings or live uops.
        available = pipeline.prf.tea_available()
        assert available <= pipeline.prf.tea_size
        in_books = len(tea._valid)
        live = sum(1 for u in tea.live_uops if u.dst_preg is not None)
        assert available + in_books + live >= pipeline.prf.tea_size - len(
            tea.rename_pipe
        )

    def test_refcounts_never_negative(self):
        source, mem, _ = h2p_loop_workload(n=600, seed=5)
        pipeline = tea_pipeline(source, mem)
        for _ in range(20_000):
            if pipeline.halted:
                break
            pipeline.step()
            for count in pipeline.tea._refcount.values():
                assert count >= 0


class TestChainSeqTagging:
    def test_main_uops_tagged_in_chain(self):
        source, mem, _ = h2p_loop_workload(n=800, seed=5)
        pipeline = tea_pipeline(source, mem)
        pipeline.run(max_cycles=2_000_000)
        # The fill buffer must have received chain-seeded entries,
        # proving the bit-mask feedback loop (paper §IV-D) closed.
        seeded = [e for e in pipeline.tea.fill_buffer.entries if e.chain_seed]
        walks = pipeline.tea.fill_buffer.walks_performed
        assert walks > 0
        assert seeded
        # chain_seqs get consumed at main rename; the dict must not
        # grow without bound.
        assert len(pipeline.tea.chain_seqs) < 10_000


class TestStoreCacheRouting:
    def test_tea_stores_never_touch_memory(self):
        """A kernel with stores in the H2P chain: TEA executes them
        into its store cache only; architectural memory gets exactly
        the committed values."""
        rng = random.Random(8)
        n = 500
        values = [rng.choice([-2, 2]) for _ in range(n)]
        mem = MemoryImage()
        mem.write_array(4096, values)
        out_base = 4096 + 8 * n + 64
        source = f"""
            li r1, 0
            li r2, 0
            li r3, {n}
            li r4, 4096
            li r7, {out_base}
        loop:
            shli r5, r2, 3
            add r5, r5, r4
            ld r6, 0(r5)
            add r8, r5, r0
            st r6, 0(r7)         # store feeding the chain region
            ld r9, 0(r7)
            blt r9, r0, skip     # H2P via store->load
            addi r1, r1, 1
        skip:
            addi r2, r2, 1
            blt r2, r3, loop
            halt
        """
        pipeline = tea_pipeline(source, mem)
        pipeline.run(max_cycles=3_000_000)
        assert pipeline.halted
        expected_count = sum(1 for v in values if v >= 0)
        assert pipeline.architectural_register(1) == expected_count
        # The final memory word is the last committed store.
        assert pipeline.memory.load(out_base) == values[-1]


class TestRenameWidthAccounting:
    def test_oncore_tea_consumes_main_slots(self):
        config = TeaConfig()
        source, mem, _ = h2p_loop_workload(n=400, seed=5)
        pipeline = tea_pipeline(source, mem, config)
        pipeline.run(max_cycles=1_000_000)
        assert pipeline.halted  # shared-width mode completes

    def test_dedicated_engine_keeps_main_width(self):
        """With a dedicated engine, rename_first must return the full
        width untouched."""
        source, mem, _ = h2p_loop_workload(n=400, seed=5)
        pipeline = tea_pipeline(source, mem, TeaConfig(dedicated_engine=True))
        # Drive until TEA has something to rename, checking the width.
        for _ in range(30_000):
            if pipeline.halted:
                break
            width_back = pipeline.tea.rename_first(8)
            assert width_back == 8
            pipeline.step()


class TestInitiationSync:
    def test_shadow_rat_synced_before_first_tea_rename(self):
        source, mem, _ = h2p_loop_workload(n=600, seed=5)
        pipeline = tea_pipeline(source, mem)
        saw_active = False
        for _ in range(60_000):
            if pipeline.halted:
                break
            pipeline.step()
            tea = pipeline.tea
            if tea.active and tea.rat_synced:
                saw_active = True
                # Once synced, start_seq must be behind or at the
                # main rename point... i.e. main has renamed past
                # start_seq - 1.
                assert pipeline.last_renamed_seq >= tea.start_seq - 1
        assert saw_active
