"""The paper's §V-A inclusion rule: benchmarks under 0.5 MPKI are
excluded because precomputation has nothing to attack.  The fpstream
kernel demonstrates why that rule is safe."""

from repro import Pipeline, SimConfig
from repro.tea import TeaConfig
from repro.workloads import workload_names
from repro.workloads.spec import fpstream


def test_fpstream_is_below_the_cutoff():
    wl = fpstream(count=4000)
    pipeline = Pipeline(wl.program, wl.fresh_memory(), SimConfig())
    stats = pipeline.run(max_cycles=3_000_000)
    assert pipeline.halted
    assert wl.validate(pipeline)
    assert stats.mpki < 0.5, f"fpstream should be predictable ({stats.mpki})"


def test_tea_is_neutral_on_predictable_code():
    """With no H2P branches, the TEA thread must neither help nor hurt
    meaningfully — §IV-E's 'no wastage' efficiency claim."""
    wl = fpstream(count=4000)
    base = Pipeline(wl.program, wl.fresh_memory(), SimConfig())
    base_stats = base.run(max_cycles=3_000_000)
    tea = Pipeline(wl.program, wl.fresh_memory(), SimConfig(tea=TeaConfig()))
    tea_stats = tea.run(max_cycles=3_000_000)
    assert wl.validate(tea)
    ratio = tea_stats.ipc / base_stats.ipc
    assert 0.93 < ratio < 1.10, f"TEA should be neutral here (ratio {ratio:.3f})"
    # The loop branch may get (wrongly) marked H2P during cold start —
    # the case SecIV-B's periodic decrement handles at full scale — but
    # the precomputations all agree with the predictor, so early
    # flushes stay negligible and accuracy stays perfect.
    assert tea_stats.early_flushes <= 5
    assert tea_stats.tea_accuracy > 0.99


def test_fpstream_is_not_in_the_evaluation_suite():
    assert "fpstream" not in workload_names()
