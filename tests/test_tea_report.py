"""TEA paper-metric analytics: timeliness / efficiency / accuracy.

The acceptance contract from ISSUE 6: per-branch misprediction totals
in ``repro report`` reconcile *exactly* with ``SimStats``.
"""

import json

import pytest

from repro.harness.runner import run_workload
from repro.obs import build_tea_report, render_tea_report


@pytest.fixture(scope="module")
def xz_tea_report():
    result = run_workload("xz", "tea", "tiny", observe=True)
    obs = result.observation
    report = build_tea_report(
        result.stats, obs.attribution, obs.events, workload="xz", mode="tea"
    )
    return result, report


def test_reconciliation_is_exact(xz_tea_report):
    result, report = xz_tea_report
    rec = report["reconciliation"]
    assert rec["exact"] is True
    assert rec["attribution_mispredicts"] == result.stats.total_mispredicts
    assert rec["stats_mispredicts"] == result.stats.total_mispredicts
    # Per-branch rows sum to the same total.
    assert sum(
        row["mispredicts"] for row in report["branches"].values()
    ) == result.stats.total_mispredicts


def test_timeliness_counts_match_simstats(xz_tea_report):
    result, report = xz_tea_report
    t = report["timeliness"]
    assert t["covered_timely"] == result.stats.covered_timely
    assert t["covered_late"] == result.stats.covered_late
    covered = t["covered_timely"] + t["covered_late"]
    if covered:
        assert t["fraction_timely"] == pytest.approx(
            t["covered_timely"] / covered
        )
    # Lead samples come only from covered resolutions (one per
    # TEA-resolved mispredict outcome that carried a lead).
    assert t["lead_samples"] > 0
    lead = t["lead_cycles"]
    assert lead["min"] <= lead["p50"] <= lead["p95"] <= lead["p99"] <= lead["max"]


def test_efficiency_uses_simstats_footprint(xz_tea_report):
    result, report = xz_tea_report
    e = report["efficiency"]
    assert e["tea_fetched_uops"] == result.stats.tea_fetched_uops
    avoided = result.stats.covered_timely + result.stats.covered_late
    assert e["avoided_mispredicts"] == avoided
    if avoided:
        assert e["uops_per_avoided_mispredict"] == pytest.approx(
            result.stats.tea_fetched_uops / avoided
        )
    assert e["suppressed_resolutions"] == result.stats.tea_suppressed_resolutions
    assert e["blocked_flushes"] == result.stats.tea_blocked_flushes


def test_accuracy_matches_simstats(xz_tea_report):
    result, report = xz_tea_report
    a = report["accuracy"]
    assert a["tea_resolved_branches"] == result.stats.tea_resolved_branches
    assert a["tea_wrong_resolutions"] == result.stats.tea_wrong_resolutions
    assert a["tea_accuracy"] == pytest.approx(result.stats.tea_accuracy)
    assert a["coverage"] == pytest.approx(result.stats.coverage)


def test_per_branch_rows_extend_attribution(xz_tea_report):
    result, report = xz_tea_report
    obs = result.observation
    for hex_pc, row in report["branches"].items():
        entry = obs.attribution.get(row["pc"])
        assert entry is not None
        assert row["mispredicts"] == entry.mispredicts
        assert "timeliness" in row and "efficiency" in row
    # At least one branch has lead samples on a covered workload.
    assert any(
        row["timeliness"]["samples"] > 0
        for row in report["branches"].values()
    )


def test_report_accepts_event_dicts(xz_tea_report):
    """Events may arrive as plain dicts (e.g. re-read from JSONL)."""
    result, report = xz_tea_report
    obs = result.observation
    rebuilt = build_tea_report(
        result.stats,
        obs.attribution,
        [e.as_dict() for e in obs.events],
        workload="xz",
        mode="tea",
    )
    assert rebuilt["timeliness"] == report["timeliness"]
    assert rebuilt["branches"].keys() == report["branches"].keys()


def test_report_is_json_serializable_and_renders(xz_tea_report):
    _, report = xz_tea_report
    json.dumps(report)
    text = render_tea_report(report)
    assert "timeliness" in text
    assert "efficiency" in text
    assert "accuracy" in text
    assert "exact" in text


def test_baseline_report_degrades_gracefully():
    """No TEA -> zeroed sections, no division errors, still reconciles."""
    result = run_workload("xz", "baseline", "tiny", observe=True)
    obs = result.observation
    report = build_tea_report(result.stats, obs.attribution, obs.events)
    assert report["reconciliation"]["exact"] is True
    assert report["timeliness"]["lead_samples"] == 0
    assert report["efficiency"]["uops_per_avoided_mispredict"] is None
    render_tea_report(report)


def test_cli_report(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "report.json"
    rc = main(["report", "xz", "--mode", "tea", "--scale", "tiny",
               "--out", str(out)])
    assert rc == 0
    captured = capsys.readouterr()
    assert "TEA report — xz/tea" in captured.out
    payload = json.loads(out.read_text())
    assert payload["xz"]["reconciliation"]["exact"] is True
    assert payload["xz"]["branches"]


def test_cli_report_json_mode(capsys):
    from repro.__main__ import main

    rc = main(["report", "xz", "--mode", "tea", "--scale", "tiny", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["xz"]["timeliness"]["covered_timely"] >= 0
