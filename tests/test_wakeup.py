"""Unit tests for the event-driven wakeup scheduling structures.

The scheduler keeps each RS entry in exactly one of three pools (waiting /
ready / blocked) and relies on the PRF's per-preg wakeup lists to move
entries between them.  These tests pin down the event protocol:
wakeup-on-write ordering, re-blocking when a counted-ready preg is
reallocated, flush unsubscription (no stale-preg wakeups after a RAT
restore), and the store-event re-arming of the memory-ordering gate.
"""

from repro.core import DynUop, PhysicalRegisterFile, Scheduler
from repro.core.config import CoreConfig
from repro.isa import Instruction


def make_sched(rs_entries=8, tea_rs=8, tea_units=0, prf_main=16, prf_tea=8):
    config = CoreConfig(rs_entries=rs_entries)
    scheduler = Scheduler(config, tea_rs_entries=tea_rs, tea_dedicated_units=tea_units)
    prf = PhysicalRegisterFile(prf_main, tea_size=prf_tea)
    scheduler.bind_prf(prf)
    return scheduler, prf


def make_uop(seq, srcs=(), is_tea=False):
    instr = Instruction(opcode="add", dst=1, srcs=(2, 3), pc=4 * seq)
    uop = DynUop(seq, instr, is_tea=is_tea)
    uop.src_pregs = tuple(srcs)
    return uop


def accept_all(_uop):
    return True


class TestWakeupOnWrite:
    def test_not_ready_until_last_source_written(self):
        scheduler, prf = make_sched()
        p1, p2 = prf.allocate(), prf.allocate()
        uop = make_uop(0, srcs=(p1, p2))
        scheduler.insert(uop)
        assert not scheduler.has_ready()
        prf.write(p1, 11)
        assert not scheduler.has_ready()  # one source still outstanding
        prf.write(p2, 22)
        assert scheduler.has_ready()
        assert scheduler.select(accept_all) == [uop]

    def test_ready_source_counts_at_insert(self):
        scheduler, prf = make_sched()
        p1 = prf.allocate()
        prf.write(p1, 5)
        uop = make_uop(0, srcs=(p1,))
        scheduler.insert(uop)
        assert scheduler.has_ready()

    def test_duplicate_source_needs_single_write(self):
        scheduler, prf = make_sched()
        p1 = prf.allocate()
        uop = make_uop(0, srcs=(p1, p1))
        scheduler.insert(uop)
        assert uop.pending_srcs == 2
        prf.write(p1, 9)  # both subscriptions decrement on one write
        assert uop.pending_srcs == 0
        assert scheduler.select(accept_all) == [uop]

    def test_wakeup_preserves_insertion_order(self):
        scheduler, prf = make_sched()
        p1 = prf.allocate()
        older = make_uop(0, srcs=(p1,))
        younger = make_uop(1, srcs=(p1,))
        scheduler.insert(older)
        scheduler.insert(younger)
        prf.write(p1, 1)
        assert scheduler.select(accept_all) == [older, younger]

    def test_retry_reinsert_goes_behind_existing_entries(self):
        # An MSHR-full structural retry re-inserts the uop; the fresh
        # rs_stamp must place it behind entries already in the RS, like
        # the legacy list re-append did.
        scheduler, prf = make_sched()
        retried = make_uop(0)
        scheduler.insert(retried)
        assert scheduler.select(accept_all) == [retried]
        waiting = make_uop(1)
        scheduler.insert(waiting)
        scheduler.insert(retried)  # retry path
        assert scheduler.select(accept_all) == [waiting, retried]


class TestFlushUnsubscription:
    def test_squash_younger_removes_waiters(self):
        scheduler, prf = make_sched()
        p1 = prf.allocate()
        survivor = make_uop(1, srcs=(p1,))
        doomed = make_uop(5, srcs=(p1,))
        scheduler.insert(survivor)
        scheduler.insert(doomed)
        scheduler.squash_younger(3)
        assert prf.waiters[p1] == [survivor]
        prf.write(p1, 7)
        assert scheduler.select(accept_all) == [survivor]

    def test_no_stale_wakeup_after_preg_recycled(self):
        # A squashed consumer's preg is freed and reallocated to a new
        # producer (the RAT-restore path).  The new producer's write
        # must not wake the squashed consumer.
        scheduler, prf = make_sched(prf_main=1)
        p1 = prf.allocate()
        doomed = make_uop(5, srcs=(p1,))
        scheduler.insert(doomed)
        scheduler.squash_younger(0)
        prf.free(p1)
        assert prf.allocate() == p1  # recycled to a new producer
        prf.write(p1, 99)
        assert not scheduler.has_ready()
        assert doomed.pending_srcs == 0  # not tracked anywhere

    def test_selected_uop_is_unsubscribed(self):
        scheduler, prf = make_sched()
        p1 = prf.allocate()
        uop = make_uop(0, srcs=(p1,))
        scheduler.insert(uop)
        prf.write(p1, 1)
        assert scheduler.select(accept_all) == [uop]
        assert prf.waiters[p1] == []

    def test_clear_tea_unsubscribes_all_pools(self):
        scheduler, prf = make_sched()
        p_main = prf.allocate()
        p_tea = prf.allocate(tea=True)
        waiting = make_uop(1, srcs=(p_tea,), is_tea=True)
        ready = make_uop(2, srcs=(p_main,), is_tea=True)
        scheduler.insert(waiting)
        prf.write(p_main, 3)
        scheduler.insert(ready)
        scheduler.clear_tea()
        assert not scheduler.has_ready()
        assert prf.waiters[p_main] == [] and prf.waiters[p_tea] == []
        prf.write(p_tea, 4)  # must not resurrect the cleared uop
        assert not scheduler.has_ready()


class TestUnreadyReblock:
    def test_reallocated_source_pulls_consumer_back_to_waiting(self):
        # TEA preg recycling can free+reallocate a preg a live consumer
        # still names; the consumer must leave the ready pool until the
        # new producer writes.
        scheduler, prf = make_sched(prf_tea=1)
        p_tea = prf.allocate(tea=True)
        prf.write(p_tea, 1)
        consumer = make_uop(3, srcs=(p_tea,), is_tea=True)
        scheduler.insert(consumer)
        assert scheduler.has_ready()
        prf.free(p_tea)
        assert prf.allocate(tea=True) == p_tea  # rewrites the source
        assert not scheduler.has_ready()
        prf.write(p_tea, 2)
        assert scheduler.select(accept_all) == [consumer]


class TestStoreEventRearm:
    def test_gate_rejection_parks_until_store_event(self):
        scheduler, prf = make_sched()
        uop = make_uop(0)
        scheduler.insert(uop)
        assert scheduler.select(lambda _u: False) == []
        # Parked in the blocked pool: not a candidate any more.
        assert not scheduler.has_ready()
        scheduler.store_executed(tea=False)
        assert scheduler.has_ready()
        assert scheduler.select(accept_all) == [uop]

    def test_store_event_is_per_thread(self):
        scheduler, prf = make_sched()
        main_uop = make_uop(0)
        tea_uop = make_uop(1, is_tea=True)
        scheduler.insert(main_uop)
        scheduler.insert(tea_uop)
        scheduler.select(lambda _u: False)  # parks both
        scheduler.store_executed(tea=True)
        assert scheduler.select(accept_all) == [tea_uop]
        scheduler.store_executed(tea=False)
        assert scheduler.select(accept_all) == [main_uop]


class TestOccupancyAcrossPools:
    def test_capacity_counts_every_pool(self):
        scheduler, prf = make_sched(rs_entries=2)
        p1 = prf.allocate()
        waiting = make_uop(0, srcs=(p1,))
        scheduler.insert(waiting)          # waiting pool
        blocked = make_uop(1)
        scheduler.insert(blocked)
        scheduler.select(lambda _u: False)  # -> blocked pool
        assert not scheduler.main_has_space()
        prf.write(p1, 1)                   # waiting -> ready
        assert not scheduler.main_has_space()
        scheduler.store_executed(tea=False)
        scheduler.select(accept_all)       # drains both
        assert scheduler.main_has_space()
