"""Tests for the pipeline timeline tracer."""

import pytest

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.core.tracing import PipelineTracer
from repro.tea import TeaConfig

from tests.conftest import h2p_loop_workload


def traced_run(source, mem=None, config=None, limit=500):
    pipeline = Pipeline(assemble(source), mem or MemoryImage(), config or SimConfig())
    tracer = PipelineTracer(limit=limit)
    tracer.attach(pipeline)
    pipeline.run(max_cycles=1_000_000)
    assert pipeline.halted
    return pipeline, tracer


SIMPLE_SRC = """
    li r1, 1
    add r2, r1, r1
    mul r3, r2, r2
    halt
"""


class TestStageOrdering:
    def test_stages_monotonic(self):
        _, tracer = traced_run(SIMPLE_SRC)
        for record in tracer.uops():
            stages = [record.fetch, record.rename, record.execute, record.complete]
            present = [s for s in stages if s >= 0]
            assert present == sorted(present), record

    def test_frontend_depth_visible(self):
        pipeline, tracer = traced_run(SIMPLE_SRC)
        record = tracer.uops()[0]
        depth = pipeline.config.core.frontend_depth
        icache = pipeline.config.memory.l1i_latency
        assert record.rename - record.fetch >= depth - icache

    def test_retire_recorded(self):
        _, tracer = traced_run(SIMPLE_SRC)
        committed = [r for r in tracer.uops() if not r.squashed]
        assert all(r.retire >= 0 for r in committed[:-1])


class TestRender:
    def test_render_contains_marks(self):
        _, tracer = traced_run(SIMPLE_SRC)
        text = tracer.render(count=5, width=120)
        assert "F" in text and "R" in text
        assert "mul" in text

    def test_render_empty_range(self):
        _, tracer = traced_run(SIMPLE_SRC)
        assert "no traced uops" in tracer.render(start_seq=10**9)

    def test_render_rows_without_fetch_cycle(self):
        # Regression: a traced row can exist with no recorded fetch
        # cycle (e.g. scanned mid-flight after a flush); render used to
        # crash with ``min() arg is an empty sequence``.
        tracer = PipelineTracer()
        from repro.core.tracing import UopTrace

        tracer.records[(0, False)] = UopTrace(
            seq=0, pc=0, opcode="add", is_tea=False
        )
        assert "no traced uops" in tracer.render()

    def test_double_attach_rejected(self):
        pipeline = Pipeline(assemble(SIMPLE_SRC), MemoryImage(), SimConfig())
        tracer = PipelineTracer()
        tracer.attach(pipeline)
        with pytest.raises(RuntimeError):
            tracer.attach(pipeline)


class TestDetach:
    def test_detach_then_reattach(self):
        pipeline = Pipeline(assemble(SIMPLE_SRC), MemoryImage(), SimConfig())
        tracer = PipelineTracer()
        tracer.attach(pipeline)
        tracer.detach()
        tracer.attach(pipeline)  # must not raise after detach
        pipeline.run(max_cycles=1_000_000)
        assert tracer.uops()

    def test_detach_without_attach_rejected(self):
        with pytest.raises(RuntimeError):
            PipelineTracer().detach()

    def test_detach_stops_recording(self):
        pipeline = Pipeline(assemble(SIMPLE_SRC), MemoryImage(), SimConfig())
        tracer = PipelineTracer()
        tracer.attach(pipeline)
        tracer.detach()
        pipeline.run(max_cycles=1_000_000)
        assert not tracer.records

    def test_firehose_silenced_after_detach(self):
        pipeline = Pipeline(assemble(SIMPLE_SRC), MemoryImage(), SimConfig())
        tracer = PipelineTracer()
        tracer.attach(pipeline)
        assert pipeline.obs.wants("cycle_end")
        tracer.detach()
        assert not pipeline.obs.wants("cycle_end")


class TestBusComposition:
    def test_tracer_reuses_observation_bus(self):
        from repro import Observation

        pipeline = Pipeline(assemble(SIMPLE_SRC), MemoryImage(), SimConfig())
        obs = Observation()
        obs.attach(pipeline)
        tracer = PipelineTracer()
        tracer.attach(pipeline)
        assert pipeline.obs is obs.bus
        pipeline.run(max_cycles=1_000_000)
        assert tracer.uops()
        assert obs.bus.counts.get("measurement_start") == 1


class TestTeaVisibility:
    def test_tea_copies_traced_and_resolve_earlier(self):
        source, mem, _ = h2p_loop_workload(n=400, seed=51)
        _, tracer = traced_run(source, mem, SimConfig(tea=TeaConfig()), limit=4000)
        tea_records = [r for r in tracer.uops() if r.is_tea]
        assert tea_records, "no TEA uops traced"
        # At least one branch must show the TEA copy completing before
        # the main copy (that is the whole mechanism).
        gaps = []
        for record in tea_records:
            gap = tracer.branch_resolution_gap(record.seq)
            if gap is not None:
                gaps.append(gap)
        assert gaps and max(gaps) > 0
