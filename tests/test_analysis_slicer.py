"""Static backward slices: contents, Block Cache-shaped masks, flags."""

from repro import assemble
from repro.analysis import slice_program
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.workloads import make_workload


def pcs_of(program, *opcodes):
    return [ins.pc for ins in program.instructions if ins.opcode in opcodes]


def test_slice_contains_branch_and_producers():
    program = assemble("""
        li r1, 0
        li r2, 10
    top:
        addi r1, r1, 1
        blt r1, r2, top
        halt
    """)
    slices = slice_program(program)
    [branch_pc] = pcs_of(program, "blt")
    sl = slices.slice_at(branch_pc)
    assert sl is not None
    # Chain: both li's, the addi, and the branch itself.
    assert sl.pcs == {0x0, 0x4, 0x8, branch_pc}
    assert not sl.has_indirect
    assert not sl.through_memory


def test_unrelated_computation_excluded():
    program = assemble("""
        li r1, 0
        li r2, 10
        li r5, 999
        mul r6, r5, r5
    top:
        addi r1, r1, 1
        blt r1, r2, top
        halt
    """)
    slices = slice_program(program)
    [branch_pc] = pcs_of(program, "blt")
    sl = slices.slice_at(branch_pc)
    excluded = set(pcs_of(program, "mul")) | {0x8}  # li r5 and mul
    assert not (sl.pcs & excluded)


def test_memory_dependence_joins_chain_and_sets_flag():
    program = assemble("""
        li r1, 4096
        li r2, 3
        st r2, 0(r1)
        ld r3, 0(r1)
        beq r3, r0, out
        addi r4, r4, 1
    out:
        halt
    """)
    slices = slice_program(program)
    [branch_pc] = pcs_of(program, "beq")
    sl = slices.slice_at(branch_pc)
    [st_pc] = pcs_of(program, "st")
    [ld_pc] = pcs_of(program, "ld")
    assert {st_pc, ld_pc} <= sl.pcs
    assert sl.through_memory


def test_masks_match_pcs_bit_for_bit():
    bundle = make_workload("bfs", "tiny")
    slices = slice_program(bundle.program)
    assert slices.branches
    for sl in slices.branches.values():
        rebuilt = set()
        for start, mask in sl.masks.items():
            block = bundle.program.basic_blocks[start]
            k = 0
            while mask:
                if mask & 1:
                    pc = start + k * INSTRUCTION_BYTES
                    assert pc <= block.end_pc
                    rebuilt.add(pc)
                mask >>= 1
                k += 1
        assert rebuilt == set(sl.pcs)


def test_combined_masks_is_union():
    bundle = make_workload("mcf", "tiny")
    slices = slice_program(bundle.program)
    merged = slices.combined_masks()
    expect = {}
    for sl in slices.branches.values():
        for start, mask in sl.masks.items():
            expect[start] = expect.get(start, 0) | mask
    assert merged == expect


def test_unreachable_conditional_not_sliced():
    program = assemble("""
        jmp out
    dead:
        beq r1, r0, dead
    out:
        halt
    """)
    slices = slice_program(program)
    [branch_pc] = pcs_of(program, "beq")
    assert slices.slice_at(branch_pc) is None


def test_every_reachable_conditional_sliced_in_workloads():
    for name in ("bfs", "xz"):
        bundle = make_workload(name, "tiny")
        slices = slice_program(bundle.program)
        cfg = slices.cfg
        reachable_pcs = {
            pc for start in cfg.reachable for pc in cfg.blocks[start].pcs()
        }
        expected = {
            ins.pc
            for ins in bundle.program.instructions
            if ins.is_conditional and ins.pc in reachable_pcs
        }
        assert set(slices.branches) == expected
        assert expected, name
