"""Workload-suite tests: every kernel validates functionally at tiny
scale on the baseline core, and the registry/category metadata is
consistent with the paper's Fig. 8 split."""

import pytest

from repro import Pipeline, SimConfig
from repro.workloads import (
    ALL_NAMES,
    GAP_NAMES,
    SPEC_NAMES,
    complex_control_flow_names,
    make_category,
    make_workload,
    simple_control_flow_names,
    uniform_graph,
    workload_names,
)


class TestRegistry:
    def test_all_names_cover_gap_and_spec(self):
        assert set(workload_names()) == set(GAP_NAMES) | set(SPEC_NAMES)
        assert len(workload_names()) == 17

    def test_category_split_matches_paper(self):
        """§V-C: all GAP + xz are simple; everything else complex."""
        simple = set(simple_control_flow_names())
        assert simple == set(GAP_NAMES) | {"xz"}
        assert set(complex_control_flow_names()) == set(ALL_NAMES) - simple

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("doom")
        with pytest.raises(ValueError, match="unknown scale"):
            make_workload("bfs", "galactic")

    def test_workload_construction_is_deterministic(self):
        a = make_workload("bfs", "tiny")
        b = make_workload("bfs", "tiny")
        assert a.memory.snapshot() == b.memory.snapshot()
        assert [i.opcode for i in a.program.instructions] == [
            i.opcode for i in b.program.instructions
        ]

    def test_fresh_memory_isolated(self):
        wl = make_workload("bfs", "tiny")
        mem = wl.fresh_memory()
        mem.store(0, 123)
        assert wl.memory.load(0) != 123 or wl.memory.load(0) == 0


class TestGraphGenerator:
    def test_csr_consistency(self):
        g = uniform_graph(50, 4, seed=1)
        assert len(g.offsets) == 51
        assert g.offsets[0] == 0
        assert g.offsets[-1] == g.num_edges
        assert all(0 <= v < 50 for v in g.neighbors)
        assert len(g.weights) == g.num_edges

    def test_no_self_loops(self):
        g = uniform_graph(50, 6, seed=2)
        for u in range(50):
            assert u not in g.out_neighbors(u)

    def test_sorted_adjacency_option(self):
        g = uniform_graph(40, 8, seed=3, sorted_adjacency=True)
        for u in range(40):
            ns = g.out_neighbors(u)
            assert list(ns) == sorted(ns)

    def test_determinism(self):
        assert uniform_graph(30, 4, seed=9) == uniform_graph(30, 4, seed=9)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_validates_on_baseline(name):
    """Every kernel halts, produces the reference answer, and shows
    measurable branchiness (the paper excludes <0.5 MPKI benchmarks)."""
    wl = make_workload(name, "tiny")
    pipeline = Pipeline(wl.program, wl.fresh_memory(), SimConfig())
    stats = pipeline.run(max_cycles=8_000_000)
    assert pipeline.halted, f"{name} did not halt"
    assert wl.validate is not None
    assert wl.validate(pipeline), f"{name} produced wrong results"
    assert stats.retired_branches > 0
    assert stats.retired_instructions > 1000
    assert stats.mpki > 0.5, f"{name} MPKI too low: {stats.mpki}"
    assert wl.category == make_category(name)


class TestSmallScale:
    """`small` sits between tiny and bench for sampled-simulation demos."""

    SMALL_NAMES = ("bfs", "cc", "sssp", "pr")

    @pytest.mark.parametrize("name", SMALL_NAMES)
    def test_small_sits_between_tiny_and_bench(self, name):
        from repro.sampling.functional import FunctionalEngine

        def instructions(scale):
            workload = make_workload(name, scale)
            engine = FunctionalEngine(
                workload.program, workload.fresh_memory(),
                track_warmup=False,
            )
            return engine.run_to_halt(50_000_000)

        tiny, small, bench = map(
            instructions, ("tiny", "small", "bench")
        )
        assert tiny < small < bench

    @pytest.mark.parametrize("name", SMALL_NAMES)
    def test_small_validates_on_baseline(self, name):
        workload = make_workload(name, "small")
        pipeline = Pipeline(workload.program, workload.memory, SimConfig())
        pipeline.run(max_cycles=2_000_000)
        assert pipeline.halted
        assert workload.validate(pipeline)

    def test_small_is_opt_in_per_workload(self):
        with pytest.raises(ValueError, match="small where registered"):
            make_workload("mcf", "small")
