"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AssemblerError, INSTRUCTION_BYTES, UopClass, assemble
from repro.isa.assembler import IMM_MAX, IMM_MIN
from repro.isa.registers import REG_RA


class TestBasicEncoding:
    def test_pcs_are_sequential(self):
        program = assemble("li r1, 1\nli r2, 2\nhalt")
        assert [i.pc for i in program.instructions] == [0, 4, 8]

    def test_alu_register_form(self):
        program = assemble("add r1, r2, r3\nhalt")
        instr = program.instructions[0]
        assert instr.opcode == "add"
        assert instr.dst == 1
        assert instr.srcs == (2, 3)

    def test_immediates_decimal_hex_negative(self):
        program = assemble("li r1, 0x10\nli r2, -3\nhalt")
        assert program.instructions[0].imm == 16
        assert program.instructions[1].imm == -3

    def test_load_store_operands(self):
        program = assemble("ld r1, 8(r2)\nst r3, -16(r4)\nhalt")
        load, store = program.instructions[:2]
        assert load.dst == 1 and load.srcs == (2,) and load.imm == 8
        assert store.dst is None and store.srcs == (3, 4) and store.imm == -16

    def test_fp_load_store(self):
        program = assemble("fld f1, 0(r2)\nfst f1, 8(r2)\nhalt")
        assert program.instructions[0].dst == 32 + 1
        assert program.instructions[1].srcs[0] == 32 + 1


class TestLabelsAndBranches:
    def test_forward_and_backward_labels(self):
        program = assemble(
            """
            start:
                beq r1, r2, end
                jmp start
            end:
                halt
            """
        )
        beq, jmp, halt = program.instructions
        assert beq.target == halt.pc
        assert jmp.target == beq.pc

    def test_label_on_same_line_as_instruction(self):
        program = assemble("top: addi r1, r1, 1\njmp top\nhalt")
        assert program.labels["top"] == 0
        assert program.instructions[1].target == 0

    def test_call_writes_ra_and_ret_reads_it(self):
        program = assemble("call fn\nhalt\nfn: ret")
        call, _, ret = program.instructions
        assert call.dst == REG_RA
        assert ret.srcs == (REG_RA,)

    def test_la_loads_label_address(self):
        program = assemble("la r1, fn\njr r1\nfn: halt")
        assert program.instructions[0].opcode == "li"
        assert program.instructions[0].imm == program.labels["fn"]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("a: nop\na: halt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined"):
            assemble("jmp nowhere\nhalt")


class TestPseudoInstructions:
    def test_beqz_expands_to_beq_zero(self):
        program = assemble("t: beqz r5, t\nhalt")
        instr = program.instructions[0]
        assert instr.opcode == "beq"
        assert instr.srcs == (5, 0)

    def test_inc_dec(self):
        program = assemble("inc r3\ndec r4\nhalt")
        inc, dec = program.instructions[:2]
        assert (inc.opcode, inc.imm) == ("addi", 1)
        assert (dec.opcode, dec.imm) == ("addi", -1)
        assert inc.dst == 3 and inc.srcs == (3,)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate r1, r2",        # unknown opcode
            "add r1, r2",               # wrong operand count
            "ld r1, r2",                # malformed memory operand
            "beq r1, r2",               # missing label
            "",                         # empty program
            "   # only a comment",      # still empty
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(AssemblerError):
            assemble(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1\nhalt")

    def test_unknown_opcode_names_the_opcode(self):
        with pytest.raises(AssemblerError, match=r"line 2.*frobnicate"):
            assemble("nop\nfrobnicate r1, r2, r3\nhalt")

    def test_bad_register_is_assembler_error_with_line(self):
        # parse_register's ValueError must surface as a typed
        # AssemblerError carrying the source line, not leak through.
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nadd r1, r2, r99\nhalt")

    def test_bad_register_in_memory_operand(self):
        with pytest.raises(AssemblerError, match="line 1"):
            assemble("ld r1, 0(r99)\nhalt")

    def test_malformed_memory_operand_message(self):
        with pytest.raises(AssemblerError, match=r"offset\(base\)"):
            assemble("ld r1, r2\nhalt")

    def test_bad_immediate_is_assembler_error(self):
        with pytest.raises(AssemblerError, match=r"line 1.*immediate"):
            assemble("li r1, banana\nhalt")

    def test_out_of_range_immediate_rejected(self):
        with pytest.raises(AssemblerError, match="line 1"):
            assemble(f"li r1, {1 << 64}\nhalt")

    def test_extreme_in_range_immediates_accepted(self):
        program = assemble(
            f"li r1, {IMM_MAX}\nli r2, {IMM_MIN}\nhalt"
        )
        assert program.instructions[0].imm == IMM_MAX
        assert program.instructions[1].imm == IMM_MIN


class TestCommentsAndFormatting:
    def test_comments_ignored(self):
        program = assemble("# header\nnop  # tail comment\nhalt")
        assert len(program) == 2

    def test_classes_assigned(self):
        program = assemble("jmp x\nx: call y\ny: ret")
        classes = [i.uop_class for i in program.instructions]
        assert classes == [UopClass.BR_JUMP, UopClass.BR_CALL, UopClass.BR_RET]

    def test_instruction_bytes_constant(self):
        assert INSTRUCTION_BYTES == 4


class TestSourceLineDiagnostics:
    def test_instructions_carry_source_lines(self):
        program = assemble("nop\n\n# comment\nnop\nhalt")
        assert [i.line for i in program.instructions] == [1, 4, 5]

    def test_line_of_lookup(self):
        program = assemble("nop\nnop\nhalt")
        assert program.line_of(4) == 2
        assert program.line_of(0x100) is None

    def test_block_line_ranges_span_members(self):
        program = assemble("""
    li r1, 2
top:
    addi r1, r1, -1
    bne r1, r0, top
    halt
""")
        spans = [b.line_range for b in program.basic_blocks.values()]
        assert spans == [(2, 2), (4, 5), (6, 6)]

    def test_label_on_same_line_counts_that_line(self):
        program = assemble("x: nop\nhalt")
        assert program.instructions[0].line == 1

    def test_hand_built_instructions_have_no_line(self):
        from repro.isa.instructions import Instruction

        ins = Instruction(opcode="nop", dst=None, srcs=(), imm=None,
                          target=None, pc=0)
        assert ins.line is None

    def test_data_section_preserves_text_line_numbers(self):
        from repro.isa.data_directives import assemble_unit

        unit = assemble_unit(
            ".data\nv: .word 1, 2\n.text\nla r1, v\nld r2, 0(r1)\nhalt\n"
        )
        # The text section starts at source line 4.
        assert [i.line for i in unit.program.instructions] == [4, 5, 6]

    def test_data_section_errors_report_original_lines(self):
        from repro.isa.assembler import AssemblerError
        from repro.isa.data_directives import assemble_unit

        with pytest.raises(AssemblerError, match="line 5"):
            assemble_unit(".data\nv: .word 1\n.text\nnop\nbogus r1\nhalt\n")
