"""Tests for the fault-tolerant campaign executor: retry/backoff,
per-run timeouts, checkpoint kill-and-resume, failure records,
run-lifecycle telemetry, and parallel/serial determinism."""

import json
import os
import time
import warnings

import pytest

from repro.harness import (
    CampaignExecutor,
    ExperimentSuite,
    RunSpec,
    load_checkpoint,
    matrix_specs,
    summarize_outcomes,
)
from repro.harness.executor import (
    FATAL,
    RETRYABLE,
    TIMEOUT,
    RunOutcome,
    classify_exception,
    execute_spec,
)
from repro.obs import Observation


# ----------------------------------------------------------------------
# Module-level tasks: process-mode workers pickle the callable, so
# everything spawned with jobs >= 1 must live at module scope.
# ----------------------------------------------------------------------
def ok_task(record):
    return {
        "stats": {"cycles": 100, "retired_instructions": 250},
        "validated": True,
        "halted": True,
    }


def fatal_task(record):
    if record["workload"] == "bad":
        raise ValueError("deterministic model bug")
    return ok_task(record)


def flaky_task(record):
    """Fails with a transient OSError on the first attempt per cell,
    tracked through marker files so it works across processes."""
    marker = os.path.join(
        os.environ["FLAKY_DIR"], record["workload"] + "_" + record["mode"]
    )
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        raise OSError("transient worker failure")
    return ok_task(record)


def hang_task(record):
    if record["workload"] == "slow":
        time.sleep(60)
    return ok_task(record)


def dying_task(record):
    os._exit(3)


def faulty_fig5_task(record):
    """Real simulation, plus one injected transient failure (xz/tea,
    first attempt only) and one injected hang (mcf/tea)."""
    if record["workload"] == "mcf" and record["mode"] == "tea":
        time.sleep(60)
    if record["workload"] == "xz" and record["mode"] == "tea":
        marker = os.path.join(os.environ["FLAKY_DIR"], "xz_tea_fault")
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("attempted")
            raise OSError("injected transient fault")
    return execute_spec(record)


SPECS = [
    RunSpec("alpha", "baseline", "tiny"),
    RunSpec("beta", "baseline", "tiny"),
    RunSpec("gamma", "baseline", "tiny"),
    RunSpec("delta", "baseline", "tiny"),
]


class TestClassification:
    def test_os_errors_are_retryable(self):
        assert classify_exception("OSError") == RETRYABLE
        assert classify_exception("BrokenPipeError") == RETRYABLE
        assert classify_exception("WorkerDied") == RETRYABLE

    def test_model_errors_are_fatal(self):
        assert classify_exception("SimulationError") == FATAL
        assert classify_exception("ValidationError") == FATAL
        assert classify_exception("ConfigError") == FATAL
        assert classify_exception("ValueError") == FATAL

    def test_retryable_attribute_wins(self):
        assert classify_exception("ValueError", retryable_attr=True) == RETRYABLE


class TestInlineRetryBackoff:
    def test_flaky_run_retries_until_success(self):
        attempts = []

        def flaky(record):
            attempts.append(record["workload"])
            if len(attempts) < 3:
                raise OSError("transient")
            return ok_task(record)

        delays = []
        obs = Observation()
        executor = CampaignExecutor(
            jobs=0,
            retries=2,
            backoff=0.5,
            jitter=0.0,
            task=flaky,
            observation=obs,
            sleep=delays.append,
            clock=lambda: 0.0,
        )
        [outcome] = executor.run([SPECS[0]])
        assert outcome.ok
        assert outcome.attempts == 3
        assert len(attempts) == 3
        # Pure exponential backoff with jitter off: 0.5s then 1.0s.
        assert delays == pytest.approx([0.5, 1.0])
        assert obs.bus.counts["run_retried"] == 2
        assert obs.metrics.counter("campaign.run_retried").value == 2

    def test_retry_budget_exhausted(self):
        def always_down(record):
            raise OSError("still down")

        executor = CampaignExecutor(
            jobs=0, retries=2, task=always_down,
            sleep=lambda s: None, clock=lambda: 0.0,
        )
        [outcome] = executor.run([SPECS[0]])
        assert outcome.status == "failed"
        assert outcome.attempts == 3
        assert outcome.failure.kind == RETRYABLE

    def test_fatal_failure_not_retried(self):
        calls = []

        def fatal(record):
            calls.append(1)
            raise ValueError("model bug")

        obs = Observation()
        executor = CampaignExecutor(jobs=0, task=fatal, observation=obs)
        [outcome] = executor.run([SPECS[0]])
        assert outcome.status == "failed"
        assert len(calls) == 1
        failure = outcome.failure
        assert failure.kind == FATAL
        assert failure.exception == "ValueError"
        assert "model bug" in failure.message
        assert "ValueError" in failure.traceback
        assert len(failure.config_digest) == 12
        assert obs.bus.counts["run_failed"] == 1
        assert obs.metrics.counter("campaign.run_failed").value == 1

    def test_simulation_error_diagnostics_preserved(self):
        from repro import SimulationError

        def wedged(record):
            raise SimulationError(
                "no retirement", diagnostics={"cycle": 123, "rob_depth": 4}
            )

        executor = CampaignExecutor(jobs=0, task=wedged)
        [outcome] = executor.run([SPECS[0]])
        assert outcome.failure.kind == FATAL
        assert outcome.failure.diagnostics == {"cycle": 123, "rob_depth": 4}


class TestCheckpointResume:
    def test_journal_written_per_run(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        CampaignExecutor(jobs=0, task=ok_task).run(SPECS, checkpoint=path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 4
        assert {l["spec"]["workload"] for l in lines} == {
            "alpha", "beta", "gamma", "delta"
        }

    def test_kill_and_resume_skips_journaled_runs(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        CampaignExecutor(jobs=0, task=ok_task).run(SPECS, checkpoint=path)
        # Simulate a crash after two completed cells: keep 2 records.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")

        executed = []

        def counting(record):
            executed.append(record["workload"])
            return ok_task(record)

        outcomes = CampaignExecutor(jobs=0, task=counting).run(
            SPECS, checkpoint=path, resume=True
        )
        assert sorted(executed) == ["delta", "gamma"]
        assert [o.key for o in outcomes] == [s.key for s in SPECS]
        assert [o.resumed for o in outcomes] == [True, True, False, False]
        # The journal now holds the full campaign again.
        assert len(load_checkpoint(path)) == 4

    def test_truncated_trailing_record_skipped_with_warning(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        CampaignExecutor(jobs=0, task=ok_task).run(SPECS, checkpoint=path)
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # chop the last record
        with pytest.warns(UserWarning, match="corrupt checkpoint record"):
            completed = load_checkpoint(path)
        assert len(completed) == 3

        # Resume re-runs only the chopped cell.
        executed = []

        def counting(record):
            executed.append(record["workload"])
            return ok_task(record)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            CampaignExecutor(jobs=0, task=counting).run(
                SPECS, checkpoint=path, resume=True
            )
        assert executed == ["delta"]

    def test_failed_cells_are_journaled_and_not_rerun(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        specs = [RunSpec("bad", "baseline", "tiny"), SPECS[0]]
        outcomes = CampaignExecutor(jobs=0, task=fatal_task).run(
            specs, checkpoint=path
        )
        assert outcomes[0].status == "failed"
        executed = []

        def counting(record):
            executed.append(record["workload"])
            return ok_task(record)

        resumed = CampaignExecutor(jobs=0, task=counting).run(
            specs, checkpoint=path, resume=True
        )
        assert executed == []
        assert resumed[0].status == "failed"
        assert resumed[0].failure.exception == "ValueError"

    def test_without_resume_checkpoint_starts_fresh(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        CampaignExecutor(jobs=0, task=ok_task).run(SPECS, checkpoint=path)
        CampaignExecutor(jobs=0, task=ok_task).run(
            SPECS[:1], checkpoint=path
        )
        assert len(load_checkpoint(path)) == 1


class TestProcessPool:
    def test_parallel_flaky_worker_retries(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FLAKY_DIR", str(tmp_path))
        obs = Observation()
        executor = CampaignExecutor(
            jobs=2, retries=2, backoff=0.05, task=flaky_task, observation=obs
        )
        outcomes = executor.run(SPECS)
        assert all(o.ok for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert obs.metrics.counter("campaign.run_retried").value == 4
        assert obs.metrics.counter("campaign.run_finished").value == 4

    def test_timeout_terminates_worker_and_marks_cell(self):
        specs = [
            RunSpec("slow", "baseline", "tiny"),
            RunSpec("quick", "baseline", "tiny"),
        ]
        obs = Observation()
        executor = CampaignExecutor(
            jobs=2, timeout=1.0, task=hang_task, observation=obs
        )
        started = time.monotonic()
        outcomes = executor.run(specs)
        assert time.monotonic() - started < 30  # not the 60s sleep
        by_key = {o.key: o for o in outcomes}
        assert by_key["slow/baseline"].status == "timeout"
        assert by_key["slow/baseline"].attempts == 1  # timeouts not retried
        assert by_key["slow/baseline"].failure.kind == TIMEOUT
        assert by_key["quick/baseline"].ok
        assert obs.bus.counts["run_failed"] == 1

    def test_dead_worker_is_retryable(self):
        executor = CampaignExecutor(jobs=1, retries=0, task=dying_task)
        [outcome] = executor.run(SPECS[:1])
        assert outcome.status == "failed"
        assert outcome.failure.exception == "WorkerDied"
        assert outcome.failure.kind == RETRYABLE
        assert "code 3" in outcome.failure.message


class TestDeterminism:
    def test_parallel_and_serial_results_identical(self):
        specs = matrix_specs(("xz",), ("baseline", "tea"), scale="tiny")
        serial = CampaignExecutor(jobs=0).run(specs)
        parallel = CampaignExecutor(jobs=2).run(specs)
        assert [o.key for o in serial] == [o.key for o in parallel]
        for a, b in zip(serial, parallel):
            assert a.stats == b.stats
            assert a.validated and b.validated


class TestFig5CampaignWithInjectedFaults:
    """The acceptance scenario: a fig5 campaign survives one injected
    timeout and one injected transient exception, marks the failed
    cell, retries the transient one, and resumes from its checkpoint
    after a simulated crash."""

    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("fig5")
        os.environ["FLAKY_DIR"] = str(tmp_path)
        checkpoint = tmp_path / "fig5.jsonl"
        workloads = ("xz", "mcf")
        executor = CampaignExecutor(
            jobs=2, timeout=10.0, retries=2, backoff=0.05,
            task=faulty_fig5_task,
        )
        suite = ExperimentSuite(
            scale="tiny", workloads=workloads, executor=executor
        )
        outcomes = suite.run_matrix(
            ("baseline", "tea"), checkpoint=checkpoint
        )
        return suite, outcomes, checkpoint, workloads

    def test_transient_fault_retried_to_success(self, campaign):
        _, outcomes, _, _ = campaign
        by_key = {o.key: o for o in outcomes}
        assert by_key["xz/tea"].ok
        assert by_key["xz/tea"].attempts == 2

    def test_hung_cell_marked_timeout(self, campaign):
        _, outcomes, _, _ = campaign
        by_key = {o.key: o for o in outcomes}
        assert by_key["mcf/tea"].status == "timeout"
        assert by_key["xz/baseline"].ok
        assert by_key["mcf/baseline"].ok

    def test_fig5_renders_with_failed_cell_marked(self, campaign):
        suite, _, _, _ = campaign
        data = suite.fig5()
        assert data["failures"] == {"mcf/tea": "timeout"}
        assert data["speedup_pct"]["mcf"] is None
        assert data["speedup_pct"]["xz"] is not None
        rendered = suite.render_fig5()
        assert "FAILED(timeout)" in rendered
        # The geomean is computed over the surviving workloads only.
        assert data["geomean_pct"] == pytest.approx(
            suite._gm_speedup("tea", ("xz",))
        )

    def test_resume_after_simulated_crash(self, campaign):
        _, _, checkpoint, workloads = campaign
        # Crash simulation: lose the last journaled record.
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines[:-1]) + "\n")
        lost = {json.loads(l)["spec"]["workload"] + "/"
                + json.loads(l)["spec"]["mode"] for l in lines[-1:]}

        executor = CampaignExecutor(
            jobs=2, timeout=10.0, retries=2, backoff=0.05,
            task=faulty_fig5_task,
        )
        suite = ExperimentSuite(
            scale="tiny", workloads=workloads, executor=executor
        )
        outcomes = suite.run_matrix(
            ("baseline", "tea"), checkpoint=checkpoint, resume=True
        )
        assert sum(1 for o in outcomes if not o.resumed) == 1
        assert {o.key for o in outcomes if not o.resumed} == lost
        summary = summarize_outcomes(outcomes)
        assert summary["ok"] + summary["timeout"] == 4


class TestOutcomeRoundtrip:
    def test_as_record_roundtrip(self):
        spec = RunSpec("xz", "tea", "tiny", max_cycles=1000, seed=7)
        outcome = RunOutcome(
            spec=spec, status="ok", attempts=2,
            stats={"cycles": 10, "retired_instructions": 20},
            validated=True, halted=True,
        )
        back = RunOutcome.from_record(
            json.loads(json.dumps(outcome.as_record()))
        )
        assert back.spec == spec
        assert back.stats == outcome.stats
        assert back.resumed is True
        assert back.sim_stats().ipc == pytest.approx(2.0)

    def test_failed_outcome_renders_placeholder_result(self):
        from repro.harness.executor import RunFailure

        outcome = RunOutcome(
            spec=RunSpec("xz", "tea", "tiny"),
            status="timeout",
            failure=RunFailure(
                kind=TIMEOUT, exception="RunTimeout", message="too slow",
                traceback="", config_digest="0" * 12, seed=0,
            ),
        )
        result = outcome.run_result()
        assert not result.ok
        assert result.failure == "timeout"
        assert result.ipc == 0.0


def hang_once_task(record):
    """Hangs on the first attempt per cell (marker files, so it works
    across worker processes), then completes — exercises hung-worker
    replacement under ``retry_timeouts``."""
    marker = os.path.join(
        os.environ["FLAKY_DIR"], "hang_" + record["workload"]
    )
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        time.sleep(60)
    return ok_task(record)


def marker_task(record):
    """Completes normally but drops a marker file the parent's ``stop``
    hook can watch — cross-process drain trigger."""
    marker = os.path.join(os.environ["FLAKY_DIR"], "drain_marker")
    with open(marker, "w") as fh:
        fh.write(record["workload"])
    return ok_task(record)


class TestBackoffJitter:
    def test_jitter_is_seeded_and_bounded(self):
        def always_down(record):
            raise OSError("still down")

        def delays_for(seed):
            delays = []
            CampaignExecutor(
                jobs=0, retries=3, backoff=0.5, jitter=0.25,
                jitter_seed=seed, task=always_down,
                sleep=delays.append, clock=lambda: 0.0,
            ).run([SPECS[0]])
            return delays

        first = delays_for(7)
        assert len(first) == 3
        for attempt, delay in enumerate(first, start=1):
            base = 0.5 * 2 ** (attempt - 1)
            assert base <= delay < base * 1.25
        # Same seed replays the same schedule; another seed desyncs,
        # so a burst of failures does not re-launch in lockstep.
        assert delays_for(7) == first
        assert delays_for(8) != first

    def test_run_retried_event_carries_backoff_schedule(self):
        def always_down(record):
            raise OSError("still down")

        obs = Observation()
        got = []
        obs.bus.subscribe(got.append, ("run_retried",))
        executor = CampaignExecutor(
            jobs=0, retries=2, backoff=0.5, jitter=0.5, jitter_seed=3,
            task=always_down, observation=obs,
            sleep=lambda s: None, clock=lambda: 0.0,
        )
        [outcome] = executor.run([SPECS[0]])
        assert outcome.status == "failed"
        assert [e.data["attempt"] for e in got] == [1, 2]
        assert got[0].data["backoff"] == pytest.approx(0.5)
        assert got[1].data["backoff"] == pytest.approx(1.0)
        for event in got:
            base = event.data["backoff"]
            assert base <= event.data["delay"] <= base * 1.5

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            CampaignExecutor(jobs=0, jitter=-0.1)


class TestRetryTimeouts:
    def test_hung_worker_replaced_and_cell_retried(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("FLAKY_DIR", str(tmp_path))
        obs = Observation()
        executor = CampaignExecutor(
            jobs=1, timeout=1.0, retries=1, backoff=0.05,
            retry_timeouts=True, task=hang_once_task, observation=obs,
        )
        [outcome] = executor.run([RunSpec("slow", "baseline", "tiny")])
        assert outcome.ok
        assert outcome.attempts == 2
        assert obs.bus.counts["run_retried"] == 1

    def test_timeout_retry_budget_exhausted(self):
        executor = CampaignExecutor(
            jobs=1, timeout=0.5, retries=1, backoff=0.05,
            retry_timeouts=True, task=hang_task,
        )
        [outcome] = executor.run([RunSpec("slow", "baseline", "tiny")])
        assert outcome.status == "timeout"
        assert outcome.attempts == 2


class TestDrainStop:
    def test_inline_stop_leaves_cells_unsettled_and_resumable(
        self, tmp_path
    ):
        path = tmp_path / "cp.jsonl"
        done = []

        def task(record):
            done.append(record["workload"])
            return ok_task(record)

        outcomes = CampaignExecutor(
            jobs=0, task=task, stop=lambda: len(done) >= 2,
        ).run(SPECS, checkpoint=path)
        # run() returns only settled cells; the rest stay unsettled.
        assert len(outcomes) == 2
        assert done == ["alpha", "beta"]

        resumed = CampaignExecutor(jobs=0, task=task).run(
            SPECS, checkpoint=path, resume=True
        )
        assert len(resumed) == 4
        assert done == ["alpha", "beta", "gamma", "delta"]

    def test_pool_stop_drains_workers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FLAKY_DIR", str(tmp_path))
        marker = tmp_path / "drain_marker"
        path = tmp_path / "cp.jsonl"
        outcomes = CampaignExecutor(
            jobs=1, task=marker_task, stop=marker.exists,
        ).run(SPECS, checkpoint=path)
        assert 0 < len(outcomes) < len(SPECS)
        assert all(o.ok for o in outcomes)
        # Settled cells were journaled before the drain; a resume
        # completes exactly the remainder.
        assert len(load_checkpoint(path)) == len(outcomes)
        resumed = CampaignExecutor(jobs=0, task=ok_task).run(
            SPECS, checkpoint=path, resume=True
        )
        assert len(resumed) == len(SPECS)
        assert all(o.ok for o in resumed)


class TestTornJournalRecovery:
    def test_read_journal_lines_resyncs_glued_record(self):
        from repro.harness.executor import read_journal_lines

        good = json.dumps({"k": 1})
        text = good + "\n" + '{"torn": ' + good + "\nnot json at all\n"
        records, counters = read_journal_lines(text)
        assert [record for _, record in records] == [{"k": 1}, {"k": 1}]
        assert counters["recovered"] == 1
        assert counters["skipped"] == 1

    def test_mid_file_torn_record_recovered_with_warning(self, tmp_path):
        path = tmp_path / "cp.jsonl"
        CampaignExecutor(jobs=0, task=ok_task).run(SPECS, checkpoint=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        # Simulate a torn write: record 1 loses its tail and record 2
        # lands glued onto the same line without a newline.
        glued = lines[1][:10] + lines[2]
        path.write_text("\n".join([lines[0], glued, lines[3]]) + "\n")
        with pytest.warns(UserWarning, match="journal damage"):
            outcomes = load_checkpoint(path)
        assert set(outcomes) == {
            SPECS[0].key, SPECS[2].key, SPECS[3].key,
        }
        # The salvaged journal still resumes: only the lost cell reruns.
        executed = []

        def counting(record):
            executed.append(record["workload"])
            return ok_task(record)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = CampaignExecutor(jobs=0, task=counting).run(
                SPECS, checkpoint=path, resume=True
            )
        assert executed == ["beta"]
        assert len(resumed) == 4
