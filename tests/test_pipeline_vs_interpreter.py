"""Property test: random structured programs commit identical state on
the OoO pipeline and the sequential reference interpreter.

This is the strongest correctness property in the suite: it exercises
speculation, flush recovery, store buffering, forwarding, and renaming
against a golden model on arbitrarily-shaped (but always-terminating)
programs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.isa import run_program
from repro.tea import TeaConfig

_REGS = [f"r{i}" for i in range(1, 11)]
_MEM_BASE = 4096
_MEM_WORDS = 32


def _generate_source(rng: random.Random) -> str:
    """A random always-terminating program: a counted loop whose body
    mixes ALU ops, masked loads/stores, and forward data-dependent
    branches."""
    lines = [
        f"    li r20, {rng.randint(8, 24)}   # loop bound",
        f"    li r21, {_MEM_BASE}",
        "    li r22, 0                        # loop counter",
    ]
    for reg in _REGS:
        lines.append(f"    li {reg}, {rng.randint(-50, 50)}")
    lines.append("top:")
    skip_id = 0
    body_len = rng.randint(4, 14)
    for _ in range(body_len):
        kind = rng.random()
        a, b, c = (rng.choice(_REGS) for _ in range(3))
        if kind < 0.45:
            op = rng.choice(
                ["add", "sub", "and", "or", "xor", "mul", "slt", "min", "max"]
            )
            lines.append(f"    {op} {a}, {b}, {c}")
        elif kind < 0.6:
            op = rng.choice(["addi", "xori", "shli", "shri", "andi"])
            imm = rng.randint(0, 7) if op in ("shli", "shri") else rng.randint(-9, 9)
            lines.append(f"    {op} {a}, {b}, {imm}")
        elif kind < 0.75:  # masked load
            lines.append(f"    andi r19, {b}, {_MEM_WORDS - 1}")
            lines.append("    shli r19, r19, 3")
            lines.append("    add r19, r19, r21")
            lines.append(f"    ld {a}, 0(r19)")
        elif kind < 0.88:  # masked store
            lines.append(f"    andi r19, {b}, {_MEM_WORDS - 1}")
            lines.append("    shli r19, r19, 3")
            lines.append("    add r19, r19, r21")
            lines.append(f"    st {a}, 0(r19)")
        else:  # forward data-dependent skip
            op = rng.choice(["beq", "bne", "blt", "bge"])
            lines.append(f"    {op} {a}, {b}, skip{skip_id}")
            lines.append(f"    addi {c}, {c}, {rng.randint(-3, 3)}")
            lines.append(f"skip{skip_id}:")
            skip_id += 1
    lines.append("    addi r22, r22, 1")
    lines.append("    blt r22, r20, top")
    lines.append("    halt")
    return "\n".join(lines)


def _initial_memory(rng: random.Random) -> dict[int, int]:
    return {
        _MEM_BASE + 8 * i: rng.randint(-100, 100) for i in range(_MEM_WORDS)
    }


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=25, deadline=None)
def test_pipeline_matches_interpreter(seed):
    rng = random.Random(seed)
    source = _generate_source(rng)
    init = _initial_memory(rng)
    program = assemble(source)

    reference = run_program(program, MemoryImage(init), max_steps=200_000)
    pipeline = Pipeline(program, MemoryImage(init), SimConfig())
    pipeline.run(max_cycles=2_000_000)

    assert pipeline.halted
    for reg in range(1, 23):
        assert pipeline.architectural_register(reg) == reference.registers[reg], (
            f"seed={seed} r{reg} mismatch"
        )
    assert pipeline.memory.snapshot() == reference.memory.snapshot()


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=8, deadline=None)
def test_tea_pipeline_matches_interpreter(seed):
    """The TEA thread is pure speculation: enabling it must never
    change architectural results."""
    rng = random.Random(seed)
    source = _generate_source(rng)
    init = _initial_memory(rng)
    program = assemble(source)

    reference = run_program(program, MemoryImage(init), max_steps=200_000)
    pipeline = Pipeline(program, MemoryImage(init), SimConfig(tea=TeaConfig()))
    pipeline.run(max_cycles=2_000_000)

    assert pipeline.halted
    for reg in range(1, 23):
        assert pipeline.architectural_register(reg) == reference.registers[reg]
    assert pipeline.memory.snapshot() == reference.memory.snapshot()


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=6, deadline=None)
def test_runahead_pipeline_matches_interpreter(seed):
    """Branch Runahead overrides only steer speculation: enabling the
    chain engine must never change architectural results either."""
    from repro.runahead import RunaheadConfig

    rng = random.Random(seed)
    source = _generate_source(rng)
    init = _initial_memory(rng)
    program = assemble(source)

    reference = run_program(program, MemoryImage(init), max_steps=200_000)
    pipeline = Pipeline(
        program, MemoryImage(init), SimConfig(runahead=RunaheadConfig())
    )
    pipeline.run(max_cycles=2_000_000)

    assert pipeline.halted
    for reg in range(1, 23):
        assert pipeline.architectural_register(reg) == reference.registers[reg]
    assert pipeline.memory.snapshot() == reference.memory.snapshot()
