"""Unit + property tests for the set-associative cache tag array."""

from hypothesis import given, settings, strategies as st

from repro.memory import LINE_BYTES, Cache, line_address

import pytest


def small_cache(ways=2, sets=4):
    return Cache("test", LINE_BYTES * ways * sets, ways)


class TestGeometry:
    def test_set_count(self):
        cache = Cache("l1", 32 * 1024, 8)
        assert cache.num_sets == 64

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            Cache("bad", LINE_BYTES * 3, 1)

    def test_line_address(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 64


class TestHitMiss:
    def test_cold_miss_then_hit_after_fill(self):
        cache = small_cache()
        assert cache.access(0) is False
        cache.fill(0)
        assert cache.access(0) is True
        assert (cache.hits, cache.misses) == (1, 1)

    def test_same_line_different_offsets(self):
        cache = small_cache()
        cache.fill(128)
        assert cache.access(128 + 63) is True

    def test_lru_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        a, b, c = 0, 64, 128  # all map to set 0
        cache.fill(a)
        cache.fill(b)
        cache.access(a)      # refresh a; b is now LRU
        cache.fill(c)        # evicts b
        assert cache.lookup(a)
        assert not cache.lookup(b)
        assert cache.lookup(c)

    def test_lookup_has_no_side_effects(self):
        cache = small_cache()
        cache.lookup(0)
        assert cache.accesses == 0

    def test_invalidate_all(self):
        cache = small_cache()
        cache.fill(0)
        cache.invalidate_all()
        assert not cache.lookup(0)
        assert cache.hit_rate() == 0.0


class TestOccupancyInvariant:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=63).map(lambda line: line * 64),
            max_size=300,
        )
    )
    @settings(max_examples=50)
    def test_sets_never_exceed_ways(self, addresses):
        cache = small_cache(ways=2, sets=4)
        for addr in addresses:
            if not cache.access(addr):
                cache.fill(addr)
        for cset in cache._sets:
            assert len(cset) <= cache.ways

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_refill_always_makes_line_present(self, addresses):
        cache = small_cache(ways=4, sets=8)
        for addr in addresses:
            cache.fill(addr)
            assert cache.lookup(addr)
