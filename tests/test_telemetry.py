"""Cross-process campaign telemetry: relay, aggregator, progress view.

Covers the ISSUE 6 tentpole layer 1 plus its satellite: forced-sampling
drop-counter correctness, out-of-order/duplicate sequence numbers,
worker crash mid-stream, end-to-end inline and pool campaigns, and the
``--follow`` progress rendering.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.harness import CampaignExecutor, RunSpec
from repro.obs import (
    CampaignProgressView,
    Observation,
    TelemetryAggregator,
    TelemetryRelay,
    current_relay,
    set_current_relay,
)
from repro.obs.aggregate import DEFAULT_SAMPLE_PERIODS


# ======================================================================
# Relay unit tests
# ======================================================================
class _Sink:
    def __init__(self):
        self.messages = []

    def send(self, msg):
        self.messages.append(msg)


def test_relay_samples_and_counts_drops():
    """1-in-N sampling forwards exactly ceil(n/N) and counts the rest."""
    sink = _Sink()
    relay = TelemetryRelay(
        sink.send, run="w/m", sample={"branch_retire": 4}, snapshot_every=10**9
    )
    obs = Observation(record_events=False)
    relay.attach(obs)
    for i in range(10):
        obs.bus.emit("branch_retire", pc=64, mispredicted=False)
    events = [m for m in sink.messages if m[1]["kind"] == "event"]
    assert len(events) == 3  # indices 0, 4, 8
    assert relay.dropped == {"branch_retire": 7}
    relay.send_snapshot()
    snapshot = sink.messages[-1][1]
    assert snapshot["kind"] == "snapshot"
    assert snapshot["payload"]["dropped"] == {"branch_retire": 7}
    assert snapshot["payload"]["emitted"] == {"branch_retire": 10}


def test_relay_unsampled_types_forward_everything():
    sink = _Sink()
    relay = TelemetryRelay(sink.send, run="w/m", snapshot_every=10**9)
    obs = Observation(record_events=False)
    relay.attach(obs)
    for _ in range(5):
        obs.bus.emit("early_flush", penalty=3)
    events = [m for m in sink.messages if m[1]["kind"] == "event"]
    assert len(events) == 5
    assert relay.dropped == {}


def test_relay_envelopes_are_tagged_and_sequenced():
    sink = _Sink()
    relay = TelemetryRelay(sink.send, run="xz/tea", worker=3)
    relay.send_snapshot()
    relay.send_snapshot()
    envelopes = [m[1] for m in sink.messages]
    assert [e["seq"] for e in envelopes] == [0, 1]
    assert all(e["run"] == "xz/tea" and e["worker"] == 3 for e in envelopes)
    assert all(m[0] == "telemetry" for m in sink.messages)


def test_relay_transport_failure_burns_sequence_numbers():
    """A failed send must surface as a seq gap, never silence."""
    calls = {"n": 0}

    def flaky_send(msg):
        calls["n"] += 1
        if calls["n"] == 2:
            raise OSError("pipe gone")

    relay = TelemetryRelay(flaky_send, run="w/m")
    relay.send_snapshot()      # seq 0, delivered
    relay.send_snapshot()      # seq 1, raises -> relay marked broken
    relay.send_snapshot()      # seq 2, skipped (broken)
    assert relay.transport_failures == 2
    assert relay._seq == 3


def test_relay_periodic_snapshots():
    sink = _Sink()
    relay = TelemetryRelay(sink.send, run="w/m", snapshot_every=8)
    obs = Observation(record_events=False)
    relay.attach(obs)
    for _ in range(20):
        obs.bus.emit("early_flush", penalty=1)
    kinds = [m[1]["kind"] for m in sink.messages]
    assert kinds.count("snapshot") == 2


def test_ambient_relay_slot():
    assert current_relay() is None
    relay = TelemetryRelay(lambda m: None, run="w/m")
    set_current_relay(relay)
    try:
        assert current_relay() is relay
    finally:
        set_current_relay(None)
    assert current_relay() is None


# ======================================================================
# Aggregator unit tests
# ======================================================================
def _envelope(seq, kind="event", run="w/m", worker=1, payload=None):
    return {
        "run": run,
        "worker": worker,
        "seq": seq,
        "kind": kind,
        "payload": payload if payload is not None else {"type": "flush"},
    }


def test_aggregator_detects_transport_gaps():
    agg = TelemetryAggregator()
    agg.ingest(_envelope(0))
    agg.ingest(_envelope(1))
    agg.ingest(_envelope(5))   # 2, 3, 4 lost in transport
    assert agg.transport_drops == 3
    assert agg.sampled_events == 3


def test_aggregator_ignores_duplicates_and_reordering():
    agg = TelemetryAggregator()
    agg.ingest(_envelope(0))
    agg.ingest(_envelope(1))
    agg.ingest(_envelope(1))   # duplicate
    agg.ingest(_envelope(0))   # stale reordering
    assert agg.duplicates == 2
    assert agg.sampled_events == 2
    assert agg.transport_drops == 0


def test_aggregator_tracks_sources_independently():
    agg = TelemetryAggregator()
    agg.ingest(_envelope(0, worker=1))
    agg.ingest(_envelope(0, worker=2))  # separate seq space, no dup
    agg.ingest(_envelope(0, run="a/b", worker=1))
    assert agg.duplicates == 0
    assert agg.sampled_events == 3


def test_aggregator_rollup_merges_histograms_with_percentiles():
    agg = TelemetryAggregator()

    def snapshot(run, counts):
        return _envelope(
            0,
            kind="snapshot",
            run=run,
            payload={
                "emitted": {},
                "dropped": {},
                "metrics": {
                    "counters": {},
                    "gauges": {},
                    "histograms": {
                        "tea.chain_length": {
                            "edges": [1, 2, 4],
                            "counts": counts,
                            "count": sum(counts),
                            "sum": 10,
                            "min": 1,
                            "max": 4,
                        }
                    },
                },
            },
        )

    # Two modes of the same workload merge bucket-wise.
    agg.ingest(snapshot("xz/tea", [1, 2, 3, 0]))
    agg.ingest(snapshot("xz/baseline", [2, 0, 1, 0]))
    rollup = agg.rollup()
    merged = rollup["histograms"]["xz"]["tea.chain_length"]
    assert merged["counts"] == [3, 2, 4, 0]
    assert merged["count"] == 9
    assert merged["p50"] is not None and merged["p99"] is not None


def test_aggregator_rollup_reports_sampling_drops():
    agg = TelemetryAggregator()
    agg.ingest(_envelope(0, kind="snapshot", payload={
        "emitted": {"branch_retire": 100},
        "dropped": {"branch_retire": 75},
    }))
    rollup = agg.rollup()
    assert rollup["drops"]["sampling"] == {"branch_retire": 75}
    assert rollup["drops"]["sampling_total"] == 75
    assert rollup["events"]["emitted"] == {"branch_retire": 100}


def test_aggregator_cell_lifecycle_and_eta():
    clock = {"t": 0.0}
    agg = TelemetryAggregator(jobs=2, clock=lambda: clock["t"])
    specs = [RunSpec("a", "tea"), RunSpec("b", "tea"), RunSpec("c", "tea")]
    agg.register_specs(specs)
    assert agg.rollup()["cells"]["pending"] == 3
    agg.on_run_started("a/tea")

    class Outcome:
        key = "a/tea"
        status = "ok"
        attempts = 1
        duration = 10.0
        stats = {"cycles": 1000}

    agg.on_run_settled(Outcome())
    rollup = agg.rollup()
    assert rollup["cells"]["ok"] == 1
    assert rollup["cells"]["pending"] == 2
    # 2 remaining cells x 10s mean / 2 jobs = 10s.
    assert rollup["throughput"]["eta_seconds"] == pytest.approx(10.0)
    assert rollup["throughput"]["simulated_cycles"] == 1000


def test_aggregator_never_raises_on_malformed_input():
    agg = TelemetryAggregator()
    agg.ingest("not a dict")
    agg.ingest({"seq": "NaN", "kind": "event"})
    agg.ingest({})
    assert agg.duplicates >= 1  # the non-dict is counted, not raised


# ======================================================================
# End-to-end campaigns
# ======================================================================
def test_inline_campaign_streams_telemetry():
    agg = TelemetryAggregator()
    executor = CampaignExecutor(jobs=0, telemetry=agg)
    specs = [RunSpec("xz", "tea", scale="tiny", max_cycles=200_000)]
    outcomes = executor.run(specs)
    assert all(o.ok for o in outcomes)
    assert current_relay() is None  # inline relay cleared afterwards
    rollup = agg.rollup()
    assert rollup["cells"]["ok"] == 1
    assert rollup["events"]["sampled"] > 0
    # Exact per-type totals come from the final worker snapshot.
    assert rollup["events"]["emitted"]["branch_resolved"] > 0
    assert rollup["drops"]["transport"] == 0
    assert rollup["drops"]["duplicates"] == 0
    # Sampling drops are declared, not silent.
    sampled_types = set(DEFAULT_SAMPLE_PERIODS) & set(
        rollup["events"]["emitted"]
    )
    assert any(t in rollup["drops"]["sampling"] for t in sampled_types)
    # Histograms made it across with percentiles.
    hists = rollup["histograms"]["xz"]
    assert hists["tea.cycles_saved"]["count"] > 0
    assert "p95" in hists["tea.cycles_saved"]


def test_pool_campaign_streams_telemetry():
    agg = TelemetryAggregator()
    executor = CampaignExecutor(jobs=2, telemetry=agg)
    specs = [
        RunSpec("xz", "tea", scale="tiny", max_cycles=200_000),
        RunSpec("xz", "baseline", scale="tiny", max_cycles=200_000),
    ]
    outcomes = executor.run(specs)
    assert all(o.ok for o in outcomes)
    rollup = agg.rollup()
    assert rollup["cells"] == {
        "total": 2, "ok": 2, "failed": 0, "timeout": 0,
        "running": 0, "pending": 0, "retried": 0,
    }
    assert rollup["events"]["sampled"] > 0
    assert rollup["drops"]["transport"] == 0
    assert rollup["throughput"]["simulated_cycles"] > 0


def _crashing_task(record):
    """Module-level (picklable) task that dies mid-telemetry-stream."""
    relay = current_relay()
    if relay is not None:
        for i in range(5):
            relay._post("event", {"type": "flush", "cycle": i})
    os._exit(17)


def test_pool_worker_crash_mid_stream():
    """A worker dying mid-stream must not wedge or corrupt the parent:
    pre-crash telemetry is kept, the cell retries and finally fails."""
    agg = TelemetryAggregator()
    executor = CampaignExecutor(
        jobs=1, retries=1, backoff=0.0, task=_crashing_task, telemetry=agg
    )
    outcomes = executor.run([RunSpec("xz", "tea", scale="tiny")])
    assert outcomes[0].status == "failed"
    assert outcomes[0].failure.exception == "WorkerDied"
    assert outcomes[0].attempts == 2
    assert agg.sampled_events == 10  # 5 from each attempt
    rollup = agg.rollup()
    assert rollup["cells"]["failed"] == 1
    assert rollup["cells"]["retried"] == 1


def test_pool_each_attempt_gets_fresh_worker_id():
    agg = TelemetryAggregator()
    executor = CampaignExecutor(
        jobs=1, retries=1, backoff=0.0, task=_crashing_task, telemetry=agg
    )
    executor.run([RunSpec("xz", "tea", scale="tiny")])
    # Two attempts -> two (run, worker) sources, no false duplicates.
    assert len(agg._last_seq) == 2
    assert agg.duplicates == 0


# ======================================================================
# Progress view
# ======================================================================
def _specs_matrix():
    return [
        RunSpec(w, m, scale="tiny")
        for w in ("bfs", "xz")
        for m in ("baseline", "tea")
    ]


def test_progress_view_non_tty_prints_status_lines():
    stream = io.StringIO()
    specs = _specs_matrix()
    view = CampaignProgressView(specs, stream=stream, min_interval=0.0)
    agg = TelemetryAggregator(on_update=view.render)
    agg.register_specs(specs)
    agg.on_run_started("bfs/baseline")

    class Outcome:
        key = "bfs/baseline"
        status = "ok"
        attempts = 1
        duration = 1.0
        stats = {"cycles": 10}

    agg.on_run_settled(Outcome())
    view.finish(agg)
    out = stream.getvalue()
    assert "campaign:" in out
    assert "1/4 done" in out
    assert "ok=1" in out


def test_progress_view_tty_renders_matrix_in_place():
    class Tty(io.StringIO):
        def isatty(self):
            return True

    stream = Tty()
    specs = _specs_matrix()
    view = CampaignProgressView(specs, stream=stream, min_interval=0.0)
    agg = TelemetryAggregator()
    agg.register_specs(specs)
    view.render(agg, force=True)
    out = stream.getvalue()
    assert "bfs" in out and "xz" in out
    assert "baseline" in out and "tea" in out
    view.render(agg, force=True)
    # Second render rewinds with cursor-up and erases lines.
    assert "\x1b[" in stream.getvalue()


def test_rollup_is_json_serializable():
    agg = TelemetryAggregator()
    agg.register_specs(_specs_matrix())
    agg.ingest(_envelope(0))
    json.dumps(agg.rollup())
