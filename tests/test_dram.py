"""Unit tests for the banked row-buffer DRAM model."""

from repro.memory import DramConfig, DramModel


def make_model(**kwargs):
    return DramModel(DramConfig(**kwargs))


class TestRowBuffer:
    def test_first_access_opens_row(self):
        dram = make_model()
        done = dram.request(0, 0)
        assert done > 0
        assert dram.row_misses == 1
        assert dram.row_hits == 0

    def test_second_access_same_row_is_faster(self):
        dram = make_model()
        first = dram.request(0, 0)
        second_start = first + 100
        second = dram.request(0, second_start)
        assert dram.row_hits == 1
        assert (second - second_start) < first  # row hit is cheaper

    def test_row_conflict_is_slowest(self):
        cfg = DramConfig()
        dram = DramModel(cfg)
        dram.request(0, 0)
        # Same bank, different row: row_bytes * channels apart.
        conflict_addr = cfg.row_bytes * cfg.channels
        start = 10_000
        conflict_done = dram.request(conflict_addr, start)
        hit_model = DramModel(cfg)
        hit_model.request(0, 0)
        hit_done = hit_model.request(0, start)
        assert (conflict_done - start) > (hit_done - start)

    def test_row_hit_rate(self):
        dram = make_model()
        dram.request(0, 0)
        dram.request(0, 1000)
        dram.request(0, 2000)
        assert dram.row_hit_rate() == 2 / 3


class TestParallelism:
    def test_different_banks_overlap(self):
        """Two requests to different banks complete closer together
        than two to the same bank."""
        cfg = DramConfig()
        same = DramModel(cfg)
        base = cfg.row_bytes * cfg.channels  # same bank, new row
        s1 = same.request(0, 0)
        s2 = same.request(base, 0)

        diff = DramModel(cfg)
        d1 = diff.request(0, 0)
        d2 = diff.request(cfg.channels * 64, 0)  # next bank
        assert max(d1, d2) <= max(s1, s2)

    def test_channel_bus_serializes(self):
        dram = make_model(channels=1, bank_groups=1, banks_per_group=1)
        first = dram.request(0, 0)
        second = dram.request(0, 0)
        assert second > first  # burst transfers serialize

    def test_completion_monotonic_with_cycle(self):
        dram = make_model()
        early = dram.request(0, 0)
        late = dram.request(64 * 2, early + 500)
        assert late > early


class TestProbe:
    def test_probe_does_not_mutate(self):
        dram = make_model()
        dram.request(0, 0)
        before = (dram.row_hits, dram.row_misses, dram.requests)
        estimate = dram.probe(0, 1000)
        assert estimate > 1000
        assert (dram.row_hits, dram.row_misses, dram.requests) == before

    def test_probe_tracks_open_row(self):
        dram = make_model()
        dram.request(0, 0)
        hit_estimate = dram.probe(0, 10_000)
        cfg = dram.config
        conflict = dram.probe(cfg.row_bytes * cfg.channels, 10_000)
        assert conflict > hit_estimate
