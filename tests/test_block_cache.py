"""Unit tests for the Block Cache (masks, empty-tag store, eviction)."""

from repro.tea import BlockCache, TeaConfig


class TestLookups:
    def test_miss_vs_empty_hit_vs_hit(self):
        bc = BlockCache()
        assert bc.lookup(0x100) is None          # miss
        bc.insert(0x100, 0)
        assert bc.lookup(0x100) == 0             # empty-tag hit
        bc.insert(0x200, 0b101)
        assert bc.lookup(0x200) == 0b101         # data hit
        assert bc.misses == 1
        assert bc.empty_hits == 1
        assert bc.hits == 1

    def test_peek_has_no_side_effects(self):
        bc = BlockCache()
        bc.insert(0x100, 0b1)
        bc.peek(0x100)
        bc.peek(0x999)
        assert bc.hits == 0 and bc.misses == 0


class TestMaskCombining:
    def test_masks_or_combined(self):
        """§III-E: chains from multiple control flows are merged."""
        bc = BlockCache()
        bc.insert(0x100, 0b1000)   # path A-B-D
        bc.insert(0x100, 0b0100)   # path A-C-D
        assert bc.peek(0x100) == 0b1100

    def test_no_masks_ablation_overwrites(self):
        bc = BlockCache(TeaConfig(use_masks=False))
        bc.insert(0x100, 0b1000)
        bc.insert(0x100, 0b0100)
        assert bc.peek(0x100) == 0b0100

    def test_mask_going_empty_moves_to_empty_store(self):
        bc = BlockCache(TeaConfig(use_masks=False))
        bc.insert(0x100, 0b1)
        bc.insert(0x100, 0)
        assert bc.peek(0x100) == 0
        assert bc.occupancy[0] == 0  # no data-entry cost


class TestCapacity:
    def test_data_cost_in_8_uop_entries(self):
        bc = BlockCache(TeaConfig(block_cache_entries=2))
        bc.insert(0x100, (1 << 9) - 1)  # 9 uops -> 2 entries
        bc.insert(0x200, 0b1)           # 1 uop -> 1 entry; evicts LRU
        assert bc.peek(0x100) is None
        assert bc.peek(0x200) == 0b1
        assert bc.evictions == 1

    def test_lru_refresh_on_lookup(self):
        bc = BlockCache(TeaConfig(block_cache_entries=2))
        bc.insert(0x100, 0b1)
        bc.insert(0x200, 0b1)
        bc.lookup(0x100)           # refresh
        bc.insert(0x300, 0b1)      # evicts 0x200
        assert bc.peek(0x100) == 0b1
        assert bc.peek(0x200) is None

    def test_empty_store_capacity(self):
        bc = BlockCache(TeaConfig(empty_tag_entries=2))
        for addr in (0x100, 0x200, 0x300):
            bc.insert(addr, 0)
        assert bc.peek(0x100) is None
        assert bc.peek(0x300) == 0

    def test_empty_entries_cost_no_data_storage(self):
        """The paper's optimization: empty blocks use the tag-only
        store, preserving data capacity."""
        bc = BlockCache(TeaConfig(block_cache_entries=1, empty_tag_entries=8))
        bc.insert(0x100, 0b1)
        for addr in (0x200, 0x300, 0x400):
            bc.insert(addr, 0)
        assert bc.peek(0x100) == 0b1  # survived


class TestReset:
    def test_reset_clears_everything(self):
        bc = BlockCache()
        bc.insert(0x100, 0b1)
        bc.insert(0x200, 0)
        bc.reset_masks()
        assert bc.peek(0x100) is None
        assert bc.peek(0x200) is None
        assert bc.mask_resets == 1
        assert len(bc) == 0
