"""Cycle-exactness regression: event-driven scheduler vs seed golden.

The event-driven wakeup scheduler (and every hot-loop optimization
around it) must be a pure performance transformation: ``SimStats`` on
the full fig5 workload x mode matrix have to match, field for field,
the values captured from the seed polling-scheduler simulator.  The
golden file (``tests/data/golden_simstats.json``) pins all counters —
cycles, mispredicts, coverage, flush and TEA/runahead accounting — for
every workload under every mode (baseline, tea, tea_dedicated,
runahead, crisp), so any behavioural drift in scheduling, wakeup,
fast-forward, or completion ordering fails loudly here.
"""

import json
from pathlib import Path

import pytest

from repro.harness.runner import run_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_simstats.json"

with GOLDEN_PATH.open() as fh:
    GOLDEN = json.load(fh)

CELLS = sorted(GOLDEN["stats"])


@pytest.mark.parametrize("cell", CELLS)
def test_simstats_match_seed_golden(cell):
    workload, mode = cell.split("/")
    stats = run_workload(workload, mode, GOLDEN["scale"]).stats
    want = GOLDEN["stats"][cell]
    got = {field: getattr(stats, field) for field in GOLDEN["fields"]}
    mismatched = {
        field: {"golden": want[field], "got": got[field]}
        for field in GOLDEN["fields"]
        if got[field] != want[field]
    }
    assert not mismatched, (
        f"{cell}: SimStats diverged from the seed simulator: {mismatched}"
    )


def test_golden_file_covers_all_modes():
    """The matrix must keep covering every fig5 mechanism."""
    modes = {cell.split("/")[1] for cell in CELLS}
    assert {"baseline", "tea", "tea_dedicated", "runahead", "crisp"} <= modes
