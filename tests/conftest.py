"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.tea import TeaConfig


def assemble_and_run(source, memory=None, config=None, max_cycles=2_000_000):
    """Assemble, simulate to halt, and return the pipeline."""
    program = assemble(source)
    pipeline = Pipeline(program, memory or MemoryImage(), config or SimConfig())
    pipeline.run(max_cycles=max_cycles)
    assert pipeline.halted, "program did not halt"
    return pipeline


#: A small kernel with one genuinely hard-to-predict branch: sums the
#: non-negative entries of a random ±array.  Used across integration
#: tests for the baseline, TEA, and Branch Runahead.
H2P_LOOP_SRC = """
    li r1, 0          # sum
    li r2, 0          # i
    li r3, {n}
    li r4, 4096       # data base
loop:
    shli r5, r2, 3
    add r5, r5, r4
    ld r6, 0(r5)
    blt r6, r0, skip  # H2P: sign of random data
    add r1, r1, r6
skip:
    addi r2, r2, 1
    blt r2, r3, loop
    halt
"""


def h2p_loop_workload(n=2000, seed=7):
    """(source, memory, expected_sum) for the H2P loop kernel."""
    rng = random.Random(seed)
    values = [rng.choice([-1, 1]) * rng.randint(1, 9) for _ in range(n)]
    memory = MemoryImage()
    memory.write_array(4096, values)
    expected = sum(v for v in values if v >= 0)
    return H2P_LOOP_SRC.format(n=n), memory, expected


@pytest.fixture(scope="session")
def h2p_baseline_run():
    """Session-cached baseline run of the H2P loop (it is reused by
    several integration tests; simulation is expensive)."""
    source, memory, expected = h2p_loop_workload()
    pipeline = assemble_and_run(source, memory)
    return pipeline, expected


@pytest.fixture(scope="session")
def h2p_tea_run():
    """Session-cached TEA run of the same kernel."""
    source, memory, expected = h2p_loop_workload()
    pipeline = assemble_and_run(source, memory, SimConfig(tea=TeaConfig()))
    return pipeline, expected
