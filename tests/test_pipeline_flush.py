"""Tests for misprediction detection, flush recovery, and penalties."""

import random

from repro import MemoryImage, Pipeline, SimConfig, assemble


def run_pipeline(source, mem=None, **cfg):
    program = assemble(source)
    pipeline = Pipeline(program, mem or MemoryImage(), SimConfig(**cfg))
    pipeline.run(max_cycles=2_000_000)
    assert pipeline.halted
    return pipeline


class TestMispredictionAccounting:
    def test_predictable_loop_has_few_mispredicts(self):
        src = """
            li r1, 0
            li r2, 200
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        pipeline = run_pipeline(src)
        # Cold BTB + loop exit: a handful of mispredicts, not hundreds.
        assert pipeline.stats.total_mispredicts <= 6

    def test_random_branch_mispredicts_heavily(self):
        rng = random.Random(9)
        mem = MemoryImage({4096 + 8 * i: rng.choice([-1, 1]) for i in range(400)})
        src = """
            li r1, 0
            li r2, 400
            li r3, 4096
        top:
            shli r4, r1, 3
            add r4, r4, r3
            ld r5, 0(r4)
            blt r5, r0, neg
            addi r6, r6, 1
        neg:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        pipeline = run_pipeline(src, mem)
        assert pipeline.stats.direction_mispredicts > 100

    def test_indirect_target_mispredicts_counted(self):
        """An indirect jump alternating targets unpredictably."""
        rng = random.Random(4)
        sel = {4096 + 8 * i: rng.randint(0, 1) for i in range(150)}
        src = """
            li r1, 0
            li r2, 150
            li r3, 4096
            la r8, t0
            la r9, t1
        top:
            shli r4, r1, 3
            add r4, r4, r3
            ld r5, 0(r4)
            beqz r5, use0
            mov r10, r9
            jmp go
        use0:
            mov r10, r8
        go:
            jr r10
        t0: addi r6, r6, 1
            jmp next
        t1: addi r7, r7, 1
        next:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        pipeline = run_pipeline(src, MemoryImage(sel))
        assert pipeline.stats.retired_branches > 0
        # Both handlers ran the right number of times despite chaos.
        ones = sum(sel.values())
        assert pipeline.architectural_register(7) == ones
        assert pipeline.architectural_register(6) == 150 - ones


class TestFlushPenalty:
    def test_mispredict_costs_at_least_frontend_depth(self):
        """One guaranteed misprediction must cost ~the pipeline depth."""
        predictable = """
            li r1, 0
            li r2, 60
        top:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        pipeline = run_pipeline(predictable)
        base_mispredicts = pipeline.stats.total_mispredicts
        assert base_mispredicts <= 4

    def test_flush_restores_rat_mappings(self):
        """After a mispredicted branch, younger register writes must
        not be visible to the re-fetched correct path."""
        rng = random.Random(11)
        mem = MemoryImage({4096 + 8 * i: rng.choice([0, 1]) for i in range(100)})
        src = """
            li r1, 0
            li r2, 100
            li r3, 4096
            li r6, 0
        top:
            shli r4, r1, 3
            add r4, r4, r3
            ld r5, 0(r4)
            beqz r5, skip       # H2P: ~50% taken
            addi r6, r6, 1      # only on r5 != 0
        skip:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        pipeline = run_pipeline(src, mem)
        expected = sum(1 for v in mem.snapshot().values() if v)
        assert pipeline.architectural_register(6) == expected


class TestWrongPathContainment:
    def test_wrong_path_loads_do_not_crash(self):
        """Wrong-path execution may compute garbage addresses; the
        machine must survive and commit correct results."""
        rng = random.Random(5)
        mem = MemoryImage({4096 + 8 * i: rng.choice([-1, 1]) for i in range(80)})
        src = """
            li r1, 0
            li r2, 80
            li r3, 4096
            li r7, 0
        top:
            shli r4, r1, 3
            add r4, r4, r3
            ld r5, 0(r4)
            bge r5, r0, pos
            ld r6, 0(r5)        # address from data (-1!) on this path
            add r7, r7, r6
        pos:
            addi r1, r1, 1
            blt r1, r2, top
            halt
        """
        pipeline = run_pipeline(src, mem)
        assert pipeline.halted

    def test_bp_stall_off_image_recovers(self):
        """If the predictor runs off the end of the program on the
        wrong path it stalls until the flush redirects it."""
        src = """
            li r1, 1
            beqz r1, off      # never taken, but cold-predicted...
            jmp good
        off:
            nop               # falls toward the end of the image
            nop
        good:
            halt
        """
        pipeline = run_pipeline(src)
        assert pipeline.halted
