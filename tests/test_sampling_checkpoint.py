"""Tests for sample-point checkpoints and pipeline warm-start."""

import json
from dataclasses import replace

import pytest

from repro.core.pipeline import Pipeline
from repro.harness.runner import make_config
from repro.sampling.checkpoint import (
    Checkpoint,
    capture_checkpoints,
    run_and_capture,
    seed_pipeline,
)
from repro.sampling.functional import FunctionalEngine
from repro.workloads import make_workload


def _checkpoint_at(name: str, position: int) -> Checkpoint:
    workload = make_workload(name, "tiny")
    engine = FunctionalEngine(workload.program, workload.fresh_memory())
    engine.advance(position)
    return Checkpoint.capture(engine, name, "tiny")


def _window_stats(checkpoint: Checkpoint, mode="tea", warmup=500,
                  measure=1000):
    workload = make_workload(checkpoint.workload, checkpoint.scale)
    config = replace(
        make_config(mode),
        warmup_instructions=warmup,
        max_instructions=measure,
        max_cycles=2_000_000,
    )
    pipeline = Pipeline(
        workload.program, checkpoint.fresh_memory(), config
    )
    seed_pipeline(pipeline, checkpoint)
    return pipeline.run().as_dict()


class TestRoundTrip:
    def test_record_round_trip_is_lossless(self):
        checkpoint = _checkpoint_at("bfs", 3000)
        record = json.loads(json.dumps(checkpoint.as_record()))
        assert Checkpoint.from_record(record) == checkpoint

    def test_file_round_trip_is_lossless(self, tmp_path):
        checkpoint = _checkpoint_at("xz", 2000)
        path = checkpoint.save(tmp_path / "ckpt.json")
        assert Checkpoint.load(path) == checkpoint

    def test_from_record_rejects_unknown_schema(self):
        record = _checkpoint_at("bfs", 100).as_record()
        record["schema"] = 999
        with pytest.raises(ValueError):
            Checkpoint.from_record(record)

    def test_captured_state_is_nontrivial(self):
        checkpoint = _checkpoint_at("bfs", 3000)
        assert checkpoint.position == 3000
        assert any(checkpoint.registers)
        assert checkpoint.memory
        assert checkpoint.ghr > 0
        assert checkpoint.btb
        assert checkpoint.trace
        assert checkpoint.dlines


class TestSeededWindows:
    @pytest.mark.parametrize("mode", ["baseline", "tea"])
    def test_restored_window_is_cycle_exact(self, mode):
        """Serialize/restore must not perturb the resumed window."""
        checkpoint = _checkpoint_at("bfs", 3000)
        restored = Checkpoint.from_record(
            json.loads(json.dumps(checkpoint.as_record()))
        )
        assert _window_stats(checkpoint, mode) == \
            _window_stats(restored, mode)

    def test_same_checkpoint_seeds_identical_pipelines(self):
        checkpoint = _checkpoint_at("xz", 2000)
        assert _window_stats(checkpoint) == _window_stats(checkpoint)

    def test_seeded_history_matches_checkpoint(self):
        checkpoint = _checkpoint_at("bfs", 3000)
        workload = make_workload("bfs", "tiny")
        pipeline = Pipeline(
            workload.program, checkpoint.fresh_memory(),
            make_config("tea"),
        )
        seed_pipeline(pipeline, checkpoint)
        history = pipeline.frontend.history
        assert history.ghr == checkpoint.ghr
        assert history.path == checkpoint.path
        assert pipeline.frontend.next_pc == checkpoint.pc

    def test_seed_requires_unstarted_pipeline(self):
        checkpoint = _checkpoint_at("bfs", 1000)
        workload = make_workload("bfs", "tiny")
        pipeline = Pipeline(
            workload.program, checkpoint.fresh_memory(),
            make_config("baseline"),
        )
        pipeline.run(max_instructions=50, max_cycles=10_000)
        with pytest.raises(ValueError):
            seed_pipeline(pipeline, checkpoint)


class TestCaptureCheckpoints:
    def test_positions_past_halt_yield_no_checkpoint(self):
        workload = make_workload("sssp", "tiny")
        total = FunctionalEngine(
            workload.program, workload.fresh_memory()
        ).run_to_halt(5_000_000)
        checkpoints = capture_checkpoints(
            make_workload("sssp", "tiny"),
            [0, total // 2, total + 1000],
            workload_name="sssp", scale="tiny",
        )
        assert [c.position for c in checkpoints] == [0, total // 2]

    def test_duplicate_positions_collapse(self):
        checkpoints = capture_checkpoints(
            make_workload("bfs", "tiny"), [500, 500, 500],
            workload_name="bfs", scale="tiny",
        )
        assert [c.position for c in checkpoints] == [500]


class TestOnePassCapture:
    """run_and_capture: one functional pass must equal count + capture."""

    def test_matches_two_pass_capture(self):
        workload = make_workload("bfs", "tiny")
        total_two = FunctionalEngine(
            workload.program, workload.fresh_memory()
        ).run_to_halt(5_000_000)
        positions = [0, 400, total_two // 2, total_two - 1]
        two = capture_checkpoints(
            make_workload("bfs", "tiny"), positions,
            workload_name="bfs", scale="tiny",
        )
        total_one, one = run_and_capture(
            make_workload("bfs", "tiny"), lambda total: positions,
            workload_name="bfs", scale="tiny",
        )
        assert total_one == total_two
        assert one == two

    def test_planner_sees_the_true_total(self):
        workload = make_workload("sssp", "tiny")
        expected = FunctionalEngine(
            workload.program, workload.fresh_memory()
        ).run_to_halt(5_000_000)
        seen = []
        total, checkpoints = run_and_capture(
            make_workload("sssp", "tiny"),
            lambda t: (seen.append(t), [t // 2, t + 1000])[1],
            workload_name="sssp", scale="tiny",
        )
        assert seen == [expected] and total == expected
        # Positions past halt yield no checkpoint (capture parity).
        assert [c.position for c in checkpoints] == [expected // 2]

    def test_snapshot_restore_is_exact(self):
        workload = make_workload("mcf", "tiny")
        engine = FunctionalEngine(workload.program, workload.fresh_memory())
        engine.advance(1000)
        snap = engine.snapshot()
        engine.advance(2000)
        reference = Checkpoint.capture(engine, "mcf", "tiny")
        engine.advance(500)  # drift past the reference point
        engine.restore(snap)
        assert engine.instructions_executed == 1000
        engine.advance(2000)
        assert Checkpoint.capture(engine, "mcf", "tiny") == reference
