"""Tests for the kernel throughput benchmark (`repro bench`)."""

import json

import pytest

from repro.__main__ import main
from repro.harness.bench import (
    PINNED_RUNS,
    _geomean,
    bench_cell,
    compare_reports,
    load_report,
    write_report,
)


class TestBenchHelpers:
    def test_geomean(self):
        assert _geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert _geomean([]) == 0.0

    def test_pinned_runs_are_fig5_matrix(self):
        workloads = {w for w, _ in PINNED_RUNS}
        modes = {m for _, m in PINNED_RUNS}
        assert workloads == {"bfs", "mcf", "xz"}
        assert modes == {"baseline", "tea"}

    def test_compare_reports_calibrated(self):
        current = {
            "calibrated_cycles_per_sec": 300.0,
            "geomean_cycles_per_sec": 30_000.0,
        }
        baseline = {
            "calibrated_cycles_per_sec": 200.0,
            "geomean_cycles_per_sec": 10_000.0,
        }
        cmp = compare_reports(current, baseline)
        assert cmp["speedup"] == pytest.approx(1.5)
        assert cmp["raw_speedup"] == pytest.approx(3.0)

    def test_report_roundtrip(self, tmp_path):
        path = str(tmp_path / "report.json")
        write_report({"bench": "pipeline", "schema": 1}, path)
        assert load_report(path)["bench"] == "pipeline"

    def test_load_rejects_foreign_report(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"bench": "other"}))
        with pytest.raises(ValueError):
            load_report(str(path))


class TestBenchCell:
    def test_cell_record_shape(self):
        cell = bench_cell("xz", "baseline", scale="tiny", repeat=1)
        assert cell["cycles"] > 0
        assert cell["cycles_per_sec"] > 0
        assert cell["uops_per_sec"] > 0
        assert cell["validated"] is True


class TestBenchCli:
    def test_check_smoke(self, capsys, tmp_path):
        out_path = str(tmp_path / "BENCH_pipeline.json")
        assert main(["bench", "--check", "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "geomean" in out
        report = json.load(open(out_path))
        assert report["bench"] == "pipeline"
        assert len(report["runs"]) == 1
        assert report["runs"][0]["cycles_per_sec"] > 0
        assert report["host"]["calibration_mops"] > 0

    def test_compare_regression_gate(self, capsys, tmp_path):
        # A baseline claiming an absurdly fast calibrated number must
        # trip the >30% regression gate.
        baseline = {
            "bench": "pipeline",
            "schema": 1,
            "calibrated_cycles_per_sec": 1e9,
            "geomean_cycles_per_sec": 1e12,
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        code = main(
            ["bench", "--check", "--workloads", "xz", "--modes", "baseline",
             "--compare", str(path)]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().err


class TestFunctionalBench:
    def test_functional_section_records_speedup(self):
        from repro.harness.bench import functional_bench

        detailed = [bench_cell("bfs", "baseline", scale="tiny", repeat=1)]
        section = functional_bench(
            (("bfs", "baseline"),), scale="tiny", repeat=1,
            detailed_cells=detailed,
        )
        (row,) = section["rows"]
        assert row["workload"] == "bfs"
        assert row["instructions"] > 0
        assert row["functional_instr_per_sec"] > 0
        assert row["interpreter_instr_per_sec"] > 0
        # The tentpole acceptance floor: the functional engine must be
        # at least 50x the detailed kernel's instruction rate.
        assert row["speedup_vs_detailed"] >= 50
        assert section["geomean_speedup_vs_detailed"] >= 50
        assert "warmup tracking ON" in section["methodology"]

    def test_run_bench_embeds_functional_section(self):
        from repro.harness.bench import run_bench

        report = run_bench((("xz", "baseline"),), scale="tiny", repeat=1)
        assert report["functional"]["rows"]
        assert report["functional"]["rows"][0]["workload"] == "xz"
        assert report["sampling"]["rows"][0]["workload"] == "xz"


class TestSamplingBench:
    def test_sampling_section_records_one_pass_speedup(self):
        from repro.harness.bench import sampling_bench

        section = sampling_bench((("bfs", "tea"),), scale="tiny", repeat=1)
        (row,) = section["rows"]
        assert row["workload"] == "bfs"
        assert row["instructions"] > 0
        assert row["checkpoints"] > 0
        assert row["one_pass_wall_s"] > 0
        assert row["two_pass_wall_s"] > 0
        assert section["geomean_speedup"] > 0
        assert "checkpoints asserted identical" in section["methodology"]
