"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "bfs"])
        assert args.mode == "baseline"
        assert args.scale == "tiny"

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bfs", "--mode", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out and "mcf" in out
        assert "tea_dedicated" in out

    def test_run(self, capsys):
        assert main(["run", "xz", "--mode", "tea", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "coverage" in out
        assert "validated         True" in out

    def test_compare(self, capsys):
        code = main(["compare", "xz", "--modes", "baseline,tea"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "tea" in out
        assert "speedup" in out

    def test_figure(self, capsys):
        code = main(["figure", "fig6", "--workloads", "xz", "--scale", "tiny"])
        assert code == 0
        assert "MPKI" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99", "--workloads", "xz"]) == 2
