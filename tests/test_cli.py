"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "bfs"])
        assert args.mode == "baseline"
        assert args.scale == "tiny"

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bfs", "--mode", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out and "mcf" in out
        assert "tea_dedicated" in out

    def test_run(self, capsys):
        assert main(["run", "xz", "--mode", "tea", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "coverage" in out
        assert "validated         True" in out

    def test_compare(self, capsys):
        code = main(["compare", "xz", "--modes", "baseline,tea"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "tea" in out
        assert "speedup" in out

    def test_figure(self, capsys):
        code = main(["figure", "fig6", "--workloads", "xz", "--scale", "tiny"])
        assert code == 0
        assert "MPKI" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99", "--workloads", "xz"]) == 2


class TestLintCommand:
    def test_lint_all_clean(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "17 program(s) linted: 0 error(s), 0 warning(s)" in out

    def test_lint_named_workloads(self, capsys):
        assert main(["lint", "bfs,xz"]) == 0
        assert "2 program(s) linted" in capsys.readouterr().out

    def test_lint_bad_source_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("add r2, r1, r7\nhalt\n")
        assert main(["lint", "--source", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "undefined-read" in out

    def test_lint_source_with_data_section(self, tmp_path, capsys):
        unit = tmp_path / "unit.s"
        unit.write_text(
            ".data\ntable: .word 1, 2, 3\n.text\n"
            "la r1, table\nld r2, 0(r1)\nst r2, 8(r1)\nhalt\n"
        )
        assert main(["lint", "--source", str(unit)]) == 0

    def test_lint_json_output(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.s"
        bad.write_text("add r2, r1, r7\nhalt\n")
        assert main(["lint", "--source", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        findings = payload[str(bad)]
        assert any(f["rule"] == "undefined-read" for f in findings)

    def test_lint_without_target_is_usage_error(self, capsys):
        assert main(["lint"]) == 2


class TestSliceCommand:
    def test_slice_table(self, capsys):
        assert main(["slice", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "conditional branches" in out

    def test_slice_json(self, capsys):
        import json

        assert main(["slice", "bfs", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload
        for record in payload.values():
            assert record["size"] == len(record["pcs"])

    def test_slice_single_branch_filter(self, capsys):
        assert main(["slice", "bfs", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        pc = next(iter(payload))
        assert main(["slice", "bfs", "--branch", pc]) == 0
        assert pc in capsys.readouterr().out

    def test_slice_unknown_branch(self, capsys):
        assert main(["slice", "bfs", "--branch", "0xdead0"]) == 2

    def test_slice_oracle_writes_report(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "oracle.json"
        code = main([
            "slice", "xz", "--oracle", "--out", str(out_path),
        ])
        assert code == 0
        assert "H2P branches scored" in capsys.readouterr().out
        report = json.loads(out_path.read_text())
        assert report["summary"]["min_precision_direct"] >= 0.90


class TestChainsCommand:
    def test_chains_table(self, capsys):
        assert main(["chains", "bfs"]) == 0
        out = capsys.readouterr().out
        assert "conditional branches" in out
        assert "chainable" in out

    def test_chains_json_and_mask_out(self, tmp_path, capsys):
        import json

        mask_path = tmp_path / "mask.json"
        assert main([
            "chains", "bfs", "--json", "--mask-out", str(mask_path),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        mask = json.loads(mask_path.read_text())
        assert mask["workload"] == "bfs"
        assert mask["branch_mask"] == payload["allow_mask"]

    def test_chains_oracle_writes_report(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "chains.json"
        code = main(["chains", "xz", "--oracle", "--out", str(out_path)])
        assert code == 0
        assert "soundness: 0 unsound" in capsys.readouterr().out
        report = json.loads(out_path.read_text())
        assert report["soundness"]["unsound_total"] == 0

    def test_chains_mask_requires_oracle(self, capsys):
        assert main(["chains", "bfs", "--mask"]) == 2

    def test_chains_mask_out_wants_one_workload(self, capsys):
        assert main([
            "chains", "bfs,mcf", "--mask-out", "/tmp/never.json",
        ]) == 2


class TestStatsEventsFile:
    """``repro stats --events``: clear errors, never tracebacks."""

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        code = main(["stats", "--events", str(tmp_path / "nope.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "not found" in err

    def test_empty_file_is_clear_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        code = main(["stats", "--events", str(path)])
        assert code == 1
        assert "empty" in capsys.readouterr().err

    def test_partial_trailing_line_is_tolerated(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "flush", "cycle": 5}\n{"type": "fl')
        code = main(["stats", "--events", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "1 events" in captured.out
        assert "dropping partial trailing" in captured.err

    def test_interior_corruption_is_clear_error(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text('garbage\n{"type": "flush", "cycle": 5}\n')
        code = main(["stats", "--events", str(path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "corrupt event record" in err
        assert "Traceback" not in err

    def test_events_summary_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"type": "flush", "cycle": 5}\n'
            '{"type": "early_flush", "cycle": 9, "penalty": 3}\n'
        )
        code = main(["stats", "--events", str(path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] == 2
        assert payload["by_type"] == {"flush": 1, "early_flush": 1}
        assert payload["last_cycle"] == 9

    def test_stats_without_workload_or_events(self, capsys):
        code = main(["stats"])
        assert code == 2
        assert "workload" in capsys.readouterr().err


class TestRunTelemetryFlags:
    def test_rollup_out_writes_campaign_rollup(self, tmp_path, capsys):
        import json

        path = tmp_path / "rollup.json"
        code = main([
            "run", "bfs", "--mode", "tea", "--scale", "tiny",
            "--jobs", "0", "--rollup-out", str(path),
        ])
        assert code == 0
        rollup = json.loads(path.read_text())
        assert rollup["cells"]["ok"] == 1
        assert rollup["events"]["sampled"] > 0
        assert "sampling" in rollup["drops"]

    def test_follow_inline_prints_progress(self, tmp_path, capsys):
        code = main([
            "run", "bfs", "--mode", "tea", "--scale", "tiny",
            "--jobs", "0", "--follow",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign:" in out
        assert "1/1 done" in out


class TestSample:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sample", "bfs"])
        assert args.mode == "tea"
        assert args.scale == "tiny"
        assert args.windows == 8
        assert args.warmup == 2000
        assert args.measure == 4000
        assert args.jobs == 0
        assert args.placement == "even"

    def test_requires_workload_or_validate(self, capsys):
        assert main(["sample"]) == 2
        assert "workload" in capsys.readouterr().err

    def test_sampled_run_writes_report(self, capsys, tmp_path):
        import json

        out = tmp_path / "sampled.json"
        code = main([
            "sample", "bfs", "--mode", "tea", "--scale", "tiny",
            "--windows", "3", "--warmup", "500", "--measure", "1000",
            "--out", str(out),
        ])
        assert code == 0
        assert "ipc" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["kind"] == "sampled"
        assert report["estimates"]["ipc"]["value"] > 0

    def test_validate_gate_passes_on_pinned_cells(self, capsys):
        code = main(["sample", "bfs", "--validate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worst error" in out
        assert "FAIL" not in out
