"""Pipeline self-profiler: attribution, zero disabled cost, exactness.

The acceptance contract from ISSUE 6: profiler-enabled runs are
cycle-exact vs the golden matrix, and the disabled path costs ≤5% —
enforced *structurally* here (an unprofiled pipeline must carry no
wrapper attributes at all; the class methods it runs are the same
objects a seed pipeline runs, so the disabled overhead is zero by
construction, well under any percentage bound).
"""

import json
from pathlib import Path

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.harness.runner import run_workload
from repro.obs import Observation, PipelineProfiler, validate_chrome_trace
from repro.tea import TeaConfig

from tests.conftest import h2p_loop_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_simstats.json"

with GOLDEN_PATH.open() as fh:
    GOLDEN = json.load(fh)


def test_profiled_run_is_cycle_exact_vs_golden():
    """SimStats of a profiled run must match the seed golden matrix."""
    cell = "xz/tea"
    stats = run_workload("xz", "tea", GOLDEN["scale"], profile=True).stats
    want = GOLDEN["stats"][cell]
    got = {field: getattr(stats, field) for field in GOLDEN["fields"]}
    assert got == {f: want[f] for f in GOLDEN["fields"]}


def test_profiled_run_matches_unprofiled_stats():
    profiled = run_workload("bfs", "tea", "tiny", profile=True)
    plain = run_workload("bfs", "tea", "tiny")
    assert profiled.stats.as_dict() == plain.stats.as_dict()
    assert profiled.profiler is not None
    assert plain.profiler is None


def test_unprofiled_pipeline_carries_no_wrappers():
    """Structural zero-cost: disabled pipelines keep their untouched
    class methods — no wrapper ever lands in the instance __dict__."""
    source, memory, _ = h2p_loop_workload(n=200)
    pipeline = Pipeline(assemble(source), memory, SimConfig())
    pipeline.run(max_cycles=100_000)
    for attr in ("step", "_retire", "_complete", "_schedule", "_rename",
                 "_fetch", "_predict"):
        assert attr not in pipeline.__dict__, (
            f"{attr} shadowed on an unprofiled pipeline"
        )
    assert pipeline.profiler is None


def test_profiler_attributes_all_stages():
    source, memory, expected = h2p_loop_workload(n=500)
    config = SimConfig(tea=TeaConfig(), profile=True)
    pipeline = Pipeline(assemble(source), memory, config)
    pipeline.run(max_cycles=500_000)
    assert pipeline.halted
    profiler = pipeline.profiler
    report = profiler.report()
    assert report["steps"] > 0
    assert report["total_ns"] > 0
    buckets = report["buckets"]
    for name in ("fetch", "predict", "rename", "schedule", "execute",
                 "commit", "tea", "other"):
        assert name in buckets, f"missing bucket {name}"
        assert buckets[name]["ns"] >= 0
    # Every stage actually ran.
    assert buckets["commit"]["calls"] > 0
    assert buckets["fetch"]["calls"] > 0
    # Stage time cannot exceed step-loop time.
    stage_ns = sum(
        buckets[n]["ns"]
        for n in ("fetch", "predict", "rename", "schedule", "execute",
                  "commit", "tea")
    )
    assert stage_ns <= report["total_ns"]


def test_profiler_event_bus_and_checker_buckets():
    source, memory, _ = h2p_loop_workload(n=300)
    config = SimConfig(tea=TeaConfig(), profile=True, check_invariants=64)
    pipeline = Pipeline(assemble(source), memory, config)
    obs = Observation(record_events=False)
    obs.attach(pipeline)
    pipeline.run(max_cycles=500_000)
    buckets = pipeline.profiler.report()["buckets"]
    assert buckets["event_bus"]["calls"] > 0
    assert buckets["invariant_checker"]["calls"] > 0


def test_profiler_flat_snapshot_keys():
    result = run_workload("bfs", "tea", "tiny", profile=True)
    flat = result.profiler.flat()
    assert flat["profile.steps"] > 0
    assert flat["profile.total_ns"] > 0
    for name in ("fetch", "commit", "other"):
        assert f"profile.{name}.ns" in flat
        assert f"profile.{name}.calls" in flat
        assert 0.0 <= flat[f"profile.{name}.frac"] <= 1.0
    json.dumps(flat)


def test_profiler_chrome_trace_validates():
    profiler = PipelineProfiler(sample_period=64)
    source, memory, _ = h2p_loop_workload(n=500)
    pipeline = Pipeline(
        assemble(source), memory, SimConfig(tea=TeaConfig())
    )
    profiler.install(pipeline)
    pipeline.run(max_cycles=500_000)
    trace = profiler.to_chrome_trace()
    validate_chrome_trace(trace)
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    assert counters, "no profiler counter samples"
    # Samples are cycle-ordered and carry per-bucket deltas.
    cycles = [e["ts"] for e in counters]
    assert cycles == sorted(cycles)
    assert "step" in counters[0]["args"]


def test_profiler_double_install_rejected():
    profiler = PipelineProfiler()
    source, memory, _ = h2p_loop_workload(n=50)
    pipeline = Pipeline(assemble(source), MemoryImage(), SimConfig())
    profiler.install(pipeline)
    try:
        profiler.install(pipeline)
    except RuntimeError:
        pass
    else:
        raise AssertionError("double install must raise")


def test_cli_profile_gate(capsys):
    from repro.__main__ import main

    rc = main(["profile", "bfs", "--mode", "tea", "--scale", "tiny",
               "--gate"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "gate: profiled run cycle-exact" in out


def test_cli_profile_writes_outputs(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "profile.json"
    trace = tmp_path / "trace.json"
    rc = main(["profile", "bfs", "--scale", "tiny",
               "--out", str(out), "--trace-out", str(trace)])
    assert rc == 0
    flat = json.loads(out.read_text())
    assert flat["profile.steps"] > 0
    validate_chrome_trace(json.loads(trace.read_text()))
