"""Differential oracle: classification statuses and signatures."""

import pytest

from repro.fuzz import OracleOutcome, classify_source, seeded_bug
from repro.fuzz.oracle import CRASH, DIVERGENCE, HANG, PASS

CLEAN = """
.data
vals: .word 3, 1, 4, 1, 5
.text
    li r1, 0
    li r2, vals
    li r3, 0
    li r4, 5
top:
    shli r5, r3, 3
    add r5, r2, r5
    ld r6, 0(r5)
    add r1, r1, r6
    addi r3, r3, 1
    blt r3, r4, top
    halt
"""


class TestClassification:
    def test_clean_program_passes(self):
        outcome = classify_source(CLEAN)
        assert outcome.status == PASS
        assert outcome.ok
        assert outcome.signature is None
        assert outcome.steps > 0
        assert outcome.cycles > 0

    def test_register_divergence_detected(self):
        with seeded_bug("addi-imm-one"):
            outcome = classify_source(CLEAN)
        assert outcome.status == DIVERGENCE
        assert outcome.signature.startswith("divergence:register:")
        assert not outcome.ok

    def test_branch_bug_detected(self):
        with seeded_bug("blt-off-by-one"):
            outcome = classify_source(CLEAN)
        assert outcome.status == DIVERGENCE

    def test_interpreter_hang_classified(self):
        outcome = classify_source("x: jmp x\nhalt", max_steps=500)
        assert outcome.status == HANG
        assert outcome.signature == "hang:InterpreterTimeout"

    def test_assembler_crash_classified(self):
        outcome = classify_source("frobnicate r1, r2")
        assert outcome.status == CRASH
        assert outcome.signature == "crash:AssemblerError"

    def test_memory_divergence_detected(self):
        # xor-as-or corrupts a value that only ever reaches memory.
        source = """
.data
out: .space 1
.text
    li r1, 12
    li r2, 10
    xor r3, r1, r2
    li r4, out
    st r3, 0(r4)
    li r3, 0
    halt
"""
        with seeded_bug("xor-as-or"):
            outcome = classify_source(source)
        assert outcome.status == DIVERGENCE
        assert outcome.signature.startswith("divergence:memory:")


class TestOutcome:
    def test_shrink_key_strips_location(self):
        outcome = OracleOutcome(
            "divergence", "divergence:register:r7", "r7: 3 != 4", 10, 20
        )
        assert outcome.shrink_key == "divergence:register"

    def test_shrink_key_keeps_exception_family(self):
        outcome = OracleOutcome("crash", "crash:AssemblerError", "x", 0, 0)
        assert outcome.shrink_key == "crash:AssemblerError"

    def test_record_round_trip(self):
        outcome = classify_source(CLEAN)
        assert OracleOutcome.from_record(outcome.as_record()) == outcome


class TestSeededBugs:
    def test_none_is_a_no_op(self):
        with seeded_bug(None):
            assert classify_source(CLEAN).ok

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="nonesuch"):
            with seeded_bug("nonesuch"):
                pass

    def test_patch_is_restored_on_exit(self):
        with seeded_bug("addi-imm-one"):
            assert not classify_source(CLEAN).ok
        assert classify_source(CLEAN).ok

    def test_bug_only_affects_pipeline_leg(self):
        # The golden interpreter stays golden: a seeded pipeline bug
        # must classify as divergence, never as an interpreter crash.
        with seeded_bug("xor-as-or"):
            outcome = classify_source(CLEAN)
        assert outcome.status in (PASS, DIVERGENCE)
