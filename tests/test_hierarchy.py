"""Unit tests for the cache hierarchy timing model."""

from repro.memory import MemoryConfig, MemoryHierarchy


def make_hierarchy(**kwargs):
    return MemoryHierarchy(MemoryConfig(**kwargs))


class TestLoadPath:
    def test_l1_hit_latency(self):
        h = make_hierarchy()
        h.l1d.fill(0)
        assert h.access_load(0, 100) == 100 + h.config.l1d_latency

    def test_llc_hit_latency(self):
        h = make_hierarchy()
        h.llc.fill(0)
        ready = h.access_load(0, 100)
        assert ready == 100 + h.config.l1d_latency + h.config.llc_latency

    def test_miss_goes_to_dram(self):
        h = make_hierarchy()
        ready = h.access_load(0, 100)
        assert ready > 100 + h.config.l1d_latency + h.config.llc_latency
        assert h.loads_to_dram == 1

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        first = h.access_load(0, 0)
        second = h.access_load(8, first)  # same line
        assert second == first + h.config.l1d_latency


class TestMshrs:
    def test_merge_same_line(self):
        h = make_hierarchy()
        first = h.access_load(0, 0)
        merged = h.access_load(32, 1)  # same 64B line, still in flight
        assert merged == first

    def test_full_mshrs_reject(self):
        h = make_hierarchy(mshr_entries=2)
        assert h.access_load(0 * 64, 0) is not None
        assert h.access_load(1 * 64, 0) is not None
        assert h.access_load(2 * 64, 0) is None
        assert h.mshr_full_events == 1

    def test_mshrs_release_over_time(self):
        h = make_hierarchy(mshr_entries=1)
        ready = h.access_load(0, 0)
        assert h.access_load(64, 1) is None
        assert h.access_load(64, ready + 1) is not None

    def test_occupancy(self):
        h = make_hierarchy()
        h.access_load(0, 0)
        assert h.mshr_occupancy(0) == 1
        assert h.mshr_occupancy(10**9) == 0


class TestIfetch:
    def test_ifetch_has_no_mshr_backpressure(self):
        h = make_hierarchy(mshr_entries=1)
        h.access_load(0, 0)
        # I-fetch must always get a completion time.
        assert h.access_ifetch(4096, 0) is not None

    def test_ifetch_hit(self):
        h = make_hierarchy()
        h.l1i.fill(0)
        assert h.access_ifetch(0, 50) == 50 + h.config.l1i_latency

    def test_icache_and_dcache_are_separate(self):
        h = make_hierarchy()
        h.l1d.fill(0)
        ready = h.access_ifetch(0, 0)
        assert ready > h.config.l1i_latency  # not an L1I hit


class TestStoresAndBypass:
    def test_store_retire_installs_line(self):
        h = make_hierarchy()
        h.access_store_retire(128)
        assert h.l1d.lookup(128)
        assert h.llc.lookup(128)

    def test_bypass_load_does_not_fill_l1(self):
        h = make_hierarchy()
        h.access_load_bypass_l1(256, 0)
        assert not h.l1d.lookup(256)
        assert h.llc.lookup(256)

    def test_bypass_load_sees_l1_without_touching_lru(self):
        h = make_hierarchy()
        h.l1d.fill(256)
        ready = h.access_load_bypass_l1(256, 10)
        assert ready == 10 + h.config.l1d_latency
