"""Tests for the CRISP/IBDA critical-slice prioritization baseline."""

from repro import Pipeline, SimConfig, assemble
from repro.crisp import CrispConfig
from repro.harness import run_workload

from tests.conftest import h2p_loop_workload


def crisp_run(source, mem, config=None, max_cycles=3_000_000):
    pipeline = Pipeline(
        assemble(source), mem, SimConfig(crisp=config or CrispConfig())
    )
    pipeline.run(max_cycles=max_cycles)
    assert pipeline.halted
    return pipeline


class TestSliceIdentification:
    def test_chain_pcs_grow_from_h2p_branch(self):
        source, mem, expected = h2p_loop_workload(n=1000, seed=61)
        pipeline = crisp_run(source, mem)
        assert pipeline.architectural_register(1) == expected
        crisp = pipeline.crisp
        assert crisp.chain_pcs, "no slice instructions identified"
        # IBDA must have walked up past one level: the load *and* its
        # address producers belong to the slice.
        program = pipeline.program
        opcodes = {program.instruction_at(pc).opcode for pc in crisp.chain_pcs}
        assert "ld" in opcodes
        assert {"shli", "add"} & opcodes

    def test_capacity_bounded(self):
        source, mem, _ = h2p_loop_workload(n=800, seed=61)
        pipeline = crisp_run(source, mem, CrispConfig(chain_capacity=2))
        assert len(pipeline.crisp.chain_pcs) <= 2


class TestBehaviour:
    def test_architectural_results_unchanged(self):
        source, mem, expected = h2p_loop_workload(n=1000, seed=61)
        pipeline = crisp_run(source, mem)
        assert pipeline.architectural_register(1) == expected

    def test_limited_benefit_vs_tea(self):
        """The paper's §II critique: scheduling priority alone saves at
        most a few cycles per branch; the TEA thread's early flushes
        save far more."""
        base = run_workload("bfs", "baseline", "tiny")
        crisp = run_workload("bfs", "crisp", "tiny")
        tea = run_workload("bfs", "tea", "tiny")
        crisp_gain = crisp.ipc / base.ipc
        tea_gain = tea.ipc / base.ipc
        assert tea_gain > crisp_gain
        # CRISP must not be harmful either.
        assert crisp_gain > 0.9

    def test_mode_available_in_runner(self):
        result = run_workload("xz", "crisp", "tiny")
        assert result.validated
