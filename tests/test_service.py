"""Tests for the campaign service: job model, queue, cache, journal,
and the HTTP server end to end (submit/status/result/SSE, 429
backpressure, idempotency tokens, cancel, drain 503)."""

import asyncio
import hashlib
import json
import threading
import time

import pytest

from repro.harness.executor import RunOutcome, RunSpec
from repro.service import (
    Job,
    JobSpec,
    JobValidationError,
    PriorityJobQueue,
    QueueFull,
    ResultCache,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceJournal,
    SimulationService,
    build_job_report,
    cache_key,
    replay_journal,
)

# ----------------------------------------------------------------------
# Module-level tasks (process-mode workers pickle the callable).
# ----------------------------------------------------------------------
def ok_task(record):
    return {
        "stats": {"cycles": 100, "retired_instructions": 250},
        "validated": True,
        "halted": True,
    }


def slow_ok_task(record):
    time.sleep(0.5)
    return ok_task(record)


def _spec(workload="alpha", mode="baseline"):
    return RunSpec(workload, mode, "tiny")


def _ok_outcome(workload="alpha", mode="baseline", cycles=100):
    return RunOutcome(
        spec=_spec(workload, mode),
        status="ok",
        attempts=3,
        stats={"cycles": cycles, "retired_instructions": 250},
        validated=True,
        halted=True,
        duration=12.5,
    )


def _job(jid="j000001", seq=1, token="", **spec_kw):
    record = {"workloads": ["xz"], "modes": ["baseline"],
              "scale": "tiny", **spec_kw}
    return Job(id=jid, spec=JobSpec.from_record(record), token=token, seq=seq)


# ======================================================================
# JobSpec validation
# ======================================================================
class TestJobSpecValidation:
    def test_comma_strings_and_roundtrip(self):
        spec = JobSpec.from_record(
            {"workloads": "xz,mcf", "modes": "baseline,tea"}
        )
        assert spec.workloads == ("xz", "mcf")
        assert spec.modes == ("baseline", "tea")
        assert JobSpec.from_record(spec.as_record()) == spec
        assert len(spec.cell_specs()) == 4

    def test_unknown_workload_mode_field_rejected(self):
        with pytest.raises(JobValidationError, match="unknown workload"):
            JobSpec.from_record({"workloads": ["nope"], "modes": ["baseline"]})
        with pytest.raises(JobValidationError, match="unknown mode"):
            JobSpec.from_record({"workloads": ["xz"], "modes": ["warp"]})
        with pytest.raises(JobValidationError, match="unknown job field"):
            JobSpec.from_record({"workloads": ["xz"], "bogus": 1})

    def test_priority_bounds_and_duplicates(self):
        with pytest.raises(JobValidationError, match="priority"):
            JobSpec.from_record({"workloads": ["xz"], "priority": 11})
        with pytest.raises(JobValidationError, match="duplicate"):
            JobSpec.from_record({"workloads": ["xz", "xz"]})

    def test_fault_kind_validated(self):
        spec = JobSpec.from_record(
            {"workloads": ["xz"], "fault_kind": "mem_delay", "fault_seed": 3}
        )
        assert spec.cell_specs()[0].fault_kind == "mem_delay"
        with pytest.raises(JobValidationError, match="fault kind"):
            JobSpec.from_record({"workloads": ["xz"], "fault_kind": "nope"})

    def test_fuzz_workloads_allowed(self):
        spec = JobSpec.from_record({"workloads": ["fuzz/seed-17"]})
        assert spec.workloads == ("fuzz/seed-17",)


# ======================================================================
# Priority queue
# ======================================================================
class TestPriorityJobQueue:
    def test_priority_order_fifo_within_level(self):
        queue = PriorityJobQueue(depth=8)
        low1 = _job("j1", 1, priority=1)
        high = _job("j2", 2, priority=9)
        low2 = _job("j3", 3, priority=1)
        for job in (low1, high, low2):
            queue.push(job)
        assert [queue.pop().id for _ in range(3)] == ["j2", "j1", "j3"]
        assert queue.pop() is None

    def test_bounded_depth(self):
        queue = PriorityJobQueue(depth=1)
        queue.push(_job("j1", 1))
        assert queue.full
        with pytest.raises(QueueFull):
            queue.push(_job("j2", 2))

    def test_cancelled_jobs_skipped(self):
        queue = PriorityJobQueue(depth=4)
        job = _job("j1", 1)
        queue.push(job)
        queue.push(_job("j2", 2))
        job.state = "cancelled"
        assert queue.pop().id == "j2"
        assert queue.pop() is None


# ======================================================================
# Result cache
# ======================================================================
class TestResultCache:
    def test_roundtrip_normalizes_wall_clock(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put(_ok_outcome())
        got = cache.get(_spec())
        assert got is not None
        assert got.stats["cycles"] == 100
        # Wall-clock facts of the original run do not replay.
        assert got.attempts == 1 and got.duration == 0.0
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_and_failed_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_spec()) is None
        assert cache.misses == 1
        failed = _ok_outcome()
        failed.status = "failed"
        assert not cache.put(failed)
        assert cache.get(_spec()) is None

    def test_corrupt_entry_detected_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_ok_outcome())
        [entry] = list(tmp_path.glob("*.json"))
        tampered = json.loads(entry.read_text())
        tampered["payload"]["stats"]["cycles"] = 999  # bit rot
        entry.write_text(json.dumps(tampered))
        assert cache.get(_spec()) is None
        assert cache.integrity_failures == 1
        assert not entry.exists()  # evicted, will re-simulate

    def test_key_depends_on_spec_and_config(self):
        assert cache_key(_spec()) != cache_key(_spec(mode="tea"))
        assert cache_key(_spec()) != cache_key(RunSpec("alpha", "baseline",
                                                       "tiny", seed=1))


# ======================================================================
# Write-ahead journal
# ======================================================================
class TestServiceJournal:
    def test_replay_folds_lifecycle(self, tmp_path):
        path = tmp_path / "service.journal.jsonl"
        journal = ServiceJournal(path)
        a, b, c = _job("j1", 1, token="t1"), _job("j2", 2), _job("j3", 3)
        for job in (a, b, c):
            journal.submit(job)
        a.state, a.checksum = "done", "abc"
        journal.done(a)
        journal.cancel(c)
        replay = replay_journal(path)
        assert replay.jobs["j1"].state == "done"
        assert replay.jobs["j1"].checksum == "abc"
        assert replay.jobs["j1"].token == "t1"
        assert replay.jobs["j3"].state == "cancelled"
        assert replay.unfinished == ["j2"]   # re-enqueued on restart
        assert replay.next_seq == 4
        assert not replay.duplicate_terminals

    def test_torn_record_tolerated(self, tmp_path):
        path = tmp_path / "service.journal.jsonl"
        journal = ServiceJournal(path)
        journal.submit(_job("j1", 1))
        good = path.read_text()
        # A torn submit glued to a good one on a single line.
        torn = '{"op": "submit", "seq": 2, "id": "j2", "jo'
        path.write_text(good + torn + good.replace("j1", "j3").strip() + "\n")
        replay = replay_journal(path)
        assert set(replay.jobs) == {"j1", "j3"}
        assert replay.recovered == 1

    def test_duplicate_terminal_counted(self, tmp_path):
        path = tmp_path / "service.journal.jsonl"
        journal = ServiceJournal(path)
        job = _job("j1", 1)
        journal.submit(job)
        job.state = "done"
        journal.done(job)
        journal.done(job)  # exactly-once violation
        replay = replay_journal(path)
        assert replay.duplicate_terminals == {"j1": 1}


# ======================================================================
# Deterministic report
# ======================================================================
class TestJobReport:
    def test_wall_clock_facts_excluded(self):
        spec = JobSpec.from_record({"workloads": ["xz"],
                                    "modes": ["baseline"]})
        fresh = _ok_outcome()
        cached = _ok_outcome()
        cached.attempts, cached.duration, cached.resumed = 1, 0.0, True
        assert build_job_report(spec, [fresh]) == build_job_report(
            spec, [cached]
        )

    def test_fault_attribution_surfaces(self):
        from repro.harness.executor import RunFailure

        spec = JobSpec.from_record({"workloads": ["xz"],
                                    "modes": ["baseline"]})
        outcome = _ok_outcome()
        outcome.status = "failed"
        outcome.failure = RunFailure(
            kind="fatal", exception="ValidationError", message="m",
            traceback="tb", config_digest="d", seed=0,
            diagnostics={"fault_context": {"kind": "mem_bit"}},
        )
        report = json.loads(build_job_report(spec, [outcome]))
        cell = report["cells"][0]
        assert cell["failure"]["fault_attributed"] is True
        assert "traceback" not in cell["failure"]
        assert "message" not in cell["failure"]


# ======================================================================
# HTTP end to end (in-process server on a background thread)
# ======================================================================
class ServiceThread:
    """Run a SimulationService event loop on a daemon thread."""

    def __init__(self, tmp_path, task=ok_task, **config_kw):
        config_kw.setdefault("workers", 0)   # inline executor: fast
        config_kw.setdefault("queue_depth", 4)
        config_kw.setdefault("heartbeat_timeout", 30.0)
        self.config = ServiceConfig(state_dir=tmp_path / "state", **config_kw)
        self.service = SimulationService(self.config, task=task)
        self.exit_code = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.exit_code = asyncio.run(self.service.serve())

    def __enter__(self):
        self.thread.start()
        self.client = ServiceClient.from_endpoint(
            self.config.state_dir, wait=10.0
        )
        return self

    def __exit__(self, *exc):
        self.service.request_drain()
        self.thread.join(timeout=30.0)


@pytest.fixture()
def service(tmp_path):
    with ServiceThread(tmp_path) as running:
        yield running


class TestServiceHTTP:
    def test_submit_status_result_roundtrip(self, service):
        client = service.client
        assert client.health()["ok"] is True
        response = client.submit(
            {"workloads": ["xz"], "modes": ["baseline"], "scale": "tiny"}
        )
        summary = client.wait(response["id"], timeout=30.0)
        assert summary["state"] == "done"
        assert summary["cells"] == {
            "total": 1, "done": 1, "cached": 0, "simulated": 1,
            "journal_resumed": 0,
        }
        report = client.result_bytes(response["id"])
        assert hashlib.sha256(report).hexdigest() == summary["checksum"]
        parsed = json.loads(report)
        assert parsed["summary"] == {"total": 1, "ok": 1, "failed": 0}

    def test_identical_cells_served_from_cache(self, service):
        client = service.client
        first = client.submit({"workloads": ["xz"], "modes": ["baseline"]})
        client.wait(first["id"], timeout=30.0)
        second = client.submit({"workloads": ["xz"], "modes": ["baseline"]})
        summary = client.wait(second["id"], timeout=30.0)
        assert summary["cells"]["cached"] == 1
        assert summary["cells"]["simulated"] == 0
        # Byte-identical report despite never re-simulating.
        assert client.result_bytes(first["id"]) == client.result_bytes(
            second["id"]
        )
        assert service.service.cache.hits == 1

    def test_token_dedupes_resubmit(self, service):
        client = service.client
        first = client.submit({"workloads": ["xz"], "token": "tok-1"})
        again = client.submit({"workloads": ["xz"], "token": "tok-1"})
        assert again["id"] == first["id"]
        assert again["duplicate"] is True
        assert len(client.jobs()) == 1

    def test_invalid_job_is_400(self, service):
        with pytest.raises(ServiceError) as err:
            service.client.submit({"workloads": ["nope"]})
        assert err.value.status == 400

    def test_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.client.status("j999999")
        assert err.value.status == 404

    def test_result_before_terminal_is_409(self, tmp_path):
        with ServiceThread(tmp_path, task=slow_ok_task) as running:
            response = running.client.submit({"workloads": ["xz"]})
            with pytest.raises(ServiceError) as err:
                running.client.result_bytes(response["id"])
            assert err.value.status == 409
            running.client.wait(response["id"], timeout=30.0)

    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        with ServiceThread(
            tmp_path, task=slow_ok_task, queue_depth=1
        ) as running:
            ids = []
            rejected = None
            # Feed fast enough that the depth-1 queue overflows behind
            # the 0.5 s/cell task.
            for index in range(6):
                status, payload, _ = running.client._request(
                    "POST", "/jobs",
                    {"workloads": ["xz"], "seed": index},
                )
                if status == 429:
                    rejected = payload
                    break
                ids.append(payload["id"])
            assert rejected is not None, "queue never filled"
            assert "retry_after" in rejected
            for job_id in ids:
                running.client.wait(job_id, timeout=60.0)
            metrics = running.client.metrics()
            assert metrics["counters"]["service.job_rejected"] >= 1

    def test_cancel_queued_only(self, tmp_path):
        with ServiceThread(
            tmp_path, task=slow_ok_task, queue_depth=4
        ) as running:
            first = running.client.submit({"workloads": ["xz"]})
            second = running.client.submit({"workloads": ["mcf"]})
            cancelled = running.client.cancel(second["id"])
            assert cancelled["state"] == "cancelled"
            summary = running.client.wait(first["id"], timeout=30.0)
            assert summary["state"] == "done"
            with pytest.raises(ServiceError) as err:
                running.client.cancel(first["id"])
            assert err.value.status == 409
            with pytest.raises(ServiceError) as err:
                running.client.result_bytes(second["id"])
            assert err.value.status == 409

    def test_sse_stream_ends_with_done(self, service):
        client = service.client
        response = client.submit({"workloads": ["xz"], "modes": ["tea"]})
        events = list(client.events(response["id"]))
        assert events, "no SSE events received"
        kinds = [kind for kind, _ in events]
        assert kinds[-1] == "done"
        assert events[-1][1]["state"] in ("done", "failed")

    def test_drain_rejects_submits_with_503(self, tmp_path):
        with ServiceThread(tmp_path, task=slow_ok_task) as running:
            # An in-flight job holds the drain window open: the server
            # must keep answering (with 503s) while it checkpoints.
            response = running.client.submit({"workloads": ["xz"]})
            deadline = time.monotonic() + 5.0
            while (
                running.client.status(response["id"])["state"] != "running"
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            running.service.request_drain()
            while (
                not running.service.draining
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            with pytest.raises(ServiceError) as err:
                running.client.submit({"workloads": ["mcf"]}, deadline=0.0)
            assert err.value.status == 503
        assert running.exit_code == 0

    def test_metrics_payload_shape(self, service):
        client = service.client
        client.wait(
            client.submit({"workloads": ["xz"]})["id"], timeout=30.0
        )
        metrics = client.metrics()
        assert metrics["jobs"]["done"] == 1
        assert metrics["queue"]["capacity"] == 4
        assert metrics["cache"]["integrity_failures"] == 0
        assert metrics["counters"]["service.job_submitted"] == 1
        assert metrics["counters"]["service.job_finished"] == 1
