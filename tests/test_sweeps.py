"""Cheap smoke tests for the design-sweep experiments (the heavy
versions run in benchmarks/test_design_sweeps.py)."""

from repro.harness import (
    block_cache_sweep,
    ftq_sweep,
    h2p_marking_sweep,
    wide_frontend_comparison,
)


def test_h2p_marking_sweep_structure():
    data = h2p_marking_sweep(workloads=("xz",), thresholds=(1, 6), scale="tiny")
    assert set(data["coverage"]) == {1, 6}
    assert all(0.0 <= v <= 1.0 for v in data["coverage"].values())
    # Marking fewer branches (higher threshold) never raises coverage.
    assert data["coverage"][6] <= data["coverage"][1] + 0.05


def test_block_cache_sweep_structure():
    data = block_cache_sweep(workloads=("xz",), sizes=(16, 512), scale="tiny")
    assert set(data["speedup"]) == {16, 512}
    # A 16-entry Block Cache cannot out-cover a 512-entry one by much.
    assert data["coverage"][512] >= data["coverage"][16] - 0.10


def test_ftq_sweep_structure():
    data = ftq_sweep(workloads=("xz",), capacities=(8, 128), scale="tiny")
    assert set(data["speedup"]) == {8, 128}


def test_wide_frontend_comparison():
    data = wide_frontend_comparison(workloads=("xz",), scale="tiny")
    assert data["paper_wide_pct"] == 2.8
    # The paper's argument must hold even on one kernel: TEA beats a
    # 16-wide frontend by a wide margin.
    assert data["tea_pct"] > data["wide_pct"]
