"""Documentation consistency: the docs must cover every workload,
every experiment, and every public module, and public callables must
carry docstrings."""

import inspect
from pathlib import Path

import pytest

import repro
import repro.core as core
import repro.frontend as frontend
import repro.harness as harness
import repro.memory as memory
import repro.runahead as runahead
import repro.tea as tea
import repro.workloads as workloads
from repro.workloads import workload_names

ROOT = Path(repro.__file__).resolve().parents[2]


def _doc(name: str) -> str:
    return (ROOT / name).read_text()


class TestProjectDocs:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_exists_and_substantial(self, name):
        text = _doc(name)
        assert len(text) > 2000, f"{name} is too thin"

    def test_design_lists_every_experiment(self):
        text = _doc("DESIGN.md")
        for artifact in ("Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9",
                         "Fig. 10", "Table I", "Table II", "Table III"):
            assert artifact in text, f"DESIGN.md missing {artifact}"

    def test_design_confirms_paper_identity(self):
        text = _doc("DESIGN.md")
        assert "Timely, Efficient, and Accurate Branch Precomputation" in text
        assert "MICRO 2024" in text

    def test_experiments_covers_every_figure(self):
        text = _doc("EXPERIMENTS.md")
        for artifact in ("Fig. 5", "Fig. 8", "Fig. 10", "Table III"):
            assert artifact in text

    def test_readme_names_every_workload_group(self):
        text = _doc("README.md")
        for name in ("bfs", "mcf", "omnetpp", "xz", "nab"):
            assert name in text


class TestModuleDocstrings:
    @pytest.mark.parametrize(
        "module", [repro, core, frontend, harness, memory, runahead, tea, workloads]
    )
    def test_package_docstring(self, module):
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize(
        "module", [core, frontend, harness, memory, runahead, tea, workloads]
    )
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestWorkloadDocs:
    def test_every_workload_has_description(self):
        from repro.workloads import make_workload

        for name in workload_names():
            wl = make_workload(name, "tiny")
            assert wl.description, f"{name} lacks a description"
            assert wl.validate is not None, f"{name} lacks a validator"
