"""Graceful TEA degradation: per-chain accuracy gating, decay-based
re-enable, and the global kill-switch (TeaConfig accuracy_* knobs)."""

from dataclasses import replace

from repro import Pipeline, SimConfig, assemble
from repro.harness import run_workload
from repro.obs import Observation
from repro.tea import TeaConfig
from repro.verify import FaultPlan

from tests.conftest import h2p_loop_workload

PC = 0x40  # arbitrary chain PC for unit-level sampling


def fresh_tea(config=None):
    source, mem, _ = h2p_loop_workload(n=200, seed=3)
    pipeline = Pipeline(
        assemble(source), mem, SimConfig(tea=config or TeaConfig())
    )
    return pipeline.tea


class TestChainGating:
    def test_inaccurate_chain_disabled(self):
        tea = fresh_tea(replace(
            TeaConfig(), chain_min_samples=4, chain_disable_threshold=0.9
        ))
        for _ in range(4):
            tea.on_accuracy_sample(PC, correct=False)
        assert PC in tea.disabled_chains
        assert tea.p.stats.tea_chain_disables == 1
        assert tea.chain_accuracy(PC) == 0.0

    def test_accurate_chain_stays_enabled(self):
        tea = fresh_tea(replace(TeaConfig(), chain_min_samples=4))
        for _ in range(50):
            tea.on_accuracy_sample(PC, correct=True)
        assert not tea.disabled_chains
        assert tea.chain_accuracy(PC) == 1.0

    def test_counters_decay_halve_at_window(self):
        tea = fresh_tea(replace(TeaConfig(), chain_accuracy_window=8))
        for _ in range(8):
            tea.on_accuracy_sample(PC, correct=True)
        assert tea._chain_correct[PC] == 4  # halved at the window

    def test_gating_off_only_counts(self):
        tea = fresh_tea(replace(
            TeaConfig(), accuracy_gating=False,
            chain_min_samples=4, kill_min_samples=8, kill_threshold=1.0
        ))
        for _ in range(20):
            tea.on_accuracy_sample(PC, correct=False)
        assert not tea.disabled_chains
        assert not tea.killed
        assert tea.chain_accuracy(PC) == 0.0

    def test_reenable_after_decay_period(self):
        tea = fresh_tea(replace(
            TeaConfig(), chain_min_samples=4, chain_disable_threshold=0.9,
            chain_reenable_period=10
        ))
        for _ in range(4):
            tea.on_accuracy_sample(PC, correct=False)
        assert PC in tea.disabled_chains
        assert tea._next_reenable is not None
        tea._retire_count += tea.config.chain_reenable_period
        tea._reenable_chains()
        assert PC not in tea.disabled_chains
        assert tea._next_reenable is None
        assert tea.p.stats.tea_chain_reenables == 1
        # Counters were reset: the chain re-qualifies from scratch.
        assert tea.chain_accuracy(PC) is None


class TestKillSwitch:
    def test_sustained_inaccuracy_kills_thread(self):
        tea = fresh_tea(replace(
            TeaConfig(), kill_min_samples=8, kill_threshold=1.0,
            chain_min_samples=1_000_000
        ))
        for i in range(8):
            tea.on_accuracy_sample(PC + i, correct=False)
        assert tea.killed
        assert tea.p.stats.tea_killed == 1

    def test_accurate_thread_never_killed(self):
        tea = fresh_tea(replace(TeaConfig(), kill_min_samples=8))
        for _ in range(100):
            tea.on_accuracy_sample(PC, correct=True)
        assert not tea.killed


class TestIntegration:
    def test_fault_storm_disables_chains_observably(self):
        from repro.workloads import make_workload

        tea_cfg = replace(
            TeaConfig(), chain_min_samples=4, chain_disable_threshold=0.9,
            chain_accuracy_window=16, chain_reenable_period=500
        )
        plan = FaultPlan(seed=0, kinds=("tea_outcome_flip",), count=200,
                         start_cycle=1_000, min_interval=50)
        workload = make_workload("bfs", "tiny")
        observation = Observation()
        pipeline = Pipeline(
            workload.program, workload.fresh_memory(),
            SimConfig(tea=tea_cfg, fault_plan=plan),
        )
        observation.attach(pipeline)
        stats = pipeline.run(max_cycles=2_000_000)
        assert pipeline.halted and workload.validate(pipeline)
        assert stats.tea_chain_disables > 0
        assert stats.tea_chain_reenables > 0
        assert stats.tea_suppressed_resolutions > 0
        counts = observation.event_type_counts()
        assert counts.get("tea_chain_disabled", 0) > 0
        assert counts.get("tea_chain_enabled", 0) > 0
        assert counts.get("fault_injected", 0) == 200

    def test_kill_switch_integration(self):
        from repro.workloads import make_workload

        tea_cfg = replace(
            TeaConfig(), kill_min_samples=8, kill_threshold=1.0,
            chain_min_samples=1_000_000
        )
        plan = FaultPlan(seed=1, kinds=("tea_outcome_flip",), count=100,
                         start_cycle=1_000, min_interval=50)
        workload = make_workload("bfs", "tiny")
        observation = Observation()
        pipeline = Pipeline(
            workload.program, workload.fresh_memory(),
            SimConfig(tea=tea_cfg, fault_plan=plan),
        )
        observation.attach(pipeline)
        stats = pipeline.run(max_cycles=2_000_000)
        assert pipeline.halted and workload.validate(pipeline)
        assert pipeline.tea.killed
        assert stats.tea_killed == 1
        assert observation.event_type_counts().get("tea_degraded", 0) == 1

    def test_default_gating_is_inert_on_accurate_runs(self):
        gated = run_workload("bfs", "tea", "tiny")
        assert gated.stats.tea_chain_disables == 0
        assert gated.stats.tea_killed == 0
