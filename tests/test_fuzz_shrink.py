"""Delta-debugging shrinker: minimization, signature preservation."""

import pytest

from repro.analysis import lint_program
from repro.fuzz import (
    GeneratorProfile,
    classify_source,
    generate_program,
    seeded_bug,
    shrink_source,
)
from repro.isa.data_directives import assemble_unit

SMALL = GeneratorProfile(
    loops=1, loop_depth=1, body_ops=2, pointer_chase=1, call_depth=1,
    indirect_fanout=0, array_len=8, fp_frac=0.0,
)


def _diverging_source(bug: str) -> tuple[str, str]:
    """A generated program plus its failure key under ``bug``."""
    for seed in range(16):
        source = generate_program(seed, SMALL).source
        with seeded_bug(bug):
            outcome = classify_source(source)
        if not outcome.ok:
            return source, outcome.shrink_key
    raise AssertionError(f"no seed diverged under {bug!r}")


class TestShrink:
    def test_minimizes_seeded_divergence(self):
        source, key = _diverging_source("addi-imm-one")
        result = shrink_source(source, key, bug="addi-imm-one")
        assert result.reduced
        assert result.final_lines < result.original_lines
        # The acceptance bar from the issue: a seeded bug shrinks to a
        # handful of instructions, not a page.
        assert result.num_instructions <= 25
        assert result.outcome.shrink_key == key
        assert result.evaluations > 0

    def test_minimized_source_is_lint_safe(self):
        # Shrunk repros enter the workload registry; they may carry
        # warnings (dead stores) but never lint *errors*.
        source, key = _diverging_source("addi-imm-one")
        result = shrink_source(source, key, bug="addi-imm-one")
        report = lint_program(assemble_unit(result.source).program)
        assert not report.errors

    def test_raises_when_key_does_not_reproduce(self):
        clean = generate_program(0, SMALL).source
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_source(clean, "divergence:register")

    def test_budget_limits_evaluations(self):
        source, key = _diverging_source("addi-imm-one")
        result = shrink_source(source, key, bug="addi-imm-one", budget=10)
        assert result.evaluations <= 10

    def test_deterministic(self):
        source, key = _diverging_source("addi-imm-one")
        a = shrink_source(source, key, bug="addi-imm-one")
        b = shrink_source(source, key, bug="addi-imm-one")
        assert a.source == b.source
        assert a.evaluations == b.evaluations
