"""Microarchitectural fault injection (repro.verify.faults/campaign):
deterministic replay, detection fixtures per fault kind, the TEA
fail-safe property, and corruption attribution on ValidationError."""

import pytest

from repro.core.config import ConfigError
from repro.harness.runner import ValidationError, run_workload
from repro.verify import (
    FAULT_KINDS,
    SAFE_KINDS,
    FaultPlan,
    InvariantViolation,
    run_fault_campaign,
)

TEA_KINDS = sorted(name for name, k in FAULT_KINDS.items() if k.tea_side)


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(kinds=("no_such_fault",))

    def test_empty_kinds_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(kinds=())

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(count=0)

    def test_record_round_trip(self):
        plan = FaultPlan(seed=7, kinds=("mem_delay",), count=3)
        record = plan.as_record()
        assert record["seed"] == 7 and record["kinds"] == ["mem_delay"]

    def test_safe_kinds_cover_all_tea_side(self):
        for name in TEA_KINDS:
            assert name in SAFE_KINDS


class TestDeterminism:
    def test_same_seed_same_journal_and_timing(self):
        plan = FaultPlan(
            seed=3,
            kinds=("block_cache_bit", "tea_outcome_flip", "shadow_stall"),
            count=3,
            start_cycle=2_000,
            min_interval=500,
        )
        runs = [
            run_workload("bfs", "tea", "tiny", fault_plan=plan)
            for _ in range(2)
        ]
        assert runs[0].stats.cycles == runs[1].stats.cycles
        assert runs[0].stats.extra["faults"] == runs[1].stats.extra["faults"]
        assert runs[0].stats.faults_injected == 3


class TestDetection:
    def test_preg_leak_trips_conservation(self):
        plan = FaultPlan(seed=0, kinds=("preg_leak",), start_cycle=2_000)
        with pytest.raises(InvariantViolation) as exc:
            run_workload("bfs", "tea", "tiny",
                         check_invariants=1, fault_plan=plan)
        assert exc.value.invariant == "preg_conservation"
        applied = exc.value.diagnostics["fault_context"]["applied"]
        assert applied and applied[0]["kind"] == "preg_leak"

    def test_wakeup_drop_trips_scheduler_invariant(self):
        plan = FaultPlan(seed=0, kinds=("wakeup_drop",), start_cycle=2_000)
        with pytest.raises(InvariantViolation) as exc:
            run_workload("bfs", "tea", "tiny",
                         check_invariants=1, fault_plan=plan)
        assert exc.value.invariant == "scheduler_wakeup"


class TestFailSafe:
    """TEA-side and timing-only faults must never corrupt architectural
    state: either an invariant trips or golden validation passes."""

    @pytest.mark.parametrize("kind", TEA_KINDS + ["mem_delay"])
    def test_fault_is_fail_safe(self, kind):
        plan = FaultPlan(seed=0, kinds=(kind,), start_cycle=2_000)
        try:
            result = run_workload("bfs", "tea", "tiny",
                                  check_invariants=16, fault_plan=plan)
        except InvariantViolation:
            return  # caught illegal state before it could spread: fine
        assert result.halted and result.validated
        assert result.stats.faults_injected == 1

    def test_inapplicable_fault_never_applies(self):
        # Block Cache faults have no target on a TEA-less machine.
        plan = FaultPlan(seed=0, kinds=("block_cache_bit",),
                         start_cycle=2_000)
        result = run_workload("bfs", "baseline", "tiny", fault_plan=plan)
        assert result.validated
        assert result.stats.faults_injected == 0


class TestAttribution:
    def test_mem_bit_corruption_carries_fault_context(self):
        plan = FaultPlan(seed=0, kinds=("mem_bit",), start_cycle=2_000)
        with pytest.raises(ValidationError) as exc:
            run_workload("bfs", "tea", "tiny", fault_plan=plan)
        err = exc.value
        assert err.fault_context is not None
        assert err.fault_context["applied"][0]["kind"] == "mem_bit"
        assert err.diagnostics["fault_context"] is err.fault_context
        assert err.divergence is not None


class TestCampaign:
    def test_campaign_classifies_and_gates(self):
        report = run_fault_campaign(
            workloads=("bfs",), kinds=("preg_leak", "mem_bit"), seeds=1
        )
        outcomes = {c["kind"]: c["outcome"] for c in report["cells"]}
        assert outcomes["preg_leak"] == "detected_invariant"
        assert outcomes["mem_bit"] == "corrupted"
        assert all(c["attributed"] for c in report["cells"])
        assert report["summary"]["total"] == 2
        # mem_bit deliberately corrupts and is attributed, so the
        # safety gate stays green.
        assert report["ok"]
        assert not report["unsafe_corruptions"]
        assert not report["unattributed_corruptions"]


class TestObservability:
    def test_fault_injection_emits_events(self):
        plan = FaultPlan(seed=0, kinds=("shadow_stall",), start_cycle=2_000)
        result = run_workload("bfs", "tea", "tiny",
                              observe=True, fault_plan=plan)
        counts = result.observation.event_type_counts()
        assert counts.get("fault_injected") == 1


class TestFuzzCorpusIntegration:
    """Fuzz repro records fold into the fault-injection matrix."""

    @pytest.fixture()
    def corpus_workload(self, tmp_path, monkeypatch):
        from repro.fuzz import GeneratorProfile, run_fuzz_campaign
        from repro.fuzz.corpus import CORPUS_ENV
        from repro.workloads import fuzz_corpus_names

        corpus = tmp_path / "corpus"
        run_fuzz_campaign(
            [0, 1, 2],
            profile=GeneratorProfile(loops=1, body_ops=3),
            bug="addi-imm-one",
            shrink=False,
            corpus_dir=corpus,
        )
        monkeypatch.setenv(CORPUS_ENV, str(corpus))
        names = fuzz_corpus_names()
        assert names, "seeded-bug campaign produced no repro record"
        return names[0]

    def test_inject_accepts_fuzz_workload(self, corpus_workload):
        report = run_fault_campaign(
            workloads=(corpus_workload,),
            kinds=("mem_delay",),
            seeds=1,
            mode="tea",
            start_cycle=1,
            max_cycles=200_000,
        )
        (cell,) = report["cells"]
        assert cell["workload"] == corpus_workload
        # A timing-only delay applies even on a short repro and must
        # leave the architectural result validating green.
        assert cell["outcome"] == "benign"
        assert report["ok"]

    def test_inject_cli_expands_fuzz_glob(self, corpus_workload, capsys):
        from repro.__main__ import main

        code = main([
            "inject", "fuzz/*", "--kinds", "mem_delay",
            "--seeds", "1", "--start-cycle", "1",
        ])
        assert code == 0
        assert corpus_workload in capsys.readouterr().err
