"""Tests for the structured telemetry layer (:mod:`repro.obs`).

Covers the event bus contract, histogram bucket semantics, the metrics
registry, the explicit ``SimStats`` reset, and the end-to-end
guarantees of an observed TEA run: the taxonomy richness, deterministic
event ordering, and exact reconciliation of the per-PC attribution
table against the ``SimStats`` counter block.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import pytest

from repro import Observation, Pipeline, SimConfig, assemble
from repro.core.stats import SimStats
from repro.obs import (
    DEFAULT_HISTOGRAMS,
    EVENT_TYPES,
    FIREHOSE_TYPES,
    AttributionTable,
    Event,
    EventBus,
    Histogram,
    MetricsRegistry,
)
from repro.tea import TeaConfig

from tests.conftest import h2p_loop_workload


# ----------------------------------------------------------------------
# EventBus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_counts_tally_without_subscribers(self):
        bus = EventBus()
        bus.emit("early_flush", penalty=3)
        bus.emit("early_flush", penalty=5)
        bus.emit("walk_start")
        assert bus.counts == {"early_flush": 2, "walk_start": 1}
        assert bus.distinct_types() == {"early_flush", "walk_start"}

    def test_events_dispatched_with_clock_stamp(self):
        cycle = [0]
        bus = EventBus(clock=lambda: cycle[0])
        got = []
        bus.subscribe(got.append, ("tea_resolve",))
        cycle[0] = 41
        bus.emit("tea_resolve", pc=0x3C, seq=7, disagrees=True)
        (event,) = got
        assert event.type == "tea_resolve"
        assert event.cycle == 41
        assert event.pc == 0x3C and event.seq == 7
        assert event.data == {"disagrees": True}

    def test_subscription_is_per_type(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, ("walk_start",))
        bus.emit("walk_finish")
        bus.emit("walk_start")
        assert [e.type for e in got] == ["walk_start"]

    def test_wants_tracks_subscriptions(self):
        bus = EventBus()
        assert not bus.wants("cycle_end")
        callback = lambda e: None  # noqa: E731
        bus.subscribe(callback, ("cycle_end", "uop_commit"))
        assert bus.wants("cycle_end") and bus.wants("uop_commit")
        bus.unsubscribe(callback)
        assert not bus.wants("cycle_end")

    def test_unsubscribe_stops_delivery_keeps_counts(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, ("flush",))
        bus.emit("flush")
        bus.unsubscribe(got.append)
        bus.emit("flush")
        assert len(got) == 1
        assert bus.counts["flush"] == 2

    def test_bind_clock_replaces_source(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, ("flush",))
        bus.emit("flush")
        assert got[0].cycle == -1  # unbound default clock
        bus.bind_clock(lambda: 99)
        bus.emit("flush")
        assert got[1].cycle == 99

    def test_taxonomy_and_firehose_disjoint(self):
        assert not (EVENT_TYPES & FIREHOSE_TYPES)
        assert len(EVENT_TYPES) >= 15


class TestEvent:
    def test_as_dict_omits_unset_pc_seq(self):
        event = Event("walk_start", 10, -1, -1, {"entries": 4})
        assert event.as_dict() == {"type": "walk_start", "cycle": 10,
                                   "entries": 4}

    def test_as_dict_includes_pc_seq_when_set(self):
        event = Event("branch_retire", 5, 0x18, 42, {"mispredicted": False})
        assert event.as_dict() == {
            "type": "branch_retire", "cycle": 5, "pc": 0x18, "seq": 42,
            "mispredicted": False,
        }

    def test_key_is_hashable_identity(self):
        a = Event("flush", 3, 1, 2, {"x": 1})
        b = Event("flush", 3, 1, 2, {"x": 1})
        c = Event("flush", 3, 1, 2, {"x": 2})
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert hash(a.key())


# ----------------------------------------------------------------------
# Histograms and the registry
# ----------------------------------------------------------------------
class TestHistogram:
    def test_le_bucket_edges(self):
        # Prometheus ``le`` semantics: a value equal to an edge falls in
        # that edge's bucket; one past it falls in the next.
        hist = Histogram("h", (2, 4, 8))
        for value in (1, 2):
            assert hist.bucket_index(value) == 0, value
        for value in (3, 4):
            assert hist.bucket_index(value) == 1, value
        for value in (5, 8):
            assert hist.bucket_index(value) == 2, value
        assert hist.bucket_index(9) == 3  # overflow

    def test_observe_populates_counts_and_extremes(self):
        hist = Histogram("h", (2, 4, 8))
        for value in (1, 2, 3, 8, 100):
            hist.observe(value)
        assert hist.counts == [2, 1, 1, 1]
        assert hist.total == 5
        assert hist.sum == 114
        assert hist.min == 1 and hist.max == 100
        assert hist.mean == pytest.approx(114 / 5)

    def test_empty_histogram_mean_zero(self):
        hist = Histogram("h", (1,))
        assert hist.mean == 0.0
        assert hist.min is None and hist.max is None

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (4, 2))

    def test_flat_items_suffixes(self):
        hist = Histogram("h", (2, 4))
        hist.observe(3)
        flat = dict(hist.flat_items())
        assert flat["count"] == 1
        assert flat["le_2"] == 0 and flat["le_4"] == 1
        assert flat["le_inf"] == 0


class TestMetricsRegistry:
    def test_create_or_get_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        hist = registry.histogram("h", (1, 2))
        assert registry.histogram("h") is hist

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x", (1,))

    def test_histogram_requires_edges_on_first_use(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.histogram("missing")

    def test_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", (2,)).observe(1)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        flat = registry.flat_snapshot()
        assert flat["c"] == 3 and flat["g"] == 1.5
        assert flat["h.le_2"] == 1 and flat["h.le_inf"] == 0
        assert list(flat) == sorted(flat)


# ----------------------------------------------------------------------
# SimStats explicit reset
# ----------------------------------------------------------------------
class TestSimStatsReset:
    def test_reset_restores_declared_defaults(self):
        stats = SimStats()
        stats.cycles = 100
        stats.direction_mispredicts = 7
        stats.start_measurement()
        assert stats.cycles == 0
        assert stats.direction_mispredicts == 0
        assert stats.measuring is True

    def test_extra_preserved_across_reset(self):
        stats = SimStats()
        stats.extra["per_pc"] = {0x18: 3}
        stats.start_measurement()
        assert stats.extra == {"per_pc": {0x18: 3}}

    def test_subclass_fields_reset_too(self):
        @dataclass
        class MyStats(SimStats):
            custom_counter: int = 0

        stats = MyStats()
        stats.custom_counter = 9
        stats.cycles = 5
        stats.extra["keep"] = True
        stats.start_measurement()
        assert stats.custom_counter == 0
        assert stats.cycles == 0
        assert stats.extra == {"keep": True}

    def test_publish_to_registry(self):
        registry = MetricsRegistry()
        stats = SimStats()
        stats.cycles = 10
        stats.retired_instructions = 20
        stats.publish_to(registry)
        flat = registry.flat_snapshot()
        assert flat["sim.cycles"] == 10
        assert flat["sim.ipc"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Attribution table unit behavior
# ----------------------------------------------------------------------
class TestAttributionTable:
    def _retire(self, pc, mispredicted=False, direction=True):
        return Event("branch_retire", 1, pc, 0,
                     {"mispredicted": mispredicted, "direction": direction})

    def test_retire_accounting(self):
        table = AttributionTable()
        table.on_event(self._retire(0x10))
        table.on_event(self._retire(0x10, mispredicted=True))
        table.on_event(self._retire(0x10, mispredicted=True, direction=False))
        entry = table.get(0x10)
        assert entry.retired == 3
        assert entry.mispredicts == 2
        assert entry.direction_mispredicts == 1
        assert entry.target_mispredicts == 1
        assert entry.accuracy == pytest.approx(1 / 3)

    def test_measurement_start_clears_table(self):
        table = AttributionTable()
        table.on_event(self._retire(0x10, mispredicted=True))
        assert table.total_mispredicts == 1
        table.on_event(Event("measurement_start", 0, -1, -1, {}))
        assert len(table) == 0
        assert table.total_mispredicts == 0

    def test_top_ranks_by_mispredicts(self):
        table = AttributionTable()
        for _ in range(3):
            table.on_event(self._retire(0x20, mispredicted=True))
        table.on_event(self._retire(0x10, mispredicted=True))
        top = table.top(1)
        assert [e.pc for e in top] == [0x20]
        assert "top-1 H2P offenders" in table.report(1)

    def test_empty_report(self):
        assert "no branches" in AttributionTable().report()


# ----------------------------------------------------------------------
# End-to-end observed runs
# ----------------------------------------------------------------------
def observed_run(n=400, seed=51, warmup=0):
    source, memory, expected = h2p_loop_workload(n=n, seed=seed)
    config = SimConfig(tea=TeaConfig())
    if warmup:
        config = replace(config, warmup_instructions=warmup)
    pipeline = Pipeline(assemble(source), memory, config)
    obs = Observation()
    obs.attach(pipeline)
    stats = pipeline.run(max_cycles=1_000_000)
    assert pipeline.halted
    return pipeline, obs, stats


@pytest.fixture(scope="module")
def tea_observed():
    return observed_run()


class TestObservedRun:
    def test_emits_rich_taxonomy(self, tea_observed):
        _, obs, _ = tea_observed
        emitted = obs.bus.distinct_types() & EVENT_TYPES
        assert len(emitted) >= 8, sorted(emitted)

    def test_recorded_events_are_taxonomy_only(self, tea_observed):
        _, obs, _ = tea_observed
        assert obs.events
        assert {e.type for e in obs.events} <= EVENT_TYPES

    def test_event_cycles_monotonic(self, tea_observed):
        _, obs, _ = tea_observed
        cycles = [e.cycle for e in obs.events]
        assert cycles == sorted(cycles)

    def test_attribution_reconciles_with_stats(self, tea_observed):
        _, obs, stats = tea_observed
        assert obs.attribution.total_mispredicts == stats.total_mispredicts
        assert stats.total_mispredicts > 0

    def test_flush_penalty_histogram_counts_every_flush(self, tea_observed):
        _, obs, stats = tea_observed
        hist = obs.metrics.histogram("tea.flush_penalty_cycles")
        assert hist.total == stats.flushes

    def test_cycles_saved_histogram_matches_stats(self, tea_observed):
        _, obs, stats = tea_observed
        hist = obs.metrics.histogram("tea.cycles_saved")
        assert hist.total == stats.covered_timely + stats.covered_late
        assert hist.sum == stats.tea_cycles_saved

    def test_metrics_snapshot_includes_all_layers(self, tea_observed):
        _, obs, stats = tea_observed
        flat = obs.metrics_snapshot(stats)
        assert flat["events.early_flush"] == obs.bus.counts["early_flush"]
        assert flat["sim.cycles"] == stats.cycles
        for name in DEFAULT_HISTOGRAMS:
            assert f"{name}.count" in flat

    def test_observation_does_not_perturb_simulation(self):
        source, memory, _ = h2p_loop_workload(n=400, seed=51)
        plain = Pipeline(assemble(source), memory, SimConfig(tea=TeaConfig()))
        plain_stats = plain.run(max_cycles=1_000_000)
        _, _, observed_stats = observed_run()
        assert plain_stats.as_dict() == observed_stats.as_dict()

    def test_double_attach_rejected(self, tea_observed):
        pipeline, obs, _ = tea_observed
        with pytest.raises(RuntimeError):
            obs.attach(pipeline)

    def test_detach_stops_recording(self):
        pipeline, obs, _ = observed_run(n=50, seed=3)
        recorded = len(obs.events)
        obs.detach()
        pipeline.obs.emit("early_flush", penalty=1)
        assert len(obs.events) == recorded
        with pytest.raises(RuntimeError):
            obs.detach()


class TestDeterminism:
    def test_event_stream_bit_identical_across_runs(self):
        _, obs_a, _ = observed_run(n=300, seed=13)
        _, obs_b, _ = observed_run(n=300, seed=13)
        keys_a = [e.key() for e in obs_a.events]
        keys_b = [e.key() for e in obs_b.events]
        assert keys_a == keys_b
        assert obs_a.bus.counts == obs_b.bus.counts

    def test_different_data_different_stream(self):
        _, obs_a, _ = observed_run(n=300, seed=13)
        _, obs_b, _ = observed_run(n=300, seed=14)
        assert [e.key() for e in obs_a.events] != [e.key() for e in obs_b.events]


class TestWarmupBoundary:
    def test_attribution_resets_with_stats_at_warmup(self):
        _, obs, stats = observed_run(n=400, seed=51, warmup=500)
        # Both the counter block and the attribution table saw the same
        # measurement_start boundary, so they must still agree exactly.
        assert obs.bus.counts["measurement_start"] == 1
        assert obs.attribution.total_mispredicts == stats.total_mispredicts
        # Warmup genuinely trimmed the measured window.
        _, _, full = observed_run(n=400, seed=51)
        assert stats.retired_instructions < full.retired_instructions


class TestDisabledPath:
    def test_pipeline_has_no_bus_by_default(self):
        source, memory, _ = h2p_loop_workload(n=50, seed=3)
        pipeline = Pipeline(assemble(source), memory,
                            SimConfig(tea=TeaConfig()))
        assert pipeline.obs is None
        assert pipeline.frontend.obs is None
        pipeline.run(max_cycles=200_000)
        assert pipeline.obs is None


# ----------------------------------------------------------------------
# Histogram percentiles (ISSUE 6 satellite)
# ----------------------------------------------------------------------
class TestHistogramPercentiles:
    def test_empty_histogram_has_none_percentiles(self):
        hist = Histogram("t", (1, 2, 4))
        assert hist.percentiles() == {"p50": None, "p95": None, "p99": None}
        assert hist.quantile(0.5) is None

    def test_single_value(self):
        hist = Histogram("t", (1, 2, 4, 8))
        hist.observe(3)
        p = hist.percentiles()
        assert p["p50"] == p["p95"] == p["p99"] == 3.0

    def test_quantiles_are_monotone_and_clamped(self):
        hist = Histogram("t", (1, 2, 4, 8, 16))
        for v in (1, 1, 2, 3, 5, 7, 9, 12, 15, 16):
            hist.observe(v)
        p50, p95, p99 = (hist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert hist.min <= p50 <= p95 <= p99 <= hist.max

    def test_uniform_distribution_median(self):
        hist = Histogram("t", tuple(range(1, 101)))
        for v in range(1, 101):
            hist.observe(v)
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=1.0)

    def test_overflow_bucket_reports_max(self):
        hist = Histogram("t", (1, 2))
        for v in (100, 200, 300):
            hist.observe(v)
        assert hist.quantile(0.99) == 300.0

    def test_extreme_quantiles(self):
        hist = Histogram("t", (1, 2, 4))
        hist.observe(1)
        hist.observe(4)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 4.0

    def test_as_dict_and_flat_items_carry_percentiles(self):
        hist = Histogram("t", (1, 2, 4))
        hist.observe(2)
        d = hist.as_dict()
        assert "p50" in d and "p95" in d and "p99" in d
        flat = dict(hist.flat_items())
        assert flat["p50"] is not None
        assert "p95" in flat and "p99" in flat

    def test_registry_flat_snapshot_has_percentile_keys(self):
        registry = MetricsRegistry()
        registry.histogram("tea.x", (1, 2)).observe(1)
        flat = registry.flat_snapshot()
        assert "tea.x.p50" in flat and "tea.x.p99" in flat


# ----------------------------------------------------------------------
# Emit hot path (ISSUE 6 satellite): no Event without subscribers
# ----------------------------------------------------------------------
class TestEmitHotPath:
    def test_no_event_constructed_without_subscribers(self, monkeypatch):
        """The lazy guard must skip Event construction entirely."""
        import repro.obs.events as events_mod

        def boom(*args, **kwargs):
            raise AssertionError("Event constructed with no subscriber")

        monkeypatch.setattr(events_mod, "Event", boom)
        bus = EventBus()
        bus.emit("early_flush", penalty=3)
        bus.emit("cycle_end")
        assert bus.counts == {"early_flush": 1, "cycle_end": 1}

    def test_event_constructed_once_subscribed(self, monkeypatch):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, ("early_flush",))
        bus.emit("early_flush", penalty=3)
        bus.emit("walk_start")  # still skipped: nobody listens
        assert len(seen) == 1

    def test_unsubscribe_restores_lazy_path(self, monkeypatch):
        import repro.obs.events as events_mod

        bus = EventBus()
        callback = lambda e: None  # noqa: E731
        bus.subscribe(callback, ("early_flush",))
        bus.unsubscribe(callback)

        def boom(*args, **kwargs):
            raise AssertionError("Event constructed after unsubscribe")

        monkeypatch.setattr(events_mod, "Event", boom)
        bus.emit("early_flush", penalty=3)
        assert bus.counts["early_flush"] == 1

    def test_disabled_path_microbenchmark(self):
        """Near-zero disabled cost: emitting to a bus with subscribers
        on *other* types must be no slower than ~2x a bare counter
        loop, and strictly cheaper than the subscribed path."""
        import timeit

        bus = EventBus()
        bus.subscribe(lambda e: None, ("walk_start",))

        n = 50_000
        disabled = timeit.timeit(
            lambda: bus.emit("cycle_end", uop=None), number=n
        )
        subscribed = timeit.timeit(
            lambda: bus.emit("walk_start", depth=1), number=n
        )
        # Generous absolute bound (CI machines vary): 50k disabled
        # emits must finish comfortably under a second.
        assert disabled < 1.0
        # And the disabled path must be cheaper than dispatching.
        assert disabled < subscribed
