"""Fuzz campaigns: triage, determinism, records, registry replay."""

import json

import pytest

from repro.fuzz import (
    GeneratorProfile,
    load_record,
    replay_record,
    run_fuzz_campaign,
)
from repro.fuzz.corpus import CORPUS_ENV
from repro.workloads import fuzz_corpus_names, make_workload

SMALL = GeneratorProfile(
    loops=1, loop_depth=1, body_ops=2, pointer_chase=1, call_depth=1,
    indirect_fanout=0, array_len=8, fp_frac=0.0,
)

SEEDS = range(6)


def _campaign(tmp_path, **kwargs):
    kwargs.setdefault("profile", SMALL)
    kwargs.setdefault("corpus_dir", tmp_path / "corpus")
    return run_fuzz_campaign(SEEDS, **kwargs)


class TestCleanCampaign:
    def test_current_kernel_has_zero_unique_failures(self, tmp_path):
        report = _campaign(tmp_path)
        assert report["counts"]["pass"] == len(SEEDS)
        assert report["num_unique_failures"] == 0
        corpus = tmp_path / "corpus"
        assert not corpus.is_dir() or not list(corpus.glob("*.json"))

    def test_report_is_deterministic(self, tmp_path):
        a = _campaign(tmp_path / "a")
        b = _campaign(tmp_path / "b")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_seed_list_is_deduped_and_sorted(self, tmp_path):
        report = run_fuzz_campaign(
            [3, 1, 1, 2], profile=SMALL, corpus_dir=tmp_path / "c"
        )
        assert report["seeds"] == [1, 2, 3]
        assert report["num_seeds"] == 3


class TestSeededBugCampaign:
    @pytest.fixture(scope="class")
    def bug_report(self, tmp_path_factory):
        corpus = tmp_path_factory.mktemp("corpus")
        report = run_fuzz_campaign(
            SEEDS, profile=SMALL, bug="addi-imm-one", corpus_dir=corpus
        )
        return report, corpus

    def test_bug_is_detected_and_deduplicated(self, bug_report):
        report, _ = bug_report
        assert report["counts"]["pass"] < len(SEEDS)
        assert report["num_unique_failures"] >= 1
        covered = sum(
            len(entry["seeds"]) for entry in report["unique_failures"]
        )
        assert covered + report["counts"]["pass"] == len(SEEDS)

    def test_failures_are_shrunk_below_the_bar(self, bug_report):
        report, _ = bug_report
        for entry in report["unique_failures"]:
            assert entry["shrunk"]
            assert entry["instructions"] <= 25

    def test_records_round_trip_and_replay(self, bug_report):
        report, corpus = bug_report
        for entry in report["unique_failures"]:
            record = load_record(corpus / entry["record"])
            assert record["seeded_bug"] == "addi-imm-one"
            # Replaying the self-contained record reproduces the exact
            # post-shrink signature, not merely the same family.
            assert replay_record(record).signature == entry["final_signature"]

    def test_no_shrink_keeps_full_program(self, tmp_path):
        report = run_fuzz_campaign(
            [0, 1], profile=SMALL, bug="addi-imm-one", shrink=False,
            corpus_dir=tmp_path / "c",
        )
        for entry in report["unique_failures"]:
            assert not entry["shrunk"]
            assert entry["record"] is not None


class TestExecutorIntegration:
    def test_process_pool_matches_inline(self, tmp_path):
        inline = _campaign(tmp_path / "a", jobs=0)
        pooled = _campaign(tmp_path / "b", jobs=2)
        assert json.dumps(inline, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_checkpoint_resume_skips_done_seeds(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        first = _campaign(tmp_path / "a", checkpoint=journal)
        resumed = _campaign(tmp_path / "b", checkpoint=journal, resume=True)
        assert first["counts"] == resumed["counts"]


class TestRegistry:
    def test_corpus_records_become_workloads(self, tmp_path, monkeypatch):
        corpus = tmp_path / "corpus"
        run_fuzz_campaign(
            [0, 1, 2], profile=SMALL, bug="addi-imm-one", corpus_dir=corpus
        )
        monkeypatch.setenv(CORPUS_ENV, str(corpus))
        names = fuzz_corpus_names()
        assert names and all(n.startswith("fuzz/") for n in names)
        workload = make_workload(names[0])
        # On the *unbugged* kernel a recorded repro must validate: the
        # corpus is a regression suite for bugs that are fixed.
        from repro.core import Pipeline
        from repro.harness.runner import make_config

        pipeline = Pipeline(
            workload.program, workload.memory, make_config("baseline")
        )
        pipeline.run(max_cycles=200_000)
        assert pipeline.halted
        assert workload.validate(pipeline)

    def test_empty_corpus_means_no_names(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CORPUS_ENV, str(tmp_path / "nothing"))
        assert fuzz_corpus_names() == ()

    def test_unknown_corpus_record_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CORPUS_ENV, str(tmp_path))
        with pytest.raises(ValueError):
            make_workload("fuzz/no-such-record")
