"""Knob sweeps over the GAP kernel generators.

The registry pins three scales per kernel; these sweeps assert the
generators stay correct *between* the pinned points — every
(num_nodes, avg_degree, rounds/iters) combination must build, assemble,
terminate, and validate against its host-side reference.  Runs use the
golden interpreter (the validators only read ``pipeline.memory``),
keeping the whole matrix fast.
"""

import pytest

from repro.isa import run_program
from repro.workloads import gap

MAX_STEPS = 5_000_000


def _check(workload) -> None:
    result = run_program(workload.program, workload.memory, max_steps=MAX_STEPS)
    assert result.halted
    assert workload.validate(result)


class TestBfsScaling:
    @pytest.mark.parametrize("num_nodes", [40, 150])
    @pytest.mark.parametrize("avg_degree", [3, 8])
    def test_validates(self, num_nodes, avg_degree):
        _check(gap.bfs(num_nodes=num_nodes, avg_degree=avg_degree, seed=11))

    def test_degenerate_degree(self):
        # Near-disconnected graphs: BFS must still terminate and agree.
        _check(gap.bfs(num_nodes=60, avg_degree=1, seed=11))


class TestCcScaling:
    @pytest.mark.parametrize("num_nodes", [40, 100])
    @pytest.mark.parametrize("max_iters", [2, 4])
    def test_validates(self, num_nodes, max_iters):
        _check(gap.cc(num_nodes=num_nodes, avg_degree=4, seed=23,
                      max_iters=max_iters))

    def test_denser_graph(self):
        _check(gap.cc(num_nodes=60, avg_degree=8, seed=23, max_iters=3))


class TestSsspScaling:
    @pytest.mark.parametrize("num_nodes", [40, 100])
    @pytest.mark.parametrize("rounds", [1, 3])
    def test_validates(self, num_nodes, rounds):
        _check(gap.sssp(num_nodes=num_nodes, avg_degree=4, seed=37,
                        rounds=rounds))

    def test_denser_graph(self):
        _check(gap.sssp(num_nodes=60, avg_degree=8, seed=37, rounds=2))


class TestPrScaling:
    @pytest.mark.parametrize("num_nodes", [40, 100])
    @pytest.mark.parametrize("iters", [1, 3])
    def test_validates(self, num_nodes, iters):
        _check(gap.pr(num_nodes=num_nodes, avg_degree=5, seed=41,
                      iters=iters))

    def test_denser_graph(self):
        _check(gap.pr(num_nodes=60, avg_degree=10, seed=41, iters=2))


class TestSeedIndependence:
    @pytest.mark.parametrize("seed", [1, 2, 97])
    @pytest.mark.parametrize("kernel", [gap.bfs, gap.cc, gap.sssp, gap.pr])
    def test_validates_across_seeds(self, kernel, seed):
        # The reference and the kernel must agree for *any* graph seed,
        # not just the registry's pinned ones.
        _check(kernel(num_nodes=50, avg_degree=4, seed=seed))
