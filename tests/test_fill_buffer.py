"""Unit tests for the Fill Buffer and the Backward Dataflow Walk.

The walk scenarios mirror the paper's running examples: Fig. 1's
load-compare-branch chain, §III-C's re-seeding from TEA-marked uops,
§III-D's memory dependencies, and the Fig. 10 ablation flags.
"""

from repro.tea import FillBuffer, FillEntry, TeaConfig, backward_dataflow_walk


def entry(
    pc,
    dst=None,
    srcs=(),
    load=False,
    store=False,
    addr=None,
    h2p=False,
    seed=False,
    bb=0,
    offset=0,
):
    return FillEntry(
        pc=pc,
        dst=dst,
        srcs=srcs,
        is_load=load,
        is_store=store,
        mem_addr=addr,
        is_h2p_branch=h2p,
        chain_seed=seed,
        bb_start=bb,
        bb_offset=offset,
    )


def walk(entries, **cfg_kwargs):
    config = TeaConfig(**cfg_kwargs)
    return backward_dataflow_walk(entries, config)


class TestRegisterChains:
    def test_paper_fig1_chain(self):
        """ld -> cmp -> H2P branch: all three marked, loop counter too."""
        entries = [
            entry(0x00, dst=2, srcs=(2,)),          # i++ (part of chain via r2)
            entry(0x04, dst=5, srcs=(2,)),          # addr = f(i)
            entry(0x08, dst=6, srcs=(5,), load=True, addr=4096),   # ld r6
            entry(0x0C, srcs=(6,), h2p=True),       # H2P branch on r6
        ]
        result = walk(entries)
        assert result.marked == [True, True, True, True]

    def test_unrelated_instructions_not_marked(self):
        entries = [
            entry(0x00, dst=9, srcs=(9,)),          # unrelated
            entry(0x04, dst=6, srcs=(7,)),
            entry(0x08, srcs=(6,), h2p=True),
        ]
        result = walk(entries)
        assert result.marked == [False, True, True]

    def test_no_h2p_marks_nothing(self):
        entries = [entry(0x00, dst=1, srcs=(2,)), entry(0x04, dst=2, srcs=(1,))]
        result = walk(entries)
        assert result.marked == [False, False]
        assert result.initiations == 0

    def test_source_list_removes_overwritten_destination(self):
        """r6's older producer is dead once a younger write to r6 is
        found between it and the branch — only the younger one marks."""
        entries = [
            entry(0x00, dst=6, srcs=(1,)),          # dead producer
            entry(0x04, dst=6, srcs=(2,)),          # live producer
            entry(0x08, srcs=(6,), h2p=True),
        ]
        result = walk(entries)
        assert result.marked == [False, True, True]

    def test_self_update_keeps_tracing(self):
        """addi r2, r2, 1 consumes and produces r2: older producers
        of r2 stay in the chain (induction variables, §III-C)."""
        entries = [
            entry(0x00, dst=2, srcs=(3,)),          # r2 = f(r3)
            entry(0x04, dst=2, srcs=(2,)),          # r2++
            entry(0x08, srcs=(2,), h2p=True),
        ]
        result = walk(entries)
        assert result.marked == [True, True, True]

    def test_multiple_h2p_instances_traced_together(self):
        entries = [
            entry(0x00, dst=5, srcs=(1,)),
            entry(0x04, srcs=(5,), h2p=True),
            entry(0x00, dst=5, srcs=(1,)),
            entry(0x04, srcs=(5,), h2p=True),
        ]
        result = walk(entries)
        assert result.marked == [True, True, True, True]


class TestMemoryDependencies:
    def _store_load_chain(self):
        return [
            entry(0x00, dst=7, srcs=(8,)),                      # value producer
            entry(0x04, srcs=(7, 9), store=True, addr=4096),    # st r7 -> [a]
            entry(0x08, dst=6, srcs=(9,), load=True, addr=4096),  # ld r6 <- [a]
            entry(0x0C, srcs=(6,), h2p=True),
        ]

    def test_store_to_load_traced(self):
        result = walk(self._store_load_chain())
        assert result.marked == [True, True, True, True]

    def test_no_mem_ablation_breaks_the_chain(self):
        result = walk(self._store_load_chain(), trace_memory=False)
        # The store and its producer are invisible without mem tracing.
        assert result.marked == [False, False, True, True]

    def test_store_to_different_address_not_marked(self):
        entries = [
            entry(0x04, srcs=(7, 9), store=True, addr=8192),
            entry(0x08, dst=6, srcs=(9,), load=True, addr=4096),
            entry(0x0C, srcs=(6,), h2p=True),
        ]
        result = walk(entries)
        assert result.marked[0] is False

    def test_mem_buffer_capacity_bounded(self):
        config = TeaConfig(mem_source_entries=2)
        entries = [
            entry(0x10 + 4 * i, dst=6, srcs=(9,), load=True, addr=4096 + 64 * i)
            for i in range(6)
        ] + [entry(0x40, srcs=(6,), h2p=True)]
        result = backward_dataflow_walk(entries, config)
        assert result.marked[-1]  # walk completes without error


class TestSeedingAndAblations:
    def test_chain_seed_initiates_with_masks(self):
        """§III-C: TEA-fetched uops re-seed the walk, growing chains."""
        entries = [
            entry(0x00, dst=3, srcs=(4,)),
            entry(0x04, dst=2, srcs=(3,), seed=True),  # previously in chain
        ]
        result = walk(entries)
        assert result.marked == [True, True]

    def test_chain_seed_ignored_without_masks(self):
        entries = [
            entry(0x00, dst=3, srcs=(4,)),
            entry(0x04, dst=2, srcs=(3,), seed=True),
        ]
        result = walk(entries, use_masks=False)
        assert result.marked == [False, False]

    def test_only_loops_stops_at_previous_instance(self):
        """Chains must not cross a previous dynamic instance of the
        same H2P branch in the only-loops ablation."""
        entries = [
            entry(0x00, dst=5, srcs=(1,)),
            entry(0x04, srcs=(5,), h2p=True),   # previous instance
            entry(0x00, dst=5, srcs=(1,)),
            entry(0x04, srcs=(5,), h2p=True),   # youngest instance
        ]
        full = walk(entries)
        limited = walk(entries, only_loops=True)
        assert sum(full.marked) == 4
        assert limited.marked == [False, False, True, True]
        assert limited.stop_index == 1


class TestFillBufferLifecycle:
    def test_full_and_walk_clears(self):
        config = TeaConfig(fill_buffer_size=4)
        fb = FillBuffer(config)
        for i in range(4):
            fb.insert(entry(4 * i, dst=1, srcs=(2,)))
        assert fb.full()
        entries, result = fb.run_walk()
        assert len(entries) == 4
        assert len(fb) == 0
        assert fb.walks_performed == 1
