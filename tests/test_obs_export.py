"""Tests for the telemetry exporters and the observability CLI surface.

Covers JSONL round-trips, Chrome ``trace_event`` structural validity
(the Perfetto loadability contract), span pairing, the flat metrics
snapshot file, and the ``python -m repro`` flags that drive them.
"""

from __future__ import annotations

import json

import pytest

from repro import Observation, Pipeline, SimConfig, assemble
from repro.__main__ import main
from repro.obs import (
    Event,
    events_to_chrome_trace,
    read_events_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_snapshot,
)
from repro.tea import TeaConfig

from tests.conftest import h2p_loop_workload


@pytest.fixture(scope="module")
def observed_run():
    source, memory, _ = h2p_loop_workload(n=300, seed=21)
    pipeline = Pipeline(assemble(source), memory, SimConfig(tea=TeaConfig()))
    obs = Observation()
    obs.attach(pipeline)
    stats = pipeline.run(max_cycles=1_000_000)
    assert pipeline.halted
    return obs, stats


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
class TestJsonl:
    def test_round_trip(self, observed_run, tmp_path):
        obs, _ = observed_run
        path = tmp_path / "events.jsonl"
        written = write_events_jsonl(obs.events, str(path))
        assert written == len(obs.events) > 0
        parsed = read_events_jsonl(str(path))
        assert parsed == [e.as_dict() for e in obs.events]

    def test_every_line_is_valid_json(self, observed_run, tmp_path):
        obs, _ = observed_run
        path = tmp_path / "events.jsonl"
        write_events_jsonl(obs.events, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == len(obs.events)
        for line in lines:
            record = json.loads(line)
            assert "type" in record and "cycle" in record

    def test_empty_event_list(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_events_jsonl([], str(path)) == 0
        assert read_events_jsonl(str(path)) == []

    def test_tolerant_drops_partial_trailing_line(self, tmp_path):
        """A crash mid-append leaves a partial last line; tolerant mode
        drops it with a warning instead of raising."""
        path = tmp_path / "truncated.jsonl"
        path.write_text(
            '{"type": "flush", "cycle": 10}\n{"type": "flu'
        )
        with pytest.raises(ValueError):
            read_events_jsonl(str(path))
        with pytest.warns(UserWarning, match="partial trailing"):
            records = read_events_jsonl(str(path), tolerant=True)
        assert records == [{"type": "flush", "cycle": 10}]

    def test_tolerant_still_rejects_interior_corruption(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"type": "flush", "cycle": 1}\nnot json\n'
            '{"type": "flush", "cycle": 2}\n'
        )
        with pytest.raises(ValueError, match="corrupt event record"):
            read_events_jsonl(str(path), tolerant=True)


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_real_run_trace_is_valid_and_loadable(self, observed_run, tmp_path):
        obs, _ = observed_run
        path = tmp_path / "trace.json"
        trace = write_chrome_trace(obs.events, str(path),
                                   final_cycle=obs.now())
        validate_chrome_trace(trace)
        loaded = json.loads(path.read_text())
        assert loaded == trace
        names = {entry["name"] for entry in loaded["traceEvents"]}
        assert "tea_active" in names
        assert "thread_name" in names

    def test_span_pairing(self):
        events = [
            Event("tea_initiate", 10, 0x18, 5, {}),
            Event("tea_terminate", 50, -1, -1, {"reason": "drain"}),
        ]
        trace = events_to_chrome_trace(events)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        (span,) = spans
        assert span["name"] == "tea_active"
        assert span["ts"] == 10 and span["dur"] == 40
        assert span["args"]["reason"] == "drain"

    def test_unclosed_span_closed_at_final_cycle(self):
        events = [Event("tea_initiate", 10, 0x18, 5, {})]
        trace = events_to_chrome_trace(events, final_cycle=75)
        (span,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] == 10 and span["dur"] == 65
        assert span["args"]["reason"] == "simulation_end"

    def test_walk_span_uses_start_cycle(self):
        events = [
            Event("walk_finish", 40, -1, -1,
                  {"start_cycle": 28, "chain_length": 6, "depth": 32}),
        ]
        trace = events_to_chrome_trace(events)
        (span,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert span["name"] == "backward_walk"
        assert span["ts"] == 28 and span["dur"] == 12
        assert span["args"] == {"chain_length": 6, "depth": 32}

    def test_block_cache_counter_track(self):
        events = [
            Event("block_cache_hit", 5, 0x10, -1, {}),
            Event("block_cache_hit", 6, 0x14, -1, {}),
            Event("block_cache_miss", 7, 0x18, -1, {}),
        ]
        trace = events_to_chrome_trace(events)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert [c["args"] for c in counters] == [
            {"hits": 1, "misses": 0},
            {"hits": 2, "misses": 0},
            {"hits": 2, "misses": 1},
        ]

    def test_instants_carry_hex_pc(self):
        events = [Event("early_flush", 9, 0x3C, 12, {"penalty": 4})]
        trace = events_to_chrome_trace(events)
        (instant,) = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instant["args"] == {"penalty": 4, "pc": "0x3c", "seq": 12}

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "i", "pid": 0, "tid": 0}]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1}
                ]}
            )


# ----------------------------------------------------------------------
# Metrics snapshot
# ----------------------------------------------------------------------
class TestMetricsSnapshot:
    def test_snapshot_file_is_sorted_json(self, observed_run, tmp_path):
        obs, stats = observed_run
        path = tmp_path / "metrics.json"
        write_metrics_snapshot(obs.metrics_snapshot(stats), str(path))
        loaded = json.loads(path.read_text())
        assert loaded["sim.cycles"] == stats.cycles
        assert loaded["events.early_flush"] == obs.bus.counts["early_flush"]
        assert list(loaded) == sorted(loaded)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_run_with_export_flags(self, tmp_path, capsys):
        events = tmp_path / "e.jsonl"
        trace = tmp_path / "t.json"
        snapshot = tmp_path / "s.json"
        code = main([
            "run", "xz", "--mode", "tea", "--scale", "tiny",
            "--events-out", str(events),
            "--trace-out", str(trace),
            "--stats-out", str(snapshot),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        records = read_events_jsonl(str(events))
        assert records and all("type" in r for r in records)
        validate_chrome_trace(json.loads(trace.read_text()))
        assert "sim.ipc" in json.loads(snapshot.read_text())

    def test_run_without_flags_has_no_observation(self, capsys):
        assert main(["run", "xz", "--scale", "tiny"]) == 0
        assert "wrote" not in capsys.readouterr().out

    def test_stats_command(self, capsys):
        code = main(["stats", "xz", "--mode", "tea", "--scale", "tiny",
                     "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "event counts:" in out
        assert "H2P offenders" in out

    def test_stats_json(self, capsys):
        code = main(["stats", "xz", "--mode", "tea", "--scale", "tiny",
                     "--json"])
        assert code == 0
        flat = json.loads(capsys.readouterr().out)
        assert "sim.ipc" in flat
        assert any(key.startswith("events.") for key in flat)
