"""Workload linter: seeded-bad fixtures and registry cleanliness.

Each seeded fixture contains exactly one planted defect and must
produce exactly one finding of the expected rule — this pins both the
detection and the false-positive behaviour of every rule.
"""

from repro import assemble
from repro.analysis import lint_program
from repro.workloads import ALL_NAMES, lint_registered, lint_workload

# --- seeded-bad fixtures (ISSUE acceptance: exactly one finding each) ----

UNDEFINED_READ = """
    li r1, 5
    add r2, r1, r7    # r7 never written
    st r2, 0(r1)
    halt
"""

UNREACHABLE_BLOCK = """
    li r1, 1
    jmp out
dead:
    addi r1, r1, 1    # no path reaches this block
    jmp dead
out:
    st r1, 0(r0)
    halt
"""

FALL_OFF_END = """
    li r1, 5
    addi r1, r1, 1
    st r1, 0(r0)      # no halt: control falls off the image
"""

SELF_JUMP = """
    li r1, 1
    st r1, 0(r0)
loop:
    jmp loop
"""

DEAD_STORE = """
    li r1, 5          # overwritten before any read
    li r1, 6
    st r1, 0(r0)
    halt
"""


def sole_finding(source):
    report = lint_program(assemble(source))
    assert len(report) == 1, [f.render() for f in report]
    return report.findings[0]


def test_undefined_read_exactly_one_finding():
    finding = sole_finding(UNDEFINED_READ)
    assert finding.rule == "undefined-read"
    assert finding.severity == "error"
    assert "r7" in finding.message
    assert finding.line == 3


def test_unreachable_block_exactly_one_finding():
    finding = sole_finding(UNREACHABLE_BLOCK)
    assert finding.rule == "unreachable"
    assert finding.severity == "error"


def test_fall_off_end_exactly_one_finding():
    finding = sole_finding(FALL_OFF_END)
    assert finding.rule == "fall-off-end"
    assert finding.severity == "error"
    assert "halt" in finding.message


def test_self_jump_exactly_one_finding():
    finding = sole_finding(SELF_JUMP)
    assert finding.rule == "self-jump"
    assert finding.severity == "error"


def test_dead_store_is_a_warning():
    finding = sole_finding(DEAD_STORE)
    assert finding.rule == "dead-store"
    assert finding.severity == "warning"
    report = lint_program(assemble(DEAD_STORE))
    assert report.clean is False
    assert not report.errors and report.warnings


def test_clean_program_no_findings():
    report = lint_program(assemble("""
        li r1, 0
        li r2, 10
    top:
        addi r1, r1, 1
        blt r1, r2, top
        st r1, 0(r0)
        halt
    """))
    assert report.clean
    assert len(report) == 0


def test_finding_render_format():
    finding = sole_finding(UNDEFINED_READ)
    text = finding.render("fixture.s")
    assert text.startswith("fixture.s:3: error: [undefined-read]")


# --- registry gate: every registered workload must be lint-clean ---------


def test_every_registered_workload_is_lint_clean():
    reports = lint_registered("tiny")
    assert set(reports) == set(ALL_NAMES)
    dirty = {
        name: [f.render(name) for f in report]
        for name, report in reports.items()
        if not report.clean
    }
    assert not dirty, dirty


def test_lint_workload_single():
    assert lint_workload("xz", "tiny").clean
