"""Dataflow analysis: reaching defs, may-alias memory, liveness.

The crown test validates the static facts against *dynamic* ground
truth: an instrumented interpreter records, for every executed
instruction, which instruction actually produced each consumed value
(registers via last-writer tracking, loads via last-store-to-address).
Static analysis over-approximates — every dynamically observed def-use
edge must appear in the static chains, on a pinned workload matrix.
"""

import pytest

from repro import assemble
from repro.analysis import MemLoc, analyze_dataflow
from repro.isa import REG_ZERO, UopClass
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.semantics import (
    branch_taken,
    branch_target,
    compute_result,
    effective_address,
)
from repro.workloads import make_workload


def idx(program, df, pc):
    return df.index_of[pc]


# ---------------------------------------------------------------------------
# MemLoc aliasing


def test_same_base_same_offset_must_alias():
    assert MemLoc(5, 8).may_alias(MemLoc(5, 8))


def test_same_base_different_offset_provably_distinct():
    assert not MemLoc(5, 0).may_alias(MemLoc(5, 8))


def test_different_bases_conservatively_alias():
    assert MemLoc(5, 0).may_alias(MemLoc(6, 1024))


# ---------------------------------------------------------------------------
# Reaching definitions / use-def chains


def test_straight_line_def_use():
    program = assemble("""
        li r1, 5
        addi r2, r1, 1
        halt
    """)
    df = analyze_dataflow(program)
    assert df.ud[1] == {1: (0,)}
    assert df.maybe_undefined == ()


def test_redefinition_kills():
    program = assemble("""
        li r1, 1
        li r1, 2
        addi r2, r1, 0
        halt
    """)
    df = analyze_dataflow(program)
    assert df.ud[2] == {1: (1,)}


def test_merge_point_sees_both_definitions():
    program = assemble("""
        li r3, 1
        beq r3, r0, other
        li r1, 10
        jmp join
    other:
        li r1, 20
    join:
        add r2, r1, r1
        halt
    """)
    df = analyze_dataflow(program)
    add_i = next(
        i for i, ins in enumerate(program.instructions) if ins.opcode == "add"
    )
    li_defs = tuple(
        i for i, ins in enumerate(program.instructions)
        if ins.opcode == "li" and ins.dst == 1
    )
    assert df.ud[add_i][1] == li_defs


def test_loop_carried_dependence():
    program = assemble("""
        li r1, 0
        li r2, 10
    top:
        addi r1, r1, 1
        blt r1, r2, top
        halt
    """)
    df = analyze_dataflow(program)
    addi_i = 2
    # r1 at the addi may come from the initial li or from itself.
    assert set(df.ud[addi_i][1]) == {0, addi_i}


def test_undefined_read_flagged():
    program = assemble("""
        addi r2, r7, 1
        halt
    """)
    df = analyze_dataflow(program)
    assert (0, 7) in df.maybe_undefined


def test_r0_reads_are_not_dependences():
    program = assemble("""
        addi r1, r0, 5
        halt
    """)
    df = analyze_dataflow(program)
    assert df.ud[0] == {}
    assert df.maybe_undefined == ()


# ---------------------------------------------------------------------------
# Memory def-use


def test_store_load_same_location_connected():
    program = assemble("""
        li r1, 4096
        li r2, 7
        st r2, 0(r1)
        ld r3, 0(r1)
        halt
    """)
    df = analyze_dataflow(program)
    assert df.mem_ud[3] == (2,)


def test_distinct_offsets_not_connected():
    program = assemble("""
        li r1, 4096
        li r2, 7
        st r2, 0(r1)
        ld r3, 8(r1)
        halt
    """)
    df = analyze_dataflow(program)
    assert 3 not in df.mem_ud


def test_unknown_bases_conservatively_connected():
    program = assemble("""
        li r1, 4096
        li r4, 8192
        li r2, 7
        st r2, 0(r1)
        ld r3, 0(r4)
        halt
    """)
    df = analyze_dataflow(program)
    assert df.mem_ud[4] == (3,)


def test_must_alias_store_kills_older_store():
    program = assemble("""
        li r1, 4096
        li r2, 7
        st r2, 0(r1)
        li r2, 9
        st r2, 0(r1)
        ld r3, 0(r1)
        halt
    """)
    df = analyze_dataflow(program)
    assert df.mem_ud[5] == (4,)


# ---------------------------------------------------------------------------
# Liveness / dead stores


def test_dead_store_detected():
    program = assemble("""
        li r1, 5
        li r1, 6
        addi r2, r1, 0
        halt
    """)
    df = analyze_dataflow(program)
    assert (0, 1) in df.dead_defs
    assert (1, 1) not in df.dead_defs


def test_value_live_across_loop_not_dead():
    program = assemble("""
        li r1, 0
        li r2, 10
    top:
        addi r1, r1, 1
        blt r1, r2, top
        halt
    """)
    df = analyze_dataflow(program)
    assert (0, 1) not in df.dead_defs
    assert (1, 2) not in df.dead_defs


# ---------------------------------------------------------------------------
# Dynamic ground truth: static chains must cover observed def-use edges


def dynamic_def_use(program, memory, max_steps=3_000_000):
    """Execute ``program``, recording actual producer->consumer edges.

    Returns (reg_edges, mem_edges, undefined) where reg_edges maps
    (use_pc, reg) -> set of def PCs observed, mem_edges maps load_pc ->
    set of store PCs observed, and undefined holds (use_pc, reg) pairs
    dynamically read before any write.
    """
    regs = [0] * 48
    last_writer = [None] * 48
    last_store = {}
    reg_edges = {}
    mem_edges = {}
    undefined = set()
    pc = program.entry_pc
    steps = 0
    while steps < max_steps:
        instr = program.instruction_at(pc)
        assert instr is not None, f"control left the image at {pc:#x}"
        steps += 1
        cls = instr.uop_class
        if cls is UopClass.HALT:
            return reg_edges, mem_edges, undefined
        for r in instr.srcs:
            if r == REG_ZERO:
                continue
            if last_writer[r] is None:
                undefined.add((pc, r))
            else:
                reg_edges.setdefault((pc, r), set()).add(last_writer[r])
        values = tuple(regs[r] for r in instr.srcs)
        if instr.is_branch:
            taken = branch_taken(instr, values)
            result = compute_result(instr, values)
            if instr.dst is not None and instr.dst != REG_ZERO:
                regs[instr.dst] = result
                last_writer[instr.dst] = pc
            pc = branch_target(instr, values) if taken else instr.fallthrough_pc
            continue
        if cls is UopClass.LOAD:
            addr = effective_address(instr, values)
            if addr in last_store:
                mem_edges.setdefault(pc, set()).add(last_store[addr])
            if instr.dst != REG_ZERO:
                regs[instr.dst] = memory.load(addr)
                last_writer[instr.dst] = pc
        elif cls is UopClass.STORE:
            addr = effective_address(instr, values)
            memory.store(addr, values[0])
            last_store[addr] = pc
        elif cls is not UopClass.NOP:
            result = compute_result(instr, values)
            if instr.dst is not None and instr.dst != REG_ZERO:
                regs[instr.dst] = result
                last_writer[instr.dst] = pc
        pc += INSTRUCTION_BYTES
    raise AssertionError("program did not halt")


@pytest.mark.parametrize("name", ["bfs", "mcf", "xz", "cc"])
def test_static_chains_cover_dynamic_def_use(name):
    bundle = make_workload(name, "tiny")
    program = bundle.program
    df = analyze_dataflow(program)
    reg_edges, mem_edges, undefined = dynamic_def_use(
        program, bundle.fresh_memory()
    )
    assert reg_edges, "workload executed no register def-use at all?"

    for (use_pc, reg), def_pcs in reg_edges.items():
        use_i = df.index_of[use_pc]
        static = {program.instructions[d].pc for d in df.ud[use_i].get(reg, ())}
        missing = def_pcs - static
        assert not missing, (
            f"{name}: dynamic def of r{reg} at {sorted(missing)} not in "
            f"static chain of use at {use_pc:#x}"
        )

    for load_pc, store_pcs in mem_edges.items():
        load_i = df.index_of[load_pc]
        static = {
            program.instructions[s].pc for s in df.mem_ud.get(load_i, ())
        }
        missing = store_pcs - static
        assert not missing, (
            f"{name}: dynamic store {sorted(missing)} feeding load at "
            f"{load_pc:#x} not in static may-alias set"
        )

    # Dynamically-observed uninitialized reads must be statically flagged.
    static_undef = {
        (program.instructions[i].pc, r) for i, r in df.maybe_undefined
    }
    assert undefined <= static_undef
