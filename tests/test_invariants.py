"""Runtime invariant checker (repro.verify.invariants): a checked sweep
over real workloads must be violation-free and cycle-identical to the
unchecked run, and every invariant family must catch a hand-broken
machine state."""

import pytest

from repro import Pipeline, SimConfig, assemble
from repro.core.config import ConfigError
from repro.core.dynamic_uop import UopState
from repro.harness import run_workload
from repro.tea import TeaConfig
from repro.verify import InvariantChecker, InvariantViolation

from tests.conftest import h2p_loop_workload


def stepped_pipeline(cond=None, max_steps=20_000):
    """An H2P-loop TEA pipeline stepped to a mid-execution state (and,
    optionally, until ``cond(pipeline)`` holds)."""
    source, mem, _ = h2p_loop_workload(n=600, seed=5)
    pipeline = Pipeline(assemble(source), mem, SimConfig(tea=TeaConfig()))
    for _ in range(max_steps):
        pipeline.step()
        if pipeline.cycle >= 1_500 and (cond is None or cond(pipeline)):
            return pipeline
    raise AssertionError("pipeline never reached the requested state")


class TestCheckedSweep:
    """Real workloads audited every cycle must be violation-free."""

    @pytest.mark.parametrize(
        "workload,mode,period",
        # One flagship every-cycle sweep; the rest sample every 8th
        # cycle (the audit is O(machine state), ~2ms per call).
        [("bfs", "tea", 1), ("bfs", "baseline", 8), ("xz", "tea", 8)],
    )
    def test_workload_violation_free(self, workload, mode, period):
        result = run_workload(workload, mode, "tiny", check_invariants=period)
        assert result.halted and result.validated
        assert result.stats.invariant_checks > 0
        if period == 1:
            assert result.stats.invariant_checks == result.stats.cycles

    def test_checking_is_timing_neutral(self):
        checked = run_workload("bfs", "tea", "tiny", check_invariants=4)
        plain = run_workload("bfs", "tea", "tiny")
        for name in (
            "cycles",
            "retired_instructions",
            "flushes",
            "early_flushes",
            "tea_resolved_branches",
            "tea_wrong_resolutions",
            "tea_chain_disables",
        ):
            assert getattr(checked.stats, name) == getattr(plain.stats, name)
        assert plain.stats.invariant_checks == 0
        assert checked.stats.invariant_checks > 0


class TestHandBrokenStates:
    """Each family must reject a deliberately corrupted machine."""

    def test_preg_leak_detected(self):
        pipeline = stepped_pipeline()
        pipeline.prf.main_free.popleft()
        checker = InvariantChecker(pipeline)
        with pytest.raises(InvariantViolation) as exc:
            checker.audit()
        assert exc.value.invariant == "preg_conservation"
        assert "leaked" in exc.value.detail

    def test_double_held_preg_detected(self):
        pipeline = stepped_pipeline()
        pipeline.prf.main_free.append(pipeline.prf.main_free[0])
        with pytest.raises(InvariantViolation) as exc:
            InvariantChecker(pipeline).audit()
        assert exc.value.invariant == "preg_conservation"
        assert "double-held" in exc.value.detail

    def test_rob_dead_state_detected(self):
        pipeline = stepped_pipeline(cond=lambda p: len(p.rob) >= 2)
        pipeline.rob[0].state = UopState.RETIRED
        with pytest.raises(InvariantViolation) as exc:
            InvariantChecker(pipeline)._check_rob_order()
        assert exc.value.invariant == "rob_order"

    def test_lsq_missing_load_detected(self):
        pipeline = stepped_pipeline(cond=lambda p: p.lq.entries)
        pipeline.lq.entries.pop()
        with pytest.raises(InvariantViolation) as exc:
            InvariantChecker(pipeline)._check_lsq_consistency()
        assert exc.value.invariant == "lsq_consistency"

    def test_ifbq_key_mismatch_detected(self):
        pipeline = stepped_pipeline(cond=lambda p: p.ifbq._entries)
        seq = next(iter(pipeline.ifbq._entries))
        pipeline.ifbq._entries[seq + 999_999] = pipeline.ifbq._entries[seq]
        with pytest.raises(InvariantViolation) as exc:
            InvariantChecker(pipeline)._check_occupancy_bounds()
        assert exc.value.invariant == "occupancy_bounds"

    def test_phantom_wakeup_subscription_detected(self):
        pipeline = stepped_pipeline()
        pipeline.prf.waiters[1].append(object())
        with pytest.raises(InvariantViolation) as exc:
            InvariantChecker(pipeline)._check_scheduler_wakeup()
        assert exc.value.invariant == "scheduler_wakeup"

    def test_rat_naming_tea_preg_detected(self):
        pipeline = stepped_pipeline()
        pipeline.rat.map[3] = pipeline.prf.main_size + 1
        with pytest.raises(InvariantViolation) as exc:
            InvariantChecker(pipeline)._check_tea_partition()
        assert exc.value.invariant == "tea_partition"

    def test_future_retire_cycle_detected(self):
        pipeline = stepped_pipeline()
        pipeline._last_retire_cycle = pipeline.cycle + 5
        with pytest.raises(InvariantViolation) as exc:
            InvariantChecker(pipeline)._check_flush_epoch()
        assert exc.value.invariant == "flush_epoch"

    def test_violation_carries_watchdog_diagnostics(self):
        pipeline = stepped_pipeline()
        pipeline.prf.main_free.popleft()
        with pytest.raises(InvariantViolation) as exc:
            InvariantChecker(pipeline).audit()
        diag = exc.value.diagnostics
        for key in ("cycle", "rob_depth", "free_pregs", "invariant"):
            assert key in diag
        assert diag["invariant"] == "preg_conservation"


class TestConfiguration:
    def test_negative_period_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(check_invariants=-1)

    def test_checker_rejects_zero_period(self):
        pipeline = stepped_pipeline()
        with pytest.raises(ValueError):
            InvariantChecker(pipeline, period=0)

    def test_clean_machine_passes_every_family(self):
        pipeline = stepped_pipeline()
        checker = InvariantChecker(pipeline)
        checker.audit()  # must not raise
        assert checker.checks_run == 1
        assert pipeline.stats.invariant_checks == 1
