"""Crash-recovery acceptance tests for the campaign service.

The durability contract, end to end against a real server subprocess
running real (tiny-scale) simulations:

* SIGKILL mid-campaign → restart on the same state dir → the job
  resumes, already-settled cells are NOT re-simulated, and the final
  report is byte-identical to a fault-free serial run;
* SIGTERM → graceful drain exits 0 quickly, the unfinished job
  survives in the journal, and a restart completes it.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.harness.executor import CampaignExecutor
from repro.service import JobSpec, ServiceClient, build_job_report

SRC = str(Path(repro.__file__).resolve().parents[1])


def start_server(state_dir, extra=()):
    (Path(state_dir) / "endpoint.json").unlink(missing_ok=True)
    env = {**os.environ, "PYTHONPATH": SRC}
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir),
            "--port", "0", "--workers", "1",
            "--run-timeout", "120", "--drain-deadline", "20",
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def reference_report(record) -> bytes:
    spec = JobSpec.from_record(record)
    outcomes = {
        o.key: o for o in CampaignExecutor(jobs=0, retries=0).run(
            spec.cell_specs()
        )
    }
    return build_job_report(spec, [outcomes[s.key] for s in spec.cell_specs()])


def wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    pytest.fail(f"timed out waiting for {message}")


class TestSigkillRecovery:
    def test_kill_restart_resumes_byte_identical(self, tmp_path):
        record = {"workloads": ["xz"], "modes": ["baseline", "tea"],
                  "scale": "tiny", "token": "recovery-1"}
        reference = reference_report(record)

        proc = start_server(tmp_path)
        try:
            client = ServiceClient.from_endpoint(tmp_path, wait=30.0)
            job_id = client.submit(record, deadline=60.0)["id"]
            # Let exactly part of the campaign settle, then murder the
            # server: at least one cell journaled, job still running.
            cells = tmp_path / "jobs" / f"{job_id}.cells.jsonl"
            wait_for(
                lambda: cells.exists() and cells.read_text().count("\n") >= 1,
                timeout=300.0,
                message="first cell to journal",
            )
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()

        # An acknowledged job is never lost: restart resumes it.
        proc = start_server(tmp_path)
        try:
            client = ServiceClient.from_endpoint(tmp_path, wait=30.0)
            summary = client.wait(job_id, timeout=300.0)
            assert summary["state"] == "done"
            assert summary["resumed"] is True
            # The pre-kill cell came back from the cell journal, not a
            # re-simulation.
            resumed = (
                summary["cells"]["journal_resumed"]
                + summary["cells"]["cached"]
            )
            assert resumed >= 1
            assert summary["cells"]["simulated"] <= 1
            report = client.result_bytes(job_id)
            assert report == reference
            # A token resubmit after recovery dedupes to the same job.
            again = client.submit(record, deadline=60.0)
            assert again["id"] == job_id
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60.0) == 0


class TestSigtermDrain:
    def test_drain_exits_zero_and_restart_completes(self, tmp_path):
        record = {"workloads": ["xz"], "modes": ["baseline"],
                  "scale": "tiny", "token": "drain-1"}
        proc = start_server(tmp_path)
        client = ServiceClient.from_endpoint(tmp_path, wait=30.0)
        job_id = client.submit(record, deadline=60.0)["id"]
        wait_for(
            lambda: client.status(job_id)["state"] == "running",
            timeout=60.0,
            message="job to start",
        )
        proc.send_signal(signal.SIGTERM)
        # Graceful: exit 0 within the drain deadline, not killed.
        assert proc.wait(timeout=30.0) == 0
        # The interrupted job is still in the journal, unfinished.
        journal = (tmp_path / "service.journal.jsonl").read_text()
        ops = [json.loads(line)["op"] for line in journal.splitlines()]
        assert ops.count("submit") == 1
        assert ops.count("done") == 0

        proc = start_server(tmp_path)
        try:
            client = ServiceClient.from_endpoint(tmp_path, wait=30.0)
            summary = client.wait(job_id, timeout=300.0)
            assert summary["state"] == "done"
            assert summary["resumed"] is True
            assert json.loads(client.result_bytes(job_id))["summary"]["ok"] == 1
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60.0) == 0
