"""Slicer-vs-walk oracle: the dynamic Backward Dataflow Walk's chain
membership must agree with the static slices.

Acceptance gate: for H2P branches free of indirect control flow, the
walk's marked instructions are explained by the static slice on >= 90%
of chain instructions (precision >= 0.90), on a pinned matrix.
"""

import pytest

from repro.analysis.oracle import render_report, run_slice_oracle

MATRIX = ["bfs", "mcf", "xz"]


@pytest.fixture(scope="module", params=MATRIX)
def oracle_report(request):
    return run_slice_oracle(request.param, scale="tiny", mode="tea")


def test_walks_were_captured(oracle_report):
    assert oracle_report["summary"]["walks_captured"] > 0
    assert oracle_report["summary"]["h2p_branches_scored"] > 0


def test_direct_branch_precision_meets_bar(oracle_report):
    direct = [r for r in oracle_report["branches"] if not r["has_indirect"]]
    assert direct, "no direct-control-flow H2P branches scored"
    for rec in direct:
        assert rec["precision"] >= 0.90, rec
    assert oracle_report["summary"]["min_precision_direct"] >= 0.90


def test_records_are_well_formed(oracle_report):
    for rec in oracle_report["branches"]:
        assert 0 < rec["intersection"] <= rec["dynamic_size"]
        assert rec["intersection"] <= rec["static_size"]
        assert 0.0 <= rec["precision"] <= 1.0
        assert 0.0 <= rec["recall"] <= 1.0
        assert rec["walks"] >= 1
        # The branch itself is in both chains, so the intersection is
        # never empty for a scored branch.
        assert rec["static_size"] >= 1


def test_report_is_json_safe(oracle_report):
    import json

    json.dumps(oracle_report)


def test_render_report_mentions_summary(oracle_report):
    text = render_report(oracle_report)
    assert "H2P branches scored" in text
    assert oracle_report["workload"] in text


def test_oracle_rejects_modes_without_tea():
    with pytest.raises(ValueError):
        run_slice_oracle("bfs", scale="tiny", mode="baseline")
