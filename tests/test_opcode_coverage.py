"""Consistency tests across the entire opcode table: every opcode can
be assembled, interpreted, and pipelined without special-casing."""

import pytest

from repro import MemoryImage, Pipeline, SimConfig, assemble
from repro.isa import (
    CLASS_LATENCY,
    UopClass,
    known_opcodes,
    opcode_signature,
    run_program,
)


def test_every_class_has_a_latency():
    for cls in UopClass:
        assert cls in CLASS_LATENCY
        assert CLASS_LATENCY[cls] >= 1


def test_signature_table_is_total():
    for opcode in known_opcodes():
        cls, has_dst, num_srcs, has_imm = opcode_signature(opcode)
        assert isinstance(cls, UopClass)
        assert 0 <= num_srcs <= 2


# One representative statement per opcode, in a context where it is
# architecturally safe (registers preloaded, memory at 4096).
_SNIPPETS = {
    "add": "add r1, r2, r3",
    "sub": "sub r1, r2, r3",
    "and": "and r1, r2, r3",
    "or": "or r1, r2, r3",
    "xor": "xor r1, r2, r3",
    "shl": "shl r1, r2, r4",
    "shr": "shr r1, r2, r4",
    "slt": "slt r1, r2, r3",
    "sltu": "sltu r1, r2, r3",
    "min": "min r1, r2, r3",
    "max": "max r1, r2, r3",
    "addi": "addi r1, r2, 5",
    "subi": "subi r1, r2, 5",
    "andi": "andi r1, r2, 5",
    "ori": "ori r1, r2, 5",
    "xori": "xori r1, r2, 5",
    "shli": "shli r1, r2, 2",
    "shri": "shri r1, r2, 2",
    "slti": "slti r1, r2, 5",
    "li": "li r1, -7",
    "mov": "mov r1, r2",
    "mul": "mul r1, r2, r3",
    "div": "div r1, r2, r3",
    "rem": "rem r1, r2, r3",
    "fadd": "fadd f1, f2, f3",
    "fsub": "fsub f1, f2, f3",
    "fmul": "fmul f1, f2, f3",
    "fdiv": "fdiv f1, f2, f3",
    "fmin": "fmin f1, f2, f3",
    "fmax": "fmax f1, f2, f3",
    "fmov": "fmov f1, f2",
    "fli": "fli f1, 512",
    "itof": "itof f1, r2",
    "ftoi": "ftoi r1, f2",
    "fcmplt": "fcmplt r1, f2, f3",
    "ld": "ld r1, 0(r5)",
    "fld": "fld f1, 0(r5)",
    "st": "st r2, 8(r5)",
    "fst": "fst f2, 16(r5)",
    "beq": "beq r2, r3, end",
    "bne": "bne r2, r2, end",
    "blt": "blt r3, r2, end",
    "bge": "bge r2, r3, end",
    "ble": "ble r3, r2, end",
    "bgt": "bgt r2, r3, end",
    "jmp": "jmp end",
    "call": "call sub_fn",
    "ret": None,   # exercised via call
    "jr": "jr r6",
    "callr": "callr r6",
    "nop": "nop",
    "halt": None,  # implicit
}

_PRELUDE = """
    li sp, 65536
    li r2, 12
    li r3, 4
    li r4, 2
    li r5, 4096
    la r6, target
    fli f2, 768
    fli f3, 256
"""

_EPILOGUE = """
end:
    halt
target:
    nop
    jmp end
sub_fn:
    ret
"""


@pytest.mark.parametrize(
    "opcode", sorted(op for op, snippet in _SNIPPETS.items() if snippet)
)
def test_opcode_runs_identically_on_both_engines(opcode):
    source = _PRELUDE + "    " + _SNIPPETS[opcode] + "\n" + _EPILOGUE
    program = assemble(source)
    reference = run_program(program, MemoryImage({4096: 9}))
    pipeline = Pipeline(program, MemoryImage({4096: 9}), SimConfig())
    pipeline.run(max_cycles=100_000)
    assert pipeline.halted
    for reg in list(range(1, 8)) + [33, 34, 35]:
        assert pipeline.architectural_register(reg) == reference.registers[reg], (
            f"{opcode}: r{reg} mismatch"
        )
    assert pipeline.memory.snapshot() == reference.memory.snapshot()


def test_snippet_table_covers_all_opcodes():
    assert set(_SNIPPETS) == set(known_opcodes())
