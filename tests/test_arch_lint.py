"""Architecture layering: the real tree must pass, seeded violations fail."""

from pathlib import Path

from repro.analysis.arch_lint import (
    LAYER_RANKS,
    check_layering,
    main,
)


def write_tree(root, files):
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return root


def test_real_codebase_is_layer_clean():
    violations = check_layering()
    assert violations == []


def test_cli_exit_codes(tmp_path, capsys):
    assert main([]) == 0
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/isa/__init__.py": "",
        "repro/isa/bad.py": "from ..tea import controller\n",
        "repro/tea/__init__.py": "",
        "repro/tea/controller.py": "x = 1\n",
    })
    assert main([str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "must not import repro.tea" in err


def test_upward_module_level_import_flagged(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/isa/__init__.py": "",
        "repro/isa/bad.py": "import repro.harness\n",
        "repro/harness/__init__.py": "",
    })
    violations = check_layering(tmp_path)
    assert len(violations) == 1
    assert "repro/isa/bad.py" in violations[0]


def test_sideways_same_rank_import_flagged(tmp_path):
    # memory and obs share rank 0; neither may import the other.
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/memory/__init__.py": "",
        "repro/memory/m.py": "from ..obs import events\n",
        "repro/obs/__init__.py": "",
        "repro/obs/events.py": "x = 1\n",
    })
    assert len(check_layering(tmp_path)) == 1


def test_function_level_import_is_exempt(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/isa/__init__.py": "",
        "repro/isa/lazy.py": (
            "def f():\n"
            "    from ..harness import runner\n"
            "    return runner\n"
        ),
        "repro/harness/__init__.py": "",
        "repro/harness/runner.py": "x = 1\n",
    })
    assert check_layering(tmp_path) == []


def test_downward_import_allowed(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/isa/__init__.py": "",
        "repro/isa/ok.py": "x = 1\n",
        "repro/tea/__init__.py": "",
        "repro/tea/uses_isa.py": "from ..isa import ok\n",
    })
    assert check_layering(tmp_path) == []


def test_unknown_layer_reported(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/mystery/__init__.py": "",
        "repro/mystery/mod.py": "x = 1\n",
    })
    violations = check_layering(tmp_path)
    assert violations and "unknown layer" in violations[0]


def test_conditional_module_level_import_counts(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/isa/__init__.py": "",
        "repro/isa/cond.py": (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from ..tea import controller\n"
        ),
        "repro/tea/__init__.py": "",
        "repro/tea/controller.py": "x = 1\n",
    })
    assert len(check_layering(tmp_path)) == 1


def test_rank_map_covers_every_package():
    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    packages = {
        p.name for p in src.iterdir()
        if p.is_dir() and p.name != "__pycache__"
    }
    assert packages <= set(LAYER_RANKS)
