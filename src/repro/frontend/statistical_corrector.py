"""Statistical corrector (the "SC" of TAGE-SC-L), lightweight variant.

The corrector learns statistically-biased branches that TAGE handles
poorly: it sums small signed counters from a per-PC bias table and two
global-history-indexed tables, and flips TAGE's prediction only when
TAGE's provider is weak and the corrector's sum is confident.  This
reproduces the role the SC plays in the paper's 64KB TAGE-SC-L without
the full GEHL machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from .history import HistoryState


@dataclass(frozen=True)
class StatisticalCorrectorConfig:
    bias_bits: int = 11
    history_bits: int = 10
    history_lengths: tuple[int, ...] = (8, 21)
    counter_bits: int = 6
    flip_threshold: int = 3


class StatisticalCorrector:
    """Confidence-weighted corrector over TAGE's weak predictions."""

    def __init__(
        self,
        config: StatisticalCorrectorConfig | None = None,
        history: HistoryState | None = None,
    ):
        self.config = config or StatisticalCorrectorConfig()
        cfg = self.config
        self.history = history if history is not None else HistoryState()
        self._folds = [
            self.history.register_fold(hlen, cfg.history_bits)
            for hlen in cfg.history_lengths
        ]
        self._bias = [0] * (1 << cfg.bias_bits)
        self._tables = [
            [0] * (1 << cfg.history_bits) for _ in cfg.history_lengths
        ]
        self._max = (1 << (cfg.counter_bits - 1)) - 1
        self._min = -(1 << (cfg.counter_bits - 1))
        self.flips = 0

    def _indices(self, pc: int) -> tuple[int, list[int]]:
        cfg = self.config
        bias_idx = (pc >> 2) & ((1 << cfg.bias_bits) - 1)
        hist_indices = []
        for i in range(len(cfg.history_lengths)):
            folded = self.history.fold(self._folds[i])
            idx = ((pc >> 2) ^ folded ^ (i * 0x9E37)) & ((1 << cfg.history_bits) - 1)
            hist_indices.append(idx)
        return bias_idx, hist_indices

    def correct(
        self, pc: int, tage_taken: bool, tage_weak: bool
    ) -> tuple[bool, dict]:
        """Possibly flip TAGE's weak prediction; returns (taken, meta)."""
        bias_idx, hist_indices = self._indices(pc)
        total = self._bias[bias_idx]
        for table, idx in zip(self._tables, hist_indices):
            total += table[idx]
        meta = {"sc_bias": bias_idx, "sc_hist": tuple(hist_indices)}
        sc_taken = total >= 0
        if tage_weak and abs(total) >= self.config.flip_threshold:
            if sc_taken != tage_taken:
                self.flips += 1
            return sc_taken, meta
        return tage_taken, meta

    def train(self, meta: dict, taken: bool) -> None:
        """Retirement-time counter update using predict-time indices."""
        delta = 1 if taken else -1
        bias_idx = meta["sc_bias"]
        self._bias[bias_idx] = _clamp(self._bias[bias_idx] + delta, self._min, self._max)
        for table, idx in zip(self._tables, meta["sc_hist"]):
            table[idx] = _clamp(table[idx] + delta, self._min, self._max)


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))
