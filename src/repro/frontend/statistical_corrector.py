"""Statistical corrector (the "SC" of TAGE-SC-L), lightweight variant.

The corrector learns statistically-biased branches that TAGE handles
poorly: it sums small signed counters from a per-PC bias table and two
global-history-indexed tables, and flips TAGE's prediction only when
TAGE's provider is weak and the corrector's sum is confident.  This
reproduces the role the SC plays in the paper's 64KB TAGE-SC-L without
the full GEHL machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from .history import HistoryState


@dataclass(frozen=True)
class StatisticalCorrectorConfig:
    bias_bits: int = 11
    history_bits: int = 10
    history_lengths: tuple[int, ...] = (8, 21)
    counter_bits: int = 6
    flip_threshold: int = 3


class StatisticalCorrector:
    """Confidence-weighted corrector over TAGE's weak predictions."""

    def __init__(
        self,
        config: StatisticalCorrectorConfig | None = None,
        history: HistoryState | None = None,
    ):
        self.config = config or StatisticalCorrectorConfig()
        cfg = self.config
        self.history = history if history is not None else HistoryState()
        self._folds = [
            self.history.register_fold(hlen, cfg.history_bits)
            for hlen in cfg.history_lengths
        ]
        self._bias = [0] * (1 << cfg.bias_bits)
        self._tables = [
            [0] * (1 << cfg.history_bits) for _ in cfg.history_lengths
        ]
        self._max = (1 << (cfg.counter_bits - 1)) - 1
        self._min = -(1 << (cfg.counter_bits - 1))
        self._bias_mask = (1 << cfg.bias_bits) - 1
        self._hist_mask = (1 << cfg.history_bits) - 1
        self._xor_keys = [i * 0x9E37 for i in range(len(cfg.history_lengths))]
        self.flips = 0

    def _indices(self, pc: int) -> tuple[int, tuple[int, ...]]:
        pc_bits = pc >> 2
        folds = self.history._folds
        ids = self._folds
        mask = self._hist_mask
        hist_indices = tuple(
            [
                (pc_bits ^ folds[ids[i]] ^ key) & mask
                for i, key in enumerate(self._xor_keys)
            ]
        )
        return pc_bits & self._bias_mask, hist_indices

    def correct(
        self, pc: int, tage_taken: bool, tage_weak: bool
    ) -> tuple[bool, tuple]:
        """Possibly flip TAGE's weak prediction.

        Returns ``(taken, meta)`` where ``meta`` is opaque predict-time
        index state to hand back to :meth:`train` at retirement.
        """
        bias_idx, hist_indices = self._indices(pc)
        total = self._bias[bias_idx]
        for table, idx in zip(self._tables, hist_indices):
            total += table[idx]
        meta = (bias_idx, hist_indices)
        sc_taken = total >= 0
        if tage_weak and abs(total) >= self.config.flip_threshold:
            if sc_taken != tage_taken:
                self.flips += 1
            return sc_taken, meta
        return tage_taken, meta

    def train(self, meta: tuple, taken: bool) -> None:
        """Retirement-time counter update using predict-time indices."""
        delta = 1 if taken else -1
        bias_idx, hist_indices = meta
        self._bias[bias_idx] = _clamp(self._bias[bias_idx] + delta, self._min, self._max)
        for table, idx in zip(self._tables, hist_indices):
            table[idx] = _clamp(table[idx] + delta, self._min, self._max)


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))
