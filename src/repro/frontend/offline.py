"""Offline (trace-driven) predictor evaluation.

The execution-driven pipeline is the ground truth, but predictor
research iterates much faster on recorded outcome traces.  This module
evaluates any conditional predictor (TAGE-SC-L, perceptron, gshare —
anything with the ``predict``/``train``/``predicted_taken`` interface)
against a branch trace collected by the golden-model interpreter
(:func:`repro.isa.run_program` with ``collect_trace=True``), with
in-order training — i.e. an idealized frontend with no wrong-path
pollution.  Useful for sizing studies and for identifying which static
branches are H2P before running the full machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .history import HistoryState
from .tagescl import TageScl, TageSclConfig


@dataclass
class OfflineResult:
    """Outcome of replaying a trace through one predictor."""

    branches: int
    mispredicts: int
    by_pc: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredicts / self.branches if self.branches else 1.0

    @property
    def mpkb(self) -> float:
        """Mispredictions per kilo-branch."""
        return 1000.0 * self.mispredicts / self.branches if self.branches else 0.0

    def hardest_branches(self, count: int = 10) -> list[tuple[int, float, int]]:
        """``[(pc, mispredict_rate, occurrences)]``, hardest first."""
        ranked = []
        for pc, (seen, missed) in self.by_pc.items():
            ranked.append((pc, missed / seen, seen))
        ranked.sort(key=lambda item: item[1] * item[2], reverse=True)
        return ranked[:count]


def evaluate_predictor(
    trace: list[tuple[int, bool]],
    predictor=None,
    history: HistoryState | None = None,
) -> OfflineResult:
    """Replay ``(pc, taken)`` records through a conditional predictor.

    With no ``predictor`` given, a fresh TAGE-SC-L (and its history) is
    constructed.  When supplying your own predictor, pass the
    :class:`HistoryState` it was registered on.
    """
    if predictor is None:
        history = HistoryState()
        predictor = TageScl(TageSclConfig(), history)
    elif history is None:
        history = getattr(predictor, "history", None)
        if history is None:
            raise ValueError("pass the HistoryState the predictor was built on")

    result = OfflineResult(branches=0, mispredicts=0)
    for pc, taken in trace:
        pred = predictor.predict(pc)
        predicted = predictor.predicted_taken(pred)
        seen, missed = result.by_pc.get(pc, (0, 0))
        wrong = predicted != taken
        result.by_pc[pc] = (seen + 1, missed + (1 if wrong else 0))
        result.branches += 1
        if wrong:
            result.mispredicts += 1
        history.push_conditional(taken)
        predictor.train(pc, taken, pred)
    return result
