"""Speculative global branch history shared by TAGE, SC, and ITTAGE.

The decoupled branch predictor updates this history *speculatively* as
it predicts down the (possibly wrong) path.  Each predicted branch
snapshots the history into its in-flight branch queue entry; a
misprediction flush restores the snapshot and re-applies the correct
outcome — this is the paper's "fix the branch predictor history" step.

Geometric-history predictors need the global history *folded* down to
table-index width.  Folding a 256-bit history on every prediction is
the simulator's hottest loop, so — exactly like the hardware — we keep
*incremental folded registers*: each predictor component registers its
(length, width) pairs once, and every history push updates all folded
registers in O(1) each (circular-shift folding, Seznec's scheme).  The
folded values are part of the snapshot, so recovery is exact.
"""

from __future__ import annotations

MAX_HISTORY_BITS = 512
PATH_HISTORY_BITS = 32

_GHR_MASK = (1 << MAX_HISTORY_BITS) - 1
_PATH_MASK = (1 << PATH_HISTORY_BITS) - 1


class HistoryState:
    """Global direction history + path history + folded registers."""

    __slots__ = ("ghr", "path", "_specs", "_folds", "_push")

    def __init__(self, ghr: int = 0, path: int = 0):
        self.ghr = ghr
        self.path = path
        self._specs: list[tuple[int, int, int, int]] = []
        self._folds: list[int] = []
        self._push = None

    # -- folded register registry --------------------------------------
    def register_fold(self, length: int, width: int) -> int:
        """Register an incremental folded register; returns its index.

        Must be called before any history is pushed (predictor
        construction time).
        """
        if self.ghr:
            raise ValueError("register_fold() requires pristine history")
        if length <= 0 or width <= 0:
            raise ValueError("fold length and width must be positive")
        # Stored pre-shifted for the hot _push_bit loop:
        # (outgoing-bit shift, width, outgoing fold position, mask).
        self._specs.append(
            (length - 1, width, length % width, (1 << width) - 1)
        )
        self._folds.append(0)
        self._push = None  # respecialize on next push
        return len(self._specs) - 1

    def fold(self, index: int) -> int:
        """Current value of a registered folded register."""
        return self._folds[index]

    # -- speculative update ---------------------------------------------
    def _push_bit(self, bit: int) -> None:
        push = self._push
        if push is None:
            push = self._specialize_push()
        push(bit)

    def _specialize_push(self):
        """Compile an unrolled push with the fold specs inlined.

        This is the simulator's hottest loop (every predicted branch
        updates ~20 folded registers), so — like ``namedtuple`` — we
        generate a specialized function once the spec set is known:
        constants are baked in and the per-spec tuple unpacking and
        loop bookkeeping disappear.  ``register_fold`` invalidates the
        compiled form so late registration respecializes.
        """
        lines = ["def _push(bit):", "    ghr = state.ghr"]
        if self._specs:
            lines.append("    folds = state._folds")
        for i, (out_shift, width, out_pos, mask) in enumerate(self._specs):
            lines.append(
                f"    f = ((folds[{i}] << 1) | bit)"
                f" ^ (((ghr >> {out_shift}) & 1) << {out_pos})"
            )
            lines.append(f"    f ^= f >> {width}")
            lines.append(f"    folds[{i}] = f & {mask}")
        lines.append(f"    state.ghr = ((ghr << 1) | bit) & {_GHR_MASK}")
        namespace = {"state": self}
        exec("\n".join(lines), namespace)
        self._push = namespace["_push"]
        return self._push

    def push_conditional(self, taken: bool) -> None:
        """Shift a conditional branch outcome into the GHR."""
        push = self._push
        if push is None:
            push = self._specialize_push()
        push(1 if taken else 0)

    def push_target(self, pc: int, target: int) -> None:
        """Record a taken control transfer (incl. unconditional and
        indirect branches) in path and direction history."""
        bits = ((pc >> 2) ^ (target >> 2)) & 0x7
        self.path = ((self.path << 3) | bits) & _PATH_MASK
        push = self._push
        if push is None:
            push = self._specialize_push()
        push(1)

    # -- warm start --------------------------------------------------------
    def warm_replay(self, ghr: int, path: int) -> None:
        """Seed a registered-but-pristine history from raw GHR/path bits.

        Replays all :data:`MAX_HISTORY_BITS` bits of ``ghr`` oldest
        first through the incremental fold machinery, so every folded
        register ends up *exactly* as if the original push sequence had
        run (each fold is a pure function of its last ``length`` pushed
        bits, and leading zero bits from the pristine state are
        no-ops).  Used by sampled simulation to restore checkpointed
        warmup history into a freshly built frontend.
        """
        if self.ghr:
            raise ValueError("warm_replay() requires pristine history")
        for shift in range(MAX_HISTORY_BITS - 1, -1, -1):
            self._push_bit((ghr >> shift) & 1)
        assert self.ghr == ghr & _GHR_MASK
        self.path = path & _PATH_MASK

    # -- recovery ----------------------------------------------------------
    def snapshot(self) -> tuple[int, int, tuple[int, ...]]:
        return (self.ghr, self.path, tuple(self._folds))

    def restore(self, snap: tuple[int, int, tuple[int, ...]]) -> None:
        self.ghr, self.path, folds = snap
        self._folds = list(folds)


def fold_history(history: int, length: int, width: int) -> int:
    """Fold the low ``length`` bits of ``history`` into ``width`` bits.

    Direct chunked-XOR fold, used for the short *path* history (cheap)
    and as an independent mixing function in tests.  The incremental
    registers above use circular-shift folding — a different but
    equally valid hash; both are pure functions of the history window.
    """
    if length <= 0:
        return 0
    h = history & ((1 << length) - 1)
    mask = (1 << width) - 1
    folded = 0
    while h:
        folded ^= h & mask
        h >>= width
    return folded
