"""History-based indirect target predictor (ITTAGE-style).

Predicts targets of ``jr``/``callr`` indirect jumps: a last-target base
table plus tagged components indexed by folded global/path history that
store full targets.  Returns are handled separately by the RAS.  This
is the paper's "history-based indirect branch predictor" (Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from .history import HistoryState, fold_history


@dataclass(frozen=True)
class IttageConfig:
    num_tables: int = 4
    table_index_bits: int = 8
    tag_bits: int = 9
    history_lengths: tuple[int, ...] = (8, 32, 96, 192)
    base_index_bits: int = 9
    counter_max: int = 3


class _IttageEntry:
    __slots__ = ("tag", "target", "ctr", "useful")

    def __init__(self) -> None:
        self.tag = -1
        self.target = 0
        self.ctr = 0
        self.useful = 0


@dataclass(slots=True)
class IttagePrediction:
    """Predict-time metadata for retirement training."""

    target: int | None
    provider: int = -1
    indices: tuple[int, ...] = ()
    tags: tuple[int, ...] = ()
    base_index: int = 0


class Ittage:
    """Tagged geometric-history indirect target predictor."""

    def __init__(
        self,
        config: IttageConfig | None = None,
        history: HistoryState | None = None,
    ):
        self.config = config or IttageConfig()
        cfg = self.config
        if len(cfg.history_lengths) != cfg.num_tables:
            raise ValueError("history_lengths must match num_tables")
        self.history = history if history is not None else HistoryState()
        self._idx_folds = [
            self.history.register_fold(hlen, cfg.table_index_bits)
            for hlen in cfg.history_lengths
        ]
        self._tag_folds = [
            self.history.register_fold(hlen, cfg.tag_bits)
            for hlen in cfg.history_lengths
        ]
        size = 1 << cfg.table_index_bits
        self.tables = [
            [_IttageEntry() for _ in range(size)] for _ in range(cfg.num_tables)
        ]
        self.base_targets: list[int | None] = [None] * (1 << cfg.base_index_bits)
        self.predictions = 0
        self.allocations = 0

    def _keys(self, pc: int):
        cfg = self.config
        history = self.history
        idx_mask = (1 << cfg.table_index_bits) - 1
        tag_mask = (1 << cfg.tag_bits) - 1
        pc_bits = pc >> 2
        indices, tags = [], []
        for i, hlen in enumerate(cfg.history_lengths):
            folded = history.fold(self._idx_folds[i])
            fpath = fold_history(history.path, min(hlen, 16), cfg.table_index_bits)
            indices.append((pc_bits ^ (pc_bits >> (i + 2)) ^ folded ^ fpath) & idx_mask)
            tag = (
                pc_bits
                ^ history.fold(self._tag_folds[i])
                ^ (fold_history(history.path, min(hlen, 12), cfg.tag_bits - 1) << 1)
            ) & tag_mask
            tags.append(tag)
        return tuple(indices), tuple(tags)

    def predict(self, pc: int) -> IttagePrediction:
        """Predict the target of the indirect branch at ``pc``.

        ``target`` is ``None`` when nothing is known yet (first sight of
        the branch) — the frontend then predicts fallthrough and takes
        the misprediction.
        """
        self.predictions += 1
        indices, tags = self._keys(pc)
        base_index = (pc >> 2) & ((1 << self.config.base_index_bits) - 1)
        for i in range(self.config.num_tables - 1, -1, -1):
            entry = self.tables[i][indices[i]]
            if entry.tag == tags[i]:
                return IttagePrediction(
                    target=entry.target,
                    provider=i,
                    indices=indices,
                    tags=tags,
                    base_index=base_index,
                )
        return IttagePrediction(
            target=self.base_targets[base_index],
            provider=-1,
            indices=indices,
            tags=tags,
            base_index=base_index,
        )

    def train(self, pc: int, actual_target: int, pred: IttagePrediction) -> None:
        """Retirement-time update; allocates on target mispredictions."""
        cfg = self.config
        correct = pred.target == actual_target
        if pred.provider >= 0:
            entry = self.tables[pred.provider][pred.indices[pred.provider]]
            if entry.tag == pred.tags[pred.provider]:
                if entry.target == actual_target:
                    entry.ctr = min(entry.ctr + 1, cfg.counter_max)
                    entry.useful = min(entry.useful + 1, 3)
                else:
                    if entry.ctr > 0:
                        entry.ctr -= 1
                    else:
                        entry.target = actual_target
                        entry.ctr = 1
                    entry.useful = max(entry.useful - 1, 0)
        else:
            self.base_targets[pred.base_index] = actual_target
        if not correct:
            self._allocate(pred, actual_target)

    def _allocate(self, pred: IttagePrediction, target: int) -> None:
        start = pred.provider + 1
        for i in range(start, self.config.num_tables):
            entry = self.tables[i][pred.indices[i]]
            if entry.useful == 0:
                entry.tag = pred.tags[i]
                entry.target = target
                entry.ctr = 1
                self.allocations += 1
                return
        for i in range(start, self.config.num_tables):
            entry = self.tables[i][pred.indices[i]]
            entry.useful = max(entry.useful - 1, 0)
