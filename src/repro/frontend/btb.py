"""Branch Target Buffer.

4k-entry set-associative tag array (paper Table I).  In a decoupled
frontend the BTB's job is to tell the predictor *that* a branch exists
at a PC before decode; our model walks the actual program image, so the
BTB instead gates taken predictions: a conditional or indirect branch
that misses the BTB is forced to a not-taken (fallthrough) prediction
and the resulting misprediction trains the BTB at resolution.  Direct
unconditional jumps/calls are decode-resolvable and are not gated.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class BtbConfig:
    entries: int = 4096
    ways: int = 4


class Btb:
    """Set-associative branch target buffer (presence + target)."""

    def __init__(self, config: BtbConfig | None = None):
        self.config = config or BtbConfig()
        self.num_sets = self.config.entries // self.config.ways
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("BTB set count must be a power of two")
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> tuple[OrderedDict[int, int], int]:
        word = pc >> 2
        return self._sets[word & (self.num_sets - 1)], word

    def lookup(self, pc: int) -> int | None:
        """Return the cached target for the branch at ``pc`` (or None)."""
        cset, tag = self._locate(pc)
        if tag in cset:
            cset.move_to_end(tag)
            self.hits += 1
            return cset[tag]
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        """Record a branch and its most recent taken target."""
        cset, tag = self._locate(pc)
        if tag in cset:
            cset[tag] = target
            cset.move_to_end(tag)
            return
        if len(cset) >= self.config.ways:
            cset.popitem(last=False)
        cset[tag] = target
