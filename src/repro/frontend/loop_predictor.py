"""Loop termination predictor (the "L" of TAGE-SC-L).

Captures branches with constant trip counts: once a loop branch has
exited with the same iteration count ``confidence_threshold`` times in
a row, the predictor overrides TAGE on the exit iteration.  Speculative
iteration counts are tracked at predict time and rolled back on flush
via :meth:`snapshot`/:meth:`restore` (counts are kept in a small
immutable-friendly dict).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LoopPredictorConfig:
    entries: int = 64
    max_trip: int = 1 << 14
    confidence_threshold: int = 3


class _LoopEntry:
    __slots__ = ("pc", "trip_count", "confidence", "last_count")

    def __init__(self, pc: int) -> None:
        self.pc = pc
        self.trip_count = 0
        self.confidence = 0
        self.last_count = 0


class LoopPredictor:
    """Trip-count predictor for backward (loop) conditional branches."""

    def __init__(self, config: LoopPredictorConfig | None = None):
        self.config = config or LoopPredictorConfig()
        self._entries: dict[int, _LoopEntry] = {}
        # Speculative per-PC iteration counters (predict-time state).
        self._spec_counts: dict[int, int] = {}
        self.overrides = 0

    # -- speculative prediction side ----------------------------------
    def predict(self, pc: int) -> bool | None:
        """Return a confident direction, or ``None`` to defer to TAGE.

        Convention: a loop branch is *taken* while iterating and
        not-taken on exit (backward conditional branches).
        """
        entry = self._entries.get(pc)
        if entry is None or entry.confidence < self.config.confidence_threshold:
            return None
        count = self._spec_counts.get(pc, 0) + 1
        self._spec_counts[pc] = count
        # trip_count counts *taken* executions; the exit is the
        # (trip_count + 1)-th dynamic instance.
        if count > entry.trip_count:
            self._spec_counts[pc] = 0
            self.overrides += 1
            return False  # predict loop exit
        self.overrides += 1
        return True

    _EMPTY: dict[int, int] = {}

    def snapshot(self) -> dict[int, int]:
        # The empty-dict fast path avoids per-branch allocations in
        # programs where no loop has stabilized yet (the common case).
        if not self._spec_counts:
            return self._EMPTY
        return dict(self._spec_counts)

    def restore(self, snap: dict[int, int]) -> None:
        self._spec_counts = dict(snap) if snap else {}

    # -- retirement-time training --------------------------------------
    def train(self, pc: int, taken: bool) -> None:
        """Observe a retired loop-candidate branch outcome."""
        entry = self._entries.get(pc)
        if entry is None:
            if len(self._entries) >= self.config.entries:
                # Evict the least-confident entry.
                victim = min(self._entries.values(), key=lambda e: e.confidence)
                del self._entries[victim.pc]
            entry = _LoopEntry(pc)
            self._entries[pc] = entry
        if taken:
            entry.last_count += 1
            if entry.last_count > self.config.max_trip:
                entry.confidence = 0
                entry.last_count = 0
        else:
            if entry.last_count == entry.trip_count and entry.trip_count > 0:
                entry.confidence = min(
                    entry.confidence + 1, self.config.confidence_threshold
                )
            else:
                entry.trip_count = entry.last_count
                entry.confidence = 0
            entry.last_count = 0
