"""Decoupled frontend: TAGE-SC-L, ITTAGE, BTB, RAS, and the FTQ."""

from .alternatives import (
    Gshare,
    GshareConfig,
    HashedPerceptron,
    PerceptronConfig,
)
from .btb import Btb, BtbConfig
from .decoupled import (
    BranchInfo,
    DecoupledFrontend,
    FetchBlock,
    FetchUop,
    FrontendConfig,
)
from .history import HistoryState, fold_history
from .offline import OfflineResult, evaluate_predictor
from .ittage import Ittage, IttageConfig, IttagePrediction
from .loop_predictor import LoopPredictor, LoopPredictorConfig
from .ras import ReturnAddressStack
from .statistical_corrector import StatisticalCorrector, StatisticalCorrectorConfig
from .tage import Tage, TageConfig, TagePrediction
from .tagescl import TageScl, TageSclConfig

__all__ = [
    "Gshare",
    "GshareConfig",
    "HashedPerceptron",
    "PerceptronConfig",
    "Btb",
    "BtbConfig",
    "BranchInfo",
    "DecoupledFrontend",
    "FetchBlock",
    "FetchUop",
    "FrontendConfig",
    "HistoryState",
    "fold_history",
    "OfflineResult",
    "evaluate_predictor",
    "Ittage",
    "IttageConfig",
    "IttagePrediction",
    "LoopPredictor",
    "LoopPredictorConfig",
    "ReturnAddressStack",
    "StatisticalCorrector",
    "StatisticalCorrectorConfig",
    "Tage",
    "TageConfig",
    "TagePrediction",
    "TageScl",
    "TageSclConfig",
]
