"""Return Address Stack with O(1) checkpointing.

The RAS is speculatively updated by the decoupled predictor, so every
predicted branch needs a recoverable snapshot.  We implement the stack
as a persistent (immutable, structurally shared) linked list: a
snapshot is just the current node reference, and restoring after a
misprediction flush is a single assignment — mirroring how real designs
checkpoint the RAS top pointer.

Depth is bounded; pushes past the bound drop the oldest entry (the
persistent list is simply truncated lazily by ignoring depth overflow,
which matches wrap-around behaviour closely enough for prediction).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class _Node:
    address: int
    below: "_Node | None"
    depth: int


class ReturnAddressStack:
    """Speculative RAS with persistent-snapshot recovery."""

    def __init__(self, max_depth: int = 32):
        self.max_depth = max_depth
        self._top: _Node | None = None
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        depth = (self._top.depth + 1) if self._top else 1
        self._top = _Node(return_address, self._top, depth)
        self.pushes += 1
        if depth > self.max_depth:
            # Drop the bottom entry: rebuild without the oldest node.
            nodes = []
            node = self._top
            while node is not None:
                nodes.append(node.address)
                node = node.below
            rebuilt: _Node | None = None
            for i, addr in enumerate(reversed(nodes[:-1]), start=1):
                rebuilt = _Node(addr, rebuilt, i)
            self._top = rebuilt

    def pop(self) -> int | None:
        """Pop the predicted return address (None on underflow)."""
        self.pops += 1
        if self._top is None:
            self.underflows += 1
            return None
        address = self._top.address
        self._top = self._top.below
        return address

    def peek(self) -> int | None:
        return self._top.address if self._top else None

    @property
    def depth(self) -> int:
        return self._top.depth if self._top else 0

    def snapshot(self) -> "_Node | None":
        return self._top

    def restore(self, snap: "_Node | None") -> None:
        self._top = snap
