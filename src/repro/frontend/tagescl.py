"""TAGE-SC-L: the paper's baseline conditional direction predictor.

Composition order follows Seznec's championship predictor: the loop
predictor overrides everything when confident; otherwise the
statistical corrector may flip a weak TAGE prediction.  All component
metadata needed for retirement-time training is folded into the
:class:`~repro.frontend.tage.TagePrediction` carried by the in-flight
branch queue entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .history import HistoryState
from .loop_predictor import LoopPredictor, LoopPredictorConfig
from .statistical_corrector import StatisticalCorrector, StatisticalCorrectorConfig
from .tage import Tage, TageConfig, TagePrediction


@dataclass(frozen=True)
class TageSclConfig:
    tage: TageConfig = field(default_factory=TageConfig)
    sc: StatisticalCorrectorConfig = field(default_factory=StatisticalCorrectorConfig)
    loop: LoopPredictorConfig = field(default_factory=LoopPredictorConfig)
    enable_sc: bool = True
    enable_loop: bool = True


class TageScl:
    """Combined TAGE + Statistical Corrector + Loop predictor."""

    def __init__(
        self,
        config: TageSclConfig | None = None,
        history: HistoryState | None = None,
    ):
        self.config = config or TageSclConfig()
        self.history = history if history is not None else HistoryState()
        self.tage = Tage(self.config.tage, self.history)
        self.sc = StatisticalCorrector(self.config.sc, self.history)
        self.loop = LoopPredictor(self.config.loop)
        self.predictions = 0
        self.mispredicts_trained = 0

    def predict(self, pc: int, is_backward: bool = False) -> TagePrediction:
        """Predict the direction of the conditional branch at ``pc``.

        ``is_backward`` marks loop-shaped branches (target PC below the
        branch) which are the loop predictor's candidates.
        """
        self.predictions += 1
        pred = self.tage.predict(pc)
        final_taken = pred.taken
        loop_used = False
        if self.config.enable_loop and is_backward:
            loop_pred = self.loop.predict(pc)
            if loop_pred is not None:
                final_taken = loop_pred
                loop_used = True
        if not loop_used and self.config.enable_sc:
            final_taken, sc_meta = self.sc.correct(
                pc, pred.taken, pred.provider_weak or pred.provider < 0
            )
            pred.sc_meta = sc_meta
        pred.final_taken = final_taken
        pred.loop_used = loop_used
        pred.is_backward = is_backward
        return pred

    @staticmethod
    def predicted_taken(pred: TagePrediction) -> bool:
        """The post-SC/L direction for a prediction from :meth:`predict`."""
        final = pred.final_taken
        return pred.taken if final is None else final

    def train(self, pc: int, taken: bool, pred: TagePrediction) -> None:
        """Retirement-time training of all components."""
        if self.predicted_taken(pred) != taken:
            self.mispredicts_trained += 1
        self.tage.train(pc, taken, pred)
        if self.config.enable_sc and pred.sc_meta is not None:
            self.sc.train(pred.sc_meta, taken)
        if self.config.enable_loop and pred.is_backward:
            self.loop.train(pc, taken)

    # Speculative loop-counter state must follow flush recovery.
    def snapshot_spec_state(self):
        return self.loop.snapshot()

    def restore_spec_state(self, snap) -> None:
        self.loop.restore(snap)
