"""Decoupled branch-prediction unit and fetch target queue (FTQ).

The decoupled BP runs ahead of fetch, producing one *fetch block* per
cycle: up to one predicted-taken branch or 32 sequential instructions
(128 bytes), matching the paper's §III-B/IV-A.  Blocks are pushed into
the main-thread FTQ (128 entries) and mirrored into a shadow FTQ for
the TEA thread, which consumes the *same* block objects — this is how
both threads see identical branch IDs ("synchronized timestamps").

Every dynamic uop receives a monotonically increasing sequence number
at prediction time; a branch's sequence number *is* its timestamp.  A
misprediction flush truncates the FTQ at the branch's timestamp,
restores the predictor's speculative state from the snapshot captured
when the branch was predicted, re-applies the branch's actual outcome,
and resumes prediction at the correct target.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..isa import INSTRUCTION_BYTES, Instruction, Program, UopClass
from .btb import Btb, BtbConfig
from .history import HistoryState
from .ittage import Ittage, IttageConfig, IttagePrediction
from .ras import ReturnAddressStack
from .tagescl import TageScl, TageSclConfig
from .tage import TagePrediction


@dataclass(frozen=True)
class FrontendConfig:
    """Decoupled-frontend parameters (paper Table I)."""

    tagescl: TageSclConfig = field(default_factory=TageSclConfig)
    ittage: IttageConfig = field(default_factory=IttageConfig)
    btb: BtbConfig = field(default_factory=BtbConfig)
    ras_depth: int = 32
    max_block_uops: int = 32       # 128B / 4B
    ftq_capacity: int = 128        # fetch addresses buffered for fetch
    # Conditional direction predictor: "tagescl" (paper baseline),
    # "perceptron", or "gshare" (comparison points).
    conditional_predictor: str = "tagescl"


@dataclass(slots=True)
class BranchInfo:
    """Everything the pipeline needs to verify/recover one branch."""

    seq: int
    pc: int
    uop_class: UopClass
    predicted_taken: bool
    predicted_target: int
    fallthrough: int
    can_mispredict: bool
    tage_pred: TagePrediction | None = None
    ittage_pred: IttagePrediction | None = None
    history_snapshot: tuple | None = None
    ras_snapshot: object = None
    loop_snapshot: object = None
    btb_hit: bool = True
    is_backward: bool = False
    override_used: bool = False    # a precomputed outcome replaced TAGE

    @property
    def predicted_next_pc(self) -> int:
        return self.predicted_target if self.predicted_taken else self.fallthrough


@dataclass(slots=True)
class FetchUop:
    """A dynamic uop as produced by the decoupled BP."""

    seq: int
    instr: Instruction
    branch: BranchInfo | None = None


@dataclass(slots=True)
class FetchBlock:
    """One FTQ entry: a fetch address plus its predicted uop run."""

    start_pc: int
    uops: list[FetchUop]
    next_fetch_pc: int | None
    # Mispredictable branches in the block (usually 0 or 1), so
    # consumers that only care about branches skip the uop scan.
    branches: list[BranchInfo] | None = None

    @property
    def first_seq(self) -> int:
        return self.uops[0].seq if self.uops else -1

    @property
    def last_seq(self) -> int:
        return self.uops[-1].seq if self.uops else -1

    def truncate_after(self, seq: int) -> None:
        """Drop uops younger than ``seq`` (flush support)."""
        keep = [u for u in self.uops if u.seq <= seq]
        self.uops[:] = keep
        if self.branches:
            self.branches = [b for b in self.branches if b.seq <= seq]


class DecoupledFrontend:
    """Branch predictor + FTQ producer for both threads."""

    def __init__(self, program: Program, config: FrontendConfig | None = None):
        self.program = program
        self.config = config or FrontendConfig()
        self.history = HistoryState()
        self.cond = self._build_conditional_predictor()
        self.indirect = Ittage(self.config.ittage, self.history)
        self.btb = Btb(self.config.btb)
        self.ras = ReturnAddressStack(self.config.ras_depth)
        self.ftq: deque[FetchBlock] = deque()
        self.shadow_ftq: deque[FetchBlock] = deque()
        self.next_pc: int | None = program.entry_pc
        self._seq = 0
        self.blocks_produced = 0
        self.stall_cycles = 0
        # Optional fetch-time direction override (Branch Runahead):
        # called with the branch PC; a non-None return replaces the
        # TAGE-SC-L direction and consumes one precomputed outcome.
        self.direction_override = None
        # Observability: shares the pipeline's repro.obs EventBus.
        self.obs = None

    def _build_conditional_predictor(self):
        kind = self.config.conditional_predictor
        if kind == "tagescl":
            return TageScl(self.config.tagescl, self.history)
        if kind == "perceptron":
            from .alternatives import HashedPerceptron

            return HashedPerceptron(history=self.history)
        if kind == "gshare":
            from .alternatives import Gshare

            return Gshare(history=self.history)
        raise ValueError(f"unknown conditional predictor {kind!r}")

    # ------------------------------------------------------------------
    @property
    def current_seq(self) -> int:
        """The next sequence number to be assigned."""
        return self._seq

    def ftq_full(self) -> bool:
        return len(self.ftq) >= self.config.ftq_capacity

    def stalled(self) -> bool:
        return self.next_pc is None

    def tick(self) -> FetchBlock | None:
        """Produce at most one fetch block per cycle."""
        if self.stalled() or self.ftq_full():
            self.stall_cycles += 1
            return None
        block = self._generate_block()
        if block is None:
            self.stall_cycles += 1
            return None
        self.ftq.append(block)
        self.shadow_ftq.append(block)
        self.blocks_produced += 1
        return block

    # ------------------------------------------------------------------
    def _generate_block(self) -> FetchBlock | None:
        start_pc = self.next_pc
        assert start_pc is not None
        pc = start_pc
        uops: list[FetchUop] = []
        append = uops.append
        branches: list[BranchInfo] | None = None
        next_fetch: int | None = None
        instruction_at = self.program._by_pc.get  # skip the wrapper frame
        halt = UopClass.HALT
        for _ in range(self.config.max_block_uops):
            instr = instruction_at(pc)
            if instr is None:
                # Predicted off the instruction image (wrong path, or
                # fell past the end); stall until a flush redirects us.
                self.next_pc = None
                break
            seq = self._seq
            self._seq = seq + 1
            if instr.uop_class is halt:
                append(FetchUop(seq, instr))
                self.next_pc = None
                break
            if not instr.is_branch:
                append(FetchUop(seq, instr))
                pc += INSTRUCTION_BYTES
                continue
            branch = self._predict_branch(instr, seq)
            append(FetchUop(seq, instr, branch))
            if branch.can_mispredict:
                if branches is None:
                    branches = [branch]
                else:
                    branches.append(branch)
            if branch.predicted_taken:
                next_fetch = branch.predicted_target
                self.next_pc = next_fetch
                break
            pc += INSTRUCTION_BYTES
        else:
            next_fetch = pc
            self.next_pc = pc
        if not uops:
            return None
        if next_fetch is None and self.next_pc is not None:
            next_fetch = self.next_pc
        return FetchBlock(start_pc, uops, next_fetch, branches)

    def _predict_branch(self, instr: Instruction, seq: int) -> BranchInfo:
        cls = instr.uop_class
        history = self.history
        fallthrough = instr.fallthrough_pc

        # Direct jumps and calls cannot mispredict, so they are never a
        # flush target and need no recovery snapshots.
        if cls is UopClass.BR_JUMP:
            history.push_target(instr.pc, instr.target)
            return BranchInfo(
                seq,
                instr.pc,
                cls,
                True,
                instr.target,
                fallthrough,
                can_mispredict=False,
            )
        if cls is UopClass.BR_CALL:
            self.ras.push(fallthrough)
            history.push_target(instr.pc, instr.target)
            return BranchInfo(
                seq,
                instr.pc,
                cls,
                True,
                instr.target,
                fallthrough,
                can_mispredict=False,
            )

        snapshot = history.snapshot()
        ras_snap = self.ras.snapshot()
        loop_snap = self.cond.snapshot_spec_state()

        if cls is UopClass.BR_RET:
            target = self.ras.pop()
            predicted = target if target is not None else fallthrough
            self.history.push_target(instr.pc, predicted)
            return BranchInfo(
                seq,
                instr.pc,
                cls,
                True,
                predicted,
                fallthrough,
                can_mispredict=True,
                history_snapshot=snapshot,
                ras_snapshot=ras_snap,
                loop_snapshot=loop_snap,
            )
        if cls is UopClass.BR_IND:
            ipred = self.indirect.predict(instr.pc)
            btb_target = self.btb.lookup(instr.pc)
            target = ipred.target if ipred.target is not None else btb_target
            predicted = target if target is not None else fallthrough
            if instr.dst is not None:  # callr pushes the return address
                self.ras.push(fallthrough)
            self.history.push_target(instr.pc, predicted)
            return BranchInfo(
                seq,
                instr.pc,
                cls,
                True,
                predicted,
                fallthrough,
                can_mispredict=True,
                ittage_pred=ipred,
                history_snapshot=snapshot,
                ras_snapshot=ras_snap,
                loop_snapshot=loop_snap,
                btb_hit=btb_target is not None,
            )
        # Conditional branch.
        assert cls is UopClass.BR_COND and instr.target is not None
        is_backward = instr.target < instr.pc
        tpred = self.cond.predict(instr.pc, is_backward)
        taken = self.cond.predicted_taken(tpred)
        override_used = False
        if self.direction_override is not None:
            override = self.direction_override(instr.pc)
            if override is not None:
                taken = override
                override_used = True
        btb_hit = self.btb.lookup(instr.pc) is not None
        if taken and not btb_hit:
            # The frontend cannot redirect without a BTB target; the
            # prediction degrades to fallthrough until the BTB trains.
            taken = False
        self.history.push_conditional(taken)
        return BranchInfo(
            seq,
            instr.pc,
            cls,
            taken,
            instr.target,
            fallthrough,
            can_mispredict=True,
            tage_pred=tpred,
            history_snapshot=snapshot,
            ras_snapshot=ras_snap,
            loop_snapshot=loop_snap,
            btb_hit=btb_hit,
            is_backward=is_backward,
            override_used=override_used,
        )

    # ------------------------------------------------------------------
    def flush_at(self, branch: BranchInfo, actual_taken: bool, actual_target: int) -> None:
        """Recover the predictor after a misprediction at ``branch``.

        Restores speculative state to just before the branch was
        predicted, re-applies its now-known outcome, truncates both
        FTQs, and resumes prediction at the correct next PC.
        """
        self._truncate_ftqs(branch.seq)
        self.history.restore(branch.history_snapshot)
        self.ras.restore(branch.ras_snapshot)
        self.cond.restore_spec_state(branch.loop_snapshot)
        self._apply_outcome(branch, actual_taken, actual_target)
        self.next_pc = actual_target if actual_taken else branch.fallthrough
        if self.obs is not None:
            self.obs.emit(
                "frontend_redirect",
                pc=branch.pc,
                seq=branch.seq,
                taken=actual_taken,
                target=self.next_pc,
            )

    def _apply_outcome(self, branch: BranchInfo, taken: bool, target: int) -> None:
        cls = branch.uop_class
        if cls is UopClass.BR_COND:
            self.history.push_conditional(taken)
            return
        if cls is UopClass.BR_CALL:
            self.ras.push(branch.fallthrough)
        elif cls is UopClass.BR_RET:
            self.ras.pop()
        elif cls is UopClass.BR_IND:
            instr = self.program.instruction_at(branch.pc)
            if instr is not None and instr.dst is not None:
                self.ras.push(branch.fallthrough)
        self.history.push_target(branch.pc, target)

    def _truncate_ftqs(self, seq: int) -> None:
        for queue in (self.ftq, self.shadow_ftq):
            while queue and queue[-1].first_seq > seq:
                queue.pop()
            if queue and queue[-1].last_seq > seq:
                queue[-1].truncate_after(seq)

    # ------------------------------------------------------------------
    def train_resolved(
        self, branch: BranchInfo, actual_taken: bool, actual_target: int
    ) -> None:
        """Retirement-time training of all predictor components."""
        cls = branch.uop_class
        if cls is UopClass.BR_COND and branch.tage_pred is not None:
            self.cond.train(branch.pc, actual_taken, branch.tage_pred)
            if actual_taken:
                self.btb.install(branch.pc, actual_target)
        elif cls is UopClass.BR_IND:
            if branch.ittage_pred is not None:
                self.indirect.train(branch.pc, actual_target, branch.ittage_pred)
            self.btb.install(branch.pc, actual_target)
        elif cls in (UopClass.BR_JUMP, UopClass.BR_CALL):
            self.btb.install(branch.pc, actual_target)
        # Returns train only the RAS, which is updated speculatively.
