"""TAGE conditional branch predictor (Seznec, MICRO 2011).

A base bimodal table plus ``num_tables`` partially-tagged components
with geometrically increasing history lengths.  The provider is the
longest-history component whose tag matches; a "use alt on newly
allocated" counter arbitrates between the provider and the alternate
prediction when the provider entry is weak.

Prediction happens in the decoupled frontend (speculative history);
training happens at *retirement* using the :class:`TagePrediction`
metadata captured at prediction time — the same structure Scarab and
other decoupled-frontend simulators use, and the carrier of the paper's
"synchronized timestamps" (the metadata rides in the in-flight branch
queue entry).
"""

from __future__ import annotations

from dataclasses import dataclass

from .history import HistoryState, fold_history


@dataclass(frozen=True)
class TageConfig:
    """Sizing knobs; defaults model a scaled-down 64KB TAGE-SC-L."""

    num_tables: int = 8
    table_index_bits: int = 10
    tag_bits: int = 9
    min_history: int = 4
    max_history: int = 256
    base_index_bits: int = 12
    counter_bits: int = 3
    useful_bits: int = 2
    use_alt_bits: int = 4
    useful_reset_period: int = 64 * 1024

    def history_lengths(self) -> list[int]:
        """Geometric history length series (min..max over num_tables)."""
        if self.num_tables == 1:
            return [self.min_history]
        ratio = (self.max_history / self.min_history) ** (1 / (self.num_tables - 1))
        lengths = []
        for i in range(self.num_tables):
            length = int(round(self.min_history * ratio**i))
            if lengths and length <= lengths[-1]:
                length = lengths[-1] + 1
            lengths.append(length)
        return lengths


class _TaggedEntry:
    __slots__ = ("tag", "ctr", "useful")

    def __init__(self) -> None:
        self.tag = -1
        self.ctr = 0      # signed: >=0 predicts taken
        self.useful = 0


@dataclass(slots=True)
class TagePrediction:
    """Metadata captured at predict time, needed to train at retire."""

    taken: bool
    provider: int = -1            # component index, -1 = bimodal base
    provider_index: int = 0
    provider_tag: int = 0
    alt_taken: bool = False
    alt_provider: int = -1
    provider_weak: bool = True
    indices: tuple[int, ...] = ()
    tags: tuple[int, ...] = ()
    base_index: int = 0
    used_alt: bool = False
    # Filled in by the TAGE-SC-L wrapper (dedicated slots: the extra
    # dict was a measurable allocation cost per prediction).
    final_taken: bool | None = None
    loop_used: bool = False
    is_backward: bool = False
    sc_meta: tuple | None = None   # opaque StatisticalCorrector metadata
    # Scratch space for the alternative (ablation) predictors; None by
    # default so the common TAGE-SC-L path allocates no dict.
    extra: dict | None = None


class Tage:
    """The TAGE predictor proper (no SC/L — see :mod:`tagescl`).

    The predictor is bound to one :class:`HistoryState`, on which it
    registers incremental folded registers at construction (three per
    component: index, tag, tag').
    """

    def __init__(
        self,
        config: TageConfig | None = None,
        history: HistoryState | None = None,
    ):
        self.config = config or TageConfig()
        cfg = self.config
        self.history = history if history is not None else HistoryState()
        self.histories = cfg.history_lengths()
        self._idx_folds = [
            self.history.register_fold(hlen, cfg.table_index_bits)
            for hlen in self.histories
        ]
        self._tag_folds = [
            self.history.register_fold(hlen, cfg.tag_bits)
            for hlen in self.histories
        ]
        size = 1 << cfg.table_index_bits
        self.tables: list[list[_TaggedEntry]] = [
            [_TaggedEntry() for _ in range(size)] for _ in range(cfg.num_tables)
        ]
        self.base = [0] * (1 << cfg.base_index_bits)  # 2-bit counters, 0..3
        self._ctr_max = (1 << (cfg.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (cfg.counter_bits - 1))
        # Hot-path constants for _compute_keys, plus a cache of the
        # folded *path* history: the path only changes on a taken
        # transfer, while keys are computed for every conditional, so
        # folding each distinct (capped) length once per path value
        # replaces num_tables fold_history() calls per prediction.
        self._idx_mask = (1 << cfg.table_index_bits) - 1
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._capped = [min(hlen, 16) for hlen in self.histories]
        self._distinct_capped = sorted(set(self._capped))
        self._path_key: int | None = None
        # Fused per-table key specs (pc shift, idx fold id, tag fold id,
        # folded path); rebuilt only when the path history changes.
        self._fused: list[tuple[int, int, int, int]] = []
        self._rev_tables = tuple(range(cfg.num_tables - 1, -1, -1))
        self._useful_max = (1 << cfg.useful_bits) - 1
        self._use_alt_mid = 1 << (cfg.use_alt_bits - 1)
        self.use_alt_on_na = 1 << (cfg.use_alt_bits - 1)
        self._use_alt_max = (1 << cfg.use_alt_bits) - 1
        self._updates = 0
        self.predictions = 0
        self.allocations = 0

    # ------------------------------------------------------------------
    def _compute_keys(self, pc: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        history = self.history
        path = history.path
        if path != self._path_key:
            tib = self.config.table_index_bits
            by_len = {
                length: fold_history(path, length, tib)
                for length in self._distinct_capped
            }
            capped = self._capped
            self._fused = [
                (i + 1, idx_id, tag_id, by_len[capped[i]])
                for i, (idx_id, tag_id) in enumerate(
                    zip(self._idx_folds, self._tag_folds)
                )
            ]
            self._path_key = path
        folds = history._folds
        idx_mask = self._idx_mask
        tag_mask = self._tag_mask
        pc_bits = pc >> 2
        indices = []
        tags = []
        idx_append = indices.append
        tag_append = tags.append
        for shift, idx_id, tag_id, path_fold in self._fused:
            folded_idx = folds[idx_id]
            idx_append(
                (pc_bits ^ (pc_bits >> shift) ^ folded_idx ^ path_fold)
                & idx_mask
            )
            # The second tag hash reuses the index fold shifted by one —
            # one register fewer than Seznec's tag' with equivalent
            # mixing quality at these table sizes.
            tag_append(
                (pc_bits ^ folds[tag_id] ^ (folded_idx << 1)) & tag_mask
            )
        return tuple(indices), tuple(tags)

    def _base_index(self, pc: int) -> int:
        return (pc >> 2) & ((1 << self.config.base_index_bits) - 1)

    # ------------------------------------------------------------------
    def predict(self, pc: int) -> TagePrediction:
        """Predict the direction of the conditional branch at ``pc``."""
        self.predictions += 1
        indices, tags = self._compute_keys(pc)
        base_index = (pc >> 2) & (len(self.base) - 1)
        base_taken = self.base[base_index] >= 2

        tables = self.tables
        provider = -1
        alt = -1
        for i in self._rev_tables:
            if tables[i][indices[i]].tag == tags[i]:
                if provider < 0:
                    provider = i
                else:
                    alt = i
                    break

        if provider < 0:
            return TagePrediction(
                taken=base_taken,
                alt_taken=base_taken,
                indices=indices,
                tags=tags,
                base_index=base_index,
            )

        entry = self.tables[provider][indices[provider]]
        provider_taken = entry.ctr >= 0
        weak = entry.ctr in (-1, 0)
        if alt >= 0:
            alt_taken = self.tables[alt][indices[alt]].ctr >= 0
        else:
            alt_taken = base_taken
        use_alt = weak and self.use_alt_on_na >= self._use_alt_mid
        taken = alt_taken if use_alt else provider_taken
        return TagePrediction(
            taken=taken,
            provider=provider,
            provider_index=indices[provider],
            provider_tag=tags[provider],
            alt_taken=alt_taken,
            alt_provider=alt,
            provider_weak=weak,
            indices=indices,
            tags=tags,
            base_index=base_index,
            used_alt=use_alt,
        )

    # ------------------------------------------------------------------
    def train(self, pc: int, taken: bool, pred: TagePrediction) -> None:
        """Retirement-time update with the metadata from predict time."""
        cfg = self.config
        self._updates += 1
        if self._updates % cfg.useful_reset_period == 0:
            self._reset_useful()

        if pred.provider >= 0:
            entry = self.tables[pred.provider][pred.provider_index]
            # Guard against the entry having been reallocated by a
            # younger (wrong-path-trained) branch; tags disambiguate.
            if entry.tag == pred.provider_tag:
                self._update_ctr(entry, taken)
                if pred.provider_weak:
                    # Track whether the alternate would have been better.
                    if pred.alt_taken == taken and pred.taken != taken:
                        self.use_alt_on_na = min(
                            self.use_alt_on_na + 1, self._use_alt_max
                        )
                    elif pred.alt_taken != taken and pred.taken == taken:
                        self.use_alt_on_na = max(self.use_alt_on_na - 1, 0)
                if pred.taken != pred.alt_taken:
                    if pred.taken == taken:
                        entry.useful = min(entry.useful + 1, self._useful_max)
                    else:
                        entry.useful = max(entry.useful - 1, 0)
        else:
            self._update_base(pred.base_index, taken)

        mispredicted = pred.taken != taken
        if mispredicted:
            self._allocate(pred, taken)

    def _update_base(self, index: int, taken: bool) -> None:
        ctr = self.base[index]
        self.base[index] = min(ctr + 1, 3) if taken else max(ctr - 1, 0)

    def _update_ctr(self, entry: _TaggedEntry, taken: bool) -> None:
        if taken:
            entry.ctr = min(entry.ctr + 1, self._ctr_max)
        else:
            entry.ctr = max(entry.ctr - 1, self._ctr_min)

    def _allocate(self, pred: TagePrediction, taken: bool) -> None:
        """On a misprediction, allocate in a longer-history component."""
        start = pred.provider + 1
        candidates = [
            i
            for i in range(start, self.config.num_tables)
            if self.tables[i][pred.indices[i]].useful == 0
        ]
        if not candidates:
            for i in range(start, self.config.num_tables):
                entry = self.tables[i][pred.indices[i]]
                entry.useful = max(entry.useful - 1, 0)
            return
        target = candidates[0]
        entry = self.tables[target][pred.indices[target]]
        entry.tag = pred.tags[target]
        entry.ctr = 0 if taken else -1
        entry.useful = 0
        self.allocations += 1

    def _reset_useful(self) -> None:
        for table in self.tables:
            for entry in table:
                entry.useful >>= 1
