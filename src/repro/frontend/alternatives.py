"""Alternative conditional direction predictors: perceptron and gshare.

The paper frames H2P branches as those that defeat *both* modern
predictor families — TAGE-SC-L [23] and perceptron [15].  These
implementations let the harness demonstrate that claim: a branch that
is H2P under TAGE-SC-L stays H2P under a hashed perceptron, so the TEA
thread's benefit is not an artifact of one predictor choice.

Both classes implement the same duck-typed interface as
:class:`~repro.frontend.tagescl.TageScl` (``predict``/``train``/
``predicted_taken``/spec-state snapshots), so the decoupled frontend
can swap them in via ``FrontendConfig.conditional_predictor``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .history import HistoryState
from .tage import TagePrediction


@dataclass(frozen=True)
class PerceptronConfig:
    """Hashed perceptron (O-GEHL-style) parameters."""

    num_tables: int = 8
    table_index_bits: int = 10
    history_lengths: tuple[int, ...] = (0, 4, 8, 16, 32, 64, 128, 256)
    weight_bits: int = 7
    theta: int = 18


class HashedPerceptron:
    """Multi-table hashed perceptron direction predictor."""

    def __init__(
        self,
        config: PerceptronConfig | None = None,
        history: HistoryState | None = None,
    ):
        self.config = config or PerceptronConfig()
        cfg = self.config
        if len(cfg.history_lengths) != cfg.num_tables:
            raise ValueError("history_lengths must match num_tables")
        self.history = history if history is not None else HistoryState()
        self._folds = [
            self.history.register_fold(hlen, cfg.table_index_bits) if hlen else None
            for hlen in cfg.history_lengths
        ]
        size = 1 << cfg.table_index_bits
        self.tables = [[0] * size for _ in range(cfg.num_tables)]
        self._wmax = (1 << (cfg.weight_bits - 1)) - 1
        self._wmin = -(1 << (cfg.weight_bits - 1))
        self.predictions = 0
        self.mispredicts_trained = 0

    def _indices(self, pc: int) -> list[int]:
        cfg = self.config
        mask = (1 << cfg.table_index_bits) - 1
        pc_bits = pc >> 2
        indices = []
        for i, fold_idx in enumerate(self._folds):
            folded = self.history.fold(fold_idx) if fold_idx is not None else 0
            indices.append((pc_bits ^ (pc_bits >> (i + 3)) ^ folded) & mask)
        return indices

    def predict(self, pc: int, is_backward: bool = False) -> TagePrediction:
        """Dot-product prediction; metadata rides in ``extra``."""
        self.predictions += 1
        indices = self._indices(pc)
        total = sum(
            table[idx] for table, idx in zip(self.tables, indices)
        )
        taken = total >= 0
        pred = TagePrediction(taken=taken)
        pred.extra = {
            "final_taken": taken,
            "perceptron_indices": tuple(indices),
            "perceptron_sum": total,
        }
        return pred

    @staticmethod
    def predicted_taken(pred: TagePrediction) -> bool:
        return pred.extra.get("final_taken", pred.taken)

    def train(self, pc: int, taken: bool, pred: TagePrediction) -> None:
        """Perceptron rule: update on mispredict or weak confidence."""
        total = pred.extra.get("perceptron_sum", 0)
        predicted = pred.extra.get("final_taken", pred.taken)
        if predicted != taken:
            self.mispredicts_trained += 1
        if predicted == taken and abs(total) > self.config.theta:
            return
        delta = 1 if taken else -1
        for table, idx in zip(self.tables, pred.extra["perceptron_indices"]):
            table[idx] = max(self._wmin, min(self._wmax, table[idx] + delta))

    # Spec-state hooks (no loop predictor: nothing to snapshot).
    def snapshot_spec_state(self):
        return None

    def restore_spec_state(self, snap) -> None:
        pass


@dataclass(frozen=True)
class GshareConfig:
    index_bits: int = 14
    history_length: int = 14


class Gshare:
    """Classic gshare: 2-bit counters indexed by pc XOR history."""

    def __init__(
        self,
        config: GshareConfig | None = None,
        history: HistoryState | None = None,
    ):
        self.config = config or GshareConfig()
        self.history = history if history is not None else HistoryState()
        self._fold = self.history.register_fold(
            self.config.history_length, self.config.index_bits
        )
        self.table = [1] * (1 << self.config.index_bits)  # weakly not-taken
        self.predictions = 0
        self.mispredicts_trained = 0

    def _index(self, pc: int) -> int:
        mask = (1 << self.config.index_bits) - 1
        return ((pc >> 2) ^ self.history.fold(self._fold)) & mask

    def predict(self, pc: int, is_backward: bool = False) -> TagePrediction:
        self.predictions += 1
        idx = self._index(pc)
        taken = self.table[idx] >= 2
        pred = TagePrediction(taken=taken)
        pred.extra = {"final_taken": taken, "gshare_index": idx}
        return pred

    @staticmethod
    def predicted_taken(pred: TagePrediction) -> bool:
        return pred.extra.get("final_taken", pred.taken)

    def train(self, pc: int, taken: bool, pred: TagePrediction) -> None:
        if pred.extra.get("final_taken", pred.taken) != taken:
            self.mispredicts_trained += 1
        idx = pred.extra["gshare_index"]
        counter = self.table[idx]
        self.table[idx] = min(counter + 1, 3) if taken else max(counter - 1, 0)

    def snapshot_spec_state(self):
        return None

    def restore_spec_state(self, snap) -> None:
        pass
