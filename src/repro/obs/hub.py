"""The :class:`Observation` hub: one object that wires the whole layer.

Attach one to a pipeline and it

* installs the :class:`~repro.obs.events.EventBus` on the pipeline and
  its decoupled frontend (``pipeline.obs`` / ``frontend.obs``), clocked
  by ``pipeline.cycle``;
* records the taxonomy event stream (optional, default on);
* feeds the :class:`~repro.obs.attribution.AttributionTable`;
* populates the standard histograms (flush-penalty cycles, chain
  length, walk depth, cycles saved, resolution gap) in a
  :class:`~repro.obs.metrics.MetricsRegistry`.

Usage::

    obs = Observation()
    pipeline = Pipeline(program, memory, SimConfig(tea=TeaConfig()))
    obs.attach(pipeline)
    stats = pipeline.run()
    print(obs.attribution.report(10))
    obs.write_events_jsonl("events.jsonl")
    obs.write_chrome_trace("trace.json")     # open in ui.perfetto.dev

or via the harness: ``run_workload("mcf", "tea", observe=True)``.
"""

from __future__ import annotations

from .attribution import AttributionTable
from .events import EVENT_TYPES, Event, EventBus
from .export import (
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_snapshot,
)
from .metrics import MetricsRegistry

#: Default fixed-bucket histogram edges (cycle/uop counts; powers of
#: two so tiny- and bench-scale runs land in interior buckets).
DEFAULT_HISTOGRAMS: dict[str, tuple[int, ...]] = {
    "tea.flush_penalty_cycles": (2, 4, 8, 16, 32, 64, 128, 256),
    "tea.chain_length": (1, 2, 4, 8, 16, 32, 64, 128),
    "tea.walk_depth": (8, 16, 32, 64, 128, 256, 512),
    "tea.cycles_saved": (1, 2, 4, 8, 16, 32, 64, 128, 256),
    "tea.resolution_gap": (0, 4, 8, 16, 32, 64, 128, 256),
    # Timeliness: TEA resolution lead time relative to the target
    # branch's *fetch* (positive = resolved before fetch = timely; the
    # paper's key distribution).  Edges span negative leads (late).
    "tea.lead_time": (-256, -64, -16, -4, 0, 4, 16, 64, 256),
}


class Observation:
    """Bundles bus + registry + attribution + recorder for one run."""

    def __init__(
        self,
        record_events: bool = True,
        histograms: dict[str, tuple[int, ...]] | None = None,
    ):
        self.bus = EventBus()
        self.metrics = MetricsRegistry()
        self.attribution = AttributionTable()
        self.events: list[Event] = []
        self._record = record_events
        self._pipeline = None
        for name, edges in (histograms or DEFAULT_HISTOGRAMS).items():
            self.metrics.histogram(name, edges)

    # ------------------------------------------------------------------
    def attach(self, pipeline) -> None:
        """Install on a pipeline (before ``run``); reuses an existing
        bus if one is already attached (e.g. by a PipelineTracer)."""
        if self._pipeline is not None:
            raise RuntimeError("observation is already attached")
        existing = getattr(pipeline, "obs", None)
        if existing is not None:
            self.bus = existing
        else:
            pipeline.obs = self.bus
        pipeline.frontend.obs = pipeline.obs
        self.bus.bind_clock(lambda: pipeline.cycle)
        self._pipeline = pipeline
        if self._record:
            self.bus.subscribe(self._on_record, EVENT_TYPES)
        self.bus.subscribe(
            self.attribution.on_event, AttributionTable.SUBSCRIBED_TYPES
        )
        self.bus.subscribe(
            self._on_flush_penalty, ("mispredict_flush", "early_flush")
        )
        self.bus.subscribe(self._on_walk_finish, ("walk_finish",))
        self.bus.subscribe(self._on_branch_resolved, ("branch_resolved",))

    def detach(self) -> None:
        """Unsubscribe all hub callbacks (the bus stays on the pipeline)."""
        if self._pipeline is None:
            raise RuntimeError("observation is not attached")
        for callback in (
            self._on_record,
            self.attribution.on_event,
            self._on_flush_penalty,
            self._on_walk_finish,
            self._on_branch_resolved,
        ):
            self.bus.unsubscribe(callback)
        self._pipeline = None

    def now(self) -> int:
        """Current simulation cycle (0 before attach)."""
        return self._pipeline.cycle if self._pipeline is not None else 0

    # -- subscribers ----------------------------------------------------
    def _on_record(self, event: Event) -> None:
        self.events.append(event)

    def _on_flush_penalty(self, event: Event) -> None:
        self.metrics.histogram("tea.flush_penalty_cycles").observe(
            max(0, event.data.get("penalty", 0))
        )

    def _on_walk_finish(self, event: Event) -> None:
        self.metrics.histogram("tea.chain_length").observe(
            event.data.get("chain_length", 0)
        )
        self.metrics.histogram("tea.walk_depth").observe(
            event.data.get("depth", 0)
        )

    def _on_branch_resolved(self, event: Event) -> None:
        outcome = event.data.get("outcome")
        if outcome in ("covered_timely", "covered_late"):
            self.metrics.histogram("tea.cycles_saved").observe(
                event.data.get("saved", 0)
            )
        gap = event.data.get("gap")
        if gap is not None:
            self.metrics.histogram("tea.resolution_gap").observe(gap)
        lead = event.data.get("lead")
        if lead is not None:
            self.metrics.histogram("tea.lead_time").observe(lead)

    # -- snapshots ------------------------------------------------------
    def event_type_counts(self) -> dict[str, int]:
        """Per-type emission counts (kept even without subscribers)."""
        return dict(sorted(self.bus.counts.items()))

    def metrics_snapshot(self, stats=None) -> dict:
        """Flat ``{dotted.name: scalar}`` snapshot for diffing.

        Publishes event counts (``events.*``) and, when given, the
        ``SimStats`` block (``sim.*``) into the registry first.
        """
        for type_, count in self.bus.counts.items():
            self.metrics.gauge(f"events.{type_}").set(count)
        if stats is not None:
            stats.publish_to(self.metrics)
        return self.metrics.flat_snapshot()

    # -- export conveniences -------------------------------------------
    def write_events_jsonl(self, path: str) -> int:
        return write_events_jsonl(self.events, path)

    def write_chrome_trace(self, path: str) -> dict:
        return write_chrome_trace(self.events, path, final_cycle=self.now())

    def write_metrics_snapshot(self, path: str, stats=None) -> None:
        write_metrics_snapshot(self.metrics_snapshot(stats), path)
