"""Per-static-branch attribution: who actually costs the cycles.

"Branch Prediction Is Not a Solved Problem" (Lin & Tarsa) observes that
a handful of static H2P branches dominate MPKI; the paper's anatomy
discussion (and LDBP's methodology) drive design from exactly this
per-PC lens.  The :class:`AttributionTable` subscribes to the event bus
and keeps, for every static can-mispredict branch PC:

* retirement count and misprediction count (split direction/target),
* the TEA coverage breakdown (timely / late / incorrect / uncovered),
* TEA resolution volume and cycles saved.

The table resets on the ``measurement_start`` event — the same warmup
boundary at which :class:`~repro.core.stats.SimStats` resets — so its
per-PC misprediction counts sum *exactly* to
``SimStats.total_mispredicts`` (tested).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BranchAttribution:
    """Accumulated telemetry for one static branch PC."""

    pc: int
    retired: int = 0
    mispredicts: int = 0
    direction_mispredicts: int = 0
    target_mispredicts: int = 0
    covered_timely: int = 0
    covered_late: int = 0
    incorrect: int = 0
    uncovered: int = 0
    tea_resolutions: int = 0
    cycles_saved: int = 0

    @property
    def accuracy(self) -> float:
        """Prediction accuracy of this static branch."""
        if not self.retired:
            return 1.0
        return 1.0 - self.mispredicts / self.retired

    @property
    def coverage(self) -> float:
        """Fraction of this branch's mispredictions TEA resolved early."""
        covered = self.covered_timely + self.covered_late
        total = covered + self.uncovered + self.incorrect
        return covered / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "pc": self.pc,
            "retired": self.retired,
            "mispredicts": self.mispredicts,
            "direction_mispredicts": self.direction_mispredicts,
            "target_mispredicts": self.target_mispredicts,
            "accuracy": self.accuracy,
            "covered_timely": self.covered_timely,
            "covered_late": self.covered_late,
            "incorrect": self.incorrect,
            "uncovered": self.uncovered,
            "coverage": self.coverage,
            "tea_resolutions": self.tea_resolutions,
            "cycles_saved": self.cycles_saved,
        }


class AttributionTable:
    """Event-bus subscriber building the per-PC attribution view."""

    #: The event types this table must be subscribed to.
    SUBSCRIBED_TYPES = ("branch_retire", "branch_resolved", "measurement_start")

    def __init__(self):
        self._by_pc: dict[int, BranchAttribution] = {}

    # -- event-bus callbacks -------------------------------------------
    def on_event(self, event) -> None:
        if event.type == "branch_retire":
            self._on_retire(event)
        elif event.type == "branch_resolved":
            self._on_resolved(event)
        elif event.type == "measurement_start":
            self._by_pc.clear()

    def _entry(self, pc: int) -> BranchAttribution:
        entry = self._by_pc.get(pc)
        if entry is None:
            entry = self._by_pc[pc] = BranchAttribution(pc)
        return entry

    def _on_retire(self, event) -> None:
        entry = self._entry(event.pc)
        entry.retired += 1
        if event.data.get("mispredicted"):
            entry.mispredicts += 1
            if event.data.get("direction"):
                entry.direction_mispredicts += 1
            else:
                entry.target_mispredicts += 1

    def _on_resolved(self, event) -> None:
        entry = self._entry(event.pc)
        outcome = event.data.get("outcome")
        if outcome == "covered_timely":
            entry.covered_timely += 1
        elif outcome == "covered_late":
            entry.covered_late += 1
        elif outcome == "incorrect":
            entry.incorrect += 1
        elif outcome == "uncovered":
            entry.uncovered += 1
        if event.data.get("tea_resolved"):
            entry.tea_resolutions += 1
        entry.cycles_saved += event.data.get("saved", 0)

    # -- queries --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_pc)

    def get(self, pc: int) -> BranchAttribution | None:
        return self._by_pc.get(pc)

    @property
    def total_mispredicts(self) -> int:
        """Must reconcile exactly with ``SimStats.total_mispredicts``."""
        return sum(e.mispredicts for e in self._by_pc.values())

    @property
    def total_retired(self) -> int:
        return sum(e.retired for e in self._by_pc.values())

    def top(self, count: int = 10) -> list[BranchAttribution]:
        """The heaviest mispredictors — the "top-N H2P offenders"."""
        ranked = sorted(
            self._by_pc.values(), key=lambda e: (-e.mispredicts, e.pc)
        )
        return ranked[:count]

    def as_dict(self) -> dict:
        """``{hex_pc: entry_dict}`` sorted by misprediction weight."""
        return {
            f"{e.pc:#x}": e.as_dict()
            for e in sorted(
                self._by_pc.values(), key=lambda e: (-e.mispredicts, e.pc)
            )
        }

    def report(self, count: int = 10) -> str:
        """Human-readable "top-N H2P offenders" table."""
        rows = self.top(count)
        if not rows:
            return "(no branches attributed)"
        lines = [
            f"top-{min(count, len(rows))} H2P offenders "
            f"({self.total_mispredicts} mispredicts over {len(self)} static branches)",
            f"{'pc':>10s} {'retired':>8s} {'mispred':>8s} {'acc':>7s} "
            f"{'cover':>7s} {'timely':>7s} {'late':>6s} {'wrong':>6s} "
            f"{'miss':>6s} {'saved':>8s}",
        ]
        for e in rows:
            lines.append(
                f"{e.pc:#10x} {e.retired:8d} {e.mispredicts:8d} "
                f"{100 * e.accuracy:6.1f}% {100 * e.coverage:6.1f}% "
                f"{e.covered_timely:7d} {e.covered_late:6d} {e.incorrect:6d} "
                f"{e.uncovered:6d} {e.cycles_saved:8d}"
            )
        return "\n".join(lines)
