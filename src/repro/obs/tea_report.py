"""TEA paper-metric analytics: Timely, Efficient, Accurate.

The paper's claim lives in its title; this module computes all three
axes from one observed run — the attribution table (per static H2P
branch) plus the taxonomy event stream — per branch and in aggregate:

* **Timeliness** — the distribution of *lead time*: how many cycles
  before the target branch's fetch the TEA chain resolved it
  (``branch_resolved`` events carry ``lead``; positive = resolved
  pre-fetch).  Plus the fraction of covered mispredictions that were
  timely (saved ≥ 1 cycle).
* **Efficiency** — precomputed uops per avoided misprediction, and the
  suppressed/wasted chain-work breakdown (late and blocked
  resolutions, graceful-degradation suppressions) from ``tea_resolve``
  event flags.
* **Accuracy** — chain resolution correctness vs the architectural
  outcome (``SimStats.tea_accuracy``), incorrect precomputations, and
  coverage of the misprediction mass.

The report reconciles by construction: per-branch misprediction totals
are the attribution table's, which sums exactly to
``SimStats.total_mispredicts`` (asserted in the ``reconciliation``
section and tested).  Surfaced by ``repro report``.
"""

from __future__ import annotations

REPORT_SCHEMA_VERSION = 1


def _as_event_dicts(events) -> list[dict]:
    return [e.as_dict() if hasattr(e, "as_dict") else e for e in events]


def _exact_percentiles(values: list[int | float]) -> dict:
    """Exact (not bucketed) quantiles of a raw sample list."""
    if not values:
        return {"p50": None, "p95": None, "p99": None,
                "mean": None, "min": None, "max": None}
    ordered = sorted(values)
    n = len(ordered)

    def pick(q: float):
        return ordered[min(n - 1, int(q * n))]

    return {
        "p50": pick(0.50),
        "p95": pick(0.95),
        "p99": pick(0.99),
        "mean": sum(ordered) / n,
        "min": ordered[0],
        "max": ordered[-1],
    }


def build_tea_report(
    stats,
    attribution,
    events,
    workload: str | None = None,
    mode: str | None = None,
) -> dict:
    """Build the timeliness/efficiency/accuracy report dict.

    ``stats`` is the run's :class:`~repro.core.stats.SimStats`,
    ``attribution`` the :class:`~repro.obs.attribution.AttributionTable`
    fed during the run, ``events`` the taxonomy event stream (``Event``
    objects or their dicts).
    """
    records = _as_event_dicts(events)

    # Per-PC feeds from the event stream.
    leads_by_pc: dict[int, list[int]] = {}
    resolve_flags_by_pc: dict[int, dict[str, int]] = {}
    for record in records:
        type_ = record.get("type")
        pc = record.get("pc", -1)
        if type_ == "branch_resolved":
            lead = record.get("lead")
            if lead is not None:
                leads_by_pc.setdefault(pc, []).append(lead)
        elif type_ == "tea_resolve":
            flags = resolve_flags_by_pc.setdefault(
                pc, {"suppressed": 0, "late": 0, "blocked": 0, "total": 0}
            )
            flags["total"] += 1
            for flag in ("suppressed", "blocked"):
                if record.get(flag):
                    flags[flag] += 1
            if record.get("late") is True:
                flags["late"] += 1

    # Per-branch rows: attribution entry + event-derived extensions.
    branches = {}
    for hex_pc, entry in attribution.as_dict().items():
        pc = entry["pc"]
        leads = leads_by_pc.get(pc, [])
        flags = resolve_flags_by_pc.get(
            pc, {"suppressed": 0, "late": 0, "blocked": 0, "total": 0}
        )
        covered = entry["covered_timely"] + entry["covered_late"]
        row = dict(entry)
        row["timeliness"] = {
            "lead_cycles": _exact_percentiles(leads),
            "samples": len(leads),
            "fraction_timely": (
                entry["covered_timely"] / covered if covered else None
            ),
        }
        row["efficiency"] = {
            "chain_resolutions": flags["total"],
            "suppressed_resolutions": flags["suppressed"],
            "late_resolutions": flags["late"],
            "blocked_flushes": flags["blocked"],
            "cycles_saved_per_covered": (
                entry["cycles_saved"] / covered if covered else None
            ),
        }
        branches[hex_pc] = row

    # Aggregate sections.
    all_leads = [lead for leads in leads_by_pc.values() for lead in leads]
    covered = stats.covered_timely + stats.covered_late
    avoided = covered  # mispredictions TEA turned into early flushes
    timeliness = {
        "covered_timely": stats.covered_timely,
        "covered_late": stats.covered_late,
        "fraction_timely": (
            stats.covered_timely / covered if covered else None
        ),
        "lead_cycles": _exact_percentiles(all_leads),
        "lead_samples": len(all_leads),
    }
    efficiency = {
        "tea_fetched_uops": stats.tea_fetched_uops,
        "avoided_mispredicts": avoided,
        "uops_per_avoided_mispredict": (
            stats.tea_fetched_uops / avoided if avoided else None
        ),
        "suppressed_resolutions": stats.tea_suppressed_resolutions,
        "blocked_flushes": stats.tea_blocked_flushes,
        "poison_terminations": stats.tea_poison_terminations,
        "terminations": stats.tea_terminations,
        "footprint_overhead": (
            stats.tea_fetched_uops / stats.fetched_uops
            if stats.fetched_uops else 0.0
        ),
    }
    accuracy = {
        "tea_resolved_branches": stats.tea_resolved_branches,
        "tea_wrong_resolutions": stats.tea_wrong_resolutions,
        "tea_accuracy": stats.tea_accuracy,
        "incorrect_precomputations": stats.incorrect_precomputations,
        "coverage": stats.coverage,
        "uncovered_mispredicts": stats.uncovered_mispredicts,
    }
    reconciliation = {
        "attribution_mispredicts": attribution.total_mispredicts,
        "stats_mispredicts": stats.total_mispredicts,
        "exact": attribution.total_mispredicts == stats.total_mispredicts,
    }
    report = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "workload": workload,
        "mode": mode,
        "cycles": stats.cycles,
        "mpki": stats.mpki,
        "total_mispredicts": stats.total_mispredicts,
        "timeliness": timeliness,
        "efficiency": efficiency,
        "accuracy": accuracy,
        "reconciliation": reconciliation,
        "branches": branches,
    }
    return report


def _fmt(value, width: int = 8, digits: int = 2) -> str:
    if value is None:
        return " " * (width - 1) + "-"
    if isinstance(value, float):
        return f"{value:{width}.{digits}f}"
    return f"{value:{width}d}"


def render_tea_report(report: dict, top: int = 10) -> str:
    """Render the paper-shaped text table for one report dict."""
    t = report["timeliness"]
    e = report["efficiency"]
    a = report["accuracy"]
    r = report["reconciliation"]
    header = report.get("workload") or "run"
    if report.get("mode"):
        header = f"{header}/{report['mode']}"
    lines = [
        f"TEA report — {header} "
        f"({report['cycles']} cycles, MPKI {report['mpki']:.3f})",
        "",
        "  timeliness:",
        f"    covered timely/late     {t['covered_timely']} / {t['covered_late']}"
        f"   fraction timely {_fmt(t['fraction_timely'], 6)}",
        f"    lead cycles p50/p95/p99 {_fmt(t['lead_cycles']['p50'], 6)} /"
        f" {_fmt(t['lead_cycles']['p95'], 6)} / {_fmt(t['lead_cycles']['p99'], 6)}"
        f"   ({t['lead_samples']} samples)",
        "  efficiency:",
        f"    tea uops fetched        {e['tea_fetched_uops']}"
        f"   per avoided mispredict {_fmt(e['uops_per_avoided_mispredict'], 8)}",
        f"    suppressed/blocked      {e['suppressed_resolutions']} /"
        f" {e['blocked_flushes']}   footprint overhead"
        f" {100 * e['footprint_overhead']:.2f}%",
        "  accuracy:",
        f"    chain accuracy          {100 * a['tea_accuracy']:.2f}%"
        f"   ({a['tea_wrong_resolutions']} wrong of"
        f" {a['tea_resolved_branches']} resolutions)",
        f"    coverage                {100 * a['coverage']:.2f}%"
        f"   incorrect {a['incorrect_precomputations']}"
        f"   uncovered {a['uncovered_mispredicts']}",
        f"  reconciliation: attribution {r['attribution_mispredicts']}"
        f" vs stats {r['stats_mispredicts']}"
        f" — {'exact' if r['exact'] else 'MISMATCH'}",
    ]
    branches = list(report["branches"].items())[:top]
    if branches:
        lines += [
            "",
            f"  top-{len(branches)} H2P branches:",
            f"    {'pc':>10s} {'mispred':>8s} {'cover':>7s} {'timely%':>8s} "
            f"{'lead p50':>9s} {'uops/res':>9s} {'acc':>7s}",
        ]
        for hex_pc, row in branches:
            frac = row["timeliness"]["fraction_timely"]
            lead50 = row["timeliness"]["lead_cycles"]["p50"]
            lines.append(
                f"    {hex_pc:>10s} {row['mispredicts']:8d} "
                f"{100 * row['coverage']:6.1f}% "
                f"{_fmt(100 * frac if frac is not None else None, 8, 1)} "
                f"{_fmt(lead50, 9)} "
                f"{_fmt(row['efficiency']['chain_resolutions'], 9)} "
                f"{100 * row['accuracy']:6.1f}%"
            )
    return "\n".join(lines)
