"""Metrics registry: namespaced counters, gauges, fixed-bucket histograms.

The registry is the aggregation layer the exporters read.  The hot-path
counter block stays :class:`~repro.core.stats.SimStats` (plain dataclass
int fields — increments must stay cheap); at snapshot time its raw and
derived values are *published into* the registry under the ``sim.``
namespace (see :meth:`SimStats.publish_to`), so the registry sits on
top of ``SimStats`` rather than replacing it.

Histograms use fixed upper-bound bucket edges with Prometheus-style
``le`` semantics: bucket ``i`` counts observations ``v`` with
``edges[i-1] < v <= edges[i]``; one final overflow bucket catches
``v > edges[-1]``.
"""

from __future__ import annotations

from bisect import bisect_left


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A named point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with ``le`` upper-bound edges."""

    __slots__ = ("name", "edges", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str, edges: tuple[int | float, ...]):
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one edge")
        if list(edges) != sorted(edges):
            raise ValueError(f"histogram {name!r} edges must be ascending")
        self.name = name
        self.edges = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)  # +1 overflow bucket
        self.total = 0
        self.sum = 0
        self.min: int | float | None = None
        self.max: int | float | None = None

    def bucket_index(self, value: int | float) -> int:
        """Index of the bucket that would count ``value``."""
        return bisect_left(self.edges, value)

    def observe(self, value: int | float) -> None:
        self.counts[self.bucket_index(value)] += 1
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation within the containing bucket (Prometheus
        ``histogram_quantile`` style), clamped to the observed
        ``[min, max]`` range; the overflow bucket reports ``max``.
        Returns ``None`` for an empty histogram.
        """
        if not self.total:
            return None
        if q <= 0.0:
            return float(self.min)
        if q >= 1.0:
            return float(self.max)
        rank = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if not count:
                continue
            below = cumulative
            cumulative += count
            if cumulative >= rank:
                if i >= len(self.edges):
                    return float(self.max)
                upper = self.edges[i]
                lower = self.edges[i - 1] if i else min(self.min, upper)
                estimate = lower + (upper - lower) * (rank - below) / count
                return float(max(self.min, min(self.max, estimate)))
        return float(self.max)  # pragma: no cover - rank <= total always

    def percentiles(self) -> dict[str, float | None]:
        """The standard p50/p95/p99 summary quantiles."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def as_dict(self) -> dict:
        out = {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        out.update(self.percentiles())
        return out

    def flat_items(self) -> list[tuple[str, int | float | None]]:
        """``(suffix, value)`` pairs for the flat snapshot format."""
        items: list[tuple[str, int | float | None]] = [
            ("count", self.total),
            ("sum", self.sum),
            ("mean", self.mean),
            ("min", self.min),
            ("max", self.max),
        ]
        items.extend(self.percentiles().items())
        for edge, count in zip(self.edges, self.counts):
            items.append((f"le_{edge}", count))
        items.append(("le_inf", self.counts[-1]))
        return items


class MetricsRegistry:
    """Create-or-get registry of counters, gauges, and histograms.

    Names are dotted namespaces (``events.early_flush``,
    ``tea.chain_length``, ``sim.ipc``); a name is bound to exactly one
    metric kind for the registry's lifetime.
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _check_free(self, name: str, kind: dict) -> None:
        for registered in (self._counters, self._gauges, self._histograms):
            if registered is not kind and name in registered:
                raise ValueError(f"metric {name!r} already registered as "
                                 f"a different kind")

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, edges: tuple[int | float, ...] | None = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            if edges is None:
                raise KeyError(f"histogram {name!r} not registered and no "
                               f"edges given")
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, edges)
        return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Structured snapshot: counters/gauges flat, histograms nested."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def flat_snapshot(self) -> dict:
        """One-level ``{dotted.name: scalar}`` dict, diff-friendly.

        This is the format ``benchmarks/`` and trajectory tooling diff:
        histogram buckets are flattened to ``<name>.le_<edge>`` keys.
        """
        flat: dict[str, int | float | None] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        for name, gauge in self._gauges.items():
            flat[name] = gauge.value
        for name, hist in self._histograms.items():
            for suffix, value in hist.flat_items():
                flat[f"{name}.{suffix}"] = value
        return dict(sorted(flat.items()))
