"""Observability: event bus, metrics, per-branch attribution, export.

See :mod:`repro.obs.hub` for the one-object entry point
(:class:`Observation`) and ``HACKING.md`` for the event taxonomy.
"""

from .attribution import AttributionTable, BranchAttribution
from .events import EVENT_TYPES, FIREHOSE_TYPES, Event, EventBus
from .export import (
    events_to_chrome_trace,
    events_to_jsonl,
    read_events_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_snapshot,
)
from .aggregate import (
    CampaignProgressView,
    TelemetryAggregator,
    TelemetryRelay,
    current_relay,
    set_current_relay,
)
from .hub import DEFAULT_HISTOGRAMS, Observation
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import PipelineProfiler
from .tea_report import build_tea_report, render_tea_report

__all__ = [
    "AttributionTable",
    "BranchAttribution",
    "EVENT_TYPES",
    "FIREHOSE_TYPES",
    "Event",
    "EventBus",
    "events_to_chrome_trace",
    "events_to_jsonl",
    "read_events_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_metrics_snapshot",
    "DEFAULT_HISTOGRAMS",
    "Observation",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "CampaignProgressView",
    "TelemetryAggregator",
    "TelemetryRelay",
    "current_relay",
    "set_current_relay",
    "PipelineProfiler",
    "build_tea_report",
    "render_tea_report",
]
