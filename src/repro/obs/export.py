"""Exporters: JSONL event dumps, Chrome trace_event timelines, metrics.

Three output formats:

* **JSONL** — one JSON object per taxonomy event, streaming-friendly
  and ``jq``-able (``write_events_jsonl`` / ``read_events_jsonl``).
* **Chrome trace** — the ``trace_event`` format consumed by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing``: TEA-active and
  backward-walk spans as ``X`` duration events, flushes / H2P
  identifications / poison terminations as ``i`` instants, Block Cache
  hit/miss totals as ``C`` counter tracks.  One simulated cycle maps to
  one trace microsecond.
* **Flat metrics JSON** — the registry's one-level dict, intended for
  ``benchmarks/`` and trajectory tooling to diff run-over-run.
"""

from __future__ import annotations

import json
import warnings

# trace_event thread ids (pid is always 0: one simulated core).
TID_MAIN = 0
TID_TEA = 1
TID_WALK = 2

_THREAD_NAMES = {
    TID_MAIN: "main-thread",
    TID_TEA: "tea-thread",
    TID_WALK: "walk-engine",
}

#: event type -> thread id for instant events.
_INSTANT_TIDS = {
    "h2p_identified": TID_MAIN,
    "mispredict_flush": TID_MAIN,
    "frontend_redirect": TID_MAIN,
    "measurement_start": TID_MAIN,
    "early_flush": TID_TEA,
    "poison_term": TID_TEA,
    "tea_resolve": TID_TEA,
    "block_cache_evict": TID_WALK,
}


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def events_to_jsonl(events) -> str:
    """Serialize taxonomy events, one JSON object per line."""
    return "\n".join(json.dumps(e.as_dict(), sort_keys=True) for e in events)


def write_events_jsonl(events, path: str) -> int:
    """Write events as JSONL; returns the number of lines written."""
    text = events_to_jsonl(events)
    with open(path, "w", encoding="utf-8") as handle:
        if text:
            handle.write(text)
            handle.write("\n")
    return len(events)


def read_events_jsonl(path: str, tolerant: bool = False) -> list[dict]:
    """Parse a JSONL event dump back into dicts (round-trip tested).

    ``tolerant`` handles the normal aftermath of a crash while an
    fsynced JSONL writer was mid-append: a *trailing* line that fails to
    parse is dropped with a warning instead of raised.  A corrupt line
    anywhere else still raises ``ValueError`` naming the line — partial
    tails are expected, interior corruption is not.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    records = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if tolerant and lineno == len(lines):
                warnings.warn(
                    f"{path}:{lineno}: dropping partial trailing event "
                    f"record ({exc})",
                    stacklevel=2,
                )
                break
            raise ValueError(
                f"{path}:{lineno}: corrupt event record: {exc}"
            ) from exc
    return records


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def _meta(name: str, tid: int, value: str) -> dict:
    return {
        "name": name,
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "args": {"name": value},
    }


def events_to_chrome_trace(events, final_cycle: int | None = None) -> dict:
    """Build a ``trace_event``-format dict from a taxonomy event list.

    ``final_cycle`` closes spans (TEA activity, walks) still open when
    the simulation ended; it defaults to the last event's cycle.
    """
    if final_cycle is None:
        final_cycle = max((e.cycle for e in events), default=0)
    trace: list[dict] = [
        _meta("process_name", TID_MAIN, "repro-sim"),
    ]
    for tid, name in _THREAD_NAMES.items():
        trace.append(_meta("thread_name", tid, name))

    tea_open: int | None = None
    bc_hits = 0
    bc_misses = 0
    for event in events:
        type_ = event.type
        if type_ == "tea_initiate":
            tea_open = event.cycle
        elif type_ == "tea_terminate":
            start = tea_open if tea_open is not None else event.cycle
            trace.append(
                {
                    "name": "tea_active",
                    "ph": "X",
                    "pid": 0,
                    "tid": TID_TEA,
                    "ts": start,
                    "dur": max(event.cycle - start, 1),
                    "args": dict(event.data),
                }
            )
            tea_open = None
        elif type_ == "walk_finish":
            start = event.data.get("start_cycle", event.cycle)
            trace.append(
                {
                    "name": "backward_walk",
                    "ph": "X",
                    "pid": 0,
                    "tid": TID_WALK,
                    "ts": start,
                    "dur": max(event.cycle - start, 1),
                    "args": {
                        k: v for k, v in event.data.items() if k != "start_cycle"
                    },
                }
            )
        elif type_ in ("block_cache_hit", "block_cache_miss"):
            if type_ == "block_cache_hit":
                bc_hits += 1
            else:
                bc_misses += 1
            trace.append(
                {
                    "name": "block_cache",
                    "ph": "C",
                    "pid": 0,
                    "tid": TID_WALK,
                    "ts": event.cycle,
                    "args": {"hits": bc_hits, "misses": bc_misses},
                }
            )
        elif type_ in _INSTANT_TIDS:
            args = dict(event.data)
            if event.pc >= 0:
                args["pc"] = f"{event.pc:#x}"
            if event.seq >= 0:
                args["seq"] = event.seq
            trace.append(
                {
                    "name": type_,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": _INSTANT_TIDS[type_],
                    "ts": event.cycle,
                    "args": args,
                }
            )
        # walk_start / shadow_fetch / branch_retire / branch_resolved /
        # flush / tea_initiate are represented by the spans and counters
        # above (or are too dense to chart as instants).
    if tea_open is not None:
        trace.append(
            {
                "name": "tea_active",
                "ph": "X",
                "pid": 0,
                "tid": TID_TEA,
                "ts": tea_open,
                "dur": max(final_cycle - tea_open, 1),
                "args": {"reason": "simulation_end"},
            }
        )
    return {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "1 cycle = 1 trace microsecond"},
    }


def write_chrome_trace(events, path: str, final_cycle: int | None = None) -> dict:
    """Write a Perfetto-loadable trace file; returns the trace dict."""
    trace = events_to_chrome_trace(events, final_cycle)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return trace


def validate_chrome_trace(trace: dict) -> None:
    """Raise ``ValueError`` unless ``trace`` is structurally valid
    ``trace_event`` JSON (the loadability contract Perfetto needs)."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("missing traceEvents array")
    for entry in trace["traceEvents"]:
        for field in ("name", "ph", "pid", "tid"):
            if field not in entry:
                raise ValueError(f"trace event missing {field!r}: {entry}")
        if entry["ph"] != "M" and "ts" not in entry:
            raise ValueError(f"non-metadata event missing ts: {entry}")
        if entry["ph"] == "X" and "dur" not in entry:
            raise ValueError(f"duration event missing dur: {entry}")


# ----------------------------------------------------------------------
# Metrics snapshot
# ----------------------------------------------------------------------
def write_metrics_snapshot(flat: dict, path: str) -> None:
    """Write the flat metrics dict as pretty, stable-ordered JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(flat, handle, indent=2, sort_keys=True)
        handle.write("\n")
