"""Typed event bus for simulator observability.

The simulator's interesting moments — H2P identification, backward-walk
start/finish, Block Cache hits/misses/evictions, shadow fetches, TEA
branch resolutions, early flushes, poison terminations — are emitted as
:class:`Event` objects onto an :class:`EventBus` attached to a pipeline
(``pipeline.obs``).  Emission is synchronous and happens in simulation
order, so for a fixed seed the event stream is bit-identical across
runs (tested in ``tests/test_observability.py``).

Overhead discipline
-------------------
* With no bus attached, every emission site is a single attribute load
  plus an ``is None`` check.
* High-volume *firehose* events (``cycle_end``, ``uop_commit``,
  ``uop_squash``, ``tea_uop_done`` — used by the
  :class:`~repro.core.tracing.PipelineTracer`) are additionally guarded
  by :meth:`EventBus.wants`, so attaching a bus for the structured
  taxonomy does not pay per-cycle/per-uop costs.
* ``Event`` objects are only constructed when at least one subscriber
  listens to that type; the per-type ``counts`` tally is kept always.

Firehose events carry live simulator objects (e.g. the ``DynUop``) in
their payload and are *not* part of the exported taxonomy; exporters
subscribe only to :data:`EVENT_TYPES`, whose payloads are JSON-safe.
"""

from __future__ import annotations

from typing import Callable, Iterable

#: The structured event taxonomy (JSON-safe payloads, export-eligible).
EVENT_TYPES: frozenset[str] = frozenset(
    {
        "measurement_start",   # warmup boundary crossed; counters reset
        "h2p_identified",      # a branch PC crossed the H2P threshold
        "walk_start",          # Fill Buffer full, Backward Dataflow Walk began
        "walk_finish",         # walk completed; masks merged into Block Cache
        "block_cache_hit",     # shadow-fetch Block Cache lookup hit (maybe empty)
        "block_cache_miss",    # shadow-fetch lookup miss (terminates the thread)
        "block_cache_evict",   # walk-completion inserts evicted entries
        "shadow_fetch",        # TEA thread fetched chain uops from one block
        "tea_initiate",        # TEA thread started at a synchronized timestamp
        "tea_terminate",       # TEA thread stopped (reason in payload)
        "tea_resolve",         # a TEA copy of an H2P branch resolved
        "early_flush",         # TEA disagreement issued an early flush
        "poison_term",         # RAT poisoning preempted an incorrect chain
        "mispredict_flush",    # main-thread resolution flushed a misprediction
        "flush",               # any flush through flush_at_branch (with squash counts)
        "frontend_redirect",   # decoupled BP recovered + redirected after a flush
        "branch_retire",       # a can-mispredict branch retired (attribution feed)
        "branch_resolved",     # main resolution outcome of a TEA-relevant branch
        "slice_oracle",        # static-slicer vs dynamic-walk chain comparison
                               # (per H2P branch; repro.analysis.oracle)
        # Static chain analysis (repro.analysis.chains).
        "chain_oracle",        # per-branch runtime-chain soundness verdict
        "chain_unsound",       # a runtime chain escaped its static bound
        "tea_mask_denied",     # static branch mask vetoed an H2P branch
                               # (once per PC; chain slots never allocated)
        # Runtime verification (repro.verify).
        "invariant_violation", # the checker found an illegal machine state
        "fault_injected",      # a planned fault was applied (kind in payload)
        # TEA graceful degradation (accuracy gating in the controller).
        "tea_chain_disabled",  # a chain's accuracy fell below the threshold
        "tea_chain_enabled",   # a disabled chain's decay period elapsed
        "tea_degraded",        # sustained low accuracy fired the kill-switch
        # Campaign run lifecycle (emitted by repro.harness.executor on
        # the parent-process bus; cycle is -1, these are wall-clock-side).
        "run_started",         # one (workload, mode) attempt launched
        "run_finished",        # attempt succeeded; payload has attempts taken
        "run_failed",          # run gave up (kind: fatal/timeout/retryable)
        "run_retried",         # retryable failure; another attempt scheduled
        # Sampled simulation (repro.sampling.windows, parent-process
        # bus; cycle is -1, these are wall-clock-side).
        "sample_plan",         # window placement chosen (count/positions)
        "sample_checkpoint",   # one functional checkpoint captured
        "sample_window_done",  # one detailed window settled (ipc/mpki)
        "sample_estimate",     # extrapolated metrics + confidence bounds
        # Campaign service (repro.service, service-process bus; cycle
        # is -1, these are wall-clock-side).
        "job_submitted",       # a job was journaled and queued
        "job_started",         # the dispatcher began executing a job
        "job_finished",        # a job reached a terminal state (status)
        "job_rejected",        # backpressure: queue full / draining
        "job_resumed",         # journal replay re-enqueued an unfinished job
        "job_cancelled",       # a queued job was cancelled by a client
        "cell_cached",         # a cell was served from the result cache
        "cell_simulated",      # a cell missed the cache and simulated
        "service_drain",       # graceful drain began (SIGTERM)
        "heartbeat_missed",    # a running job went silent past the limit
    }
)

#: High-volume internal events; payloads may hold live simulator objects.
FIREHOSE_TYPES: frozenset[str] = frozenset(
    {"cycle_end", "uop_commit", "uop_squash", "tea_uop_done", "walk_done"}
)


class Event:
    """One observed simulator occurrence.

    ``pc``/``seq`` are ``-1`` when not meaningful for the type; any
    further payload lives in ``data``.
    """

    __slots__ = ("type", "cycle", "pc", "seq", "data")

    def __init__(self, type_: str, cycle: int, pc: int, seq: int, data: dict):
        self.type = type_
        self.cycle = cycle
        self.pc = pc
        self.seq = seq
        self.data = data

    def as_dict(self) -> dict:
        """Flat JSON-safe dict (taxonomy events only)."""
        out = {"type": self.type, "cycle": self.cycle}
        if self.pc >= 0:
            out["pc"] = self.pc
        if self.seq >= 0:
            out["seq"] = self.seq
        out.update(self.data)
        return out

    def key(self) -> tuple:
        """Hashable identity used by determinism tests."""
        return (
            self.type,
            self.cycle,
            self.pc,
            self.seq,
            tuple(sorted(self.data.items())),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.type} @{self.cycle} pc={self.pc} seq={self.seq}>"


class EventBus:
    """Synchronous publish/subscribe fan-out with per-type counts.

    The bus stamps each event with the current cycle via its *clock*
    (bound to ``pipeline.cycle`` at attach time).  Subscribers register
    for explicit type tuples; there is deliberately no wildcard — it
    would silently subscribe callers to the firehose events and defeat
    the :meth:`wants` fast path.
    """

    def __init__(self, clock: Callable[[], int] | None = None):
        self._clock: Callable[[], int] = clock or (lambda: -1)
        self._subs: dict[str, list[Callable[[Event], None]]] = {}
        self._wanted: set[str] = set()
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Set the cycle source used to timestamp events."""
        self._clock = clock

    def subscribe(
        self, callback: Callable[[Event], None], types: Iterable[str]
    ) -> None:
        """Deliver every future event of the given types to ``callback``."""
        for type_ in types:
            self._subs.setdefault(type_, []).append(callback)
            self._wanted.add(type_)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        """Remove ``callback`` from every type it subscribed to.

        Equality (not identity) comparison: bound methods are rebuilt
        on every attribute access, so ``bus.unsubscribe(obj.method)``
        must match the object registered by ``bus.subscribe(obj.method)``.
        """
        for type_, callbacks in list(self._subs.items()):
            self._subs[type_] = [cb for cb in callbacks if cb != callback]
            if not self._subs[type_]:
                del self._subs[type_]
        self._wanted = set(self._subs)

    def wants(self, type_: str) -> bool:
        """Fast guard for expensive emission sites (firehose events)."""
        return type_ in self._wanted

    # ------------------------------------------------------------------
    def emit(self, type_: str, pc: int = -1, seq: int = -1, **data) -> None:
        """Count and (if anyone listens) construct + dispatch an event.

        Hot-path contract: when ``type_`` has no subscriber the call
        does exactly one counter increment and one set-membership test
        — no :class:`Event` is constructed and no payload dict escapes
        (``**data`` packing is unavoidable but stays local).  The
        disabled-path cost is asserted near-zero by a micro-benchmark
        in ``tests/test_observability.py``.
        """
        counts = self.counts
        if type_ in counts:
            counts[type_] += 1
        else:
            counts[type_] = 1
        if type_ not in self._wanted:
            return
        event = Event(type_, self._clock(), pc, seq, data)
        for callback in self._subs[type_]:
            callback(event)

    # ------------------------------------------------------------------
    def distinct_types(self) -> set[str]:
        """Event types emitted at least once."""
        return set(self.counts)
