"""Cross-process campaign telemetry: worker relay, parent aggregation.

A campaign fans simulations out over worker processes
(:class:`~repro.harness.executor.CampaignExecutor`), and each worker's
event bus and metrics registry die with the worker — the parent only
ever saw the final ``SimStats`` payload.  This module streams telemetry
*live* over the existing result pipe instead:

* :class:`TelemetryRelay` — worker side.  Subscribes to the worker's
  :class:`~repro.obs.hub.Observation` bus, forwards a *sampled* subset
  of taxonomy events plus periodic structured metric snapshots, each
  wrapped in an envelope tagged with the run key, worker id, and a
  per-worker sequence number.  Sampling is the backpressure mechanism:
  dropped records are *counted per type and reported in every
  snapshot*, never silently discarded.  Transport failures (parent
  gone) burn sequence numbers, so the parent sees them as gaps.
* :class:`TelemetryAggregator` — parent side.  Ingests envelopes from
  any number of workers and merges them into campaign-level rollups:
  cell status matrix, aggregate simulated cycles/s, per-workload
  histogram merges (with p50/p95/p99), and explicit drop accounting
  (sampling drops, transport gaps, duplicate/out-of-order envelopes).
* :class:`CampaignProgressView` — a ``--follow`` terminal renderer of
  the campaign matrix with ETA; in-place ANSI redraw on a tty, compact
  line-per-update fallback otherwise.

The relay reaches the worker's task through a process-local ambient
slot (:func:`set_current_relay` / :func:`current_relay`), installed by
``_worker_main`` before the task runs — the task itself stays a plain
picklable ``record -> payload`` callable.
"""

from __future__ import annotations

import time
from typing import Callable

from .events import EVENT_TYPES, Event
from .metrics import Histogram

#: Default per-type sampling periods (forward 1 of every N).  The
#: high-volume attribution feeds would otherwise dominate the pipe;
#: everything not listed here is forwarded unsampled.
DEFAULT_SAMPLE_PERIODS: dict[str, int] = {
    "branch_retire": 64,
    "branch_resolved": 16,
    "tea_resolve": 16,
    "shadow_fetch": 16,
    "block_cache_hit": 64,
    "flush": 16,
    "mispredict_flush": 16,
}

#: Cell status codes used by the aggregator and the progress view.
PENDING, RUNNING, OK, FAILED, TIMEOUT = (
    "pending", "running", "ok", "failed", "timeout",
)


# ======================================================================
# Worker side
# ======================================================================
class TelemetryRelay:
    """Streams sampled events + metric snapshots out of one worker.

    ``send`` is the raw transport — typically ``Connection.send`` of
    the worker's result pipe; every record goes out as a
    ``("telemetry", envelope)`` tuple so the parent can tell telemetry
    from the final ``("ok", ...)`` / ``("err", ...)`` message.
    """

    def __init__(
        self,
        send: Callable[[tuple], None],
        run: str,
        worker: int = 0,
        sample: dict[str, int] | None = None,
        snapshot_every: int = 2048,
    ):
        self._send_raw = send
        self.run = run
        self.worker = worker
        self._seq = 0
        self._sample = dict(DEFAULT_SAMPLE_PERIODS)
        if sample:
            self._sample.update(sample)
        self._snapshot_every = snapshot_every
        self._since_snapshot = 0
        self._emitted: dict[str, int] = {}
        self.dropped: dict[str, int] = {}
        self.transport_failures = 0
        self._broken = False
        self._observation = None

    # ------------------------------------------------------------------
    def attach(self, observation) -> None:
        """Subscribe to an :class:`Observation`'s bus (taxonomy only)."""
        observation.bus.subscribe(self.on_event, EVENT_TYPES)
        self._observation = observation

    def on_event(self, event: Event) -> None:
        """Bus callback: forward 1-in-N per type, count the rest."""
        type_ = event.type
        n = self._emitted.get(type_, 0) + 1
        self._emitted[type_] = n
        period = self._sample.get(type_, 1)
        if period > 1 and (n - 1) % period:
            self.dropped[type_] = self.dropped.get(type_, 0) + 1
        else:
            self._post("event", event.as_dict())
        self._since_snapshot += 1
        if self._since_snapshot >= self._snapshot_every:
            self.send_snapshot()

    def send_snapshot(self, stats=None, final: bool = False) -> None:
        """Ship a structured metrics snapshot + the drop ledger."""
        payload: dict = {
            "final": final,
            "emitted": dict(self._emitted),
            "dropped": dict(self.dropped),
        }
        obs = self._observation
        if obs is not None:
            if stats is not None:
                stats.publish_to(obs.metrics)
            for type_, count in obs.bus.counts.items():
                obs.metrics.gauge(f"events.{type_}").set(count)
            payload["metrics"] = obs.metrics.snapshot()
        self._since_snapshot = 0
        self._post("snapshot", payload)

    # ------------------------------------------------------------------
    def _post(self, kind: str, payload: dict) -> None:
        envelope = {
            "run": self.run,
            "worker": self.worker,
            "seq": self._seq,
            "kind": kind,
            "payload": payload,
        }
        # The sequence number advances even when the send fails, so a
        # one-off transport error surfaces as a gap on the parent side
        # instead of vanishing.
        self._seq += 1
        if self._broken:
            self.transport_failures += 1
            return
        try:
            self._send_raw(("telemetry", envelope))
        except (OSError, ValueError):
            self._broken = True
            self.transport_failures += 1


# Process-local ambient relay: ``_worker_main`` installs it before the
# task runs; ``execute_spec`` picks it up without any signature change.
_current_relay: TelemetryRelay | None = None


def set_current_relay(relay: TelemetryRelay | None) -> None:
    """Install (or clear) this process's ambient telemetry relay."""
    global _current_relay
    _current_relay = relay


def current_relay() -> TelemetryRelay | None:
    """The ambient relay installed for the current task, if any."""
    return _current_relay


# ======================================================================
# Parent side
# ======================================================================
class TelemetryAggregator:
    """Merges worker telemetry into campaign-level rollups.

    Cell lifecycle comes from the executor's hooks
    (:meth:`register_specs`, :meth:`on_run_started`,
    :meth:`on_run_retried`, :meth:`on_run_settled`); event/metric
    streams come from :meth:`ingest`.  All drop paths are explicit:
    sampling drops are reported by the workers themselves, transport
    gaps are inferred from per-worker sequence numbers, and duplicate
    or out-of-order envelopes are counted and discarded.
    """

    def __init__(
        self,
        jobs: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_update: Callable[["TelemetryAggregator"], None] | None = None,
    ):
        self.jobs = max(1, jobs)
        self._clock = clock
        self._on_update = on_update
        self.started_at = clock()
        self.cells: dict[str, str] = {}
        self.attempts: dict[str, int] = {}
        self.retried_cells: set[str] = set()
        self.durations: dict[str, float] = {}
        self.sim_cycles: dict[str, int] = {}
        self.records = 0
        self.sampled_events = 0
        self.duplicates = 0
        self.transport_drops = 0
        self.event_counts: dict[str, int] = {}
        self._last_seq: dict[tuple[str, int], int] = {}
        self._run_emitted: dict[str, dict[str, int]] = {}
        self._run_dropped: dict[str, dict[str, int]] = {}
        self._run_metrics: dict[str, dict] = {}

    # -- executor lifecycle hooks --------------------------------------
    def register_specs(self, specs) -> None:
        """Declare the campaign matrix (specs have ``.key``)."""
        for spec in specs:
            self.cells.setdefault(spec.key, PENDING)
        self._notify()

    def on_run_started(self, key: str, attempt: int = 1) -> None:
        self.cells[key] = RUNNING
        self.attempts[key] = attempt
        self._notify()

    def on_run_retried(self, key: str) -> None:
        self.retried_cells.add(key)
        self.cells[key] = PENDING
        self._notify()

    def on_run_settled(self, outcome) -> None:
        """A cell reached a final state (a ``RunOutcome``)."""
        key = outcome.key
        self.cells[key] = outcome.status
        self.attempts[key] = outcome.attempts
        if outcome.attempts > 1:
            self.retried_cells.add(key)
        self.durations[key] = outcome.duration
        if outcome.stats:
            self.sim_cycles[key] = outcome.stats.get("cycles", 0)
        self._notify()

    # -- telemetry stream ----------------------------------------------
    def ingest(self, envelope: dict) -> None:
        """Merge one relay envelope; never raises on malformed input."""
        if not isinstance(envelope, dict):
            self.duplicates += 1
            return
        self.records += 1
        run = envelope.get("run", "")
        source = (run, envelope.get("worker", 0))
        seq = envelope.get("seq")
        if isinstance(seq, int):
            last = self._last_seq.get(source, -1)
            if seq <= last:
                self.duplicates += 1
                return
            if seq > last + 1:
                self.transport_drops += seq - last - 1
            self._last_seq[source] = seq
        kind = envelope.get("kind")
        payload = envelope.get("payload") or {}
        if kind == "event":
            self.sampled_events += 1
            type_ = payload.get("type", "?")
            self.event_counts[type_] = self.event_counts.get(type_, 0) + 1
        elif kind == "snapshot":
            self._run_emitted[run] = dict(payload.get("emitted") or {})
            self._run_dropped[run] = dict(payload.get("dropped") or {})
            metrics = payload.get("metrics")
            if metrics:
                self._run_metrics[run] = metrics
        self._notify()

    def _notify(self) -> None:
        if self._on_update is not None:
            self._on_update(self)

    # -- rollups --------------------------------------------------------
    def _merged_histograms(self) -> dict[str, dict[str, dict]]:
        """Per-workload bucket-wise histogram merges with percentiles.

        Only the *latest* snapshot per run participates (snapshots are
        cumulative), and merges require identical edges; a mismatched
        shard is surfaced under ``"incompatible_shards"`` rather than
        silently skipped.
        """
        by_workload: dict[str, dict[str, dict]] = {}
        incompatible = 0
        for run, metrics in sorted(self._run_metrics.items()):
            workload = run.split("/", 1)[0]
            target = by_workload.setdefault(workload, {})
            for name, hist in (metrics.get("histograms") or {}).items():
                merged = target.get(name)
                if merged is None:
                    target[name] = {
                        "edges": list(hist["edges"]),
                        "counts": list(hist["counts"]),
                        "count": hist["count"],
                        "sum": hist["sum"],
                        "min": hist["min"],
                        "max": hist["max"],
                    }
                    continue
                if list(hist["edges"]) != merged["edges"]:
                    incompatible += 1
                    continue
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], hist["counts"])
                ]
                merged["count"] += hist["count"]
                merged["sum"] += hist["sum"]
                for field, pick in (("min", min), ("max", max)):
                    values = [
                        v for v in (merged[field], hist[field]) if v is not None
                    ]
                    merged[field] = pick(values) if values else None
        for hists in by_workload.values():
            for name, merged in hists.items():
                merged.update(_percentiles_of(merged))
        if incompatible:
            by_workload["incompatible_shards"] = {"count": incompatible}
        return by_workload

    def sampling_drops(self) -> dict[str, int]:
        """Per-type sampling drops summed over runs (latest snapshots)."""
        total: dict[str, int] = {}
        for dropped in self._run_dropped.values():
            for type_, count in dropped.items():
                total[type_] = total.get(type_, 0) + count
        return total

    def emitted_counts(self) -> dict[str, int]:
        """Per-type *emitted* counts summed over runs (exact, from the
        workers' own tallies — independent of sampling)."""
        total: dict[str, int] = {}
        for emitted in self._run_emitted.values():
            for type_, count in emitted.items():
                total[type_] = total.get(type_, 0) + count
        return total

    def eta_seconds(self) -> float | None:
        """Remaining-cell estimate from the mean settled duration."""
        if not self.durations:
            return None
        remaining = sum(
            1 for status in self.cells.values() if status in (PENDING, RUNNING)
        )
        if not remaining:
            return 0.0
        mean = sum(self.durations.values()) / len(self.durations)
        return remaining * mean / self.jobs

    def rollup(self) -> dict:
        """The campaign-level JSON-safe rollup."""
        statuses = list(self.cells.values())
        wall = max(1e-9, self._clock() - self.started_at)
        total_cycles = sum(self.sim_cycles.values())
        busy = sum(self.durations.values())
        sampling = self.sampling_drops()
        return {
            "cells": {
                "total": len(statuses),
                "ok": statuses.count(OK),
                "failed": statuses.count(FAILED),
                "timeout": statuses.count(TIMEOUT),
                "running": statuses.count(RUNNING),
                "pending": statuses.count(PENDING),
                "retried": len(self.retried_cells),
            },
            "by_cell": {
                key: {
                    "status": status,
                    "attempts": self.attempts.get(key, 0),
                    "duration": round(self.durations.get(key, 0.0), 3),
                }
                for key, status in sorted(self.cells.items())
            },
            "throughput": {
                "simulated_cycles": total_cycles,
                "wall_seconds": round(wall, 3),
                "busy_seconds": round(busy, 3),
                "cycles_per_sec": total_cycles / busy if busy else 0.0,
                "eta_seconds": self.eta_seconds(),
            },
            "events": {
                "emitted": self.emitted_counts(),
                "sampled": self.sampled_events,
                "sampled_by_type": dict(sorted(self.event_counts.items())),
            },
            "drops": {
                "sampling": sampling,
                "sampling_total": sum(sampling.values()),
                "transport": self.transport_drops,
                "duplicates": self.duplicates,
            },
            # Sampled-simulation lifecycle (zero outside `repro sample`
            # campaigns; the executor feeds these from the parent bus).
            "sampled_simulation": {
                "checkpoints": self.event_counts.get("sample_checkpoint", 0),
                "windows": self.event_counts.get("sample_window_done", 0),
                "estimates": self.event_counts.get("sample_estimate", 0),
            },
            "histograms": self._merged_histograms(),
        }


def _percentiles_of(hist_dict: dict) -> dict[str, float | None]:
    """p50/p95/p99 of a merged histogram dict (edges + counts)."""
    hist = Histogram("merged", tuple(hist_dict["edges"]))
    hist.counts = list(hist_dict["counts"])
    hist.total = hist_dict["count"]
    hist.sum = hist_dict["sum"]
    hist.min = hist_dict["min"]
    hist.max = hist_dict["max"]
    return hist.percentiles()


# ======================================================================
# --follow progress view
# ======================================================================
_STATUS_CHARS = {PENDING: ".", RUNNING: "~", OK: "#", FAILED: "X", TIMEOUT: "T"}


class CampaignProgressView:
    """Live terminal rendering of the campaign matrix with ETA.

    On a tty the matrix is redrawn in place (cursor-up + erase-line
    ANSI); otherwise one compact status line is printed whenever the
    settled-cell count changes, so piped output stays readable.
    """

    def __init__(self, specs, stream=None, min_interval: float = 0.1,
                 clock: Callable[[], float] = time.monotonic):
        import sys

        self.workloads: list[str] = []
        self.modes: list[str] = []
        for spec in specs:
            if spec.workload not in self.workloads:
                self.workloads.append(spec.workload)
            if spec.mode not in self.modes:
                self.modes.append(spec.mode)
        self.stream = stream if stream is not None else sys.stdout
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._min_interval = min_interval
        self._clock = clock
        self._last_render = 0.0
        self._lines = 0
        self._last_done = -1

    # ------------------------------------------------------------------
    def render(self, aggregator: TelemetryAggregator, force: bool = False) -> None:
        """Aggregator ``on_update`` callback (rate-limited)."""
        now = self._clock()
        if not force and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        if self._tty:
            self._render_matrix(aggregator)
        else:
            self._render_line(aggregator, force)

    def finish(self, aggregator: TelemetryAggregator) -> None:
        """Final forced render + trailing newline."""
        self.render(aggregator, force=True)
        if self._tty:
            self.stream.write("\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    def _summary(self, aggregator: TelemetryAggregator) -> str:
        statuses = list(aggregator.cells.values())
        done = (
            statuses.count(OK) + statuses.count(FAILED)
            + statuses.count(TIMEOUT)
        )
        parts = [
            f"{done}/{len(statuses)} done",
            f"ok={statuses.count(OK)}",
            f"failed={statuses.count(FAILED) + statuses.count(TIMEOUT)}",
            f"running={statuses.count(RUNNING)}",
        ]
        eta = aggregator.eta_seconds()
        if eta is not None:
            parts.append(f"eta={eta:.0f}s")
        if aggregator.transport_drops or aggregator.duplicates:
            parts.append(
                f"drops={aggregator.transport_drops}"
                f"+{aggregator.duplicates}dup"
            )
        return "  ".join(parts)

    def _matrix_lines(self, aggregator: TelemetryAggregator) -> list[str]:
        width = max((len(w) for w in self.workloads), default=8)
        cols = [m[:10] for m in self.modes]
        lines = [
            " " * (width + 1)
            + " ".join(f"{c:>10s}" for c in cols)
        ]
        for workload in self.workloads:
            row = [f"{workload:>{width}s}"]
            for mode in self.modes:
                status = aggregator.cells.get(f"{workload}/{mode}", PENDING)
                row.append(f"{_STATUS_CHARS.get(status, '?'):>10s}")
            lines.append(" ".join(row))
        lines.append(self._summary(aggregator))
        return lines

    def _render_matrix(self, aggregator: TelemetryAggregator) -> None:
        lines = self._matrix_lines(aggregator)
        out = []
        if self._lines:
            out.append(f"\x1b[{self._lines}A")
        for line in lines:
            out.append("\x1b[2K" + line + "\n")
        self.stream.write("".join(out))
        self.stream.flush()
        self._lines = len(lines)

    def _render_line(self, aggregator: TelemetryAggregator, force: bool) -> None:
        statuses = list(aggregator.cells.values())
        done = (
            statuses.count(OK) + statuses.count(FAILED)
            + statuses.count(TIMEOUT)
        )
        if done == self._last_done and not force:
            return
        self._last_done = done
        self.stream.write("campaign: " + self._summary(aggregator) + "\n")
        self.stream.flush()
