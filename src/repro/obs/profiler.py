"""Pipeline self-profiler: per-stage wall-clock attribution.

Answers "where does *host* wall-clock go?" for one simulated run:
fetch / predict / rename / schedule / execute / commit / TEA-controller
stage buckets, plus overhead buckets for the event bus and the runtime
invariant checker.  Enabled with ``SimConfig(profile=True)`` (or
``repro profile <workload>`` from the CLI).

Implementation: the profiler wraps the pipeline's stage methods as
*instance attributes* (``pipeline._fetch = timed_wrapper``), shadowing
the class methods.  A pipeline that never enables profiling keeps its
untouched class methods — the disabled path is structurally zero-cost,
which is how the ≤5% disabled-overhead acceptance gate is enforced
(``repro profile --gate`` additionally asserts no wrapper ever lands in
an unprofiled pipeline's ``__dict__``).  Wrappers only move *host* time
around; simulated behaviour is untouched, so profiled runs stay
cycle-exact vs the golden matrix (``tests/test_profiler.py``).

Timings use ``time.perf_counter_ns``.  Stage buckets are measured
inside ``step``, so ``event_bus`` / ``invariant_checker`` time nests
within the stage that triggered it; the reported ``other`` bucket is
``step`` time not attributed to any stage (step-loop bookkeeping).
"""

from __future__ import annotations

import time
from typing import Callable

#: bucket name -> pipeline attribute holding the stage callable.
_STAGE_ATTRS: tuple[tuple[str, str], ...] = (
    ("commit", "_retire"),
    ("execute", "_complete"),
    ("schedule", "_schedule"),
    ("rename", "_rename"),
    ("fetch", "_fetch"),
    ("predict", "_predict"),
)

#: Buckets that nest inside stage buckets (not part of ``other`` math).
_OVERHEAD_BUCKETS = ("event_bus", "invariant_checker", "tea")


class ProfileBucket:
    """Accumulated wall-clock for one profiled stage."""

    __slots__ = ("name", "ns", "calls")

    def __init__(self, name: str):
        self.name = name
        self.ns = 0
        self.calls = 0


class PipelineProfiler:
    """Wall-clock attribution over a pipeline's step loop.

    ``sample_period`` controls the Perfetto counter-track resolution:
    every N simulated cycles the per-bucket deltas since the previous
    sample are recorded as one counter sample.
    """

    def __init__(
        self,
        sample_period: int = 2048,
        timer: Callable[[], int] = time.perf_counter_ns,
    ):
        self.sample_period = max(1, sample_period)
        self._timer = timer
        self.buckets: dict[str, ProfileBucket] = {}
        self.step_ns = 0
        self.steps = 0
        self.samples: list[dict] = []
        self._last_sample: dict[str, int] = {}
        self._pipeline = None

    def bucket(self, name: str) -> ProfileBucket:
        """Create-or-get the named bucket."""
        bucket = self.buckets.get(name)
        if bucket is None:
            bucket = self.buckets[name] = ProfileBucket(name)
        return bucket

    def _timed(self, name: str, func: Callable) -> Callable:
        bucket = self.bucket(name)
        timer = self._timer

        def wrapper(*args, **kwargs):
            start = timer()
            try:
                return func(*args, **kwargs)
            finally:
                bucket.ns += timer() - start
                bucket.calls += 1

        wrapper.__profiled__ = name  # type: ignore[attr-defined]
        return wrapper

    # ------------------------------------------------------------------
    def install(self, pipeline) -> None:
        """Shadow the pipeline's stage methods with timed wrappers."""
        if self._pipeline is not None:
            raise RuntimeError("profiler is already installed")
        self._pipeline = pipeline
        for name, attr in _STAGE_ATTRS:
            func = getattr(pipeline, attr, None)
            if func is not None:
                setattr(pipeline, attr, self._timed(name, func))
        tea = getattr(pipeline, "tea", None)
        if tea is not None:
            tea.fetch = self._timed("tea", tea.fetch)
        obs = getattr(pipeline, "obs", None)
        if obs is not None:
            obs.emit = self._timed("event_bus", obs.emit)
        checker = getattr(pipeline, "_checker", None)
        if checker is not None and hasattr(checker, "maybe_audit"):
            checker.maybe_audit = self._timed(
                "invariant_checker", checker.maybe_audit
            )

        step = pipeline.step
        timer = self._timer

        def timed_step(*args, **kwargs):
            start = timer()
            try:
                return step(*args, **kwargs)
            finally:
                self.step_ns += timer() - start
                self.steps += 1
                if self.steps % self.sample_period == 0:
                    self._take_sample(pipeline.cycle)

        pipeline.step = timed_step

    def _take_sample(self, cycle: int) -> None:
        sample: dict = {"cycle": cycle}
        for name, bucket in self.buckets.items():
            previous = self._last_sample.get(name, 0)
            sample[name] = bucket.ns - previous
            self._last_sample[name] = bucket.ns
        previous = self._last_sample.get("step", 0)
        sample["step"] = self.step_ns - previous
        self._last_sample["step"] = self.step_ns
        self.samples.append(sample)

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Structured attribution: total, per-bucket ns/calls/fraction."""
        stage_names = {name for name, _ in _STAGE_ATTRS}
        stage_ns = sum(
            b.ns for n, b in self.buckets.items()
            if n in stage_names or n == "tea"
        )
        total = self.step_ns
        buckets = {
            name: {
                "ns": bucket.ns,
                "calls": bucket.calls,
                "frac": bucket.ns / total if total else 0.0,
            }
            for name, bucket in sorted(self.buckets.items())
        }
        other = max(0, total - stage_ns)
        buckets["other"] = {
            "ns": other,
            "calls": self.steps,
            "frac": other / total if total else 0.0,
        }
        return {
            "total_ns": total,
            "steps": self.steps,
            "ns_per_step": total / self.steps if self.steps else 0.0,
            "buckets": buckets,
        }

    def flat(self) -> dict:
        """One-level ``profile.*`` dict for ``write_metrics_snapshot``."""
        report = self.report()
        flat: dict[str, int | float] = {
            "profile.total_ns": report["total_ns"],
            "profile.steps": report["steps"],
            "profile.ns_per_step": report["ns_per_step"],
        }
        for name, bucket in report["buckets"].items():
            flat[f"profile.{name}.ns"] = bucket["ns"]
            flat[f"profile.{name}.calls"] = bucket["calls"]
            flat[f"profile.{name}.frac"] = round(bucket["frac"], 6)
        return dict(sorted(flat.items()))

    def to_chrome_trace(self) -> dict:
        """Perfetto counter tracks: per-bucket ns deltas per sample."""
        trace: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 3,
                "args": {"name": "repro-profiler"},
            },
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": 3,
                "args": {"name": "host-profile"},
            },
        ]
        for sample in self.samples:
            args = {k: v for k, v in sample.items() if k != "cycle"}
            trace.append(
                {
                    "name": "host_ns_per_sample",
                    "ph": "C",
                    "pid": 0,
                    "tid": 3,
                    "ts": sample["cycle"],
                    "args": args,
                }
            )
        return {
            "traceEvents": trace,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "1 cycle = 1 trace microsecond"},
        }
