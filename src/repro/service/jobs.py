"""Job model and bounded priority queue for the campaign service.

A *job* is one client-submitted campaign: a workload × mode matrix at
one scale/seed, queued at a priority and executed as a unit over the
:class:`~repro.harness.executor.CampaignExecutor`.  The queue is
deliberately bounded — admission control is the service's backpressure
mechanism (HTTP 429 + ``Retry-After``), not an unbounded buffer that
hides overload until memory runs out.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from ..harness import MODES, RunSpec
from ..workloads import workload_names

#: Job lifecycle states.  ``queued -> running -> done | failed``;
#: ``cancelled`` is reachable from ``queued`` only.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Priority bounds (inclusive).  Higher runs earlier.
MIN_PRIORITY, MAX_PRIORITY = 0, 9


class JobValidationError(ValueError):
    """A submitted job payload is malformed (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """The client-visible description of one campaign job."""

    workloads: tuple[str, ...]
    modes: tuple[str, ...]
    scale: str = "tiny"
    seed: int = 0
    max_cycles: int = 30_000_000
    check_invariants: int = 0
    priority: int = 0
    fault_kind: str = ""
    fault_seed: int = 0

    def as_record(self) -> dict:
        record = {
            "workloads": list(self.workloads),
            "modes": list(self.modes),
            "scale": self.scale,
            "seed": self.seed,
            "max_cycles": self.max_cycles,
            "check_invariants": self.check_invariants,
            "priority": self.priority,
        }
        if self.fault_kind:
            record["fault_kind"] = self.fault_kind
            record["fault_seed"] = self.fault_seed
        return record

    @classmethod
    def from_record(cls, record: dict) -> "JobSpec":
        """Build and *validate* a spec from an untrusted payload."""
        if not isinstance(record, dict):
            raise JobValidationError("job payload must be a JSON object")
        unknown = set(record) - {
            "workloads", "modes", "scale", "seed", "max_cycles",
            "check_invariants", "priority", "fault_kind", "fault_seed",
            "token",
        }
        if unknown:
            raise JobValidationError(
                f"unknown job field(s): {', '.join(sorted(unknown))}"
            )
        workloads = record.get("workloads")
        modes = record.get("modes", ["baseline"])
        if isinstance(workloads, str):
            workloads = workloads.split(",")
        if isinstance(modes, str):
            modes = modes.split(",")
        if not workloads or not isinstance(workloads, list):
            raise JobValidationError("workloads must be a non-empty list")
        if not modes or not isinstance(modes, list):
            raise JobValidationError("modes must be a non-empty list")
        known = set(workload_names())
        for workload in workloads:
            if workload not in known and not str(workload).startswith("fuzz/"):
                raise JobValidationError(f"unknown workload {workload!r}")
        for mode in modes:
            if mode not in MODES:
                raise JobValidationError(f"unknown mode {mode!r}")
        if len(set(workloads)) != len(workloads):
            raise JobValidationError("duplicate workloads in one job")
        if len(set(modes)) != len(modes):
            raise JobValidationError("duplicate modes in one job")
        priority = int(record.get("priority", 0))
        if not MIN_PRIORITY <= priority <= MAX_PRIORITY:
            raise JobValidationError(
                f"priority must be in [{MIN_PRIORITY}, {MAX_PRIORITY}]"
            )
        fault_kind = str(record.get("fault_kind", "") or "")
        if fault_kind:
            from ..verify import FAULT_KINDS

            if fault_kind not in FAULT_KINDS:
                raise JobValidationError(
                    f"unknown fault kind {fault_kind!r}"
                )
        max_cycles = int(record.get("max_cycles", 30_000_000))
        if max_cycles < 1:
            raise JobValidationError("max_cycles must be >= 1")
        return cls(
            workloads=tuple(str(w) for w in workloads),
            modes=tuple(str(m) for m in modes),
            scale=str(record.get("scale", "tiny")),
            seed=int(record.get("seed", 0)),
            max_cycles=max_cycles,
            check_invariants=int(record.get("check_invariants", 0)),
            priority=priority,
            fault_kind=fault_kind,
            fault_seed=int(record.get("fault_seed", 0)),
        )

    def cell_specs(self) -> list[RunSpec]:
        """The workload × mode matrix as executor run specs."""
        return [
            RunSpec(
                workload=workload,
                mode=mode,
                scale=self.scale,
                max_cycles=self.max_cycles,
                seed=self.seed,
                check_invariants=self.check_invariants,
                fault_kind=self.fault_kind,
                fault_seed=self.fault_seed,
            )
            for workload in self.workloads
            for mode in self.modes
        ]


@dataclass
class Job:
    """Server-side job state (journal-backed; never trusted to memory)."""

    id: str
    spec: JobSpec
    token: str = ""
    state: str = QUEUED
    seq: int = 0                  # submission order (journal replay key)
    error: str | None = None
    checksum: str | None = None   # sha256 of the stored report bytes
    resumed: bool = False         # re-enqueued by journal replay
    cache_hits: int = 0
    simulated: int = 0
    journal_resumed_cells: int = 0
    # Runner-thread progress: (json_text, monotonic_stamp) tuples are
    # swapped in atomically; the event loop only ever reads them.
    progress: str | None = None
    last_beat: float = 0.0
    heartbeat_misses: int = 0
    done_cells: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> dict:
        """JSON-safe status payload for ``GET /jobs/<id>``."""
        cells = len(self.spec.workloads) * len(self.spec.modes)
        return {
            "id": self.id,
            "state": self.state,
            "priority": self.spec.priority,
            "job": self.spec.as_record(),
            "cells": {
                "total": cells,
                "done": self.done_cells,
                "cached": self.cache_hits,
                "simulated": self.simulated,
                "journal_resumed": self.journal_resumed_cells,
            },
            "resumed": self.resumed,
            "token": self.token,
            "error": self.error,
            "checksum": self.checksum,
            "heartbeat_misses": self.heartbeat_misses,
        }


class QueueFull(Exception):
    """The bounded job queue is at capacity (HTTP 429)."""


class PriorityJobQueue:
    """Bounded max-priority queue, FIFO within a priority level."""

    def __init__(self, depth: int = 16):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self.depth = depth
        self._heap: list[tuple[int, int, Job]] = []
        self._tick = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.depth

    def push(self, job: Job) -> None:
        if self.full:
            raise QueueFull(
                f"job queue is full ({self.depth} job(s) queued)"
            )
        heapq.heappush(
            self._heap, (-job.spec.priority, next(self._tick), job)
        )

    def pop(self) -> Job | None:
        """Highest-priority queued job, skipping cancelled entries."""
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state == QUEUED:
                return job
        return None

    def snapshot(self) -> list[Job]:
        """Queued jobs in dispatch order (for listings; non-destructive)."""
        return [
            job for _, _, job in sorted(self._heap) if job.state == QUEUED
        ]
