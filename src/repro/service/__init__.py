"""The campaign service: a fault-tolerant asyncio simulation server.

``repro serve`` exposes the PR 2 :class:`~repro.harness.executor.
CampaignExecutor` as a long-running HTTP/JSON service (stdlib only,
hand-rolled on ``asyncio.start_server``):

* :mod:`repro.service.jobs` — job model, validation, bounded priority
  queue (backpressure via HTTP 429 + ``Retry-After``);
* :mod:`repro.service.journal` — fsynced write-ahead journal; a submit
  is acknowledged only once durable, and restart replay re-enqueues
  every unfinished job;
* :mod:`repro.service.cache` — content-addressed result cache keyed by
  spec + config digest, checksummed on every read;
* :mod:`repro.service.server` — the asyncio server: dispatch, SSE
  progress streaming, heartbeats, graceful SIGTERM drain;
* :mod:`repro.service.client` — blocking :mod:`http.client` client for
  ``repro submit / status / fetch``;
* :mod:`repro.service.chaos` — the chaos harness: injected worker
  faults + SIGKILL/restart, classified by
  :func:`repro.verify.classify_chaos`.

See HACKING.md "Campaign service" for the API and durability contract.
"""

from .cache import ResultCache, cache_key
from .chaos import (
    CHAOS_KINDS,
    chaos_execute_spec,
    default_chaos_jobs,
    run_chaos_campaign,
    write_chaos_plan,
)
from .client import ServiceClient, ServiceError
from .jobs import (
    Job,
    JobSpec,
    JobValidationError,
    PriorityJobQueue,
    QueueFull,
)
from .journal import ServiceJournal, replay_journal
from .server import (
    ServiceConfig,
    SimulationService,
    build_job_report,
    run_service,
)

__all__ = [
    "CHAOS_KINDS",
    "Job",
    "JobSpec",
    "JobValidationError",
    "PriorityJobQueue",
    "QueueFull",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceJournal",
    "SimulationService",
    "build_job_report",
    "cache_key",
    "chaos_execute_spec",
    "default_chaos_jobs",
    "replay_journal",
    "run_chaos_campaign",
    "run_service",
    "write_chaos_plan",
]
