"""Chaos harness: hammer the campaign service and prove it holds.

Two orthogonal fault planes are exercised at once:

* **process faults** — the worker task (:func:`chaos_execute_spec`)
  deterministically kills, hangs, or crashes its own worker process on
  the *first* attempt of designated cells, exercising the executor's
  worker-replacement machinery (timeout + terminate + retry/backoff);
* **microarchitectural faults** — jobs carrying ``fault_kind`` route
  through the PR 5 :class:`~repro.verify.FaultPlan` inside the
  simulation itself, exercising failure attribution end to end.

On top of that, :func:`run_chaos_campaign` runs concurrent submitting
clients, ``SIGKILL``\\ s the server mid-campaign, restarts it on the
same state dir, and hands the evidence (journal, reports, metrics,
reference reports from a fault-free serial run) to the pure classifier
in :mod:`repro.verify.chaos`, which asserts: no job lost, none
duplicated, no report corrupted, and cached cells never re-simulated.

Process-fault firing is exactly-once per cell across retries *and*
server restarts: each cell claims a marker file with
``O_CREAT | O_EXCL`` (fsynced before the fault lands), so the retried
attempt finds the marker and runs clean — which is what makes the
final report provably identical to the fault-free reference.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from ..harness.executor import CampaignExecutor, execute_spec
from .client import ServiceClient
from .jobs import JobSpec
from .journal import replay_journal
from .server import build_job_report

#: Process-level fault kinds the chaos task can apply to a worker.
CHAOS_KINDS = ("worker_crash", "worker_hang", "worker_flaky")

#: Environment variable pointing workers at the chaos plan directory.
CHAOS_ENV = "REPRO_CHAOS_DIR"


def write_chaos_plan(
    chaos_dir: str | Path,
    seed: int = 0,
    kinds: tuple[str, ...] = CHAOS_KINDS,
    hang_seconds: float = 60.0,
) -> Path:
    """Lay out a chaos directory: ``plan.json`` + empty ``markers/``."""
    chaos_dir = Path(chaos_dir)
    (chaos_dir / "markers").mkdir(parents=True, exist_ok=True)
    unknown = set(kinds) - set(CHAOS_KINDS)
    if unknown:
        raise ValueError(f"unknown chaos kind(s): {sorted(unknown)}")
    (chaos_dir / "plan.json").write_text(
        json.dumps(
            {
                "seed": seed,
                "kinds": list(kinds),
                "hang_seconds": hang_seconds,
            }
        )
    )
    return chaos_dir


def _assigned_kind(plan: dict, cell_id: str) -> str:
    """Deterministic fault choice for a cell (stable across restarts)."""
    digest = hashlib.sha256(
        f"{plan.get('seed', 0)}:{cell_id}".encode()
    ).hexdigest()
    kinds = plan.get("kinds") or list(CHAOS_KINDS)
    return kinds[int(digest, 16) % len(kinds)]


def chaos_execute_spec(record: dict) -> dict:
    """Worker task: maybe fault this process once, then simulate.

    Module-level and picklable, so it works under the process pool.
    Reads the plan from ``$REPRO_CHAOS_DIR`` (inherited from the
    server); with no plan ambient it degrades to :func:`execute_spec`.
    """
    chaos_dir = os.environ.get(CHAOS_ENV, "")
    if chaos_dir:
        try:
            plan = json.loads(Path(chaos_dir, "plan.json").read_text())
        except (OSError, json.JSONDecodeError):
            plan = None
        if plan is not None:
            cell_id = hashlib.sha256(
                json.dumps(record, sort_keys=True).encode()
            ).hexdigest()[:24]
            marker = Path(chaos_dir, "markers", cell_id)
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                fd = -1  # already faulted this cell once; run clean
            if fd >= 0:
                kind = _assigned_kind(plan, cell_id)
                # Make the claim durable BEFORE the fault lands, so a
                # crash cannot double-fire on retry.
                os.write(fd, kind.encode())
                os.fsync(fd)
                os.close(fd)
                if kind == "worker_crash":
                    os._exit(23)
                elif kind == "worker_hang":
                    time.sleep(float(plan.get("hang_seconds", 60.0)))
                elif kind == "worker_flaky":
                    raise OSError("chaos: injected transient worker fault")
    return execute_spec(record)


# ======================================================================
# The campaign
# ======================================================================
def reference_reports(job_records: list[dict]) -> dict[str, bytes]:
    """Fault-free serial reports keyed by idempotency token, via the
    same builder the server uses — the byte-identity baseline."""
    reports: dict[str, bytes] = {}
    for index, record in enumerate(job_records, start=1):
        spec = JobSpec.from_record(record)
        executor = CampaignExecutor(jobs=0, retries=0)
        outcomes = {o.key: o for o in executor.run(spec.cell_specs())}
        token = str(record.get("token") or f"job-{index}")
        reports[token] = build_job_report(
            spec, [outcomes[s.key] for s in spec.cell_specs()]
        )
    return reports


def default_chaos_jobs(seed: int = 0) -> list[dict]:
    """A small but representative job mix: plain cells, a sim-fault
    cell, and a deliberate resubmit of job 1's cells (all cache hits)."""
    return [
        {
            "workloads": ["xz"], "modes": ["baseline", "tea"],
            "scale": "tiny", "seed": seed, "priority": 1,
            "token": "chaos-1",
        },
        {
            "workloads": ["mcf"], "modes": ["tea"],
            "scale": "tiny", "seed": seed, "priority": 5,
            "fault_kind": "mem_delay", "fault_seed": seed + 7,
            "token": "chaos-2",
        },
        # Byte-for-byte the same matrix as job 1: every cell must come
        # from the cache (asserted via digest-hit counters).  Submitted
        # only after its donor cells settled — *after* the restart, so
        # this also proves the cache survives a SIGKILL.
        {
            "workloads": ["xz"], "modes": ["baseline", "tea"],
            "scale": "tiny", "seed": seed, "priority": 0,
            "token": "chaos-3",
        },
    ]


def cache_probe_tokens(job_records: list[dict]) -> set[str]:
    """Tokens of jobs whose every cell appears in an *earlier* job —
    these must complete with zero simulated cells."""
    seen: set[tuple] = set()
    probes: set[str] = set()
    for index, record in enumerate(job_records, start=1):
        spec = JobSpec.from_record(record)
        cells = {
            tuple(sorted(s.as_record().items())) for s in spec.cell_specs()
        }
        token = str(record.get("token") or f"job-{index}")
        if cells and cells <= seen:
            probes.add(token)
        seen |= cells
    return probes


def _serve_argv(state_dir: Path, config: dict) -> list[str]:
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--state-dir", str(state_dir),
        "--port", "0",
        "--workers", str(config.get("workers", 1)),
        "--run-timeout", str(config.get("run_timeout", 10.0)),
        "--retries", str(config.get("retries", 3)),
        "--backoff", str(config.get("backoff", 0.1)),
    ]
    if config.get("chaos_dir"):
        argv += ["--chaos-dir", str(config["chaos_dir"])]
    return argv


def _start_server(state_dir: Path, config: dict) -> subprocess.Popen:
    (Path(state_dir) / "endpoint.json").unlink(missing_ok=True)
    # The child must import repro regardless of the caller's cwd.
    src = str(Path(__file__).resolve().parents[2])
    existing = os.environ.get("PYTHONPATH", "")
    env = {
        **os.environ,
        "PYTHONPATH": src + (os.pathsep + existing if existing else ""),
    }
    return subprocess.Popen(
        _serve_argv(state_dir, config),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


def run_chaos_campaign(
    state_dir: str | Path,
    job_records: list[dict] | None = None,
    seed: int = 0,
    kill_after_jobs: int = 1,
    run_timeout: float = 10.0,
    log=print,
) -> dict:
    """The full scenario; returns the classifier's report dict.

    1. Compute fault-free reference reports serially (no service).
    2. Start the server with the chaos worker task armed.
    3. Submit the main jobs from concurrent client threads
       (idempotency tokens on; one duplicate-token submit races
       deliberately).  Cache-probe jobs (cells ⊆ earlier jobs) are
       held back until their donors settle.
    4. After ``kill_after_jobs`` jobs are terminal, SIGKILL the server.
    5. Restart on the same state dir; wait out the main jobs; submit
       the cache probes (all hits — the cache survived the kill).
    6. SIGTERM-drain, then fetch journal + reports and classify.
    """
    from ..verify.chaos import classify_chaos

    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    records = (
        job_records if job_records is not None else default_chaos_jobs(seed)
    )
    tokens = [
        str(r.get("token") or f"job-{i}")
        for i, r in enumerate(records, start=1)
    ]
    if len(set(tokens)) != len(tokens):
        raise ValueError("chaos job records need distinct tokens")
    probes = cache_probe_tokens(records)
    main = [r for r, t in zip(records, tokens) if t not in probes]
    held = [r for r, t in zip(records, tokens) if t in probes]

    log(f"chaos: computing {len(records)} fault-free reference report(s)")
    reference = reference_reports(records)

    chaos_dir = write_chaos_plan(
        state_dir / "chaos", seed=seed, hang_seconds=run_timeout * 6
    )
    config = {
        "workers": 1,
        "run_timeout": run_timeout,
        "retries": 3,
        "backoff": 0.1,
        "chaos_dir": chaos_dir,
    }

    log("chaos: starting service (worker faults armed)")
    proc = _start_server(state_dir, config)
    submitted: list[dict] = []
    lock = threading.Lock()

    def submit(record: dict) -> None:
        client = ServiceClient.from_endpoint(state_dir, wait=30.0)
        response = client.submit(record, deadline=120.0)
        with lock:
            submitted.append({"token": record.get("token"), **response})

    threads = [
        threading.Thread(target=submit, args=(record,)) for record in main
    ]
    # A deliberate duplicate-token race: must dedupe server-side.
    threads.append(threading.Thread(target=submit, args=(dict(main[0]),)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    client = ServiceClient.from_endpoint(state_dir, wait=30.0)
    main_ids = sorted({entry["id"] for entry in submitted})
    log(f"chaos: {len(submitted)} submit(s) → {len(main_ids)} distinct job(s)")

    deadline = time.monotonic() + 600.0
    while time.monotonic() < deadline:
        try:
            done = [
                j for j in client.jobs()
                if j["state"] in ("done", "failed", "cancelled")
            ]
        except (ConnectionError, OSError):
            done = []
        if len(done) >= min(kill_after_jobs, len(main_ids)):
            break
        time.sleep(0.2)

    log(f"chaos: SIGKILL server (pid {proc.pid}) mid-campaign")
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()

    log("chaos: restarting on the same state dir")
    proc = _start_server(state_dir, config)
    client = ServiceClient.from_endpoint(state_dir, wait=30.0)
    try:
        for job_id in main_ids:
            client.wait(job_id, timeout=600.0)
        for record in held:
            submit(record)
        job_ids = sorted({entry["id"] for entry in submitted})
        for job_id in job_ids:
            client.wait(job_id, timeout=600.0)
        reports = {
            job_id: client.result_bytes(job_id) for job_id in job_ids
        }
        metrics = client.metrics()
        statuses = {job_id: client.status(job_id) for job_id in job_ids}
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - drain hung
            proc.kill()
            proc.wait()

    replay = replay_journal(state_dir / "service.journal.jsonl")
    evidence = {
        "submitted": submitted,
        "job_ids": job_ids,
        "tokens": {e["id"]: e["token"] for e in submitted},
        "cache_probes": sorted(probes),
        "statuses": statuses,
        "reports": {k: v.decode() for k, v in reports.items()},
        "reference": {k: v.decode() for k, v in reference.items()},
        "metrics": metrics,
        "duplicate_terminals": dict(replay.duplicate_terminals),
        "drain_exit_code": proc.returncode,
    }
    report = classify_chaos(evidence)
    log(
        "chaos: "
        + ("PASS" if report["ok"] else "FAIL")
        + f" — {json.dumps(report['summary'])}"
    )
    return report
