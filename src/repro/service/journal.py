"""Write-ahead job journal: the service's single source of truth.

Every job state transition is appended to ``service.journal.jsonl`` as
one JSON object per line, flushed **and fsynced before the transition
is acknowledged** to any client — a submit is only 201'd after its
``submit`` record is durable, so a ``kill -9`` can lose at most work
the client was never told succeeded.

Record taxonomy (``op`` field)::

    submit   {op, seq, id, token, job}        job accepted into the queue
    done     {op, id, status, checksum}       job reached done/failed
    cancel   {op, id}                         queued job cancelled

Replay (:func:`replay_journal`) folds the log into the job table: jobs
with a ``submit`` but no terminal record are *unfinished* and must be
re-enqueued on restart — their per-job cell journals (the PR 2
checkpoint machinery) carry whichever cells already settled, so resume
recomputes only the cells that were genuinely in flight.

The reader reuses the torn-record-tolerant resynchronizing parser from
:func:`repro.harness.executor.read_journal_lines`, so a record torn by
a crash mid-append never takes healthy neighbours down with it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..harness.executor import read_journal_lines
from .jobs import DONE, FAILED, Job, JobSpec

#: Journal operations.
OP_SUBMIT = "submit"
OP_DONE = "done"
OP_CANCEL = "cancel"


class ServiceJournal:
    """Append-only fsynced JSONL writer for job lifecycle records."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        with open(self.path, "a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- convenience wrappers ------------------------------------------
    def submit(self, job: Job) -> None:
        self.append(
            {
                "op": OP_SUBMIT,
                "seq": job.seq,
                "id": job.id,
                "token": job.token,
                "job": job.spec.as_record(),
            }
        )

    def done(self, job: Job) -> None:
        self.append(
            {
                "op": OP_DONE,
                "id": job.id,
                "status": job.state,
                "checksum": job.checksum,
                "error": job.error,
            }
        )

    def cancel(self, job: Job) -> None:
        self.append({"op": OP_CANCEL, "id": job.id})


@dataclass
class JournalReplay:
    """The folded state of a service journal."""

    jobs: dict[str, Job] = field(default_factory=dict)
    #: Unfinished job ids in original submission order (to re-enqueue).
    unfinished: list[str] = field(default_factory=list)
    #: Duplicate terminal records per id (exactly-once violations if >0;
    #: the chaos classifier asserts this stays empty).
    duplicate_terminals: dict[str, int] = field(default_factory=dict)
    next_seq: int = 1
    recovered: int = 0
    skipped: int = 0


def replay_journal(path: str | Path) -> JournalReplay:
    """Fold a service journal back into the job table."""
    path = Path(path)
    replay = JournalReplay()
    if not path.exists():
        return replay
    records, counters = read_journal_lines(path.read_text())
    replay.recovered = counters["recovered"]
    replay.skipped = counters["skipped"]
    for _, record in records:
        op = record.get("op")
        if op == OP_SUBMIT:
            try:
                spec = JobSpec.from_record(record.get("job") or {})
            except Exception:
                replay.skipped += 1
                continue
            job_id = str(record.get("id", ""))
            if not job_id or job_id in replay.jobs:
                replay.skipped += 1
                continue
            seq = int(record.get("seq", 0))
            replay.jobs[job_id] = Job(
                id=job_id,
                spec=spec,
                token=str(record.get("token", "") or ""),
                seq=seq,
                resumed=True,
            )
            replay.next_seq = max(replay.next_seq, seq + 1)
        elif op == OP_DONE:
            job = replay.jobs.get(str(record.get("id", "")))
            if job is None:
                replay.skipped += 1
                continue
            if job.terminal:
                replay.duplicate_terminals[job.id] = (
                    replay.duplicate_terminals.get(job.id, 0) + 1
                )
                continue
            status = record.get("status")
            job.state = DONE if status == DONE else FAILED
            job.checksum = record.get("checksum")
            job.error = record.get("error")
        elif op == OP_CANCEL:
            job = replay.jobs.get(str(record.get("id", "")))
            if job is None or job.terminal:
                replay.skipped += 1
                continue
            job.state = "cancelled"
        else:
            replay.skipped += 1
    replay.unfinished = [
        job.id
        for job in sorted(replay.jobs.values(), key=lambda j: j.seq)
        if not job.terminal
    ]
    return replay
