"""The campaign service: a long-running asyncio simulation server.

``repro serve`` turns the PR 2 :class:`CampaignExecutor` into a
fault-tolerant HTTP/JSON service: clients submit campaign *jobs*
(workload × mode matrices), the service queues them by priority,
executes them over the process pool, caches cell results by content
hash, and survives both worker failures (timeout + retry + backoff,
inherited from the executor) and its *own* death (write-ahead journal
+ restart replay).  Everything is hand-rolled on
``asyncio.start_server`` — no third-party HTTP stack.

API (JSON request/response unless noted)::

    GET  /healthz                liveness + drain state
    GET  /metrics                service counters, cache, queue, jobs
    POST /jobs                   submit a job (JobSpec record; optional
                                 idempotency "token"); 201 on accept,
                                 200 on token-duplicate, 400 invalid,
                                 429 + Retry-After queue full,
                                 503 + Retry-After draining
    GET  /jobs                   all jobs (summaries)
    GET  /jobs/<id>              one job summary
    GET  /jobs/<id>/result       the stored report bytes (verbatim;
                                 checksum-verified); 409 non-terminal
    GET  /jobs/<id>/events       SSE progress stream until terminal
    POST /jobs/<id>/cancel       cancel a *queued* job; 409 otherwise

Durability contract
-------------------
A submit is acknowledged only after its journal record is fsynced, so
an acknowledged job is never lost: ``kill -9`` the server mid-campaign,
restart it on the same ``--state-dir``, and replay re-enqueues every
unfinished job.  Cells that settled before the crash are skipped via
the per-job cell journal (PR 2 checkpoint/resume) and the result cache,
and because reports are built deterministically (wall-clock facts
excluded), the resumed report is **byte-identical** to an uninterrupted
run — ``tests/test_service_recovery.py`` asserts exactly this.

Graceful drain
--------------
SIGTERM (or SIGINT) stops admission (503s), lets the in-flight job
checkpoint through the executor's ``stop`` hook, and exits 0 within
``drain_deadline`` seconds.  Unfinished work resumes on restart.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..harness.executor import CampaignExecutor, RunOutcome
from ..obs import Observation, TelemetryAggregator
from .cache import ResultCache
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobSpec,
    JobValidationError,
    PriorityJobQueue,
    QUEUED,
    QueueFull,
    RUNNING,
    TERMINAL_STATES,
)
from .journal import ServiceJournal, replay_journal

#: How long clients should wait before retrying a backpressured submit.
RETRY_AFTER_SECONDS = 2

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Tunables for one service instance (all CLI-exposed)."""

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0                    # 0 = ephemeral (written to endpoint.json)
    workers: int = 1                 # executor process-pool width per job
    queue_depth: int = 16
    run_timeout: float | None = 120.0   # per-cell wall-clock limit
    retries: int = 3
    backoff: float = 0.25
    jitter: float = 0.1
    drain_deadline: float = 30.0
    heartbeat_timeout: float = 15.0  # running job silent this long → miss
    chaos_dir: Path | None = None    # enables the chaos worker task

    def __post_init__(self):
        self.state_dir = Path(self.state_dir)


def build_job_report(spec: JobSpec, outcomes: list[RunOutcome]) -> bytes:
    """Serialize a job's final report **deterministically**.

    The report is a pure function of the job spec and each cell's
    simulation result: wall-clock facts (attempts, durations, retry
    messages, tracebacks) are excluded, so a report assembled from any
    mix of fresh runs, cache hits, and journal-resumed cells after a
    crash is byte-identical to the fault-free serial run.  The chaos
    classifier (:mod:`repro.verify.chaos`) byte-compares on this.
    """
    cells = []
    for outcome in outcomes:
        cell = {
            "spec": outcome.spec.as_record(),
            "status": outcome.status,
            "stats": outcome.stats,
            "validated": outcome.validated,
            "halted": outcome.halted,
        }
        if outcome.failure is not None:
            diagnostics = outcome.failure.diagnostics or {}
            cell["failure"] = {
                "kind": outcome.failure.kind,
                "exception": outcome.failure.exception,
                "fault_attributed": bool(diagnostics.get("fault_context")),
            }
        cells.append(cell)
    report = {
        "job": spec.as_record(),
        "cells": cells,
        "summary": {
            "total": len(cells),
            "ok": sum(1 for c in cells if c["status"] == "ok"),
            "failed": sum(1 for c in cells if c["status"] != "ok"),
        },
    }
    return (json.dumps(report, sort_keys=True, indent=2) + "\n").encode()


class SimulationService:
    """One service instance bound to a durable ``state_dir``."""

    def __init__(self, config: ServiceConfig, task=None):
        self.config = config
        self.state_dir = config.state_dir
        self.state_dir.mkdir(parents=True, exist_ok=True)
        (self.state_dir / "jobs").mkdir(exist_ok=True)
        (self.state_dir / "results").mkdir(exist_ok=True)
        self.journal = ServiceJournal(self.state_dir / "service.journal.jsonl")
        self.cache = ResultCache(self.state_dir / "cache")
        self.obs = Observation(record_events=False)
        self.queue = PriorityJobQueue(depth=config.queue_depth)
        self.jobs: dict[str, Job] = {}
        self.tokens: dict[str, str] = {}
        self.draining = False
        self.journal_damage = {"recovered": 0, "skipped": 0}
        self._task = task
        self._next_seq = 1
        self._active_job: Job | None = None
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._replay()

    # -- lifecycle ------------------------------------------------------
    def _emit(self, type_: str, **data) -> None:
        self.obs.bus.emit(type_, **data)
        self.obs.metrics.counter(f"service.{type_}").inc()

    def _replay(self) -> None:
        """Rebuild the job table from the write-ahead journal."""
        replay = replay_journal(self.journal.path)
        self.jobs = replay.jobs
        self._next_seq = replay.next_seq
        self.journal_damage = {
            "recovered": replay.recovered,
            "skipped": replay.skipped,
        }
        for job in self.jobs.values():
            if job.token:
                self.tokens[job.token] = job.id
        for job_id in replay.unfinished:
            job = self.jobs[job_id]
            job.state = QUEUED
            self.queue.push(job)
            self._emit("job_resumed", job_id=job.id, priority=job.spec.priority)

    async def serve(self) -> int:
        """Run until drained; returns the process exit code (0)."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self._drain())
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-POSIX loop, or the server runs on a non-main
                # thread (tests): drain via request_drain() instead.
                pass
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        port = server.sockets[0].getsockname()[1]
        endpoint = self.state_dir / "endpoint.json"
        endpoint.write_text(
            json.dumps(
                {"host": self.config.host, "port": port, "pid": os.getpid()}
            )
        )
        dispatcher = asyncio.create_task(self._dispatch_loop())
        heartbeat = asyncio.create_task(self._heartbeat_loop())
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in (dispatcher, heartbeat):
                task.cancel()
            await asyncio.gather(dispatcher, heartbeat, return_exceptions=True)
            endpoint.unlink(missing_ok=True)
        return 0

    def request_drain(self) -> None:
        """Thread-safe drain trigger (what SIGTERM does, callable from
        any thread — tests and embedding harnesses)."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self._drain())
            )
        except RuntimeError:
            pass  # loop already closed: the server is down, i.e. drained

    async def _drain(self) -> None:
        """SIGTERM path: stop admission, checkpoint in-flight, exit."""
        if self.draining:
            return
        self.draining = True
        self._emit("service_drain", active=self._active_job is not None)
        deadline = time.monotonic() + self.config.drain_deadline
        # The executor's ``stop`` hook sees ``self.draining`` and halts
        # between cells; we wait for the in-flight job to checkpoint.
        while self._active_job is not None and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        assert self._stop_event is not None
        self._stop_event.set()

    # -- dispatch -------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while not self.draining:
            job = self.queue.pop()
            if job is None:
                await asyncio.sleep(0.05)
                continue
            self._active_job = job
            job.state = RUNNING
            job.last_beat = time.monotonic()
            self._emit("job_started", job_id=job.id, resumed=job.resumed)
            try:
                status, checksum, error = await asyncio.to_thread(
                    self._execute_job, job
                )
            except Exception as exc:  # noqa: BLE001 - job fails, server lives
                status, checksum, error = FAILED, None, (
                    f"{type(exc).__name__}: {exc}"
                )
            if status == "drained":
                # No terminal record: the journal still shows the job
                # unfinished, so restart replay re-enqueues it.
                job.state = QUEUED
            else:
                job.state = status
                job.checksum = checksum
                job.error = error
                self.journal.done(job)
                self._emit("job_finished", job_id=job.id, status=status)
            self._active_job = None

    def _execute_job(self, job: Job):
        """Runner-thread body: cache → executor → deterministic report.

        Returns ``(state, checksum, error)``; ``("drained", None, None)``
        when the drain hook cut the campaign short.
        """
        specs = job.spec.cell_specs()
        settled: dict[str, RunOutcome] = {}
        missing = []
        for spec in specs:
            cached = self.cache.get(spec)
            if cached is not None:
                settled[spec.key] = cached
                job.cache_hits += 1
                self._emit("cell_cached", workload=spec.workload, mode=spec.mode)
            else:
                missing.append(spec)
        job.done_cells = len(settled)
        if missing:
            aggregator = TelemetryAggregator(
                jobs=max(1, self.config.workers),
                on_update=lambda agg, j=job: self._beat(j, agg),
            )
            executor = CampaignExecutor(
                jobs=self.config.workers,
                timeout=self.config.run_timeout,
                retries=self.config.retries,
                backoff=self.config.backoff,
                jitter=self.config.jitter,
                jitter_seed=job.seq,
                retry_timeouts=True,
                task=self._task,
                observation=self.obs,
                telemetry=aggregator,
                stop=lambda: self.draining,
            )
            outcomes = executor.run(
                missing,
                checkpoint=self.state_dir / "jobs" / f"{job.id}.cells.jsonl",
                resume=True,
            )
            for outcome in outcomes:
                settled[outcome.key] = outcome
                job.done_cells = len(settled)
                if outcome.resumed:
                    job.journal_resumed_cells += 1
                else:
                    job.simulated += 1
                    self._emit(
                        "cell_simulated",
                        workload=outcome.spec.workload,
                        mode=outcome.spec.mode,
                        status=outcome.status,
                    )
                self.cache.put(outcome)
        if any(spec.key not in settled for spec in specs):
            # Only a drain legitimately leaves cells unsettled.
            return "drained", None, None
        report = build_job_report(
            job.spec, [settled[spec.key] for spec in specs]
        )
        result_path = self.state_dir / "results" / f"{job.id}.json"
        tmp = result_path.with_suffix(".tmp")
        tmp.write_bytes(report)
        os.replace(tmp, result_path)
        checksum = hashlib.sha256(report).hexdigest()
        failed = sorted(
            spec.key for spec in specs if settled[spec.key].status != "ok"
        )
        if failed:
            return FAILED, checksum, f"failed cells: {', '.join(failed)}"
        return DONE, checksum, None

    def _beat(self, job: Job, aggregator: TelemetryAggregator) -> None:
        """Telemetry callback (runner thread): progress + heartbeat."""
        job.last_beat = time.monotonic()
        cells = aggregator.rollup()["cells"]
        job.progress = json.dumps(cells, sort_keys=True)

    async def _heartbeat_loop(self) -> None:
        interval = max(0.2, self.config.heartbeat_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            job = self._active_job
            if job is None or job.state != RUNNING:
                continue
            silent = time.monotonic() - job.last_beat
            if silent > self.config.heartbeat_timeout:
                job.heartbeat_misses += 1
                job.last_beat = time.monotonic()  # one miss per window
                self._emit(
                    "heartbeat_missed",
                    job_id=job.id,
                    silent_seconds=round(silent, 1),
                )

    # -- HTTP -----------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader):
        line = await asyncio.wait_for(reader.readline(), timeout=10.0)
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        body = b""
        if content_length:
            body = await asyncio.wait_for(
                reader.readexactly(content_length), timeout=30.0
            )
        return method, path, body

    def _respond(
        self, writer, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._respond_raw(
            writer, status, body, "application/json", headers
        )

    def _respond_raw(
        self, writer, status, body, content_type, headers=None
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)

    async def _route(self, method, path, body, writer) -> None:
        parts = [p for p in path.split("?")[0].split("/") if p]
        if path.split("?")[0] == "/healthz" and method == "GET":
            self._respond(
                writer, 200, {"ok": True, "draining": self.draining}
            )
        elif parts == ["metrics"] and method == "GET":
            self._respond(writer, 200, self.metrics_payload())
        elif parts == ["jobs"] and method == "POST":
            self._submit(body, writer)
        elif parts == ["jobs"] and method == "GET":
            self._respond(
                writer,
                200,
                {
                    "jobs": [
                        job.summary()
                        for job in sorted(
                            self.jobs.values(), key=lambda j: j.seq
                        )
                    ]
                },
            )
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            job = self.jobs.get(parts[1])
            if job is None:
                self._respond(writer, 404, {"error": "no such job"})
            else:
                self._respond(writer, 200, job.summary())
        elif (
            len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result"
            and method == "GET"
        ):
            self._result(parts[1], writer)
        elif (
            len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events"
            and method == "GET"
        ):
            await self._stream_events(parts[1], writer)
        elif (
            len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel"
            and method == "POST"
        ):
            self._cancel(parts[1], writer)
        else:
            self._respond(writer, 404, {"error": f"no route {method} {path}"})
        await writer.drain()

    def metrics_payload(self) -> dict:
        states = [job.state for job in self.jobs.values()]
        return {
            "draining": self.draining,
            "jobs": {
                state: states.count(state)
                for state in (QUEUED, RUNNING, *sorted(TERMINAL_STATES))
            },
            "queue": {"depth": len(self.queue), "capacity": self.queue.depth},
            "cache": self.cache.counters(),
            "journal": dict(self.journal_damage),
            "counters": self.obs.metrics.snapshot().get("counters", {}),
        }

    def _submit(self, body: bytes, writer) -> None:
        retry = {"Retry-After": str(RETRY_AFTER_SECONDS)}
        if self.draining:
            self._emit("job_rejected", reason="draining")
            self._respond(
                writer, 503, {"error": "service is draining"}, retry
            )
            return
        try:
            record = json.loads(body.decode() or "{}")
            spec = JobSpec.from_record(record)
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._respond(writer, 400, {"error": "body is not valid JSON"})
            return
        except JobValidationError as exc:
            self._respond(writer, 400, {"error": str(exc)})
            return
        token = str(record.get("token", "") or "")
        if token and token in self.tokens:
            # Idempotent resubmit: same token → same job, no new work.
            job = self.jobs[self.tokens[token]]
            self._respond(
                writer, 200,
                {"id": job.id, "state": job.state, "duplicate": True},
            )
            return
        if self.queue.full:
            self._emit("job_rejected", reason="queue_full")
            self._respond(
                writer, 429,
                {"error": f"queue full ({self.queue.depth} jobs)"}, retry,
            )
            return
        job = Job(
            id=f"j{self._next_seq:06d}", spec=spec, token=token,
            seq=self._next_seq,
        )
        self._next_seq += 1
        # Durability before acknowledgement: fsync the submit record,
        # THEN admit + 201.  A crash between the two re-runs the job —
        # never loses an acked one.
        self.journal.submit(job)
        self.jobs[job.id] = job
        if token:
            self.tokens[token] = job.id
        self.queue.push(job)
        self._emit(
            "job_submitted", job_id=job.id, priority=spec.priority,
            cells=len(spec.workloads) * len(spec.modes),
        )
        self._respond(writer, 201, {"id": job.id, "state": job.state})

    def _result(self, job_id: str, writer) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._respond(writer, 404, {"error": "no such job"})
            return
        if job.state == CANCELLED or job.checksum is None:
            self._respond(
                writer, 409,
                {"error": f"job is {job.state}; no result available"},
            )
            return
        path = self.state_dir / "results" / f"{job_id}.json"
        try:
            report = path.read_bytes()
        except OSError:
            self._respond(writer, 500, {"error": "result file missing"})
            return
        if hashlib.sha256(report).hexdigest() != job.checksum:
            self._respond(
                writer, 500, {"error": "result checksum mismatch"}
            )
            return
        self._respond_raw(
            writer, 200, report, "application/json",
            {"X-Repro-Checksum": job.checksum},
        )

    def _cancel(self, job_id: str, writer) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            self._respond(writer, 404, {"error": "no such job"})
            return
        if job.state != QUEUED:
            self._respond(
                writer, 409, {"error": f"cannot cancel a {job.state} job"}
            )
            return
        job.state = CANCELLED
        self.journal.cancel(job)
        self._emit("job_cancelled", job_id=job.id)
        self._respond(writer, 200, {"id": job.id, "state": job.state})

    async def _stream_events(self, job_id: str, writer) -> None:
        """SSE: push progress snapshots until the job goes terminal."""
        job = self.jobs.get(job_id)
        if job is None:
            self._respond(writer, 404, {"error": "no such job"})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        last = None
        while True:
            payload = job.summary()
            if job.progress:
                payload["telemetry"] = json.loads(job.progress)
            text = json.dumps(payload, sort_keys=True)
            if text != last:
                writer.write(f"event: progress\ndata: {text}\n\n".encode())
                await writer.drain()
                last = text
            if job.terminal:
                writer.write(
                    f"event: done\ndata: {text}\n\n".encode()
                )
                await writer.drain()
                return
            await asyncio.sleep(0.1)


def run_service(config: ServiceConfig, task=None) -> int:
    """Blocking entry point for ``repro serve``."""
    service = SimulationService(config, task=task)
    return asyncio.run(service.serve())
