"""Content-addressed result cache for campaign cells.

The simulator is deterministic: a cell's outcome is a pure function of
its :class:`~repro.harness.executor.RunSpec` *and* of the machine
configuration the mode expands to.  The cache key therefore hashes the
canonical spec record together with the PR 2 config digest — two jobs
asking for the same ``(workload, mode, scale, seed, ...)`` cell under
the same config share one simulation, and a config change (different
digest) transparently invalidates every cached cell of that mode.

Integrity: each entry stores a sha256 checksum of its canonical
payload, verified on every read.  A corrupt entry (bit rot, torn
write) is counted, *deleted*, and treated as a miss — the cell simply
re-simulates; the cache can never serve bad data silently.  Writes go
through a temp file + :func:`os.replace` so a crash mid-put leaves
either the old entry or none, never a torn one.

Only ``status == "ok"`` outcomes are cached: failures may be transient
(and retried runs are exactly the point of the service), so they are
recomputed on each job.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..harness.executor import RunOutcome, RunSpec


def cache_key(spec: RunSpec) -> str:
    """Stable content hash of one cell: spec record + config digest."""
    payload = json.dumps(
        {"spec": spec.as_record(), "config": spec.config_digest()},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _checksum(record: dict) -> str:
    return hashlib.sha256(
        json.dumps(record, sort_keys=True).encode()
    ).hexdigest()


class ResultCache:
    """Directory of checksummed cell outcomes keyed by content hash."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.integrity_failures = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, spec: RunSpec) -> RunOutcome | None:
        """Cached outcome for this cell, or ``None`` (counted as miss).

        The returned outcome carries ``resumed=True`` (it was not
        simulated by this run) and ``attempts``/``duration`` zeroed —
        wall-clock facts of the original run are deliberately not
        replayed, keeping cached and fresh reports byte-identical.
        """
        path = self._path(cache_key(spec))
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            if path.exists():
                self.integrity_failures += 1
                path.unlink(missing_ok=True)
            self.misses += 1
            return None
        payload = entry.get("payload")
        if (
            not isinstance(payload, dict)
            or entry.get("checksum") != _checksum(payload)
        ):
            self.integrity_failures += 1
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        try:
            outcome = RunOutcome.from_record(payload)
        except (KeyError, TypeError):
            self.integrity_failures += 1
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def put(self, outcome: RunOutcome) -> bool:
        """Store an ``ok`` outcome; atomic, idempotent. Returns whether
        the outcome was cacheable."""
        if not outcome.ok:
            return False
        payload = outcome.as_record()
        # Normalize run-local wall-clock facts out of the stored record
        # so cache hits reproduce the deterministic report exactly.
        payload["attempts"] = 1
        payload["duration"] = 0.0
        entry = {
            "key": cache_key(outcome.spec),
            "checksum": _checksum(payload),
            "payload": payload,
        }
        path = self._path(entry["key"])
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(entry, fh, sort_keys=True, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return True

    def counters(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "integrity_failures": self.integrity_failures,
            "entries": sum(1 for _ in self.root.glob("*.json")),
        }
