"""Thin blocking client for the campaign service (``repro submit`` &c).

Built on :mod:`http.client` — one fresh connection per request, so the
client survives server restarts transparently: a submit that lands
during a restart retries on connection errors until ``deadline``
expires, and 429/503 backpressure responses honor ``Retry-After``.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path

from .server import RETRY_AFTER_SECONDS


class ServiceError(RuntimeError):
    """A request failed terminally (4xx other than backpressure)."""

    def __init__(self, status: int, payload: dict):
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")


class ServiceClient:
    """Address one service instance by host/port."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_endpoint(
        cls, state_dir: str | Path, wait: float = 10.0
    ) -> "ServiceClient":
        """Connect via the ``endpoint.json`` a server writes on bind,
        polling up to ``wait`` seconds for it to appear."""
        path = Path(state_dir) / "endpoint.json"
        deadline = time.monotonic() + wait
        while True:
            try:
                endpoint = json.loads(path.read_text())
                return cls(endpoint["host"], endpoint["port"])
            except (OSError, json.JSONDecodeError, KeyError):
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        f"no service endpoint at {path} after {wait}s"
                    ) from None
                time.sleep(0.05)

    # -- transport ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict, bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            retry_after = response.getheader("Retry-After")
        finally:
            conn.close()
        try:
            decoded = json.loads(raw.decode() or "{}")
        except json.JSONDecodeError:
            decoded = {}
        if isinstance(decoded, dict) and retry_after is not None:
            decoded.setdefault("retry_after", retry_after)
        return response.status, decoded, raw

    # -- API ------------------------------------------------------------
    def health(self) -> dict:
        status, payload, _ = self._request("GET", "/healthz")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def metrics(self) -> dict:
        status, payload, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def submit(self, record: dict, deadline: float = 60.0) -> dict:
        """Submit a job record, riding out backpressure and restarts.

        429/503 → sleep ``Retry-After`` and retry; connection errors
        (server restarting) → short sleep and retry; gives up after
        ``deadline`` seconds.  Pass a ``"token"`` key for idempotency —
        a retry that lands twice dedupes server-side.
        """
        until = time.monotonic() + deadline
        while True:
            try:
                status, payload, _ = self._request("POST", "/jobs", record)
            except (ConnectionError, OSError, http.client.HTTPException):
                if time.monotonic() >= until:
                    raise
                time.sleep(0.2)
                continue
            if status in (200, 201):
                return payload
            if status in (429, 503):
                if time.monotonic() >= until:
                    raise ServiceError(status, payload)
                time.sleep(
                    float(payload.get("retry_after", RETRY_AFTER_SECONDS))
                )
                continue
            raise ServiceError(status, payload)

    def jobs(self) -> list[dict]:
        status, payload, _ = self._request("GET", "/jobs")
        if status != 200:
            raise ServiceError(status, payload)
        return payload["jobs"]

    def status(self, job_id: str) -> dict:
        status, payload, _ = self._request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def cancel(self, job_id: str) -> dict:
        status, payload, _ = self._request("POST", f"/jobs/{job_id}/cancel")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def result_bytes(self, job_id: str) -> bytes:
        """The stored report, byte-for-byte as the server wrote it."""
        status, payload, raw = self._request("GET", f"/jobs/{job_id}/result")
        if status != 200:
            raise ServiceError(status, payload)
        return raw

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.2
    ) -> dict:
        """Poll until the job is terminal; returns the final summary.

        Tolerates the server restarting mid-wait (connection errors are
        retried until ``timeout``).
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                summary = self.status(job_id)
            except (ConnectionError, OSError, http.client.HTTPException):
                summary = None
            if summary is not None and summary["state"] in (
                "done", "failed", "cancelled"
            ):
                return summary
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout}s"
                )
            time.sleep(poll)

    def events(self, job_id: str, limit: int = 1000):
        """Iterate SSE progress payloads until the ``done`` event.

        Yields ``(event, payload_dict)`` pairs; the stream ends when
        the server closes the connection after the job goes terminal.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceError(
                    response.status,
                    json.loads(response.read().decode() or "{}"),
                )
            event = "message"
            for _ in range(limit):
                line = response.fp.readline()
                if not line:
                    return
                text = line.decode().strip()
                if text.startswith("event:"):
                    event = text.partition(":")[2].strip()
                elif text.startswith("data:"):
                    payload = json.loads(text.partition(":")[2].strip())
                    yield event, payload
                    if event == "done":
                        return
        finally:
            conn.close()
