"""Dependence-chain capture for Branch Runahead.

A rolling post-retire buffer records retired uops.  When an H2P branch
retires, a backward dataflow walk runs from that instance back to the
*previous* dynamic instance of the same branch (the defining
restriction of Branch Runahead: chains are confined to one loop
iteration's worth of instructions).  The resulting static uop sequence
is stored per branch PC together with a path signature; captures that
keep producing the same signature mark the chain *stable* and enable
it, while repeated signature changes (complex control flow) disable
the branch entirely — reproducing BR's coverage collapse outside
simple loops.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from ..isa import Instruction, REG_ZERO
from ..memory.memory_image import align_word
from .config import RunaheadConfig


@dataclass(frozen=True)
class RetiredUop:
    """Minimal retired-uop record for the capture buffer."""

    instr: Instruction
    mem_addr: int | None


@dataclass
class ChainEntry:
    """Per-branch-PC chain state in the Dependence Chain Table.

    Captures are bucketed by *path signature* (the chain's static PC
    sequence).  The majority signature provides the executable chain; a
    minority path — e.g. the outer-loop boundary inside a nested loop —
    only dilutes confidence, it never destroys the majority chain.
    Branches without a dominant signature (complex control flow) never
    enable, which is Branch Runahead's structural weakness (paper
    Fig. 8).
    """

    branch_pc: int
    sig_counts: dict = field(default_factory=dict)    # signature -> count
    sig_chains: dict = field(default_factory=dict)    # signature -> chain
    disabled: bool = False
    override_correct: int = 0
    override_wrong: int = 0
    accuracy_strikes: int = 0
    head_ok: int = 0
    head_bad: int = 0

    MAX_SIGNATURES = 4

    @property
    def total_captures(self) -> int:
        return sum(self.sig_counts.values())

    def majority(self) -> tuple[tuple[int, ...], int]:
        """(signature, count) of the most frequent capture path."""
        if not self.sig_counts:
            return ((), 0)
        sig = max(self.sig_counts, key=self.sig_counts.get)
        return sig, self.sig_counts[sig]

    @property
    def chain(self) -> tuple[Instruction, ...]:
        sig, count = self.majority()
        return self.sig_chains.get(sig, ())

    @property
    def stable_count(self) -> int:
        return self.majority()[1]

    @property
    def unstable_count(self) -> int:
        sig, count = self.majority()
        return self.total_captures - count

    def observe(self, signature: tuple[int, ...], chain) -> None:
        counts = self.sig_counts
        if signature not in counts and len(counts) >= self.MAX_SIGNATURES:
            victim = min(counts, key=counts.get)
            del counts[victim]
            self.sig_chains.pop(victim, None)
        counts[signature] = counts.get(signature, 0) + 1
        self.sig_chains[signature] = chain
        # Decay keeps the majority adaptive across phase changes.
        if self.total_captures >= 128:
            for sig in list(counts):
                counts[sig] >>= 1
                if counts[sig] == 0:
                    del counts[sig]
                    self.sig_chains.pop(sig, None)

    def record_override(self, correct: bool, config: RunaheadConfig) -> None:
        """Accuracy gating: BR actively removes poorly-performing chains.

        A bad accuracy window resets the chain (it must re-stabilize
        before overriding again); repeated strikes disable the branch
        for good.
        """
        if correct:
            self.override_correct += 1
        else:
            self.override_wrong += 1
        total = self.override_correct + self.override_wrong
        if total >= config.accuracy_window:
            accuracy = self.override_correct / total
            if accuracy < config.accuracy_min:
                self.accuracy_strikes += 1
                # Force re-stabilization before overriding again.
                self.sig_counts.clear()
                self.sig_chains.clear()
                if self.accuracy_strikes >= config.max_accuracy_strikes:
                    self.disabled = True
            self.override_correct = 0
            self.override_wrong = 0

    def record_head_check(self, correct: bool, config: RunaheadConfig) -> None:
        """Gate on the engine's retire-time outcome validation.

        A chain whose precomputed head keeps diverging from ground
        truth (its context races architectural updates — heaps, graph
        property arrays) causes restart storms; disable it.
        """
        if correct:
            self.head_ok += 1
        else:
            self.head_bad += 1
        total = self.head_ok + self.head_bad
        if total >= config.accuracy_window:
            if self.head_ok / total < config.head_accuracy_min:
                self.accuracy_strikes += 1
                self.sig_counts.clear()
                self.sig_chains.clear()
                if self.accuracy_strikes >= config.max_accuracy_strikes:
                    self.disabled = True
            self.head_ok = 0
            self.head_bad = 0


class ChainCaptureBuffer:
    """Rolling buffer of retired uops (BR's post-retire buffer)."""

    def __init__(self, config: RunaheadConfig | None = None):
        self.config = config or RunaheadConfig()
        self.entries: deque[RetiredUop] = deque(maxlen=self.config.retire_buffer_size)

    def record(self, instr: Instruction, mem_addr: int | None) -> None:
        self.entries.append(RetiredUop(instr, mem_addr))

    def capture_chain(self, branch_pc: int) -> tuple[Instruction, ...] | None:
        """Walk back from the newest instance of ``branch_pc``.

        Returns the dependence chain (program order, branch last)
        bounded by the previous instance of the same branch, or
        ``None`` if no previous instance is in the buffer.
        """
        cfg = self.config
        items = list(self.entries)
        if not items or items[-1].instr.pc != branch_pc:
            return None
        # Find the previous instance.
        prev_index = None
        for i in range(len(items) - 2, -1, -1):
            if items[i].instr.pc == branch_pc:
                prev_index = i
                break
        if prev_index is None:
            return None
        window = items[prev_index + 1 : len(items)]
        marked = self._walk(window)
        chain = tuple(r.instr for r, m in zip(window, marked) if m)
        if not chain or len(chain) > cfg.max_chain_uops:
            return None
        return chain

    def _walk(self, window: list[RetiredUop]) -> list[bool]:
        cfg = self.config
        marked = [False] * len(window)
        reg_sources = 0
        mem_sources: OrderedDict[int, bool] = OrderedDict()

        def mem_add(addr: int) -> None:
            word = align_word(addr)
            if word in mem_sources:
                mem_sources.move_to_end(word)
                return
            if len(mem_sources) >= cfg.mem_source_entries:
                mem_sources.popitem(last=False)
            mem_sources[word] = True

        for i in range(len(window) - 1, -1, -1):
            record = window[i]
            instr = record.instr
            dst = instr.dst if instr.dst not in (None, REG_ZERO) else None
            is_seed = i == len(window) - 1  # the H2P branch itself
            writes_reg = dst is not None and (reg_sources >> dst) & 1
            writes_mem = (
                instr.is_store
                and cfg.trace_memory
                and record.mem_addr is not None
                and align_word(record.mem_addr) in mem_sources
            )
            if not (is_seed or writes_reg or writes_mem):
                continue
            marked[i] = True
            if dst is not None:
                reg_sources &= ~(1 << dst)
            if writes_mem:
                mem_sources.pop(align_word(record.mem_addr), None)
            for reg in instr.srcs:
                if reg != REG_ZERO:
                    reg_sources |= 1 << reg
            if instr.is_load and cfg.trace_memory and record.mem_addr is not None:
                mem_add(record.mem_addr)
        return marked


class DependenceChainTable:
    """branch PC -> chain entry, with stability gating."""

    def __init__(self, config: RunaheadConfig | None = None):
        self.config = config or RunaheadConfig()
        self.entries: dict[int, ChainEntry] = {}
        self.captures = 0
        self.unstable_events = 0

    def get(self, branch_pc: int) -> ChainEntry | None:
        return self.entries.get(branch_pc)

    def is_enabled(self, branch_pc: int) -> bool:
        """Confident, majority-stable, not accuracy-disabled.

        The dominance requirement is the key control-flow gate: a
        branch whose capture path keeps alternating (complex control
        flow) never satisfies it — exactly Branch Runahead's weakness
        the paper exploits in Fig. 8.
        """
        entry = self.entries.get(branch_pc)
        if entry is None or entry.disabled:
            return False
        sig, count = entry.majority()
        if count < self.config.stable_threshold:
            return False
        return count * 2 > entry.total_captures and bool(entry.sig_chains.get(sig))

    def observe_capture(
        self, branch_pc: int, chain: tuple[Instruction, ...]
    ) -> ChainEntry:
        """Record a freshly captured chain under its path signature."""
        self.captures += 1
        entry = self.entries.setdefault(branch_pc, ChainEntry(branch_pc))
        if entry.disabled:
            return entry
        signature = tuple(instr.pc for instr in chain)
        majority_before, _ = entry.majority()
        entry.observe(signature, chain)
        if majority_before and signature != majority_before:
            self.unstable_events += 1
        return entry
