"""Branch Runahead controller: glue between pipeline and chain engine.

Hooks mirror the TEA controller's, but the mechanism is fetch-time
*override* rather than early flush: precomputed directions pop out of
per-branch outcome queues inside the decoupled predictor.  Wrong
overrides surface as ordinary mispredictions, train chain accuracy
gating, and — as in the real design — any pipeline flush clears the
queues and restarts chain execution from retired state at the next
trigger.
"""

from __future__ import annotations

from ..core.dynamic_uop import DynUop
from ..isa import UopClass
from ..tea.config import TeaConfig
from ..tea.h2p_table import H2PTable
from .chains import ChainCaptureBuffer, DependenceChainTable
from .config import RunaheadConfig
from .engine import ChainEngine


class RunaheadController:
    """Implements Branch Runahead on top of a pipeline instance."""

    def __init__(self, pipeline, config: RunaheadConfig | None = None):
        self.p = pipeline
        self.config = config or RunaheadConfig()
        cfg = self.config
        self.h2p = H2PTable(
            TeaConfig(
                h2p_entries=cfg.h2p_entries,
                h2p_ways=cfg.h2p_ways,
                h2p_counter_max=cfg.h2p_counter_max,
                h2p_threshold=cfg.h2p_threshold,
                h2p_decrement_period=cfg.h2p_decrement_period,
            )
        )
        self.capture = ChainCaptureBuffer(cfg)
        self.chains = DependenceChainTable(cfg)
        self.engine = ChainEngine(cfg, pipeline.hierarchy, pipeline.memory)
        self._retire_count = 0
        # In-flight (predicted, not yet retired) instance count per
        # branch PC — the self-realigning index into outcome queues:
        # wrong-path consumption vanishes when the IFBQ squashes.
        self._inflight: dict[int, int] = {}
        pipeline.frontend.direction_override = self._override

    # ------------------------------------------------------------------
    def _override(self, pc: int) -> bool | None:
        """Fetch-time direction override consulted by the predictor.

        Outcome queues are indexed by position relative to retirement
        (entry 0 predicts the next instance to retire); the instance
        being fetched is ``inflight`` positions past that.
        """
        if not self.chains.is_enabled(pc):
            return None
        outcome = self.engine.outcome_at(pc, self._inflight.get(pc, 0))
        if outcome is None:
            return None
        self.p.stats.runahead_overrides += 1
        return outcome

    def on_branch_predicted(self, info) -> None:
        if info.uop_class is UopClass.BR_COND:
            self._inflight[info.pc] = self._inflight.get(info.pc, 0) + 1

    def on_branches_squashed(self, entries) -> None:
        for entry in entries:
            info = entry.branch
            if info.uop_class is UopClass.BR_COND:
                count = self._inflight.get(info.pc, 0)
                if count > 0:
                    self._inflight[info.pc] = count - 1

    # ------------------------------------------------------------------
    def tick(self) -> None:
        self.engine.tick(self.p.cycle)

    def on_retire(self, uop: DynUop) -> None:
        cfg = self.config
        self._retire_count += 1
        if self._retire_count % cfg.h2p_decrement_period == 0:
            self.h2p.periodic_decrement()
        instr = uop.instr
        if instr.uop_class in (UopClass.NOP, UopClass.HALT):
            return
        self.capture.record(instr, uop.mem_addr)
        if not instr.is_branch or uop.branch is None:
            return
        if not uop.branch.can_mispredict:
            return
        if uop.mispredicted:
            self.h2p.record_mispredict(instr.pc)
        if uop.branch.override_used:
            entry = self.chains.get(instr.pc)
            if entry is not None:
                correct = not uop.mispredicted
                if not correct:
                    self.p.stats.runahead_wrong_overrides += 1
                entry.record_override(correct, cfg)
                if entry.disabled:
                    self.engine.drop_branch(instr.pc)
        # Only conditional branches are precomputed (BR forwards
        # directions, not targets — paper §II-C).
        if instr.uop_class is not UopClass.BR_COND:
            return
        pc = instr.pc
        count = self._inflight.get(pc, 0)
        if count > 0:
            self._inflight[pc] = count - 1
        # Validate the engine's head outcome against ground truth:
        # a mismatch means the engine's context diverged — restart the
        # run immediately from the (now correct) retired register state
        # so the queue refills before the frontend needs it again.
        head = self.engine.pop_retired(pc)
        if head is not None:
            entry = self.chains.get(pc)
            if entry is not None:
                entry.record_head_check(head == uop.br_taken, cfg)
                if entry.disabled:
                    self.engine.drop_branch(pc)
            if head != uop.br_taken:
                self.engine.drop_branch(pc)
                if self.chains.is_enabled(pc):
                    entry = self.chains.get(pc)
                    self.engine.start_run(pc, entry.chain, self.p.committed_regs)
        if not self.h2p.is_h2p(pc):
            return
        chain = self.capture.capture_chain(pc)
        if chain is not None:
            self.chains.observe_capture(pc, chain)
            self.p.stats.runahead_chain_uops += len(chain)
        if self.chains.is_enabled(pc):
            entry = self.chains.get(pc)
            self.engine.start_run(pc, entry.chain, self.p.committed_regs)

    def on_flush(self, seq: int) -> None:
        """Chain runs are control-independent of main-thread flushes.

        Branch Runahead's merge-point independence means the engine
        keeps executing across mispredictions; alignment is restored
        through the in-flight counts (``on_branches_squashed``) and
        retire-time outcome validation.
        """
