"""Branch Runahead: the prior state-of-the-art comparison baseline."""

from .chains import ChainCaptureBuffer, ChainEntry, DependenceChainTable, RetiredUop
from .config import RunaheadConfig
from .controller import RunaheadController
from .engine import ChainEngine, ChainRun

__all__ = [
    "ChainCaptureBuffer",
    "ChainEntry",
    "DependenceChainTable",
    "RetiredUop",
    "RunaheadConfig",
    "RunaheadController",
    "ChainEngine",
    "ChainRun",
]
