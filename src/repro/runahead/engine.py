"""The dedicated dependence-chain execution engine of Branch Runahead.

The real BR engine executes dependence chains as *dataflow*: successive
iterations of a chain overlap, limited only by the loop-carried part of
the chain (for an induction-driven branch, a 1-cycle ``addi``; for
pointer chasing, a load).  We model this with a per-run *initiation
interval* — the summed latency of the instructions feeding the
loop-carried registers — and a per-iteration *completion latency* — the
serial latency of the whole chain including measured cache latencies.
Each launch functionally executes one chain iteration (contexts evolve
sequentially, which is exact), and its branch outcome matures into the
per-branch outcome queue after the completion latency.

Loads go through the shared hierarchy, so chains prefetch and contend
for MSHRs exactly as the paper's dedicated engine does.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..isa import (
    Instruction,
    UopClass,
    branch_taken,
    compute_result,
    effective_address,
)
from ..isa.registers import REG_ZERO
from ..memory.memory_image import align_word
from .config import RunaheadConfig

_LOAD_ASSUMED_LATENCY = 4


def loop_carried_interval(chain: tuple[Instruction, ...]) -> int:
    """Initiation interval: latency of the loop-carried dataflow.

    Loop-carried registers are chain live-ins that the chain itself
    redefines (induction variables, chased pointers).  A backward walk
    from those definitions sums the contributing latencies.
    """
    written = {i.dst for i in chain if i.dst is not None}
    live_in: set[int] = set()
    defined: set[int] = set()
    for instr in chain:
        for reg in instr.srcs:
            if reg not in defined and reg != REG_ZERO:
                live_in.add(reg)
        if instr.dst is not None:
            defined.add(instr.dst)
    carried = live_in & written
    if not carried:
        return 1
    sources = set(carried)
    latency = 0
    for instr in reversed(chain):
        if instr.dst is not None and instr.dst in sources:
            sources.discard(instr.dst)
            sources.update(r for r in instr.srcs if r != REG_ZERO)
            latency += _LOAD_ASSUMED_LATENCY if instr.is_load else instr.latency
    return max(1, latency)


@dataclass
class ChainRun:
    """One branch's pipelined chain execution state."""

    branch_pc: int
    chain: tuple[Instruction, ...]
    regs: list
    interval: int
    next_launch_cycle: int = 0
    last_delivery_cycle: int = 0
    iterations: int = 0
    scratch: dict = field(default_factory=dict)   # chain-local store data
    pending: deque = field(default_factory=deque)  # (deliver_cycle, outcome)


class ChainEngine:
    """Dedicated execution engine + per-branch outcome queues."""

    def __init__(self, config: RunaheadConfig, hierarchy, memory):
        self.config = config
        self.hierarchy = hierarchy
        self.memory = memory
        self.runs: dict[int, ChainRun] = {}
        self.outcomes: dict[int, deque[bool]] = {}
        self.uops_executed = 0
        self.iterations_completed = 0
        self._rotate = 0  # fair launch order across runs

    # ------------------------------------------------------------------
    def start_run(
        self, branch_pc: int, chain: tuple[Instruction, ...], committed_regs
    ) -> None:
        """(Re)start iterative execution for a branch from retired state."""
        if branch_pc in self.runs:
            return  # already running ahead for this branch
        if len(self.runs) >= self.config.parallel_runs:
            return
        self.runs[branch_pc] = ChainRun(
            branch_pc=branch_pc,
            chain=chain,
            regs=list(committed_regs),
            interval=loop_carried_interval(chain),
        )
        self.outcomes.setdefault(branch_pc, deque())

    def outcome_at(self, branch_pc: int, index: int) -> bool | None:
        """Predicted direction for the instance ``index`` positions
        past the last retired instance (0 = next to retire)."""
        queue = self.outcomes.get(branch_pc)
        if queue is not None and index < len(queue):
            return queue[index]
        return None

    def pop_retired(self, branch_pc: int) -> bool | None:
        """Consume the head outcome as one instance retires."""
        queue = self.outcomes.get(branch_pc)
        if queue:
            return queue.popleft()
        return None

    def queue_depth(self, branch_pc: int) -> int:
        queue = self.outcomes.get(branch_pc)
        return len(queue) if queue else 0

    def clear(self) -> None:
        self.runs.clear()
        self.outcomes.clear()

    def drop_branch(self, branch_pc: int) -> None:
        self.runs.pop(branch_pc, None)
        self.outcomes.pop(branch_pc, None)

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Deliver matured outcomes and launch new chain iterations.

        The launch order rotates across runs each cycle so a long
        chain sharing the engine with short ones still gets launch
        slots; a launch may overdraw the remaining width once (chains
        longer than the engine width still execute, just not every
        cycle).
        """
        budget = self.config.engine_width
        load_budget = self.config.engine_loads_per_cycle
        runs = list(self.runs.values())
        if not runs:
            return
        self._rotate = (self._rotate + 1) % len(runs)
        ordered = runs[self._rotate:] + runs[: self._rotate]
        for run in ordered:
            queue = self.outcomes.setdefault(run.branch_pc, deque())
            while run.pending and run.pending[0][0] <= cycle:
                queue.append(run.pending.popleft()[1])
            if budget <= 0:
                continue
            loads_in_chain = sum(1 for i in run.chain if i.is_load)
            if loads_in_chain > load_budget:
                if load_budget <= 0:
                    continue
                # Long chains still launch, just not every cycle.
            if cycle < run.next_launch_cycle:
                continue
            if len(queue) + len(run.pending) >= self.config.outcome_queue_capacity:
                continue
            outcome, latency = self._execute_iteration(run, cycle)
            deliver = max(cycle + latency, run.last_delivery_cycle + 1)
            run.last_delivery_cycle = deliver
            run.pending.append((deliver, outcome))
            run.next_launch_cycle = cycle + run.interval
            run.iterations += 1
            self.iterations_completed += 1
            budget -= len(run.chain)
            load_budget -= loads_in_chain

    def _execute_iteration(self, run: ChainRun, cycle: int) -> tuple[bool, int]:
        """Functionally execute one chain iteration; returns
        (branch outcome, serial completion latency)."""
        regs = run.regs
        latency = 0
        outcome = False
        for instr in run.chain:
            values = tuple(regs[r] for r in instr.srcs)
            cls = instr.uop_class
            self.uops_executed += 1
            if cls is UopClass.LOAD:
                addr = effective_address(instr, values)
                ready = self.hierarchy.access_load_bypass_l1(addr, cycle)
                latency += max(1, ready - cycle)
                word = align_word(addr)
                value = run.scratch.get(word)
                if value is None:
                    value = self.memory.load(addr)
                if instr.dst is not None:
                    regs[instr.dst] = value
            elif cls is UopClass.STORE:
                addr = effective_address(instr, values)
                run.scratch[align_word(addr)] = values[0]
                latency += 1
            elif instr.is_branch:
                if cls is UopClass.BR_COND and instr.pc == run.branch_pc:
                    outcome = branch_taken(instr, values)
                result = compute_result(instr, values)
                if instr.dst is not None and result is not None:
                    regs[instr.dst] = result
                latency += 1
            else:
                result = compute_result(instr, values)
                if instr.dst is not None and result is not None:
                    regs[instr.dst] = result
                latency += instr.latency
            if regs[REG_ZERO] != 0:
                regs[REG_ZERO] = 0
        return outcome, latency
