"""Branch Runahead configuration (comparison baseline, paper §V-C).

Branch Runahead (Pruett & Patt, MICRO 2021) captures the dependence
chain between two consecutive dynamic instances of an H2P branch,
executes it iteratively on a *dedicated* chain engine, and forwards
precomputed directions through per-branch outcome queues that override
the branch predictor at fetch time.  Its strengths and weaknesses in
our model match the paper's characterization: chains confined to
stable loop bodies are timely and accurate; unstable chains (complex
control flow) are disabled, costing coverage.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunaheadConfig:
    """Chain capture + dedicated chain engine parameters."""

    # H2P identification (same scheme as the TEA thread).
    h2p_entries: int = 256
    h2p_ways: int = 8
    h2p_counter_max: int = 7
    h2p_threshold: int = 1
    h2p_decrement_period: int = 50_000
    # Post-retire capture buffer and chain limits.
    retire_buffer_size: int = 256
    max_chain_uops: int = 64
    trace_memory: bool = True
    mem_source_entries: int = 16
    # Chain stability / accuracy gating.
    stable_threshold: int = 2       # identical captures before enabling
    accuracy_window: int = 32
    accuracy_min: float = 0.85
    head_accuracy_min: float = 0.75
    max_accuracy_strikes: int = 4
    # Dedicated chain engine.
    engine_width: int = 8           # uops started per cycle, all runs
    engine_loads_per_cycle: int = 2  # cache-port budget for the engine
    parallel_runs: int = 8          # concurrently executing chain runs
    outcome_queue_capacity: int = 64
