"""Fast functional execution engine for sampled simulation.

The golden interpreter (:mod:`repro.isa.interpreter`) dispatches on the
instruction object every step.  For sampled simulation we fast-forward
through millions of instructions, so this engine *pre-compiles* every
static instruction into a Python closure over the register list, the
memory image's backing dict, and the instruction's constants.  The main
loop is then just ``idx = code[idx]()`` — each closure performs its
architectural effect and returns the index of the next instruction.
Measured ≥50× the detailed kernel's instruction rate (the acceptance
bar; ``repro bench`` records the honest numbers).

Architectural semantics are *identical* to the golden interpreter —
``tests/test_sampling_functional.py`` asserts register/memory/count
equality, and error/timeout behavior matches (:class:`InterpreterError`
with the same message when control leaves the image,
:class:`InterpreterTimeout` on budget exhaustion).

In-stride the engine also maintains lightweight **predictor-warmup
state** for checkpointing (:mod:`repro.sampling.checkpoint`):

* the 512-bit global direction history and 32-bit path history, updated
  exactly as the decoupled frontend updates them for *correct-path*
  branches (conditional outcome bits; a ``1`` plus path bits per taken
  control transfer),
* a BTB warmup map ``pc -> last taken target`` in insertion order,
* a return-address-stack image (bounded at the frontend's RAS depth),
* per-branch misprediction proxy counts — conditional branches run a
  2-bit bimodal counter, returns check the RAS image, indirect jumps a
  last-target cell — which seed the TEA H2P table so chain training
  starts promptly inside a detailed window,
* a bounded **branch trace** of the most recent control-flow events
  (:data:`TRACE_DEPTH`).  Checkpoint restore replays the trace through
  the detailed frontend's *real* predict/train path, so the TAGE-SC-L
  and ITTAGE tables start a window warm — the single biggest accuracy
  lever (cold tagged tables inflate window MPKI far more than sampling
  noise does).

The warmup state is deliberately an approximation (a real frontend
also follows wrong paths and recovers); the detailed window's own
warmup phase absorbs the residual error, and the sampled-vs-full
validation harness (:mod:`repro.sampling.validate`) measures what
remains.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..frontend.history import MAX_HISTORY_BITS, PATH_HISTORY_BITS
from ..isa.instructions import Instruction, UopClass
from ..isa.interpreter import InterpreterError, InterpreterTimeout
from ..isa.program import Program
from ..isa.registers import NUM_ARCH_REGS, REG_ZERO
from ..isa.semantics import (
    BRANCH_EVALUATORS,
    SCALAR_EVALUATORS,
    to_signed64,
)
from ..memory.memory_image import MemoryImage

_GHR_MASK = (1 << MAX_HISTORY_BITS) - 1
_PATH_MASK = (1 << PATH_HISTORY_BITS) - 1
_WORD_ALIGN = ~7
_LINE_ALIGN = ~63

#: RAS image depth — matches FrontendConfig.ras_depth's default.
RAS_DEPTH = 32

#: Branch-trace depth.  Every traced event pushes at least one global
#: history bit, so 4096 events always covers the full 512-bit history
#: window and gives the tagged predictor tables several visits per hot
#: branch during replay.
TRACE_DEPTH = 4096

#: Instructions executed per inner dispatch batch.  Large enough that
#: per-batch bookkeeping amortizes to nothing, small enough that
#: ``advance()`` overshoot never happens (the loop is sliced to the
#: exact remaining count anyway).
_BATCH = 1 << 16


class _Halt(Exception):
    """Internal control-flow signal: the halt closure fired."""


class WarmupState:
    """Predictor-warmup state tracked in-stride by the engine.

    ``cond_cells``/``ind_cells`` map branch PC to a mutable two-slot
    list — ``[bimodal_counter, misses]`` for conditionals and
    ``[last_target, misses]`` for returns/indirect jumps.  The shared
    one-element cells (``ghr_cell``/``path_cell``) exist so compiled
    closures can mutate them without attribute lookups.

    ``trace`` holds the last :data:`TRACE_DEPTH` control-flow events as
    tuples — ``("c", pc, taken, target)`` for conditionals and
    ``(kind, pc, target)`` with kind ``"j"`` (direct jump/call),
    ``"r"`` (return), or ``"i"`` (jr/callr) for taken transfers — in
    program order, oldest first.

    ``dlines`` maps touched 64-byte data-line addresses to ``None`` in
    recency order (oldest first): every load/store re-inserts its line
    at the end, so iterating the keys replays the LRU order into the
    detailed window's L1D/LLC tag arrays at restore.
    """

    __slots__ = ("ghr_cell", "path_cell", "btb", "ras",
                 "cond_cells", "ind_cells", "trace", "dlines")

    def __init__(self) -> None:
        self.ghr_cell = [0]
        self.path_cell = [0]
        self.btb: dict[int, int] = {}
        self.ras: list[int] = []
        self.cond_cells: dict[int, list] = {}
        self.ind_cells: dict[int, list] = {}
        self.trace: deque = deque(maxlen=TRACE_DEPTH)
        self.dlines: dict[int, None] = {}

    @property
    def ghr(self) -> int:
        return self.ghr_cell[0]

    @property
    def path(self) -> int:
        return self.path_cell[0]

    def mispredict_counts(self) -> dict[int, int]:
        """Per-branch-PC proxy misprediction counts (H2P seeding)."""
        counts: dict[int, int] = {}
        for pc, cell in self.cond_cells.items():
            if cell[1]:
                counts[pc] = counts.get(pc, 0) + cell[1]
        for pc, cell in self.ind_cells.items():
            if cell[1]:
                counts[pc] = counts.get(pc, 0) + cell[1]
        return counts

    def clone(self) -> "WarmupState":
        """Deep copy (container insertion orders preserved — the BTB
        and data-line maps carry LRU order in their key order)."""
        out = WarmupState()
        out.ghr_cell[0] = self.ghr_cell[0]
        out.path_cell[0] = self.path_cell[0]
        out.btb = dict(self.btb)
        out.ras = list(self.ras)
        out.cond_cells = {pc: list(c) for pc, c in self.cond_cells.items()}
        out.ind_cells = {pc: list(c) for pc, c in self.ind_cells.items()}
        out.trace = deque(self.trace, maxlen=TRACE_DEPTH)
        out.dlines = dict(self.dlines)
        return out


class EngineSnapshot:
    """In-memory resume point of a paused :class:`FunctionalEngine`.

    Holds *copies* of everything the engine mutates, so a snapshot
    stays valid while the engine runs on.  Restoring is exact: a
    restore followed by ``advance(n)`` reproduces bit-identical state
    to having paused at ``position + n`` in the first place (the
    one-pass checkpoint capture in :mod:`repro.sampling.checkpoint`
    leans on this to rewind instead of re-running from the start).
    """

    __slots__ = ("position", "pc", "halted", "regs", "words", "warmup")

    def __init__(
        self,
        position: int,
        pc: int,
        halted: bool,
        regs: list,
        words: dict,
        warmup: WarmupState | None,
    ) -> None:
        self.position = position
        self.pc = pc
        self.halted = halted
        self.regs = regs
        self.words = words
        self.warmup = warmup


class FunctionalEngine:
    """Closure-compiled functional executor bound to one program+memory.

    The engine owns its register file and mutates ``memory`` in place
    (pass a fresh :class:`MemoryImage`).  ``advance(n)`` executes
    exactly ``n`` instructions (fewer only on halt), so callers can
    stop precisely at sample points.
    """

    def __init__(
        self,
        program: Program,
        memory: MemoryImage | None = None,
        track_warmup: bool = True,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else MemoryImage()
        self.regs: list = [0] * NUM_ARCH_REGS
        self.warmup = WarmupState() if track_warmup else None
        self.instructions_executed = 0
        self.halted = False
        # Cell recording an off-image target resolved at runtime; the
        # shared trailing sentinel (index -1) raises with its value.
        self._bad_pc = [0]
        self._pcs: list[int] = []
        self._idx_of_pc: dict[int, int] = {}
        self._code: list = []
        self._compile()
        self._idx = self._idx_of_pc[program.entry_pc]

    # ------------------------------------------------------------------
    @property
    def pc(self) -> int:
        """The PC of the next instruction to execute."""
        return self._pcs[self._idx]

    def advance(self, count: int) -> int:
        """Execute up to ``count`` instructions; returns the number run.

        Stops early only on HALT (the halt instruction itself counts as
        executed, matching the golden interpreter).  Raises
        :class:`InterpreterError` if control leaves the image.
        """
        if self.halted or count <= 0:
            return 0
        code = self._code
        idx = self._idx
        executed = 0
        while executed < count:
            batch = count - executed
            if batch > _BATCH:
                batch = _BATCH
            it = iter(range(batch))
            try:
                for _ in it:
                    idx = code[idx]()
            except _Halt:
                # The halt step itself counts (interpreter parity).
                executed += batch - it.__length_hint__()
                self.halted = True
                self._idx = idx
                self.instructions_executed += executed
                return executed
            except InterpreterError:
                # The faulting fetch is not an executed instruction
                # (the sentinel closure consumed one iteration).
                self.instructions_executed += (
                    executed + batch - it.__length_hint__() - 1
                )
                raise
            executed += batch
        self._idx = idx
        self.instructions_executed += executed
        return executed

    def snapshot(self) -> EngineSnapshot:
        """Copy the engine's complete mutable state at this position."""
        return EngineSnapshot(
            position=self.instructions_executed,
            pc=self._pcs[self._idx],
            halted=self.halted,
            regs=list(self.regs),
            words=dict(self.memory._words),
            warmup=None if self.warmup is None else self.warmup.clone(),
        )

    def restore(self, snap: EngineSnapshot) -> None:
        """Rewind (or jump forward) to a snapshot, in place.

        The compiled closures capture the register list, the memory
        dict, and the per-branch warmup cells *by object*, so restore
        mutates those containers rather than rebinding them — no
        recompilation, and the snapshot object stays reusable.
        """
        self.regs[:] = snap.regs
        words = self.memory._words
        words.clear()
        words.update(snap.words)
        self.instructions_executed = snap.position
        self.halted = snap.halted
        self._idx = self._idx_of_pc[snap.pc]
        warm = self.warmup
        if warm is not None and snap.warmup is not None:
            src = snap.warmup
            warm.ghr_cell[0] = src.ghr_cell[0]
            warm.path_cell[0] = src.path_cell[0]
            warm.btb.clear()
            warm.btb.update(src.btb)
            warm.ras[:] = src.ras
            # Every static branch has its cell from compile time; the
            # closures hold the cell lists, so update them in place.
            for pc, cell in warm.cond_cells.items():
                s = src.cond_cells.get(pc)
                cell[0], cell[1] = (s[0], s[1]) if s else (0, 0)
            for pc, cell in warm.ind_cells.items():
                s = src.ind_cells.get(pc)
                cell[0], cell[1] = (s[0], s[1]) if s else (None, 0)
            warm.trace.clear()
            warm.trace.extend(src.trace)
            warm.dlines.clear()
            warm.dlines.update(src.dlines)

    def run_to_halt(self, max_steps: int = 5_000_000) -> int:
        """Run until HALT; returns total instructions executed.

        Raises :class:`InterpreterTimeout` (with the next PC and the
        budget) when ``max_steps`` is exhausted first — the same
        contract as :func:`repro.isa.interpreter.run_program`.
        """
        remaining = max_steps - self.instructions_executed
        if remaining > 0:
            self.advance(remaining)
        if not self.halted:
            raise InterpreterTimeout(self.pc, max_steps)
        return self.instructions_executed

    # ==================================================================
    # Compilation
    # ==================================================================
    def _error_closure(self, pc: int) -> Callable[[], int]:
        def off_image() -> int:
            raise InterpreterError(
                f"control flow left the image at {pc:#x}"
            )

        return off_image

    def _compile(self) -> None:
        """Compile every static instruction into a dispatch closure."""
        instrs = sorted(
            self.program.instructions, key=lambda instr: instr.pc
        )
        self._pcs = [instr.pc for instr in instrs]
        idx_of = {instr.pc: i for i, instr in enumerate(instrs)}
        self._idx_of_pc = idx_of
        code: list = [None] * len(instrs)
        self._code = code

        # Error closures for *statically known* off-image successors sit
        # after the instruction closures; their (positive) index is the
        # compiled successor.  The final sentinel handles *runtime*
        # off-image targets via Python's -1 indexing, reading the PC
        # from the shared bad-pc cell.
        error_of: dict[int, int] = {}

        def error_index(pc: int) -> int:
            index = error_of.get(pc)
            if index is None:
                index = len(code)
                code.append(self._error_closure(pc))
                error_of[pc] = index
            return index

        def resolve(pc: int) -> int:
            index = idx_of.get(pc)
            return index if index is not None else error_index(pc)

        for i, instr in enumerate(instrs):
            code[i] = self._compile_one(instr, resolve)

        bad = self._bad_pc

        def runtime_off_image() -> int:
            raise InterpreterError(
                f"control flow left the image at {bad[0]:#x}"
            )

        code.append(runtime_off_image)

    def _compile_one(
        self, instr: Instruction, resolve: Callable[[int], int]
    ) -> Callable[[], int]:
        """Build the closure for one instruction.

        Everything the closure needs is captured as a local: the
        register list, the memory dict, source/destination indices,
        immediates, the pre-resolved successor index, and (for
        branches) the warmup cells.  The hot path therefore performs no
        attribute or global lookups at all.
        """
        regs = self.regs
        words = self.memory._words
        ts64 = to_signed64
        op = instr.opcode
        cls = instr.uop_class
        srcs = instr.srcs
        dst = instr.dst if instr.dst != REG_ZERO else None
        imm = instr.imm
        fall_pc = instr.fallthrough_pc

        if cls is UopClass.HALT:
            def halt() -> int:
                raise _Halt

            return halt

        if cls is UopClass.BR_COND:
            return self._compile_cond(instr, resolve)
        if cls is UopClass.BR_JUMP:
            return self._compile_jump(instr, resolve)
        if cls is UopClass.BR_CALL:
            return self._compile_call(instr, resolve)
        if cls in (UopClass.BR_RET, UopClass.BR_IND):
            return self._compile_indirect(instr)

        nxt = resolve(fall_pc)

        if cls is UopClass.NOP:
            def nop() -> int:
                return nxt

            return nop

        warm = self.warmup
        if cls is UopClass.LOAD:
            a = srcs[0]
            if warm is None:
                if dst is None:
                    def load_zero() -> int:
                        return nxt

                    return load_zero

                def load() -> int:
                    regs[dst] = words.get(
                        ts64(regs[a] + imm) & _WORD_ALIGN, 0
                    )
                    return nxt

                return load
            dlines = warm.dlines
            if dst is None:
                def load_zero_warm() -> int:
                    line = ts64(regs[a] + imm) & _LINE_ALIGN
                    if line in dlines:
                        del dlines[line]
                    dlines[line] = None
                    return nxt

                return load_zero_warm

            def load_warm() -> int:
                addr = ts64(regs[a] + imm) & _WORD_ALIGN
                regs[dst] = words.get(addr, 0)
                line = addr & _LINE_ALIGN
                if line in dlines:
                    del dlines[line]
                dlines[line] = None
                return nxt

            return load_warm

        if cls is UopClass.STORE:
            v, b = srcs
            if warm is None:
                def store() -> int:
                    words[ts64(regs[b] + imm) & _WORD_ALIGN] = regs[v]
                    return nxt

                return store
            dlines = warm.dlines

            def store_warm() -> int:
                addr = ts64(regs[b] + imm) & _WORD_ALIGN
                words[addr] = regs[v]
                line = addr & _LINE_ALIGN
                if line in dlines:
                    del dlines[line]
                dlines[line] = None
                return nxt

            return store_warm

        # Scalar ALU/MUL/DIV/FP — pre-bound semantics handler.
        fn = SCALAR_EVALUATORS[op]
        if dst is None:
            if not srcs:
                def scalar_zero0() -> int:
                    return nxt

                return scalar_zero0

            def scalar_zero() -> int:
                fn(tuple([regs[r] for r in srcs]), imm)
                return nxt

            return scalar_zero
        if len(srcs) == 2:
            a, b = srcs

            def scalar2() -> int:
                regs[dst] = fn((regs[a], regs[b]), imm)
                return nxt

            return scalar2
        if len(srcs) == 1:
            a = srcs[0]

            def scalar1() -> int:
                regs[dst] = fn((regs[a],), imm)
                return nxt

            return scalar1

        def scalar0() -> int:
            regs[dst] = fn((), imm)
            return nxt

        return scalar0

    # -- branch compilation --------------------------------------------
    def _compile_cond(
        self, instr: Instruction, resolve: Callable[[int], int]
    ) -> Callable[[], int]:
        regs = self.regs
        a, b = instr.srcs
        cmp = BRANCH_EVALUATORS[instr.opcode]
        taken_idx = resolve(instr.target)
        fall_idx = resolve(instr.fallthrough_pc)
        warm = self.warmup
        if warm is None:
            def cond_plain() -> int:
                return taken_idx if cmp(regs[a], regs[b]) else fall_idx

            return cond_plain
        ghr = warm.ghr_cell
        btb = warm.btb
        pc = instr.pc
        target = instr.target
        cell = warm.cond_cells.setdefault(pc, [0, 0])
        trace = warm.trace
        taken_event = ("c", pc, 1, target)
        fall_event = ("c", pc, 0, target)

        def cond() -> int:
            if cmp(regs[a], regs[b]):
                trace.append(taken_event)
                ghr[0] = ((ghr[0] << 1) | 1) & _GHR_MASK
                if cell[0] < 2:
                    cell[1] += 1
                if cell[0] < 3:
                    cell[0] += 1
                btb[pc] = target
                return taken_idx
            trace.append(fall_event)
            ghr[0] = (ghr[0] << 1) & _GHR_MASK
            if cell[0] >= 2:
                cell[1] += 1
            if cell[0] > 0:
                cell[0] -= 1
            return fall_idx

        return cond

    def _compile_jump(
        self, instr: Instruction, resolve: Callable[[int], int]
    ) -> Callable[[], int]:
        warm = self.warmup
        target_idx = resolve(instr.target)
        if warm is None:
            def jump_plain() -> int:
                return target_idx

            return jump_plain
        ghr = warm.ghr_cell
        path = warm.path_cell
        btb = warm.btb
        pc = instr.pc
        target = instr.target
        bits = ((pc >> 2) ^ (target >> 2)) & 0x7
        trace = warm.trace
        event = ("j", pc, target)

        def jump() -> int:
            trace.append(event)
            ghr[0] = ((ghr[0] << 1) | 1) & _GHR_MASK
            path[0] = ((path[0] << 3) | bits) & _PATH_MASK
            btb[pc] = target
            return target_idx

        return jump

    def _compile_call(
        self, instr: Instruction, resolve: Callable[[int], int]
    ) -> Callable[[], int]:
        regs = self.regs
        warm = self.warmup
        target_idx = resolve(instr.target)
        dst = instr.dst if instr.dst != REG_ZERO else None
        fall_pc = instr.fallthrough_pc
        if warm is None:
            if dst is None:
                def call_plain_zero() -> int:
                    return target_idx

                return call_plain_zero

            def call_plain() -> int:
                regs[dst] = fall_pc
                return target_idx

            return call_plain
        ghr = warm.ghr_cell
        path = warm.path_cell
        btb = warm.btb
        ras = warm.ras
        pc = instr.pc
        target = instr.target
        bits = ((pc >> 2) ^ (target >> 2)) & 0x7
        trace = warm.trace
        event = ("j", pc, target)

        def call() -> int:
            trace.append(event)
            if dst is not None:
                regs[dst] = fall_pc
            if len(ras) >= RAS_DEPTH:
                del ras[0]
            ras.append(fall_pc)
            ghr[0] = ((ghr[0] << 1) | 1) & _GHR_MASK
            path[0] = ((path[0] << 3) | bits) & _PATH_MASK
            btb[pc] = target
            return target_idx

        return call

    def _compile_indirect(self, instr: Instruction) -> Callable[[], int]:
        """ret / jr / callr: target comes from a register at runtime."""
        regs = self.regs
        idx_of = self._idx_of_pc
        bad = self._bad_pc
        warm = self.warmup
        a = instr.srcs[0]
        dst = instr.dst if instr.dst != REG_ZERO else None
        pc = instr.pc
        fall_pc = instr.fallthrough_pc
        is_ret = instr.uop_class is UopClass.BR_RET
        pc_bits = pc >> 2
        if warm is None:
            def indirect_plain() -> int:
                if dst is not None:
                    regs[dst] = fall_pc
                target = int(regs[a])
                nxt = idx_of.get(target)
                if nxt is None:
                    bad[0] = target
                    return -1
                return nxt

            return indirect_plain
        ghr = warm.ghr_cell
        path = warm.path_cell
        btb = warm.btb
        ras = warm.ras
        cell = warm.ind_cells.setdefault(pc, [None, 0])
        trace = warm.trace
        kind = "r" if is_ret else "i"

        def indirect() -> int:
            target = int(regs[a])
            trace.append((kind, pc, target))
            if is_ret:
                # RAS proxy: a miss is a return whose target does not
                # match the warm RAS top (underflow counts as a miss).
                if ras:
                    if ras.pop() != target:
                        cell[1] += 1
                else:
                    cell[1] += 1
            else:
                # Last-target proxy for jr/callr (BTB-style).
                if cell[0] != target:
                    if cell[0] is not None:
                        cell[1] += 1
                    cell[0] = target
                btb[pc] = target
                if dst is not None:
                    # callr: write ra and push the return address.
                    regs[dst] = fall_pc
                    if len(ras) >= RAS_DEPTH:
                        del ras[0]
                    ras.append(fall_pc)
            ghr[0] = ((ghr[0] << 1) | 1) & _GHR_MASK
            path[0] = (
                ((path[0] << 3) | ((pc_bits ^ (target >> 2)) & 0x7))
                & _PATH_MASK
            )
            nxt = idx_of.get(target)
            if nxt is None:
                bad[0] = target
                return -1
            return nxt

        return indirect


def functional_rate(
    program: Program,
    memory: MemoryImage | None = None,
    max_steps: int = 5_000_000,
) -> tuple[int, float]:
    """Run a program to halt; returns ``(instructions, seconds)``.

    Timing covers execution only (compilation excluded), mirroring how
    ``repro bench`` times ``Pipeline.run`` after construction.
    """
    import time

    engine = FunctionalEngine(program, memory)
    start = time.perf_counter()
    executed = engine.run_to_halt(max_steps)
    elapsed = time.perf_counter() - start
    return executed, elapsed
