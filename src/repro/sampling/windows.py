"""Sample-window scheduling, parallel execution, and extrapolation.

The pFSA-shaped pipeline: a single functional pass counts the
program's instructions while keeping a bounded snapshot reservoir
(:func:`~repro.sampling.checkpoint.run_and_capture`), window start
positions are placed (evenly spaced or seeded-random), a
:class:`~repro.sampling.checkpoint.Checkpoint` is materialized at each
position by rewinding to the nearest snapshot, and
each checkpoint becomes one *detailed window* — a short
warmup+measurement run of the cycle-exact pipeline, warm-started from
the checkpoint.  Windows ship through the existing
:class:`~repro.harness.executor.CampaignExecutor` process pool
(timeouts, retries, and checkpoint journals all reuse), with the
checkpoint *file path* carried in the RunSpec ``workload`` field so the
spec stays a plain picklable record.

Extrapolation pools the measured windows: IPC is
``sum(instructions)/sum(cycles)`` (cycle-weighted), MPKI is
``1000 * sum(mispredicts)/sum(instructions)``, and each pooled metric
carries a 95% confidence interval from the per-window spread
(``1.96 * stdev / sqrt(K)``).  Reports contain **no wall-clock
fields** — for a fixed seed a parallel (``jobs=N``) sampled report is
byte-identical to a serial one, which the determinism tests and the CI
smoke job diff directly.
"""

from __future__ import annotations

import json
import math
import random
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from ..harness.executor import CampaignExecutor, RunSpec
from ..harness.runner import make_config
from ..workloads import make_workload
from .checkpoint import Checkpoint, run_and_capture

if TYPE_CHECKING:
    from ..obs.hub import Observation

SAMPLE_SCHEMA = 1

#: Default per-window knobs: long enough for TAGE/BTB/H2P residual
#: warmup on top of the checkpoint seed, short enough that K windows
#: stay far under the full run (pinned by the validation harness).
DEFAULT_WINDOWS = 8
DEFAULT_WARMUP = 2000
DEFAULT_MEASURE = 4000

#: Generous cycle ceiling per window (a window is a few thousand
#: instructions; IPC below 0.05 would be a model bug, not a workload).
WINDOW_MAX_CYCLES = 2_000_000

#: Functional fast-forward budget (instructions).  The biggest
#: registered scale is ~2M instructions; 50M leaves room for `large`
#: scales later while still catching runaway programs.
FASTFORWARD_MAX_STEPS = 50_000_000

WINDOW_FILE_SCHEMA = 1


def place_windows(
    total_instructions: int,
    windows: int,
    measure: int,
    placement: str = "even",
    seed: int = 0,
) -> list[int]:
    """Choose *measured-segment* start positions (ascending).

    Positions are where measurement begins, not where the detailed run
    begins — the scheduler backs each one up by the warmup length
    (clamped at zero) to pick the checkpoint.  This keeps the measured
    segments an unbiased spread over the whole run: position 0 measures
    the genuinely cold start, and ``even`` placement is
    endpoint-inclusive so the last segment ends at the halt point —
    phase drift at either end would otherwise bias every estimate.
    ``random`` draws K seeded-uniform positions instead.  Positions are
    deduplicated, so very short programs may yield fewer windows.
    """
    if windows <= 0:
        raise ValueError(f"windows must be >= 1, got {windows}")
    span = max(1, total_instructions - measure)
    if placement == "even":
        step = max(1, windows - 1)
        positions = [span * i // step for i in range(windows)]
    elif placement == "random":
        rng = random.Random(seed)
        positions = [rng.randrange(span) for _ in range(windows)]
    else:
        raise ValueError(
            f"unknown placement {placement!r}; use even/random"
        )
    return sorted(set(positions))


# ======================================================================
# Worker task
# ======================================================================
def execute_window(record: dict) -> dict:
    """Executor task: run one detailed window from a checkpoint file.

    ``record`` is a :class:`RunSpec` record whose ``workload`` field is
    the *path* of a window file written by :func:`run_sampled` — a
    JSON wrapper holding the window knobs plus the full checkpoint.
    Module-level and picklable by name, as the process pool requires.
    """
    from dataclasses import replace

    from ..core.pipeline import Pipeline
    from .checkpoint import seed_pipeline

    spec = RunSpec.from_record(record)
    window = json.loads(Path(spec.workload).read_text())
    if window.get("schema") != WINDOW_FILE_SCHEMA:
        raise ValueError(
            f"unsupported window file schema {window.get('schema')!r}"
        )
    checkpoint = Checkpoint.from_record(window["checkpoint"])
    workload = make_workload(checkpoint.workload, checkpoint.scale)
    config = replace(
        make_config(window["mode"]),
        warmup_instructions=window["warmup"],
        max_instructions=window["measure"],
        max_cycles=spec.max_cycles,
    )
    pipeline = Pipeline(workload.program, checkpoint.fresh_memory(), config)
    seed_pipeline(pipeline, checkpoint)
    stats = pipeline.run()
    row = stats.as_dict()
    row["window_index"] = window["index"]
    row["window_position"] = window["start"]
    return {"stats": row, "validated": True, "halted": pipeline.halted}


# ======================================================================
# Orchestration
# ======================================================================
def run_sampled(
    workload: str,
    mode: str = "tea",
    scale: str = "bench",
    windows: int = DEFAULT_WINDOWS,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
    jobs: int = 0,
    seed: int = 0,
    placement: str = "even",
    timeout: float | None = None,
    retries: int = 2,
    workdir: str | Path | None = None,
    observation: "Observation | None" = None,
    max_steps: int = FASTFORWARD_MAX_STEPS,
) -> dict:
    """Run one sampled simulation; returns the JSON-safe report.

    ``jobs=0`` runs windows inline; ``jobs>=1`` fans them out over the
    campaign process pool.  The report carries no wall-clock state, so
    for fixed inputs it is byte-identical across ``jobs`` settings.
    """
    unit = make_workload(workload, scale)
    bus = observation.bus if observation is not None else None

    # One functional pass counts instructions AND captures checkpoints:
    # the planner sees the discovered total, places the measured-segment
    # starts, and backs each up by the warmup length to its checkpoint
    # (clamped at zero — the first window measures the genuinely cold
    # start; distinct windows may share a checkpoint when their warmups
    # clamp).
    planned: dict = {}

    def planner(total: int) -> list[int]:
        starts = place_windows(total, windows, measure, placement, seed)
        planned["starts"] = starts
        planned["plans"] = [
            (start, max(0, start - warmup)) for start in starts
        ]
        return sorted({position for _, position in planned["plans"]})

    total, checkpoints = run_and_capture(
        unit, planner, workload_name=workload, scale=scale,
        max_steps=max_steps,
    )
    starts, plans = planned["starts"], planned["plans"]
    by_position = {ckpt.position: ckpt for ckpt in checkpoints}
    if bus is not None:
        bus.emit(
            "sample_plan",
            workload=workload,
            mode=mode,
            windows=len(starts),
            total_instructions=total,
        )
    if bus is not None:
        for ckpt in checkpoints:
            bus.emit(
                "sample_checkpoint",
                pc=ckpt.pc,
                workload=workload,
                position=ckpt.position,
            )

    # Ship each window as one executor cell.
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-sample-")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    specs = []
    for index, (start, position) in enumerate(plans):
        ckpt = by_position.get(position)
        if ckpt is None:  # functional run halted before this position
            continue
        path = workdir / f"window-{index:03d}.json"
        path.write_text(
            json.dumps(
                {
                    "schema": WINDOW_FILE_SCHEMA,
                    "index": index,
                    "start": start,
                    "mode": mode,
                    "warmup": start - position,
                    "measure": measure,
                    "checkpoint": ckpt.as_record(),
                },
                sort_keys=True,
            )
            + "\n"
        )
        specs.append(
            RunSpec(
                workload=str(path),
                mode=mode,
                scale=scale,
                max_cycles=WINDOW_MAX_CYCLES,
                seed=index,
            )
        )

    executor = CampaignExecutor(
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        task=execute_window,
        observation=observation,
    )
    outcomes = executor.run(specs)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        detail = "; ".join(
            f"{o.key}: {o.status}" for o in failed
        )
        raise RuntimeError(f"sampled window(s) failed: {detail}")

    rows = sorted(
        (o.stats for o in outcomes), key=lambda s: s["window_index"]
    )
    report = _build_report(
        workload, mode, scale, windows, warmup, measure, placement,
        seed, total, starts, rows,
    )
    if bus is not None:
        for row in report["windows"]:
            bus.emit(
                "sample_window_done",
                workload=workload,
                index=row["index"],
                ipc=row["ipc"],
                mpki=row["mpki"],
            )
        bus.emit(
            "sample_estimate",
            workload=workload,
            mode=mode,
            ipc=report["estimates"]["ipc"]["value"],
            mpki=report["estimates"]["mpki"]["value"],
        )
    return report


def _mean_ci(values: list[float]) -> tuple[float | None, float | None]:
    """(mean, half-width of the 95% CI) — CI None for K < 2."""
    if not values:
        return None, None
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, None
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, 1.96 * math.sqrt(var / len(values))


def _estimate(pooled: float, per_window: list[float]) -> dict:
    """One pooled metric + its per-window 95% confidence interval."""
    _, half = _mean_ci(per_window)
    return {
        "value": pooled,
        "ci95": half,
        "per_window": per_window,
    }


def _build_report(
    workload: str,
    mode: str,
    scale: str,
    windows: int,
    warmup: int,
    measure: int,
    placement: str,
    seed: int,
    total: int,
    positions: list[int],
    rows: list[dict],
) -> dict:
    window_rows = []
    instr = cycles = mispredicts = 0
    tea_resolved = tea_wrong = covered = uncovered = 0
    ipcs: list[float] = []
    mpkis: list[float] = []
    for row in rows:
        w_instr = row["retired_instructions"]
        w_cycles = row["cycles"]
        w_misp = row["direction_mispredicts"] + row["target_mispredicts"]
        instr += w_instr
        cycles += w_cycles
        mispredicts += w_misp
        tea_resolved += row["tea_resolved_branches"]
        tea_wrong += row["tea_wrong_resolutions"]
        covered += row["covered_timely"] + row["covered_late"]
        # Same denominator as SimStats.coverage.
        uncovered += (
            row["uncovered_mispredicts"] + row["incorrect_precomputations"]
        )
        w_ipc = w_instr / w_cycles if w_cycles else 0.0
        w_mpki = 1000.0 * w_misp / w_instr if w_instr else 0.0
        ipcs.append(w_ipc)
        mpkis.append(w_mpki)
        window_rows.append(
            {
                "index": row["window_index"],
                "position": row["window_position"],
                "instructions": w_instr,
                "cycles": w_cycles,
                "mispredicts": w_misp,
                "ipc": w_ipc,
                "mpki": w_mpki,
            }
        )
    estimates = {
        "ipc": _estimate(instr / cycles if cycles else 0.0, ipcs),
        "mpki": _estimate(
            1000.0 * mispredicts / instr if instr else 0.0, mpkis
        ),
        "tea_accuracy": {
            "value": (
                (tea_resolved - tea_wrong) / tea_resolved
                if tea_resolved
                else None
            ),
        },
        "tea_coverage": {
            "value": (
                covered / (covered + uncovered)
                if covered + uncovered
                else None
            ),
        },
    }
    return {
        "schema": SAMPLE_SCHEMA,
        "kind": "sampled",
        "workload": workload,
        "mode": mode,
        "scale": scale,
        "plan": {
            "windows": windows,
            "warmup": warmup,
            "measure": measure,
            "placement": placement,
            "seed": seed,
        },
        "functional": {
            "total_instructions": total,
            "positions": list(positions),
            "captured": len(window_rows),
        },
        "windows": window_rows,
        "estimates": estimates,
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write a sampled report deterministically (sorted keys, LF)."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path
