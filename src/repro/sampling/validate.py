"""Sampled-vs-full validation on the tiny golden matrix.

Ground truth: sampled simulation is only worth its speedup if the
extrapolated metrics track a full detailed run.  This harness runs
every pinned cell (the ``repro bench`` matrix —
bfs/mcf/xz × baseline/tea) both ways at ``tiny`` scale, reports
per-cell relative error for IPC and MPKI alongside the sampled
confidence intervals, and gates on the acceptance tolerances
(IPC within ±5%, MPKI within ±10%).  ``repro sample --validate``
and the CI sampled-simulation smoke job both consume the report;
EXPERIMENTS.md records a pinned copy of the error table.
"""

from __future__ import annotations

from typing import Iterable

from ..harness.bench import PINNED_RUNS
from ..harness.runner import run_workload
from .windows import run_sampled

VALIDATE_SCHEMA = 1

#: Acceptance tolerances (relative error vs the full detailed run).
IPC_TOLERANCE = 0.05
MPKI_TOLERANCE = 0.10

#: Tiny-matrix window knobs.  Tiny runs are short (~9-12k instructions)
#: and phase-heavy, so validation leans on coverage: 7 windows of 1400
#: measured instructions each, warm-started 2000 instructions ahead.
#: Measured worst-case error at these knobs: IPC 1.8%, MPKI 7.8%
#: (EXPERIMENTS.md records the pinned table).
VALIDATE_WINDOWS = 7
VALIDATE_WARMUP = 2000
VALIDATE_MEASURE = 1400


def _relative_error(sampled: float, full: float) -> float:
    if full == 0.0:
        return 0.0 if sampled == 0.0 else float("inf")
    return abs(sampled - full) / abs(full)


def validate_cell(
    workload: str,
    mode: str,
    scale: str = "tiny",
    windows: int = VALIDATE_WINDOWS,
    warmup: int = VALIDATE_WARMUP,
    measure: int = VALIDATE_MEASURE,
    jobs: int = 0,
    seed: int = 0,
    max_cycles: int = 30_000_000,
) -> dict:
    """Run one (workload, mode) cell sampled and full; returns the row."""
    full = run_workload(
        workload, mode, scale, max_cycles=max_cycles
    ).stats
    sampled = run_sampled(
        workload,
        mode,
        scale,
        windows=windows,
        warmup=warmup,
        measure=measure,
        jobs=jobs,
        seed=seed,
    )
    est = sampled["estimates"]
    ipc_err = _relative_error(est["ipc"]["value"], full.ipc)
    mpki_err = _relative_error(est["mpki"]["value"], full.mpki)
    return {
        "workload": workload,
        "mode": mode,
        "scale": scale,
        "full": {
            "instructions": full.retired_instructions,
            "cycles": full.cycles,
            "ipc": full.ipc,
            "mpki": full.mpki,
        },
        "sampled": {
            "windows": sampled["functional"]["captured"],
            "ipc": est["ipc"]["value"],
            "ipc_ci95": est["ipc"]["ci95"],
            "mpki": est["mpki"]["value"],
            "mpki_ci95": est["mpki"]["ci95"],
        },
        "ipc_rel_error": ipc_err,
        "mpki_rel_error": mpki_err,
        "ipc_ok": ipc_err <= IPC_TOLERANCE,
        "mpki_ok": mpki_err <= MPKI_TOLERANCE,
    }


def validate_sampling(
    cells: Iterable[tuple[str, str]] = PINNED_RUNS,
    scale: str = "tiny",
    windows: int = VALIDATE_WINDOWS,
    warmup: int = VALIDATE_WARMUP,
    measure: int = VALIDATE_MEASURE,
    jobs: int = 0,
    seed: int = 0,
) -> dict:
    """Sampled-vs-full error table over the pinned matrix.

    The report's ``ok`` is the CI gate: every cell must be inside both
    tolerances.  No wall-clock fields — the report is deterministic for
    fixed inputs, independent of ``jobs``.
    """
    rows = [
        validate_cell(
            workload,
            mode,
            scale,
            windows=windows,
            warmup=warmup,
            measure=measure,
            jobs=jobs,
            seed=seed,
        )
        for workload, mode in cells
    ]
    worst_ipc = max((row["ipc_rel_error"] for row in rows), default=0.0)
    worst_mpki = max((row["mpki_rel_error"] for row in rows), default=0.0)
    return {
        "schema": VALIDATE_SCHEMA,
        "kind": "sampled_validation",
        "scale": scale,
        "plan": {
            "windows": windows,
            "warmup": warmup,
            "measure": measure,
            "seed": seed,
        },
        "tolerances": {"ipc": IPC_TOLERANCE, "mpki": MPKI_TOLERANCE},
        "cells": rows,
        "summary": {
            "cells": len(rows),
            "worst_ipc_rel_error": worst_ipc,
            "worst_mpki_rel_error": worst_mpki,
        },
        "ok": all(row["ipc_ok"] and row["mpki_ok"] for row in rows),
    }
