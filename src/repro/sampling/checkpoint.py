"""Serializable sample-point checkpoints and pipeline warm-start.

A :class:`Checkpoint` captures everything a detailed window needs to
resume from a functional fast-forward at instruction ``position``:

* **architectural state** — registers, the sparse memory image, and
  the next PC,
* **predictor-warmup state** — the 512-bit global direction history and
  path history, the BTB warmup map (insertion-ordered ``pc -> target``
  pairs), the return-address-stack image, per-branch misprediction
  proxy counts for TEA H2P seeding, and the bounded branch trace of
  the most recent control-flow events
  (:class:`~repro.sampling.functional.WarmupState`).

Records are JSON-safe and self-contained, so the window scheduler can
write one file per sample point and ship the *path* through the
existing :class:`~repro.harness.executor.CampaignExecutor` RunSpec
machinery to worker processes.

:func:`seed_pipeline` is the restore side: it warm-starts a freshly
built :class:`~repro.core.pipeline.Pipeline` *before its first cycle* —
committed registers enter through the normal rename machinery
(allocate + write + RAT update, preserving the preg-conservation
invariant), the branch trace is replayed through the frontend's *real*
predict/train path (warming the TAGE-SC-L and ITTAGE tables with the
exact per-branch history context, and leaving the incremental history
fold registers bit-exact — verified against the checkpointed GHR),
BTB entries are installed in insertion order (LRU order preserved),
the RAS is pushed bottom-up, and TEA's H2P table replays the proxy
misprediction counts.
Restoring the same checkpoint twice yields bit-identical pipelines, so
a resumed window is cycle-exact regardless of the serialize/restore
round-trip (``tests/test_sampling_checkpoint.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..memory.memory_image import MemoryImage
from .functional import FunctionalEngine, WarmupState

CHECKPOINT_SCHEMA = 1


@dataclass(frozen=True)
class Checkpoint:
    """One sample point: architectural + predictor-warmup state."""

    workload: str
    scale: str
    position: int                  # instructions executed so far
    pc: int                        # next instruction to execute
    registers: tuple = ()
    memory: tuple = ()             # ((addr, value), ...) sorted
    ghr: int = 0
    path: int = 0
    btb: tuple = ()                # ((pc, target), ...) insertion order
    ras: tuple = ()                # bottom-up return addresses
    mispredicts: tuple = ()        # ((pc, count), ...) proxy misses
    trace: tuple = ()              # recent branch events, oldest first
    dlines: tuple = ()             # touched data lines, LRU order
    schema: int = CHECKPOINT_SCHEMA
    extra: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        engine: FunctionalEngine,
        workload: str,
        scale: str,
    ) -> "Checkpoint":
        """Snapshot a paused functional engine at its current position."""
        warmup = engine.warmup
        if warmup is None:
            warmup = WarmupState()
        misses = warmup.mispredict_counts()
        return cls(
            workload=workload,
            scale=scale,
            position=engine.instructions_executed,
            pc=engine.pc,
            registers=tuple(engine.regs),
            memory=tuple(sorted(engine.memory.snapshot().items())),
            ghr=warmup.ghr,
            path=warmup.path,
            btb=tuple(warmup.btb.items()),
            ras=tuple(warmup.ras),
            mispredicts=tuple(sorted(misses.items())),
            trace=tuple(warmup.trace),
            # LLC capacity bounds how much LRU depth can matter.
            dlines=tuple(warmup.dlines)[-16384:],
        )

    # ------------------------------------------------------------------
    def as_record(self) -> dict:
        """JSON-safe dict (GHR as hex — 512 bits stay compact)."""
        return {
            "schema": self.schema,
            "workload": self.workload,
            "scale": self.scale,
            "position": self.position,
            "pc": self.pc,
            "registers": list(self.registers),
            "memory": [[addr, value] for addr, value in self.memory],
            "ghr": f"{self.ghr:x}",
            "path": self.path,
            "btb": [[pc, target] for pc, target in self.btb],
            "ras": list(self.ras),
            "mispredicts": [[pc, n] for pc, n in self.mispredicts],
            "trace": [list(event) for event in self.trace],
            "dlines": list(self.dlines),
        }

    @classmethod
    def from_record(cls, record: dict) -> "Checkpoint":
        if record.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {record.get('schema')!r}"
            )
        return cls(
            workload=record["workload"],
            scale=record["scale"],
            position=record["position"],
            pc=record["pc"],
            registers=tuple(record["registers"]),
            memory=tuple(
                (addr, value) for addr, value in record["memory"]
            ),
            ghr=int(record["ghr"], 16),
            path=record["path"],
            btb=tuple((pc, target) for pc, target in record["btb"]),
            ras=tuple(record["ras"]),
            mispredicts=tuple(
                (pc, n) for pc, n in record["mispredicts"]
            ),
            trace=tuple(
                tuple(event) for event in record.get("trace", [])
            ),
            dlines=tuple(record.get("dlines", [])),
        )

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.as_record(), sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path: Path | str) -> "Checkpoint":
        return cls.from_record(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def fresh_memory(self) -> MemoryImage:
        """A new memory image holding the checkpointed words."""
        return MemoryImage(dict(self.memory))


def seed_pipeline(pipeline, checkpoint: Checkpoint) -> None:
    """Warm-start a freshly built pipeline from a checkpoint.

    Must be called before the pipeline's first cycle.  The pipeline's
    memory image is *not* touched here — build it with
    ``Pipeline(program, checkpoint.fresh_memory(), config)``.
    """
    if pipeline.cycle != 0 or pipeline.rob:
        raise ValueError("seed_pipeline() requires an unstarted pipeline")
    # Architectural registers flow through the normal rename path so
    # every invariant (preg conservation, RAT consistency) holds.
    prf = pipeline.prf
    rat = pipeline.rat
    for reg, value in enumerate(checkpoint.registers):
        if reg == 0 or value == 0:
            continue
        preg = prf.allocate()
        if preg is None:  # pragma: no cover - 47 regs vs hundreds of pregs
            raise RuntimeError("physical register file exhausted while seeding")
        prf.write(preg, value)
        rat.set(reg, preg)
        pipeline.committed_regs[reg] = value
    # Resume fetch at the checkpointed PC.
    frontend = pipeline.frontend
    frontend.next_pc = checkpoint.pc
    # BTB image first (oldest information), so trace replay below
    # refreshes the recently-used entries into MRU position.
    for pc, target in checkpoint.btb:
        frontend.btb.install(pc, target)
    _replay_trace(frontend, checkpoint)
    for return_address in checkpoint.ras:
        frontend.ras.push(return_address)
    # Cache warmth.  The static code image is small relative to the
    # L1I, so code the program has been executing is resident; data
    # lines replay in LRU order so the L1D/LLC tag arrays keep the
    # most-recently-touched working set.
    if checkpoint.position > 0:
        hierarchy = pipeline.hierarchy
        code_lines = sorted(
            {instr.pc & ~63 for instr in pipeline.program.instructions}
        )
        for line in code_lines:
            hierarchy.llc.fill(line)
            hierarchy.l1i.fill(line)
        for line in checkpoint.dlines:
            hierarchy.llc.fill(line)
            hierarchy.l1d.fill(line)
    # TEA chain-training inputs: hottest proxy-misprediction branches
    # first so H2P capacity goes to them under eviction pressure.
    if pipeline.tea is not None:
        ranked = sorted(
            checkpoint.mispredicts, key=lambda item: (-item[1], item[0])
        )
        for pc, count in ranked:
            pipeline.tea.h2p.seed(pc, count)


def _replay_trace(frontend, checkpoint: Checkpoint) -> None:
    """Replay the branch trace through the real predictor train path.

    Each event is processed exactly as the decoupled frontend would on
    the correct path: predict with the current history context, train
    with the actual outcome, then push the history bits.  Because every
    global-history push is traced and the trace depth exceeds the
    512-bit history window, the incremental fold registers come out
    bit-exact — verified against the checkpointed GHR below.
    """
    history = frontend.history
    if checkpoint.trace:
        cond = frontend.cond
        indirect = frontend.indirect
        btb = frontend.btb
        for event in checkpoint.trace:
            kind = event[0]
            if kind == "c":
                _, pc, taken, target = event
                pred = cond.predict(pc, target < pc)
                cond.train(pc, bool(taken), pred)
                if taken:
                    btb.install(pc, target)
                history.push_conditional(bool(taken))
            elif kind == "i":
                _, pc, target = event
                pred = indirect.predict(pc)
                indirect.train(pc, target, pred)
                btb.install(pc, target)
                history.push_target(pc, target)
            elif kind == "j":
                _, pc, target = event
                btb.install(pc, target)
                history.push_target(pc, target)
            else:  # "r": returns train only the RAS (seeded separately)
                _, pc, target = event
                history.push_target(pc, target)
        if history.ghr != checkpoint.ghr:
            raise RuntimeError(
                "branch-trace replay diverged from the checkpointed "
                f"global history at pc {checkpoint.pc:#x}"
            )
        # The trace bounds taken-transfer depth, not path depth; pin
        # the path register to the checkpointed value directly.
        history.path = checkpoint.path
    elif checkpoint.ghr:
        # Trace-less checkpoint (warmup tracking disabled): fall back
        # to bit-exact history replay without table warming.
        history.warm_replay(checkpoint.ghr, checkpoint.path)


def capture_checkpoints(
    workload,
    positions,
    workload_name: str | None = None,
    scale: str = "bench",
) -> list[Checkpoint]:
    """Fast-forward one functional pass, checkpointing at ``positions``.

    ``positions`` are instruction counts (ascending); duplicates are
    collapsed.  A position at or beyond the halt point yields no
    checkpoint (the window would have nothing to measure).
    """
    engine = FunctionalEngine(workload.program, workload.fresh_memory())
    name = workload_name or workload.name
    checkpoints: list[Checkpoint] = []
    last = -1
    for position in sorted(set(positions)):
        if position <= last:
            continue
        engine.advance(position - engine.instructions_executed)
        if engine.halted:
            break
        checkpoints.append(
            Checkpoint.capture(engine, name, scale)
        )
        last = position
    return checkpoints
