"""Serializable sample-point checkpoints and pipeline warm-start.

A :class:`Checkpoint` captures everything a detailed window needs to
resume from a functional fast-forward at instruction ``position``:

* **architectural state** — registers, the sparse memory image, and
  the next PC,
* **predictor-warmup state** — the 512-bit global direction history and
  path history, the BTB warmup map (insertion-ordered ``pc -> target``
  pairs), the return-address-stack image, per-branch misprediction
  proxy counts for TEA H2P seeding, and the bounded branch trace of
  the most recent control-flow events
  (:class:`~repro.sampling.functional.WarmupState`).

Records are JSON-safe and self-contained, so the window scheduler can
write one file per sample point and ship the *path* through the
existing :class:`~repro.harness.executor.CampaignExecutor` RunSpec
machinery to worker processes.

:func:`seed_pipeline` is the restore side: it warm-starts a freshly
built :class:`~repro.core.pipeline.Pipeline` *before its first cycle* —
committed registers enter through the normal rename machinery
(allocate + write + RAT update, preserving the preg-conservation
invariant), the branch trace is replayed through the frontend's *real*
predict/train path (warming the TAGE-SC-L and ITTAGE tables with the
exact per-branch history context, and leaving the incremental history
fold registers bit-exact — verified against the checkpointed GHR),
BTB entries are installed in insertion order (LRU order preserved),
the RAS is pushed bottom-up, and TEA's H2P table replays the proxy
misprediction counts.
Restoring the same checkpoint twice yields bit-identical pipelines, so
a resumed window is cycle-exact regardless of the serialize/restore
round-trip (``tests/test_sampling_checkpoint.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from ..memory.memory_image import MemoryImage
from .functional import EngineSnapshot, FunctionalEngine, WarmupState

if TYPE_CHECKING:
    from ..core.pipeline import Pipeline
    from ..frontend.decoupled import DecoupledFrontend
    from ..workloads.base import Workload

CHECKPOINT_SCHEMA = 1


@dataclass(frozen=True)
class Checkpoint:
    """One sample point: architectural + predictor-warmup state."""

    workload: str
    scale: str
    position: int                  # instructions executed so far
    pc: int                        # next instruction to execute
    registers: tuple = ()
    memory: tuple = ()             # ((addr, value), ...) sorted
    ghr: int = 0
    path: int = 0
    btb: tuple = ()                # ((pc, target), ...) insertion order
    ras: tuple = ()                # bottom-up return addresses
    mispredicts: tuple = ()        # ((pc, count), ...) proxy misses
    trace: tuple = ()              # recent branch events, oldest first
    dlines: tuple = ()             # touched data lines, LRU order
    schema: int = CHECKPOINT_SCHEMA
    extra: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        engine: FunctionalEngine,
        workload: str,
        scale: str,
    ) -> "Checkpoint":
        """Snapshot a paused functional engine at its current position."""
        warmup = engine.warmup
        if warmup is None:
            warmup = WarmupState()
        misses = warmup.mispredict_counts()
        return cls(
            workload=workload,
            scale=scale,
            position=engine.instructions_executed,
            pc=engine.pc,
            registers=tuple(engine.regs),
            memory=tuple(sorted(engine.memory.snapshot().items())),
            ghr=warmup.ghr,
            path=warmup.path,
            btb=tuple(warmup.btb.items()),
            ras=tuple(warmup.ras),
            mispredicts=tuple(sorted(misses.items())),
            trace=tuple(warmup.trace),
            # LLC capacity bounds how much LRU depth can matter.
            dlines=tuple(warmup.dlines)[-16384:],
        )

    # ------------------------------------------------------------------
    def as_record(self) -> dict:
        """JSON-safe dict (GHR as hex — 512 bits stay compact)."""
        return {
            "schema": self.schema,
            "workload": self.workload,
            "scale": self.scale,
            "position": self.position,
            "pc": self.pc,
            "registers": list(self.registers),
            "memory": [[addr, value] for addr, value in self.memory],
            "ghr": f"{self.ghr:x}",
            "path": self.path,
            "btb": [[pc, target] for pc, target in self.btb],
            "ras": list(self.ras),
            "mispredicts": [[pc, n] for pc, n in self.mispredicts],
            "trace": [list(event) for event in self.trace],
            "dlines": list(self.dlines),
        }

    @classmethod
    def from_record(cls, record: dict) -> "Checkpoint":
        if record.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {record.get('schema')!r}"
            )
        return cls(
            workload=record["workload"],
            scale=record["scale"],
            position=record["position"],
            pc=record["pc"],
            registers=tuple(record["registers"]),
            memory=tuple(
                (addr, value) for addr, value in record["memory"]
            ),
            ghr=int(record["ghr"], 16),
            path=record["path"],
            btb=tuple((pc, target) for pc, target in record["btb"]),
            ras=tuple(record["ras"]),
            mispredicts=tuple(
                (pc, n) for pc, n in record["mispredicts"]
            ),
            trace=tuple(
                tuple(event) for event in record.get("trace", [])
            ),
            dlines=tuple(record.get("dlines", [])),
        )

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.as_record(), sort_keys=True) + "\n"
        )
        return path

    @classmethod
    def load(cls, path: Path | str) -> "Checkpoint":
        return cls.from_record(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def fresh_memory(self) -> MemoryImage:
        """A new memory image holding the checkpointed words."""
        return MemoryImage(dict(self.memory))


def seed_pipeline(pipeline: "Pipeline", checkpoint: Checkpoint) -> None:
    """Warm-start a freshly built pipeline from a checkpoint.

    Must be called before the pipeline's first cycle.  The pipeline's
    memory image is *not* touched here — build it with
    ``Pipeline(program, checkpoint.fresh_memory(), config)``.
    """
    if pipeline.cycle != 0 or pipeline.rob:
        raise ValueError("seed_pipeline() requires an unstarted pipeline")
    # Architectural registers flow through the normal rename path so
    # every invariant (preg conservation, RAT consistency) holds.
    prf = pipeline.prf
    rat = pipeline.rat
    for reg, value in enumerate(checkpoint.registers):
        if reg == 0 or value == 0:
            continue
        preg = prf.allocate()
        if preg is None:  # pragma: no cover - 47 regs vs hundreds of pregs
            raise RuntimeError("physical register file exhausted while seeding")
        prf.write(preg, value)
        rat.set(reg, preg)
        pipeline.committed_regs[reg] = value
    # Resume fetch at the checkpointed PC.
    frontend = pipeline.frontend
    frontend.next_pc = checkpoint.pc
    # BTB image first (oldest information), so trace replay below
    # refreshes the recently-used entries into MRU position.
    for pc, target in checkpoint.btb:
        frontend.btb.install(pc, target)
    _replay_trace(frontend, checkpoint)
    for return_address in checkpoint.ras:
        frontend.ras.push(return_address)
    # Cache warmth.  The static code image is small relative to the
    # L1I, so code the program has been executing is resident; data
    # lines replay in LRU order so the L1D/LLC tag arrays keep the
    # most-recently-touched working set.
    if checkpoint.position > 0:
        hierarchy = pipeline.hierarchy
        code_lines = sorted(
            {instr.pc & ~63 for instr in pipeline.program.instructions}
        )
        for line in code_lines:
            hierarchy.llc.fill(line)
            hierarchy.l1i.fill(line)
        for line in checkpoint.dlines:
            hierarchy.llc.fill(line)
            hierarchy.l1d.fill(line)
    # TEA chain-training inputs: hottest proxy-misprediction branches
    # first so H2P capacity goes to them under eviction pressure.
    if pipeline.tea is not None:
        ranked = sorted(
            checkpoint.mispredicts, key=lambda item: (-item[1], item[0])
        )
        for pc, count in ranked:
            pipeline.tea.h2p.seed(pc, count)


def _replay_trace(
    frontend: "DecoupledFrontend", checkpoint: Checkpoint
) -> None:
    """Replay the branch trace through the real predictor train path.

    Each event is processed exactly as the decoupled frontend would on
    the correct path: predict with the current history context, train
    with the actual outcome, then push the history bits.  Because every
    global-history push is traced and the trace depth exceeds the
    512-bit history window, the incremental fold registers come out
    bit-exact — verified against the checkpointed GHR below.
    """
    history = frontend.history
    if checkpoint.trace:
        cond = frontend.cond
        indirect = frontend.indirect
        btb = frontend.btb
        for event in checkpoint.trace:
            kind = event[0]
            if kind == "c":
                _, pc, taken, target = event
                pred = cond.predict(pc, target < pc)
                cond.train(pc, bool(taken), pred)
                if taken:
                    btb.install(pc, target)
                history.push_conditional(bool(taken))
            elif kind == "i":
                _, pc, target = event
                pred = indirect.predict(pc)
                indirect.train(pc, target, pred)
                btb.install(pc, target)
                history.push_target(pc, target)
            elif kind == "j":
                _, pc, target = event
                btb.install(pc, target)
                history.push_target(pc, target)
            else:  # "r": returns train only the RAS (seeded separately)
                _, pc, target = event
                history.push_target(pc, target)
        if history.ghr != checkpoint.ghr:
            raise RuntimeError(
                "branch-trace replay diverged from the checkpointed "
                f"global history at pc {checkpoint.pc:#x}"
            )
        # The trace bounds taken-transfer depth, not path depth; pin
        # the path register to the checkpointed value directly.
        history.path = checkpoint.path
    elif checkpoint.ghr:
        # Trace-less checkpoint (warmup tracking disabled): fall back
        # to bit-exact history replay without table warming.
        history.warm_replay(checkpoint.ghr, checkpoint.path)


def capture_checkpoints(
    workload: "Workload",
    positions: Iterable[int],
    workload_name: str | None = None,
    scale: str = "bench",
) -> list[Checkpoint]:
    """Fast-forward one functional pass, checkpointing at ``positions``.

    ``positions`` are instruction counts (ascending); duplicates are
    collapsed.  A position at or beyond the halt point yields no
    checkpoint (the window would have nothing to measure).
    """
    engine = FunctionalEngine(workload.program, workload.fresh_memory())
    name = workload_name or workload.name
    checkpoints: list[Checkpoint] = []
    last = -1
    for position in sorted(set(positions)):
        if position <= last:
            continue
        engine.advance(position - engine.instructions_executed)
        if engine.halted:
            break
        checkpoints.append(
            Checkpoint.capture(engine, name, scale)
        )
        last = position
    return checkpoints


#: Snapshot reservoir bound for :func:`run_and_capture`.  Rewinding to
#: any position then replays at most ~total/SNAPSHOT_SLOTS instructions
#: from the nearest snapshot; the resident copies stay cheap (sparse
#: memory images plus bounded warmup state).
SNAPSHOT_SLOTS = 32

#: Initial snapshot spacing.  Small enough that the registered bench
#: scales (tens to hundreds of thousands of instructions) fill the
#: reservoir and rewinds stay short; stride doubling keeps the
#: snapshot count bounded however long the run turns out to be.
_INITIAL_STRIDE = 1 << 12


def run_and_capture(
    workload: "Workload",
    plan: Callable[[int], Iterable[int]],
    workload_name: str | None = None,
    scale: str = "bench",
    max_steps: int = 5_000_000,
) -> tuple[int, list[Checkpoint]]:
    """One functional pass: instruction count *and* checkpoint capture.

    The window scheduler needs the total instruction count before it
    can place checkpoints, which used to cost two full functional
    passes.  This runs the program once, keeping a stride-doubling
    reservoir of at most :data:`SNAPSHOT_SLOTS` engine snapshots; after
    halt, ``plan(total)`` chooses the checkpoint positions and each one
    is materialized by restoring the nearest snapshot at or below it
    and advancing the residual — bit-identical to
    :func:`capture_checkpoints` (``tests/test_sampling_checkpoint.py``)
    at a fraction of the replay cost.

    Raises :class:`InterpreterTimeout` when ``max_steps`` is exhausted
    before halt, matching :meth:`FunctionalEngine.run_to_halt`.
    """
    from bisect import bisect_right

    from ..isa.interpreter import InterpreterTimeout

    engine = FunctionalEngine(workload.program, workload.fresh_memory())
    name = workload_name or workload.name
    snapshots: list[EngineSnapshot] = [engine.snapshot()]
    stride = _INITIAL_STRIDE
    while not engine.halted:
        remaining = max_steps - engine.instructions_executed
        if remaining <= 0:
            raise InterpreterTimeout(engine.pc, max_steps)
        # A snapshot copies the live state, so space them at least one
        # state-size apart: memory-heavy workloads take fewer, cheaper
        # snapshots instead of drowning in dict copies.
        state = len(engine.memory._words)
        if engine.warmup is not None:
            state += len(engine.warmup.dlines)
        engine.advance(min(max(stride, state), remaining))
        if engine.halted:
            break
        snapshots.append(engine.snapshot())
        if len(snapshots) > SNAPSHOT_SLOTS:
            # Halve the reservoir, double the stride: granularity
            # degrades gracefully as the run turns out to be long.
            snapshots = snapshots[::2]
            stride *= 2
    total = engine.instructions_executed

    snap_positions = [snap.position for snap in snapshots]
    checkpoints: list[Checkpoint] = []
    last = -1
    for position in sorted(set(plan(total))):
        if position <= last or position >= total:
            continue
        nearest = bisect_right(snap_positions, position) - 1
        at = engine.instructions_executed
        # Restore when behind the target, or when a snapshot lands
        # closer than the engine's current position (jump forward).
        if at > position or snap_positions[nearest] > at or engine.halted:
            engine.restore(snapshots[nearest])
        engine.advance(position - engine.instructions_executed)
        checkpoints.append(Checkpoint.capture(engine, name, scale))
        last = position
    return total, checkpoints
