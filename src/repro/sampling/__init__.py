"""Sampled simulation: functional fast-forward + parallel detailed windows.

The detailed pipeline model retires a few thousand instructions per
second; the functional engine in :mod:`repro.sampling.functional`
executes the same programs hundreds of times faster while tracking the
predictor-warmup state (global/path history, BTB, RAS, per-branch
misprediction proxies) that a detailed window needs to start hot.
:mod:`repro.sampling.checkpoint` freezes that state into serializable
sample points, :mod:`repro.sampling.windows` fans the windows out over
the campaign process pool and extrapolates IPC/MPKI/TEA metrics with
confidence intervals, and :mod:`repro.sampling.validate` pins the
sampled-vs-full error on the tiny golden matrix.
"""

from .checkpoint import (
    Checkpoint,
    capture_checkpoints,
    run_and_capture,
    seed_pipeline,
)
from .functional import (
    EngineSnapshot,
    FunctionalEngine,
    WarmupState,
    functional_rate,
)
from .validate import validate_cell, validate_sampling
from .windows import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    DEFAULT_WINDOWS,
    execute_window,
    place_windows,
    run_sampled,
    write_report,
)

__all__ = [
    "Checkpoint",
    "EngineSnapshot",
    "FunctionalEngine",
    "WarmupState",
    "capture_checkpoints",
    "run_and_capture",
    "seed_pipeline",
    "functional_rate",
    "place_windows",
    "execute_window",
    "run_sampled",
    "write_report",
    "validate_cell",
    "validate_sampling",
    "DEFAULT_WINDOWS",
    "DEFAULT_WARMUP",
    "DEFAULT_MEASURE",
]
