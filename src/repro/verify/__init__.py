"""Runtime verification: invariants, fault injection, degradation proof.

Three cooperating layers (see HACKING.md "Invariants & fault
injection"):

* :mod:`repro.verify.invariants` — a sample-able checker auditing
  structural pipeline invariants every N cycles
  (``SimConfig.check_invariants``), raising :class:`InvariantViolation`
  on the first illegal state;
* :mod:`repro.verify.faults` — deterministic seeded fault injection
  (:class:`FaultPlan` via ``SimConfig.fault_plan``) that corrupts live
  microarchitectural state mid-run;
* :mod:`repro.verify.campaign` — the `repro inject` campaign proving
  that injected faults are either detected or architecturally benign
  (the paper's precomputation-is-only-a-hint fail-safe).

:mod:`repro.verify.diagnostics` is the shared machine-state dump used
by the watchdog's ``SimulationError``, ``InvariantViolation``, and the
harness's ``ValidationError`` fault attribution.
"""

from .diagnostics import fault_context, progress_diagnostics
from .faults import (
    FAULT_KINDS,
    SAFE_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from .invariants import InvariantChecker, InvariantViolation
from .campaign import DEFAULT_WORKLOADS, run_fault_campaign
from .chaos import classify_chaos

__all__ = [
    "DEFAULT_WORKLOADS",
    "FAULT_KINDS",
    "SAFE_KINDS",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "InvariantChecker",
    "InvariantViolation",
    "classify_chaos",
    "fault_context",
    "progress_diagnostics",
    "run_fault_campaign",
]
