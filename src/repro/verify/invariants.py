"""Runtime invariant checking for the cycle-level pipeline model.

The checker audits the machine *between* cycles (at the end of
:meth:`Pipeline.step`, when every stage has settled), validating the
structural properties the model's correctness rests on:

``preg_conservation``
    Physical registers are conserved: free lists + live RAT mappings +
    in-flight previous mappings account for every preg exactly once, in
    both the main pool and the TEA partition's valid-bit/refcount
    scheme.
``rob_order``
    ROB entries are main-thread uops in strictly increasing sequence
    order and in a live state.
``lsq_consistency``
    Load/store queues hold exactly the ROB's in-flight loads/stores, in
    program order.
``occupancy_bounds``
    Every bounded structure (ROB, RS partitions, LSQ, FTQ, decode
    buffer, TEA rename pipe) respects its configured capacity, every
    in-ROB mispredictable branch has an IFBQ entry, and renamed IFBQ
    entries carry their RAT checkpoint.
``scheduler_wakeup``
    The event-driven scheduler's pools agree with the PRF: waiting uops
    count exactly their unready sources, ready/blocked uops have all
    sources ready, and the per-preg wakeup subscription lists match the
    RS-resident consumers exactly (the property PR 3's rewrite depends
    on).
``tea_partition``
    TEA/main non-interference: main-thread uops and the main RAT never
    name TEA pregs, and TEA live uops only write the TEA partition.
``flush_epoch``
    No squashed/retired uop lingers in any live structure, scheduler
    residents are backed by the ROB (main) or the TEA controller's
    live set, and retirement bookkeeping is time-consistent.

A violation raises :class:`InvariantViolation` carrying the same
diagnostics dump the forward-progress watchdog uses
(:mod:`repro.verify.diagnostics`), plus the failing invariant and
detail, and emits an ``invariant_violation`` event on the obs bus.

Cost discipline: checking is opt-in (``SimConfig.check_invariants = N``
audits every N cycles, 0 = off) and a disabled checker is never
constructed, so the default simulation path is unchanged.
"""

from __future__ import annotations

from collections import Counter

from ..core.dynamic_uop import UopState
from .diagnostics import progress_diagnostics

_LIVE_ROB_STATES = (UopState.RENAMED, UopState.EXECUTING, UopState.DONE)
_LIVE_TEA_STATES = (UopState.RENAMED, UopState.EXECUTING)


class InvariantViolation(RuntimeError):
    """The machine reached a structurally illegal state (a model bug —
    or an injected fault doing its job).

    ``invariant`` names the failed family, ``detail`` the specific
    check; ``diagnostics`` is the shared watchdog-format state dump
    (with fault-injection context attached when an injector is active),
    so a journaled campaign failure can be attributed without a rerun.
    """

    def __init__(self, invariant: str, detail: str, diagnostics: dict | None = None):
        super().__init__(f"invariant {invariant!r} violated: {detail}")
        self.invariant = invariant
        self.detail = detail
        self.diagnostics = diagnostics or {}


class InvariantChecker:
    """Audits a pipeline every ``period`` cycles (and on demand)."""

    #: Audit family names, in execution order.
    FAMILIES = (
        "preg_conservation",
        "rob_order",
        "lsq_consistency",
        "occupancy_bounds",
        "scheduler_wakeup",
        "tea_partition",
        "flush_epoch",
    )

    def __init__(self, pipeline, period: int = 1):
        if period < 1:
            raise ValueError(f"check period must be >= 1, got {period}")
        self.p = pipeline
        self.period = period
        self.checks_run = 0

    # ------------------------------------------------------------------
    def maybe_audit(self) -> None:
        """Cycle hook: audit when the sampling period elapses."""
        if self.p.cycle % self.period == 0:
            self.audit()

    def audit(self) -> None:
        """Run every invariant family; raise on the first violation."""
        self.checks_run += 1
        self.p.stats.invariant_checks += 1
        for family in self.FAMILIES:
            getattr(self, "_check_" + family)()

    def _fail(self, invariant: str, detail: str) -> None:
        diagnostics = progress_diagnostics(self.p)
        diagnostics["invariant"] = invariant
        diagnostics["invariant_detail"] = detail
        obs = self.p.obs
        if obs is not None:
            obs.emit("invariant_violation", invariant=invariant, detail=detail)
        raise InvariantViolation(invariant, detail, diagnostics)

    # ------------------------------------------------------------------
    # Families
    # ------------------------------------------------------------------
    def _check_preg_conservation(self) -> None:
        p = self.p
        prf = p.prf
        name = "preg_conservation"
        # Main pool: free list + current RAT mappings + in-flight
        # previous mappings (freed at retire) == pregs 1..main_size.
        held = Counter(preg for preg in prf.main_free)
        held.update(preg for preg in p.rat.map if preg != 0)
        held.update(
            uop.old_dst_preg
            for uop in p.rob
            if uop.old_dst_preg is not None and uop.old_dst_preg != 0
        )
        expected = Counter(range(1, 1 + prf.main_size))
        if held != expected:
            missing = sorted((expected - held).elements())[:8]
            extra = sorted((held - expected).elements())[:8]
            self._fail(
                name,
                f"main preg multiset mismatch: leaked={missing} "
                f"double-held={extra}",
            )
        tea = p.tea
        if tea is None or prf.tea_size == 0:
            return
        # TEA partition: free list + pregs tracked by the valid-bit /
        # refcount scheme == the pregs above the main pool.
        tea_free = Counter(prf.tea_free)
        tracked = set(tea._valid) | set(tea._refcount)
        dup = [preg for preg in tracked if tea_free[preg]]
        if dup:
            self._fail(name, f"TEA pregs both free and tracked: {sorted(dup)[:8]}")
        held = tea_free + Counter(tracked)
        total = 1 + prf.main_size + prf.tea_size
        expected = Counter(range(1 + prf.main_size, total))
        if held != expected:
            missing = sorted((expected - held).elements())[:8]
            extra = sorted((held - expected).elements())[:8]
            self._fail(
                name,
                f"TEA preg multiset mismatch: leaked={missing} "
                f"double-held={extra}",
            )
        stray = tea._refcount_saturated - set(tea._refcount)
        if stray:
            self._fail(
                name,
                f"saturated refcounts without refcount entries: "
                f"{sorted(stray)[:8]}",
            )

    def _check_rob_order(self) -> None:
        prev_seq = -1
        for uop in self.p.rob:
            if uop.is_tea:
                self._fail("rob_order", f"TEA uop seq={uop.seq} in the ROB")
            if uop.seq <= prev_seq:
                self._fail(
                    "rob_order",
                    f"seq not strictly increasing: {uop.seq} after {prev_seq}",
                )
            prev_seq = uop.seq
            if uop.state not in _LIVE_ROB_STATES:
                self._fail(
                    "rob_order",
                    f"ROB uop seq={uop.seq} in state {uop.state.name}",
                )

    def _check_lsq_consistency(self) -> None:
        p = self.p
        name = "lsq_consistency"
        rob_ids = {id(uop) for uop in p.rob}
        for label, queue, want in (
            ("load", p.lq, "is_load"),
            ("store", p.sq, "is_store"),
        ):
            prev_seq = -1
            for uop in queue.entries:
                if uop.seq <= prev_seq:
                    self._fail(
                        name,
                        f"{label} queue out of program order: "
                        f"{uop.seq} after {prev_seq}",
                    )
                prev_seq = uop.seq
                if uop.is_tea:
                    self._fail(name, f"TEA uop seq={uop.seq} in the {label} queue")
                if not getattr(uop.instr, want):
                    self._fail(
                        name,
                        f"non-{label} uop seq={uop.seq} in the {label} queue",
                    )
                if id(uop) not in rob_ids:
                    self._fail(
                        name,
                        f"{label} queue uop seq={uop.seq} not in the ROB",
                    )
        lq_ids = {id(uop) for uop in p.lq.entries}
        sq_ids = {id(uop) for uop in p.sq.entries}
        for uop in p.rob:
            if uop.instr.is_load and id(uop) not in lq_ids:
                self._fail(name, f"ROB load seq={uop.seq} missing from the LQ")
            if uop.instr.is_store and id(uop) not in sq_ids:
                self._fail(name, f"ROB store seq={uop.seq} missing from the SQ")

    def _check_occupancy_bounds(self) -> None:
        p = self.p
        core = p.config.core
        name = "occupancy_bounds"
        bounds = [
            ("ROB", len(p.rob), core.rob_entries),
            ("decode pipe", len(p.decode_pipe), core.frontend_buffer),
            ("FTQ", len(p.frontend.ftq), p.frontend.config.ftq_capacity),
            ("load queue", len(p.lq.entries), core.load_queue),
            ("store queue", len(p.sq.entries), core.store_queue),
        ]
        main_rs, tea_rs = p.scheduler.occupancy
        bounds.append(("main RS", main_rs, core.rs_entries))
        tea = p.tea
        if tea is not None:
            bounds.append(("TEA RS", tea_rs, tea.config.rs_entries))
            # The capacity gate runs before a fetch of up to fetch_width
            # more uops, so the pipe may legally overshoot by one fetch.
            bounds.append(
                (
                    "TEA rename pipe",
                    len(tea.rename_pipe),
                    tea.config.rename_pipe_capacity + tea.config.fetch_width,
                )
            )
        for label, depth, cap in bounds:
            if depth > cap:
                self._fail(name, f"{label} over capacity: {depth} > {cap}")
        # Shadow FTQ blocks must stay in timestamp order (its depth is
        # legitimately unbounded while the TEA thread rename-stalls).
        prev_seq = -1
        for block in p.frontend.shadow_ftq:
            if not block.uops:
                continue
            if block.first_seq < prev_seq:
                self._fail(
                    name,
                    f"shadow FTQ out of order: block first_seq "
                    f"{block.first_seq} after {prev_seq}",
                )
            prev_seq = block.last_seq
        # IFBQ: every in-ROB mispredictable branch is tracked, keys are
        # consistent, and renamed entries carry their recovery state.
        for uop in p.rob:
            if uop.branch is not None and uop.branch.can_mispredict:
                if p.ifbq.get(uop.seq) is None:
                    self._fail(
                        name,
                        f"in-ROB branch seq={uop.seq} has no IFBQ entry",
                    )
        for seq, entry in p.ifbq._entries.items():
            if entry.seq != seq:
                self._fail(
                    name, f"IFBQ key {seq} maps to entry seq={entry.seq}"
                )
            if entry.renamed and entry.rat_checkpoint is None:
                self._fail(
                    name,
                    f"renamed IFBQ entry seq={seq} has no RAT checkpoint",
                )

    def _check_scheduler_wakeup(self) -> None:
        p = self.p
        sched = p.scheduler
        prf = p.prf
        ready_bits = prf.ready
        name = "scheduler_wakeup"
        pools = (
            ("ready_main", sched._ready_main, False),
            ("blocked_main", sched._blocked_main, False),
            ("waiting_main", list(sched._waiting_main.values()), False),
            ("ready_tea", sched._ready_tea, True),
            ("blocked_tea", sched._blocked_tea, True),
            ("waiting_tea", list(sched._waiting_tea.values()), True),
        )
        seen: dict[int, str] = {}
        resident: list = []
        for label, pool, is_tea in pools:
            waiting = label.startswith("waiting")
            for uop in pool:
                if uop.is_tea != is_tea:
                    self._fail(
                        name,
                        f"thread mix-up: seq={uop.seq} is_tea={uop.is_tea} "
                        f"in pool {label}",
                    )
                other = seen.get(id(uop))
                if other is not None:
                    self._fail(
                        name,
                        f"seq={uop.seq} in both {other} and {label}",
                    )
                seen[id(uop)] = label
                resident.append(uop)
                unready = sum(
                    1
                    for preg in uop.src_pregs
                    if preg and not ready_bits[preg]
                )
                if waiting:
                    if uop.pending_srcs < 1:
                        self._fail(
                            name,
                            f"waiting seq={uop.seq} has pending_srcs="
                            f"{uop.pending_srcs}",
                        )
                    if uop.pending_srcs != unready:
                        self._fail(
                            name,
                            f"waiting seq={uop.seq} counts "
                            f"{uop.pending_srcs} pending sources but "
                            f"{unready} are unready",
                        )
                else:
                    if uop.pending_srcs != 0:
                        self._fail(
                            name,
                            f"{label} seq={uop.seq} has pending_srcs="
                            f"{uop.pending_srcs}",
                        )
                    if unready:
                        self._fail(
                            name,
                            f"{label} seq={uop.seq} has {unready} unready "
                            f"source(s)",
                        )
        # Per-preg wakeup lists must contain exactly the RS-resident
        # consumers, one entry per source occurrence.
        want: dict[int, Counter] = {}
        for uop in resident:
            for preg in uop.src_pregs:
                if preg:
                    want.setdefault(preg, Counter())[id(uop)] += 1
        for preg, waiters in enumerate(prf.waiters):
            have = Counter(id(uop) for uop in waiters)
            expected = want.get(preg, Counter())
            if have != expected:
                self._fail(
                    name,
                    f"preg {preg} wakeup list mismatch: "
                    f"{sum(have.values())} subscribed vs "
                    f"{sum(expected.values())} resident source occurrences",
                )

    def _check_tea_partition(self) -> None:
        p = self.p
        floor = p.prf.main_size
        name = "tea_partition"
        for uop in p.rob:
            for preg in uop.src_pregs:
                if preg > floor:
                    self._fail(
                        name,
                        f"main uop seq={uop.seq} reads TEA preg {preg}",
                    )
            if uop.dst_preg is not None and uop.dst_preg > floor:
                self._fail(
                    name,
                    f"main uop seq={uop.seq} writes TEA preg {uop.dst_preg}",
                )
            if uop.old_dst_preg is not None and uop.old_dst_preg > floor:
                self._fail(
                    name,
                    f"main uop seq={uop.seq} holds TEA preg "
                    f"{uop.old_dst_preg} as its previous mapping",
                )
        for reg, preg in enumerate(p.rat.map):
            if preg > floor:
                self._fail(name, f"main RAT maps r{reg} to TEA preg {preg}")
        tea = p.tea
        if tea is None:
            return
        for uop in tea.live_uops:
            if not uop.is_tea:
                self._fail(
                    name, f"main uop seq={uop.seq} in TEA live set"
                )
            if uop.state not in _LIVE_TEA_STATES:
                self._fail(
                    name,
                    f"TEA live uop seq={uop.seq} in state {uop.state.name}",
                )
            if uop.dst_preg is not None and uop.dst_preg <= floor:
                self._fail(
                    name,
                    f"TEA uop seq={uop.seq} writes main preg {uop.dst_preg}",
                )

    def _check_flush_epoch(self) -> None:
        p = self.p
        name = "flush_epoch"
        dead = (UopState.SQUASHED, UopState.RETIRED)
        last_renamed = p.last_renamed_seq
        for uop in p.rob:
            if uop.seq > last_renamed:
                self._fail(
                    name,
                    f"ROB seq={uop.seq} beyond last_renamed_seq="
                    f"{last_renamed}",
                )
        for label, pool in (
            ("ROB", p.rob),
            ("load queue", p.lq.entries),
            ("store queue", p.sq.entries),
        ):
            for uop in pool:
                if uop.state in dead:
                    self._fail(
                        name,
                        f"{uop.state.name} uop seq={uop.seq} in {label}",
                    )
        for uop in p.decode_pipe:
            if uop.state is not UopState.FETCHED:
                self._fail(
                    name,
                    f"decode-pipe uop seq={uop.seq} in state {uop.state.name}",
                )
        sched = p.scheduler
        rob_ids = {id(uop) for uop in p.rob}
        for pool in (
            sched._ready_main,
            sched._blocked_main,
            list(sched._waiting_main.values()),
        ):
            for uop in pool:
                if id(uop) not in rob_ids:
                    self._fail(
                        name,
                        f"main RS uop seq={uop.seq} not backed by the ROB",
                    )
        tea = p.tea
        if tea is not None:
            live_ids = {id(uop) for uop in tea.live_uops}
            for pool in (
                sched._ready_tea,
                sched._blocked_tea,
                list(sched._waiting_tea.values()),
            ):
                for uop in pool:
                    if id(uop) not in live_ids:
                        self._fail(
                            name,
                            f"TEA RS uop seq={uop.seq} not in the live set",
                        )
            for uop in tea.rename_pipe:
                if uop.state is not UopState.FETCHED:
                    self._fail(
                        name,
                        f"TEA rename-pipe uop seq={uop.seq} in state "
                        f"{uop.state.name}",
                    )
        if p._last_retire_cycle > p.cycle:
            self._fail(
                name,
                f"last_retire_cycle {p._last_retire_cycle} is in the "
                f"future (cycle {p.cycle})",
            )
