"""Seeded fault-injection campaigns with outcome classification.

Drives the full (workload × fault kind × seed) matrix through
:func:`repro.harness.runner.run_workload` with a single-fault
:class:`~repro.verify.faults.FaultPlan` per cell and invariant checking
enabled, then classifies what happened:

``detected_invariant`` / ``detected_watchdog``
    The invariant checker (or the forward-progress watchdog) caught the
    corrupted state — the robustness layer doing its job.
``benign``
    The run halted and passed golden-interpreter validation: the fault
    perturbed only hint/timing state (the paper's fail-safe property
    for every TEA-side fault).
``corrupted``
    Functional validation failed.  Acceptable only for kinds that
    deliberately target architectural state (``expect="corrupt"``) and
    only when the :class:`~repro.harness.runner.ValidationError`
    carried the injector's journal (attribution).
``not_applied`` / ``unvalidated`` / ``inconclusive``
    The fault never found an applicable window, the workload defines no
    validator, or the run hit its cycle budget.

The report's ``ok`` flag is the CI gate: it is False iff any fault
from :data:`~repro.verify.faults.SAFE_KINDS` (TEA-side or timing-only)
corrupted architectural state, or a corruption could not be attributed
to its injected fault.
"""

from __future__ import annotations

from .faults import FAULT_KINDS, SAFE_KINDS, FaultPlan

#: Pinned default matrix for `repro inject` (tiny-scale friendly).
DEFAULT_WORKLOADS = ("bfs", "mcf", "xz")

_OUTCOMES = (
    "detected_invariant",
    "detected_watchdog",
    "benign",
    "corrupted",
    "not_applied",
    "unvalidated",
    "inconclusive",
)


def run_fault_campaign(
    workloads=DEFAULT_WORKLOADS,
    kinds=None,
    seeds: int = 2,
    mode: str = "tea",
    scale: str = "tiny",
    check_invariants: int = 16,
    max_cycles: int = 2_000_000,
    start_cycle: int = 2_000,
    progress=None,
) -> dict:
    """Run the matrix serially (deterministic order) and classify.

    ``kinds`` defaults to every registered fault kind; ``seeds`` runs
    each (workload, kind) cell that many times with seeds ``0..N-1``.
    ``progress`` is an optional ``callable(cell_dict)`` invoked after
    each cell (the CLI's live reporting hook).
    """
    # Lazy harness import: verify sits below harness in the layer DAG.
    from ..core.pipeline import SimulationError
    from ..harness.runner import ValidationError, run_workload
    from .invariants import InvariantViolation

    if kinds is None:
        kinds = tuple(sorted(FAULT_KINDS))
    cells: list[dict] = []
    for workload in workloads:
        for kind_name in kinds:
            kind = FAULT_KINDS[kind_name]
            for seed in range(seeds):
                plan = FaultPlan(
                    seed=seed,
                    kinds=(kind_name,),
                    count=1,
                    start_cycle=start_cycle,
                )
                cell = {
                    "workload": workload,
                    "kind": kind_name,
                    "seed": seed,
                    "expect": kind.expect,
                    "tea_side": kind.tea_side,
                    "timing_only": kind.timing_only,
                    "applied": 0,
                    "attributed": True,
                }
                try:
                    result = run_workload(
                        workload,
                        mode=mode,
                        scale=scale,
                        max_cycles=max_cycles,
                        check_invariants=check_invariants,
                        fault_plan=plan,
                    )
                except InvariantViolation as exc:
                    cell["outcome"] = "detected_invariant"
                    cell["invariant"] = exc.invariant
                    cell["detail"] = exc.detail
                    context = exc.diagnostics.get("fault_context")
                    cell["applied"] = _applied_count(context)
                    cell["attributed"] = context is not None
                except SimulationError as exc:
                    cell["outcome"] = "detected_watchdog"
                    context = exc.diagnostics.get("fault_context")
                    cell["applied"] = _applied_count(context)
                    cell["attributed"] = context is not None
                except ValidationError as exc:
                    cell["outcome"] = "corrupted"
                    context = getattr(exc, "fault_context", None)
                    cell["applied"] = _applied_count(context)
                    cell["attributed"] = context is not None
                    if exc.divergence is not None:
                        cell["divergence"] = exc.divergence
                else:
                    applied = result.stats.extra.get("faults", [])
                    cell["applied"] = len(applied)
                    if not applied:
                        cell["outcome"] = "not_applied"
                    elif result.validated:
                        cell["outcome"] = "benign"
                    elif result.halted:
                        cell["outcome"] = "unvalidated"
                    else:
                        cell["outcome"] = "inconclusive"
                cells.append(cell)
                if progress is not None:
                    progress(cell)
    return _build_report(cells, mode, scale, check_invariants)


def _applied_count(fault_context: dict | None) -> int:
    if not fault_context:
        return 0
    return len(fault_context.get("applied", []))


def _build_report(cells, mode, scale, check_invariants) -> dict:
    counts = {outcome: 0 for outcome in _OUTCOMES}
    unsafe: list[dict] = []
    unattributed: list[dict] = []
    undetected: list[dict] = []
    for cell in cells:
        counts[cell["outcome"]] += 1
        if cell["outcome"] == "corrupted":
            if cell["kind"] in SAFE_KINDS:
                unsafe.append(cell)
            if not cell["attributed"]:
                unattributed.append(cell)
        if (
            cell["expect"] == "detect"
            and cell["applied"]
            and cell["outcome"] in ("benign", "unvalidated")
        ):
            undetected.append(cell)
    summary = dict(counts)
    summary["total"] = len(cells)
    summary["applied"] = sum(1 for c in cells if c["applied"])
    summary["undetected"] = len(undetected)
    return {
        "mode": mode,
        "scale": scale,
        "check_invariants": check_invariants,
        "cells": cells,
        "summary": summary,
        # The CI gate: a TEA-side/timing-only fault corrupting
        # architectural state, or an unattributed corruption, is a bug.
        "unsafe_corruptions": [_cell_key(c) for c in unsafe],
        "unattributed_corruptions": [_cell_key(c) for c in unattributed],
        "undetected_cells": [_cell_key(c) for c in undetected],
        "ok": not unsafe and not unattributed,
    }


def _cell_key(cell: dict) -> str:
    return f"{cell['workload']}/{cell['kind']}/seed{cell['seed']}"
