"""Deterministic, seeded microarchitectural fault injection.

A :class:`FaultPlan` describes *what* to corrupt and *when*; the
pipeline installs a :class:`FaultInjector` that fires the plan
mid-simulation.  Each fault kind mutates live machine state through the
same structures the model uses, so an injected fault is
indistinguishable from a real hardware upset / model bug to everything
downstream — which is the point: the campaign (see
:mod:`repro.verify.campaign`) proves that the invariant checker or the
watchdog catches state-corrupting faults, and that TEA-side faults
never corrupt architectural state (the paper's central fail-safe
property: precomputation is only a hint).

Every kind declares what its injection is *expected* to do:

``detect``
    Creates an illegal machine state; the invariant checker (or, with
    checking off, the forward-progress watchdog) must catch it.
``benign``
    Perturbs hint/timing state only; the run must still halt and pass
    golden-interpreter validation (stats may change).
``corrupt``
    Corrupts architectural state on purpose (control case); functional
    validation is allowed to fail, and when it does the raised
    :class:`~repro.harness.runner.ValidationError` must carry this
    injector's journal so the failure is attributed to the fault.

Determinism: all randomness flows from ``random.Random(plan.seed)``,
and application order is the plan's schedule order, so a (plan,
workload) pair replays bit-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable

from ..core.dynamic_uop import UopState

#: Expectation taxonomy (see module docstring).
EXPECT_DETECT = "detect"
EXPECT_BENIGN = "benign"
EXPECT_CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultKind:
    """One injectable fault: metadata + the mutation itself.

    ``apply(pipeline, rng)`` performs the mutation and returns a
    JSON-safe detail dict, or ``None`` when the fault is not applicable
    to the machine's current state (the injector retries next cycle).
    """

    name: str
    tea_side: bool        # corrupts TEA (hint) state, never architectural
    timing_only: bool     # perturbs event timing, not values
    expect: str           # EXPECT_DETECT / EXPECT_BENIGN / EXPECT_CORRUPT
    description: str
    apply: Callable


# ======================================================================
# TEA-side faults (must never corrupt architectural state)
# ======================================================================
def _apply_block_cache_bit(pipeline, rng) -> dict | None:
    """Flip one bit in a random Block Cache chain mask."""
    tea = pipeline.tea
    if tea is None or not tea.block_cache._main:
        return None
    bc = tea.block_cache
    keys = list(bc._main)
    bb_start = keys[rng.randrange(len(keys))]
    old = bc._main[bb_start]
    span = max(old.bit_length(), bc.config.uops_per_entry)
    bit = rng.randrange(span)
    new = old ^ (1 << bit)
    bc._main[bb_start] = new
    # Keep the cost accounting in sync with the mutated mask, exactly
    # as a real bit upset would leave the (mask-derived) way count.
    bc._main_cost += bc._cost(new) - bc._cost(old)
    return {"bb_start": bb_start, "bit": bit, "old_mask": old, "new_mask": new}


def _apply_chain_uop_drop(pipeline, rng) -> dict | None:
    """Silently lose one chain uop from the TEA shadow frontend."""
    tea = pipeline.tea
    if tea is None or not tea.rename_pipe:
        return None
    idx = rng.randrange(len(tea.rename_pipe))
    uop = tea.rename_pipe[idx]
    del tea.rename_pipe[idx]
    return {"seq": uop.seq, "pc": uop.instr.pc}


def _apply_tea_outcome_flip(pipeline, rng) -> dict | None:
    """Invert an in-flight precomputed branch outcome."""
    candidates = [
        uop
        for uop in pipeline.executing_uops()
        if uop.is_tea
        and uop.state is UopState.EXECUTING
        and uop.branch is not None
        and uop.branch.can_mispredict
        and uop.br_taken is not None
    ]
    if not candidates:
        return None
    uop = candidates[rng.randrange(len(candidates))]
    old_taken = bool(uop.br_taken)
    uop.br_taken = not old_taken
    target = uop.branch.predicted_target
    if not uop.br_taken or target is None:
        target = uop.instr.fallthrough_pc
    old_target = uop.br_target
    uop.br_target = target
    return {
        "seq": uop.seq,
        "pc": uop.instr.pc,
        "old_taken": old_taken,
        "old_target": old_target,
        "new_target": target,
    }


def _apply_tea_wakeup_dup(pipeline, rng) -> dict | None:
    """Spuriously wake a waiting TEA uop (duplicate wakeup)."""
    sched = pipeline.scheduler
    if not sched._waiting_tea:
        return None
    keys = list(sched._waiting_tea)
    uop = sched._waiting_tea.pop(keys[rng.randrange(len(keys))])
    pending = uop.pending_srcs
    uop.pending_srcs = 0
    sched._ready_tea.append(uop)
    sched._tea_sorted = False
    return {"seq": uop.seq, "pc": uop.instr.pc, "pending_srcs_lost": pending}


def _apply_shadow_stall(pipeline, rng) -> dict | None:
    """Stall the TEA shadow frontend: delay every buffered chain uop."""
    tea = pipeline.tea
    if tea is None or not tea.rename_pipe:
        return None
    delay = 128
    for uop in tea.rename_pipe:
        uop.rename_ready_cycle += delay
    return {"uops": len(tea.rename_pipe), "delay": delay}


# ======================================================================
# Main-side faults
# ======================================================================
def _apply_mem_delay(pipeline, rng) -> dict | None:
    """Delay one in-flight completion by 64 cycles (timing-only)."""
    cycle = pipeline.cycle
    buckets = pipeline._done_buckets
    candidates = [
        (key, i)
        for key, bucket in buckets.items()
        if key > cycle
        for i, uop in enumerate(bucket)
        if uop.state is UopState.EXECUTING
    ]
    if not candidates:
        return None
    key, idx = candidates[rng.randrange(len(candidates))]
    uop = buckets[key].pop(idx)
    new_key = key + 64
    uop.done_cycle = new_key
    existing = buckets.get(new_key)
    if existing is None:
        buckets[new_key] = [uop]
        heappush(pipeline._done_heap, new_key)
    else:
        existing.append(uop)
    # The emptied source bucket stays behind its heap key; _complete
    # pops empty buckets harmlessly.
    return {"seq": uop.seq, "pc": uop.instr.pc, "old_done": key, "new_done": new_key}


def _apply_wakeup_drop(pipeline, rng) -> dict | None:
    """Lose a wakeup: demote a ready main-thread uop to waiting."""
    sched = pipeline.scheduler
    if not sched._ready_main:
        return None
    idx = rng.randrange(len(sched._ready_main))
    uop = sched._ready_main.pop(idx)
    uop.pending_srcs += 1
    sched._waiting_main[id(uop)] = uop
    return {"seq": uop.seq, "pc": uop.instr.pc}


def _apply_preg_leak(pipeline, rng) -> dict | None:
    """Leak a physical register out of the main free list."""
    free = pipeline.prf.main_free
    if not free:
        return None
    idx = rng.randrange(len(free))
    preg = free[idx]
    del free[idx]
    return {"preg": preg}


def _apply_mem_bit(pipeline, rng) -> dict | None:
    """Flip one bit of a committed memory word (control case:
    deliberately corrupts architectural state)."""
    words = [
        (addr, value)
        for addr, value in sorted(pipeline.memory.snapshot().items())
        if isinstance(value, int)
    ]
    if not words:
        return None
    addr, old = words[rng.randrange(len(words))]
    bit = rng.randrange(16)
    new = old ^ (1 << bit)
    pipeline.memory.store(addr, new)
    return {"addr": addr, "bit": bit, "old_value": old, "new_value": new}


#: Registry of every injectable fault kind, keyed by name.
FAULT_KINDS: dict[str, FaultKind] = {
    kind.name: kind
    for kind in (
        FaultKind(
            "block_cache_bit",
            tea_side=True,
            timing_only=False,
            expect=EXPECT_BENIGN,
            description="flip one bit in a Block Cache chain mask",
            apply=_apply_block_cache_bit,
        ),
        FaultKind(
            "chain_uop_drop",
            tea_side=True,
            timing_only=False,
            expect=EXPECT_BENIGN,
            description="drop one chain uop from the TEA shadow frontend",
            apply=_apply_chain_uop_drop,
        ),
        FaultKind(
            "tea_outcome_flip",
            tea_side=True,
            timing_only=False,
            expect=EXPECT_BENIGN,
            description="invert an in-flight precomputed branch outcome",
            apply=_apply_tea_outcome_flip,
        ),
        FaultKind(
            "tea_wakeup_dup",
            tea_side=True,
            timing_only=False,
            # The illegally-ready uop issues in the same cycle's
            # schedule phase, before any end-of-cycle audit can see it
            # — so this executes a TEA uop with a stale source, which
            # is exactly the hint-only corruption the fail-safe
            # property must absorb.
            expect=EXPECT_BENIGN,
            description="spuriously wake a waiting TEA uop",
            apply=_apply_tea_wakeup_dup,
        ),
        FaultKind(
            "shadow_stall",
            tea_side=True,
            timing_only=True,
            expect=EXPECT_BENIGN,
            description="stall the TEA shadow frontend by 128 cycles",
            apply=_apply_shadow_stall,
        ),
        FaultKind(
            "mem_delay",
            tea_side=False,
            timing_only=True,
            expect=EXPECT_BENIGN,
            description="delay one in-flight completion by 64 cycles",
            apply=_apply_mem_delay,
        ),
        FaultKind(
            "wakeup_drop",
            tea_side=False,
            timing_only=False,
            expect=EXPECT_DETECT,
            description="drop a scheduler wakeup for a ready main uop",
            apply=_apply_wakeup_drop,
        ),
        FaultKind(
            "preg_leak",
            tea_side=False,
            timing_only=False,
            expect=EXPECT_DETECT,
            description="leak a preg out of the main free list",
            apply=_apply_preg_leak,
        ),
        FaultKind(
            "mem_bit",
            tea_side=False,
            timing_only=False,
            expect=EXPECT_CORRUPT,
            description="flip one bit of a committed memory word",
            apply=_apply_mem_bit,
        ),
    )
}

#: Kinds whose injections must leave golden validation passing (or trip
#: an invariant): everything TEA-side plus pure timing perturbations.
SAFE_KINDS: frozenset[str] = frozenset(
    name
    for name, kind in FAULT_KINDS.items()
    if kind.tea_side or kind.timing_only
)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults to inject into one run.

    ``count`` faults fire starting at ``start_cycle``, at least
    ``min_interval`` cycles apart; a kind that stays inapplicable for
    ``give_up_cycles`` past its due cycle is journaled as skipped.
    Attach a plan via ``SimConfig.fault_plan``.
    """

    seed: int = 0
    kinds: tuple[str, ...] = field(
        default_factory=lambda: tuple(sorted(FAULT_KINDS))
    )
    count: int = 1
    start_cycle: int = 2_000
    min_interval: int = 2_000
    give_up_cycles: int = 100_000

    def __post_init__(self) -> None:
        from ..core.config import ConfigError

        if not self.kinds:
            raise ConfigError("FaultPlan.kinds must not be empty")
        unknown = sorted(set(self.kinds) - set(FAULT_KINDS))
        if unknown:
            raise ConfigError(
                f"FaultPlan.kinds has unknown fault kind(s) {unknown}; "
                f"choose from {sorted(FAULT_KINDS)}"
            )
        for name in ("count", "start_cycle", "min_interval", "give_up_cycles"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(f"FaultPlan.{name} must be >= 1, got {value}")

    def as_record(self) -> dict:
        return {
            "seed": self.seed,
            "kinds": list(self.kinds),
            "count": self.count,
            "start_cycle": self.start_cycle,
            "min_interval": self.min_interval,
            "give_up_cycles": self.give_up_cycles,
        }


class FaultInjector:
    """Executes a :class:`FaultPlan` against a live pipeline.

    The pipeline calls :meth:`tick` at the top of every cycle; due
    faults apply immediately, inapplicable ones retry each cycle until
    their give-up deadline.  ``journal()`` is the attribution payload
    carried by every structured failure raised while a plan is active.
    """

    def __init__(self, pipeline, plan: FaultPlan):
        self.p = pipeline
        self.plan = plan
        self.rng = random.Random(plan.seed)
        # Kind choices are drawn up front so the schedule is a pure
        # function of the seed, independent of applicability retries.
        self._schedule = [
            (plan.start_cycle + i * plan.min_interval, self.rng.choice(plan.kinds))
            for i in range(plan.count)
        ]
        self._index = 0
        self.applied: list[dict] = []
        self.skipped: list[dict] = []

    def tick(self, cycle: int) -> None:
        """Apply every fault that is due at ``cycle``."""
        while self._index < len(self._schedule):
            due, name = self._schedule[self._index]
            if cycle < due:
                return
            kind = FAULT_KINDS[name]
            detail = kind.apply(self.p, self.rng)
            if detail is None:
                if cycle < due + self.plan.give_up_cycles:
                    return  # retry next cycle
                self.skipped.append(
                    {"kind": name, "due_cycle": due, "gave_up_cycle": cycle}
                )
                self._index += 1
                continue
            record = {
                "kind": name,
                "cycle": cycle,
                "tea_side": kind.tea_side,
                "timing_only": kind.timing_only,
                "expect": kind.expect,
            }
            record.update(detail)
            self.applied.append(record)
            stats = self.p.stats
            stats.faults_injected += 1
            stats.extra.setdefault("faults", []).append(record)
            obs = self.p.obs
            if obs is not None:
                obs.emit(
                    "fault_injected",
                    pc=detail.get("pc", -1),
                    seq=detail.get("seq", -1),
                    kind=name,
                    tea_side=kind.tea_side,
                )
            self._index += 1

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._schedule)

    def journal(self) -> dict:
        """JSON-safe attribution payload: the plan + what actually fired."""
        return {
            "plan": self.plan.as_record(),
            "applied": list(self.applied),
            "skipped": list(self.skipped),
        }
