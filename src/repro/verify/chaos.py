"""Chaos-campaign classification: did the service actually hold?

Pure functions over plain dicts — the *evidence* bundle assembled by
:func:`repro.service.chaos.run_chaos_campaign` (kept import-free of
``repro.service`` so the verify layer stays below it in the import
DAG).  The classifier enforces the service's durability contract:

* **nothing lost** — every acknowledged submission reached a terminal
  state with a stored, checksummed result;
* **nothing duplicated** — idempotency tokens deduped concurrent
  resubmits, and no job has more than one terminal journal record;
* **nothing corrupted** — every final report is byte-identical to the
  fault-free serial reference for the same job spec;
* **nothing recomputed** — cache-probe jobs (cells all previously
  simulated) completed with zero freshly simulated cells, proven by
  the digest-hit counters;
* **clean drain** — the final SIGTERM drain exited 0 and the cache
  never served a checksum-mismatched entry.
"""

from __future__ import annotations

TERMINAL = ("done", "failed", "cancelled")


def _check(violations: list, ok: bool, message: str) -> bool:
    if not ok:
        violations.append(message)
    return ok


def classify_chaos(evidence: dict) -> dict:
    """Classify one chaos campaign; returns ``{"ok", "summary",
    "checks", "violations"}``."""
    violations: list[str] = []
    checks: dict[str, bool] = {}

    submitted = evidence.get("submitted", [])
    job_ids = list(evidence.get("job_ids", []))
    tokens = evidence.get("tokens", {})
    statuses = evidence.get("statuses", {})
    reports = evidence.get("reports", {})
    reference = evidence.get("reference", {})
    metrics = evidence.get("metrics", {})

    # -- nothing lost ---------------------------------------------------
    checks["all_terminal"] = _check(
        violations,
        all(
            statuses.get(job_id, {}).get("state") in TERMINAL
            for job_id in job_ids
        )
        and bool(job_ids),
        "a submitted job never reached a terminal state",
    )
    checks["all_reported"] = _check(
        violations,
        all(job_id in reports for job_id in job_ids),
        "a terminal job has no fetchable result",
    )

    # -- nothing duplicated ---------------------------------------------
    by_token: dict[str, set[str]] = {}
    for entry in submitted:
        token = str(entry.get("token") or "")
        if token:
            by_token.setdefault(token, set()).add(entry["id"])
    checks["token_dedupe"] = _check(
        violations,
        all(len(ids) == 1 for ids in by_token.values()),
        "one idempotency token produced multiple job ids",
    )
    duplicate_terminals = evidence.get("duplicate_terminals", {})
    checks["exactly_once_terminal"] = _check(
        violations,
        not duplicate_terminals,
        f"duplicate terminal journal records: {duplicate_terminals}",
    )

    # -- nothing corrupted ----------------------------------------------
    corrupted = []
    compared = 0
    for job_id in job_ids:
        token = tokens.get(job_id)
        expected = reference.get(token)
        if expected is None:
            continue
        compared += 1
        if reports.get(job_id) != expected:
            corrupted.append(job_id)
    checks["reports_byte_identical"] = _check(
        violations,
        compared > 0 and not corrupted,
        f"report(s) differ from the fault-free reference: {corrupted}"
        if corrupted
        else "no report could be compared against a reference",
    )

    # -- nothing recomputed ---------------------------------------------
    probes = set(evidence.get("cache_probes", []))
    probe_ids = [j for j in job_ids if tokens.get(j) in probes]
    recomputed = [
        job_id
        for job_id in probe_ids
        if statuses.get(job_id, {}).get("cells", {}).get("simulated", 1) != 0
        or statuses.get(job_id, {}).get("cells", {}).get("cached", -1)
        != statuses.get(job_id, {}).get("cells", {}).get("total", 0)
    ]
    checks["cached_cells_not_recomputed"] = _check(
        violations,
        not probes or (bool(probe_ids) and not recomputed),
        f"cache-probe job(s) re-simulated cached cells: {recomputed}"
        if recomputed
        else "cache-probe tokens never became jobs",
    )

    # -- integrity + drain ----------------------------------------------
    cache = metrics.get("cache", {})
    checks["cache_integrity"] = _check(
        violations,
        cache.get("integrity_failures", 1) == 0,
        f"cache served/detected corrupt entries: {cache}",
    )
    checks["clean_drain"] = _check(
        violations,
        evidence.get("drain_exit_code", None) == 0,
        f"drain exit code was {evidence.get('drain_exit_code')!r}, not 0",
    )

    return {
        "ok": not violations,
        "checks": checks,
        "violations": violations,
        "summary": {
            "jobs": len(job_ids),
            "submits": len(submitted),
            "compared_reports": compared,
            "cache_probe_jobs": len(probe_ids),
            "cache_hits": cache.get("hits", 0),
            "failed_checks": sum(1 for ok in checks.values() if not ok),
        },
    }
