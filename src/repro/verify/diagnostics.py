"""Shared machine-state diagnostics dump.

One JSON-safe snapshot format, used by every structured simulator
failure so a journaled campaign cell can be triaged without re-running:

* the forward-progress watchdog's :class:`~repro.core.pipeline.SimulationError`
  (``pipeline.progress_diagnostics()`` delegates here);
* the invariant checker's :class:`~repro.verify.invariants.InvariantViolation`;
* the harness's :class:`~repro.harness.runner.ValidationError` (fault
  context only — the divergence record is its own payload).

When a :class:`~repro.verify.faults.FaultInjector` is active the dump
carries its journal (plan + applied faults), so failures caused by
*injected* corruption are attributed to the fault plan instead of
looking like real model bugs.
"""

from __future__ import annotations


def progress_diagnostics(pipeline) -> dict:
    """JSON-safe dump of a pipeline's forward-progress state."""
    head = pipeline.rob[0] if pipeline.rob else None
    main_rs, tea_rs = pipeline.scheduler.occupancy
    diag = {
        "cycle": pipeline.cycle,
        "last_retire_cycle": pipeline._last_retire_cycle,
        "rob_depth": len(pipeline.rob),
        "rob_head": (
            {
                "seq": head.seq,
                "pc": head.instr.pc,
                "opcode": head.instr.opcode,
                "state": head.state.name,
            }
            if head is not None
            else None
        ),
        "decode_pipe_depth": len(pipeline.decode_pipe),
        "ftq_depth": len(pipeline.frontend.ftq),
        "bp_stalled": pipeline.frontend.stalled(),
        "scheduler_main_rs": main_rs,
        "scheduler_tea_rs": tea_rs,
        "load_queue_depth": len(pipeline.lq.entries),
        "store_queue_depth": len(pipeline.sq.entries),
        "free_pregs": pipeline.prf.main_available(),
    }
    if pipeline.tea is not None:
        diag["tea"] = {
            "active": pipeline.tea.active,
            "draining": pipeline.tea.draining,
        }
    return attach_verify_context(pipeline, diag)


def attach_verify_context(pipeline, diag: dict) -> dict:
    """Fold active fault-injection / invariant-checking context into a
    diagnostics dict (no-op on a plain pipeline)."""
    injector = getattr(pipeline, "_injector", None)
    if injector is not None:
        diag["fault_context"] = injector.journal()
    checker = getattr(pipeline, "_checker", None)
    if checker is not None:
        diag["invariant_checks"] = checker.checks_run
    return diag


def fault_context(pipeline) -> dict | None:
    """The active injector's journal, or ``None`` on a clean pipeline."""
    injector = getattr(pipeline, "_injector", None)
    return injector.journal() if injector is not None else None
