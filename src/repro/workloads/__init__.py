"""Workloads: GAP kernels and SPEC CPU2017 proxies in the micro-ISA."""

from .base import COMPLEX, SIMPLE, Arena, Workload, build
from .data import (
    CsrGraph,
    random_floats,
    random_ints,
    random_permutation,
    random_signs,
    uniform_graph,
)
from .registry import (
    ALL_NAMES,
    GAP_NAMES,
    SPEC_NAMES,
    complex_control_flow_names,
    fuzz_corpus_names,
    lint_registered,
    lint_workload,
    make_category,
    make_workload,
    simple_control_flow_names,
    workload_names,
)

__all__ = [
    "COMPLEX",
    "SIMPLE",
    "Arena",
    "Workload",
    "build",
    "CsrGraph",
    "random_floats",
    "random_ints",
    "random_permutation",
    "random_signs",
    "uniform_graph",
    "ALL_NAMES",
    "GAP_NAMES",
    "SPEC_NAMES",
    "complex_control_flow_names",
    "fuzz_corpus_names",
    "lint_registered",
    "lint_workload",
    "make_category",
    "make_workload",
    "simple_control_flow_names",
    "workload_names",
]
