"""Deterministic input-data generators for the workload kernels.

Everything is seeded: the same workload name and scale always produce
the same memory image, so simulation results are exactly reproducible.
Graphs are synthetic uniform-random digraphs in CSR form — the same
family the GAP benchmark suite's ``-u`` generator produces (the paper
uses g=19; we scale the node count down to keep Python simulation
tractable, as documented in DESIGN.md §5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class CsrGraph:
    """Compressed-sparse-row directed graph."""

    num_nodes: int
    offsets: tuple[int, ...]     # len = num_nodes + 1
    neighbors: tuple[int, ...]   # len = num_edges
    weights: tuple[int, ...]     # parallel to neighbors

    @property
    def num_edges(self) -> int:
        return len(self.neighbors)

    def out_neighbors(self, node: int) -> tuple[int, ...]:
        return self.neighbors[self.offsets[node] : self.offsets[node + 1]]

    def out_weights(self, node: int) -> tuple[int, ...]:
        return self.weights[self.offsets[node] : self.offsets[node + 1]]


def uniform_graph(
    num_nodes: int,
    avg_degree: int,
    seed: int,
    sorted_adjacency: bool = False,
    max_weight: int = 100,
) -> CsrGraph:
    """Uniform-random digraph in CSR form (GAP's synthetic family)."""
    rng = random.Random(seed)
    offsets = [0]
    neighbors: list[int] = []
    weights: list[int] = []
    for node in range(num_nodes):
        degree = rng.randint(max(0, avg_degree - 2), avg_degree + 2)
        outs = set()
        while len(outs) < min(degree, num_nodes - 1):
            other = rng.randrange(num_nodes)
            if other != node:
                outs.add(other)
        ordered = sorted(outs) if sorted_adjacency else list(outs)
        if not sorted_adjacency:
            rng.shuffle(ordered)
        neighbors.extend(ordered)
        weights.extend(rng.randint(1, max_weight) for _ in ordered)
        offsets.append(len(neighbors))
    return CsrGraph(num_nodes, tuple(offsets), tuple(neighbors), tuple(weights))


def random_ints(count: int, lo: int, hi: int, seed: int) -> list[int]:
    """Seeded uniform integers in [lo, hi]."""
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(count)]


def random_signs(count: int, magnitude: int, seed: int) -> list[int]:
    """Values uniformly in ±[1, magnitude] — a 50/50 H2P generator."""
    rng = random.Random(seed)
    return [rng.choice([-1, 1]) * rng.randint(1, magnitude) for _ in range(count)]


def random_floats(count: int, seed: int, scale: float = 1.0) -> list[float]:
    """Seeded uniform floats in [0, scale)."""
    rng = random.Random(seed)
    return [rng.random() * scale for _ in range(count)]


def random_permutation(count: int, seed: int) -> list[int]:
    """Seeded permutation of range(count) (cache-hostile orderings)."""
    rng = random.Random(seed)
    perm = list(range(count))
    rng.shuffle(perm)
    return perm
