"""GAP benchmark suite kernels (bfs, bc, cc, pr, sssp, tc).

These are the actual GAP algorithms implemented in the micro-ISA over
seeded synthetic uniform graphs (DESIGN.md §5).  They all share the
control-flow pattern of the paper's Fig. 1: a tight loop whose body is
guarded by a *data-dependent* branch (visited check, label compare,
distance relax, adjacency intersection) that TAGE cannot learn — the
paper classifies all six as *simple control flow* applications.

Every kernel carries a validator that re-runs the algorithm in Python
on the same inputs and compares the committed memory arrays, so the
execution-driven simulator is functionally verified end to end.
"""

from __future__ import annotations

from .base import SIMPLE, Arena, Workload, build
from .data import CsrGraph, uniform_graph

_INF = 1 << 40


def _read_words(pipeline, base: int, count: int) -> list:
    return pipeline.memory.read_array(base, count)


# ======================================================================
# bfs — frontier-queue breadth-first search
# ======================================================================
_BFS_SRC = """
    li  r1, {queue}
    li  r2, {parent}
    li  r3, {offsets}
    li  r4, {neighbors}
    li  r5, 0            # head
    li  r6, 1            # tail
outer:
    bge r5, r6, done
    shli r7, r5, 3
    add r7, r7, r1
    ld  r8, 0(r7)        # u = queue[head]
    addi r5, r5, 1
    shli r9, r8, 3
    add r9, r9, r3
    ld  r10, 0(r9)       # e = offsets[u]
    ld  r11, 8(r9)       # end = offsets[u+1]
inner:
    bge r10, r11, outer
    shli r12, r10, 3
    add r12, r12, r4
    ld  r13, 0(r12)      # v = neighbors[e]
    addi r10, r10, 1
    shli r14, r13, 3
    add r14, r14, r2
    ld  r15, 0(r14)      # parent[v]
    bge r15, r0, inner   # H2P: already visited?
    st  r8, 0(r14)       # parent[v] = u
    shli r16, r6, 3
    add r16, r16, r1
    st  r13, 0(r16)      # queue[tail] = v
    addi r6, r6, 1
    jmp inner
done:
    halt
"""


def _bfs_reference(graph: CsrGraph, source: int) -> list[int]:
    parent = [-1] * graph.num_nodes
    parent[source] = source
    queue = [source]
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for v in graph.out_neighbors(u):
            if parent[v] < 0:
                parent[v] = u
                queue.append(v)
    return parent


def bfs(num_nodes: int = 1200, avg_degree: int = 8, seed: int = 11) -> Workload:
    """Breadth-first search; H2P = the visited check (paper Fig. 1)."""
    graph = uniform_graph(num_nodes, avg_degree, seed)
    source = 0
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        parent_init = [-1] * num_nodes
        parent_init[source] = source
        symbols["offsets"] = arena.alloc(graph.offsets)
        symbols["neighbors"] = arena.alloc(graph.neighbors)
        symbols["parent"] = arena.alloc(parent_init)
        queue_init = [0] * (num_nodes + 4)
        queue_init[0] = source
        symbols["queue"] = arena.alloc(queue_init)
        return symbols

    def validate(pipeline) -> bool:
        expected = _bfs_reference(graph, source)
        got = _read_words(pipeline, symbols["parent"], num_nodes)
        # Parent choice depends on visitation order, which the kernel
        # shares with the reference (FIFO queue) — exact match.
        return got == expected

    return build(
        "bfs",
        _BFS_SRC,
        populate,
        SIMPLE,
        "frontier-queue BFS; visited-check H2P branch",
        validate,
    )


# ======================================================================
# cc — connected components via label propagation
# ======================================================================
_CC_SRC = """
    li  r1, {labels}
    li  r3, {offsets}
    li  r4, {neighbors}
    li  r17, {num_nodes}
    li  r18, {max_iters}
    li  r19, 0           # iteration
iter_loop:
    bge r19, r18, done
    li  r20, 0           # changed flag
    li  r8, 0            # u
node_loop:
    bge r8, r17, iter_end
    shli r9, r8, 3
    add r21, r9, r1
    ld  r22, 0(r21)      # lu = labels[u]
    add r9, r9, r3
    ld  r10, 0(r9)       # e
    ld  r11, 8(r9)       # end
edge_loop:
    bge r10, r11, node_end
    shli r12, r10, 3
    add r12, r12, r4
    ld  r13, 0(r12)      # v
    addi r10, r10, 1
    shli r14, r13, 3
    add r14, r14, r1
    ld  r15, 0(r14)      # lv = labels[v]
    bge r15, r22, edge_loop   # H2P: is neighbor label smaller?
    mov r22, r15
    li  r20, 1
    jmp edge_loop
node_end:
    st  r22, 0(r21)      # labels[u] = lu
    addi r8, r8, 1
    jmp node_loop
iter_end:
    addi r19, r19, 1
    bnez r20, iter_loop  # continue while labels changed
done:
    halt
"""


def _cc_reference(graph: CsrGraph, max_iters: int) -> list[int]:
    labels = list(range(graph.num_nodes))
    for _ in range(max_iters):
        changed = False
        for u in range(graph.num_nodes):
            lu = labels[u]
            for v in graph.out_neighbors(u):
                if labels[v] < lu:
                    lu = labels[v]
                    changed = True
            labels[u] = lu
        if not changed:
            break
    return labels


def cc(num_nodes: int = 700, avg_degree: int = 6, seed: int = 23,
       max_iters: int = 6) -> Workload:
    """Label-propagation connected components; H2P = label compare."""
    graph = uniform_graph(num_nodes, avg_degree, seed)
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["offsets"] = arena.alloc(graph.offsets)
        symbols["neighbors"] = arena.alloc(graph.neighbors)
        symbols["labels"] = arena.alloc(list(range(num_nodes)))
        symbols["num_nodes"] = num_nodes
        symbols["max_iters"] = max_iters
        return symbols

    def validate(pipeline) -> bool:
        expected = _cc_reference(graph, max_iters)
        return _read_words(pipeline, symbols["labels"], num_nodes) == expected

    return build(
        "cc",
        _CC_SRC,
        populate,
        SIMPLE,
        "label-propagation connected components; label-compare H2P",
        validate,
    )


# ======================================================================
# sssp — Bellman-Ford relaxation rounds
# ======================================================================
_SSSP_SRC = """
    li  r1, {dist}
    li  r3, {offsets}
    li  r4, {neighbors}
    li  r5, {weights}
    li  r17, {num_nodes}
    li  r18, {rounds}
    li  r19, 0
round_loop:
    bge r19, r18, done
    li  r8, 0            # u
node_loop:
    bge r8, r17, round_end
    shli r9, r8, 3
    add r21, r9, r1
    ld  r22, 0(r21)      # du = dist[u]
    add r9, r9, r3
    ld  r10, 0(r9)       # e
    ld  r11, 8(r9)       # end
    li  r23, {inf}
    bge r22, r23, node_next   # unreachable so far: skip edges
edge_loop:
    bge r10, r11, node_next
    shli r12, r10, 3
    add r13, r12, r4
    ld  r13, 0(r13)      # v
    add r14, r12, r5
    ld  r14, 0(r14)      # w
    addi r10, r10, 1
    add r15, r22, r14    # nd = du + w
    shli r16, r13, 3
    add r16, r16, r1
    ld  r24, 0(r16)      # dist[v]
    bge r15, r24, edge_loop   # H2P: does the edge relax?
    st  r15, 0(r16)
    jmp edge_loop
node_next:
    addi r8, r8, 1
    jmp node_loop
round_end:
    addi r19, r19, 1
    jmp round_loop
done:
    halt
"""


def _sssp_reference(graph: CsrGraph, source: int, rounds: int) -> list[int]:
    dist = [_INF] * graph.num_nodes
    dist[source] = 0
    for _ in range(rounds):
        for u in range(graph.num_nodes):
            du = dist[u]
            if du >= _INF:
                continue
            for v, w in zip(graph.out_neighbors(u), graph.out_weights(u)):
                nd = du + w
                if nd < dist[v]:
                    dist[v] = nd
    return dist


def sssp(num_nodes: int = 600, avg_degree: int = 6, seed: int = 37,
         rounds: int = 4) -> Workload:
    """Bellman-Ford rounds; H2P = the relaxation compare."""
    graph = uniform_graph(num_nodes, avg_degree, seed)
    source = 0
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        dist_init = [_INF] * num_nodes
        dist_init[source] = 0
        symbols["offsets"] = arena.alloc(graph.offsets)
        symbols["neighbors"] = arena.alloc(graph.neighbors)
        symbols["weights"] = arena.alloc(graph.weights)
        symbols["dist"] = arena.alloc(dist_init)
        symbols["num_nodes"] = num_nodes
        symbols["rounds"] = rounds
        symbols["inf"] = _INF
        return symbols

    def validate(pipeline) -> bool:
        expected = _sssp_reference(graph, source, rounds)
        return _read_words(pipeline, symbols["dist"], num_nodes) == expected

    return build(
        "sssp",
        _SSSP_SRC,
        populate,
        SIMPLE,
        "Bellman-Ford relaxation; relax-compare H2P",
        validate,
    )


# ======================================================================
# pr — PageRank (push), fixed-point arithmetic
# ======================================================================
_PR_SRC = """
    li  r1, {rank}
    li  r2, {nxt}
    li  r3, {offsets}
    li  r4, {neighbors}
    li  r17, {num_nodes}
    li  r18, {iters}
    li  r19, 0
iter_loop:
    bge r19, r18, done
    li  r8, 0
push_loop:
    bge r8, r17, scale_init
    shli r9, r8, 3
    add r21, r9, r1
    ld  r22, 0(r21)      # rank[u] (fixed point)
    add r9, r9, r3
    ld  r10, 0(r9)       # e
    ld  r11, 8(r9)       # end
    sub r23, r11, r10    # degree
    beqz r23, push_next
    div r24, r22, r23    # contribution = rank[u] / degree
edge_loop:
    bge r10, r11, push_next
    shli r12, r10, 3
    add r12, r12, r4
    ld  r13, 0(r12)      # v
    addi r10, r10, 1
    shli r14, r13, 3
    add r14, r14, r2
    ld  r15, 0(r14)
    add r15, r15, r24
    st  r15, 0(r14)      # nxt[v] += contribution
    jmp edge_loop
push_next:
    addi r8, r8, 1
    jmp push_loop
scale_init:
    li  r8, 0
scale_loop:
    bge r8, r17, iter_end
    shli r9, r8, 3
    add r14, r9, r2
    ld  r15, 0(r14)      # accumulated
    li  r26, {damping}
    mul r15, r15, r26
    li  r26, 100
    div r15, r15, r26    # * damping (0.85 as 85/100)
    addi r15, r15, {base}
    add r9, r9, r1
    st  r15, 0(r9)       # rank[u] = base + d * acc
    st  r0, 0(r14)       # nxt[u] = 0
    addi r8, r8, 1
    jmp scale_loop
iter_end:
    addi r19, r19, 1
    jmp iter_loop
done:
    halt
"""


def _pr_reference(graph: CsrGraph, iters: int, base: int, damping: int) -> list[int]:
    scale_one = 1_000_000
    rank = [scale_one] * graph.num_nodes
    for _ in range(iters):
        nxt = [0] * graph.num_nodes
        for u in range(graph.num_nodes):
            deg = graph.offsets[u + 1] - graph.offsets[u]
            if deg == 0:
                continue
            contribution = _py_div(rank[u], deg)
            for v in graph.out_neighbors(u):
                nxt[v] += contribution
        rank = [base + _py_div(acc * damping, 100) for acc in nxt]
    return rank


def _py_div(a: int, b: int) -> int:
    """Match the ISA's truncating signed division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def pr(num_nodes: int = 600, avg_degree: int = 8, seed: int = 41,
       iters: int = 3) -> Workload:
    """PageRank (push, fixed point); degree-varying loop trip counts."""
    graph = uniform_graph(num_nodes, avg_degree, seed)
    scale_one = 1_000_000
    base = 150_000       # (1-d)/N scaled; exact value irrelevant
    damping = 85
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["offsets"] = arena.alloc(graph.offsets)
        symbols["neighbors"] = arena.alloc(graph.neighbors)
        symbols["rank"] = arena.alloc([scale_one] * num_nodes)
        symbols["nxt"] = arena.alloc([0] * num_nodes)
        symbols["num_nodes"] = num_nodes
        symbols["iters"] = iters
        symbols["base"] = base
        symbols["damping"] = damping
        return symbols

    def validate(pipeline) -> bool:
        expected = _pr_reference(graph, iters, base, damping)
        return _read_words(pipeline, symbols["rank"], num_nodes) == expected

    return build(
        "pr",
        _PR_SRC,
        populate,
        SIMPLE,
        "PageRank push iterations; degree-dependent inner loops",
        validate,
    )


# ======================================================================
# bc — betweenness-centrality forward pass (BFS + path counting)
# ======================================================================
_BC_SRC = """
    li  r1, {queue}
    li  r2, {depth}
    li  r3, {offsets}
    li  r4, {neighbors}
    li  r7, {sigma}
    li  r5, 0            # head
    li  r6, 1            # tail
outer:
    bge r5, r6, done
    shli r8, r5, 3
    add r8, r8, r1
    ld  r9, 0(r8)        # u
    addi r5, r5, 1
    shli r10, r9, 3
    add r22, r10, r2
    ld  r23, 0(r22)      # du = depth[u]
    add r24, r10, r7
    ld  r25, 0(r24)      # su = sigma[u]
    add r10, r10, r3
    ld  r11, 0(r10)      # e
    ld  r12, 8(r10)      # end
    addi r23, r23, 1     # du + 1
inner:
    bge r11, r12, outer
    shli r13, r11, 3
    add r13, r13, r4
    ld  r14, 0(r13)      # v
    addi r11, r11, 1
    shli r15, r14, 3
    add r16, r15, r2
    ld  r17, 0(r16)      # depth[v]
    bge r17, r0, check   # H2P: visited?
    st  r23, 0(r16)      # depth[v] = du+1
    shli r18, r6, 3
    add r18, r18, r1
    st  r14, 0(r18)      # enqueue v
    addi r6, r6, 1
    add r19, r15, r7
    ld  r20, 0(r19)
    add r20, r20, r25
    st  r20, 0(r19)      # sigma[v] += sigma[u]
    jmp inner
check:
    bne r17, r23, inner  # H2P: same-depth path?
    add r19, r15, r7
    ld  r20, 0(r19)
    add r20, r20, r25
    st  r20, 0(r19)      # sigma[v] += sigma[u]
    jmp inner
done:
    halt
"""


def _bc_reference(graph: CsrGraph, source: int) -> tuple[list[int], list[int]]:
    depth = [-1] * graph.num_nodes
    sigma = [0] * graph.num_nodes
    depth[source] = 0
    sigma[source] = 1
    queue = [source]
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        du1 = depth[u] + 1
        su = sigma[u]
        for v in graph.out_neighbors(u):
            if depth[v] < 0:
                depth[v] = du1
                queue.append(v)
                sigma[v] += su
            elif depth[v] == du1:
                sigma[v] += su
    return depth, sigma


def bc(num_nodes: int = 1000, avg_degree: int = 8, seed: int = 53) -> Workload:
    """BC forward pass: BFS with shortest-path counting; two H2Ps."""
    graph = uniform_graph(num_nodes, avg_degree, seed)
    source = 0
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        depth_init = [-1] * num_nodes
        depth_init[source] = 0
        sigma_init = [0] * num_nodes
        sigma_init[source] = 1
        queue_init = [0] * (num_nodes + 4)
        queue_init[0] = source
        symbols["offsets"] = arena.alloc(graph.offsets)
        symbols["neighbors"] = arena.alloc(graph.neighbors)
        symbols["depth"] = arena.alloc(depth_init)
        symbols["sigma"] = arena.alloc(sigma_init)
        symbols["queue"] = arena.alloc(queue_init)
        return symbols

    def validate(pipeline) -> bool:
        depth, sigma = _bc_reference(graph, source)
        got_depth = _read_words(pipeline, symbols["depth"], num_nodes)
        got_sigma = _read_words(pipeline, symbols["sigma"], num_nodes)
        return got_depth == depth and got_sigma == sigma

    return build(
        "bc",
        _BC_SRC,
        populate,
        SIMPLE,
        "betweenness-centrality forward pass; visited + same-depth H2Ps",
        validate,
    )


# ======================================================================
# tc — triangle counting by sorted-adjacency intersection
# ======================================================================
_TC_SRC = """
    li  r1, {offsets}
    li  r2, {neighbors}
    li  r3, {result}
    li  r17, {num_nodes}
    li  r20, 0           # triangle count
    li  r8, 0            # u
u_loop:
    bge r8, r17, done
    shli r9, r8, 3
    add r9, r9, r1
    ld  r10, 0(r9)       # ue = offsets[u]
    ld  r11, 8(r9)       # uend
v_loop:
    bge r10, r11, u_next
    shli r12, r10, 3
    add r12, r12, r2
    ld  r13, 0(r12)      # v = neighbors[ue]
    addi r10, r10, 1
    ble r13, r8, v_loop  # only v > u
    shli r14, r13, 3
    add r14, r14, r1
    ld  r15, 0(r14)      # ve
    ld  r16, 8(r14)      # vend
    ld  r21, 0(r9)       # i = offsets[u]
    mov r22, r15         # j = offsets[v]
isect:
    bge r21, r11, v_loop
    bge r22, r16, v_loop
    shli r23, r21, 3
    add r23, r23, r2
    ld  r24, 0(r23)      # a = neighbors[i]
    shli r25, r22, 3
    add r25, r25, r2
    ld  r26, 0(r25)      # b = neighbors[j]
    beq r24, r26, match
    blt r24, r26, step_i # H2P: data-dependent merge step
    addi r22, r22, 1
    jmp isect
step_i:
    addi r21, r21, 1
    jmp isect
match:
    addi r20, r20, 1
    addi r21, r21, 1
    addi r22, r22, 1
    jmp isect
u_next:
    addi r8, r8, 1
    jmp u_loop
done:
    st  r20, 0(r3)
    halt
"""


def _tc_reference(graph: CsrGraph) -> int:
    count = 0
    for u in range(graph.num_nodes):
        for v in graph.out_neighbors(u):
            if v <= u:
                continue
            a = graph.out_neighbors(u)
            b = graph.out_neighbors(v)
            i = j = 0
            while i < len(a) and j < len(b):
                if a[i] == b[j]:
                    count += 1
                    i += 1
                    j += 1
                elif a[i] < b[j]:
                    i += 1
                else:
                    j += 1
    return count


def tc(num_nodes: int = 260, avg_degree: int = 10, seed: int = 67) -> Workload:
    """Triangle counting; merge-intersection compare is a classic H2P."""
    graph = uniform_graph(num_nodes, avg_degree, seed, sorted_adjacency=True)
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["offsets"] = arena.alloc(graph.offsets)
        symbols["neighbors"] = arena.alloc(graph.neighbors)
        symbols["result"] = arena.alloc([0])
        symbols["num_nodes"] = num_nodes
        return symbols

    def validate(pipeline) -> bool:
        expected = _tc_reference(graph)
        return _read_words(pipeline, symbols["result"], 1)[0] == expected

    return build(
        "tc",
        _TC_SRC,
        populate,
        SIMPLE,
        "triangle counting via sorted intersection; merge-step H2P",
        validate,
    )
