"""Workload registry: names, categories, and scaled construction.

``make_workload(name, scale)`` builds a deterministic workload at one
of three scales:

* ``tiny``  — seconds-long runs for unit/integration tests,
* ``small`` — between tiny and bench (~20-30k instructions); sized for
  sampled-simulation demos and smoke tests (a few workloads only),
* ``bench`` — the default used by the benchmark harness (tens of
  thousands of instructions; large enough for H2P training, Fill
  Buffer walks, and stable IPC),
* ``full``  — larger runs for offline studies.

The paper's Fig. 8 category split is exposed via
:func:`simple_control_flow_names` / :func:`complex_control_flow_names`.
"""

from __future__ import annotations

from typing import Callable

from ..analysis import LintReport, lint_program
from . import gap, spec
from .base import SIMPLE, Workload

# name -> {scale -> kwargs}
_SCALES: dict[str, dict[str, dict]] = {
    "bfs": {
        "tiny": dict(num_nodes=150, avg_degree=5, seed=11),
        "small": dict(num_nodes=300, avg_degree=6, seed=11),
        "bench": dict(num_nodes=700, avg_degree=8, seed=11),
        "full": dict(num_nodes=4000, avg_degree=10, seed=11),
    },
    "cc": {
        "tiny": dict(num_nodes=80, avg_degree=4, seed=23, max_iters=3),
        "small": dict(num_nodes=160, avg_degree=5, seed=23, max_iters=3),
        "bench": dict(num_nodes=320, avg_degree=6, seed=23, max_iters=4),
        "full": dict(num_nodes=1500, avg_degree=8, seed=23, max_iters=8),
    },
    "sssp": {
        "tiny": dict(num_nodes=80, avg_degree=4, seed=37, rounds=2),
        "small": dict(num_nodes=160, avg_degree=5, seed=37, rounds=2),
        "bench": dict(num_nodes=300, avg_degree=6, seed=37, rounds=3),
        "full": dict(num_nodes=1200, avg_degree=8, seed=37, rounds=6),
    },
    "pr": {
        "tiny": dict(num_nodes=80, avg_degree=5, seed=41, iters=2),
        "small": dict(num_nodes=160, avg_degree=6, seed=41, iters=2),
        "bench": dict(num_nodes=260, avg_degree=8, seed=41, iters=2),
        "full": dict(num_nodes=1200, avg_degree=10, seed=41, iters=4),
    },
    "bc": {
        "tiny": dict(num_nodes=150, avg_degree=5, seed=53),
        "bench": dict(num_nodes=650, avg_degree=8, seed=53),
        "full": dict(num_nodes=4000, avg_degree=10, seed=53),
    },
    "tc": {
        "tiny": dict(num_nodes=60, avg_degree=6, seed=67),
        "bench": dict(num_nodes=150, avg_degree=10, seed=67),
        "full": dict(num_nodes=500, avg_degree=14, seed=67),
    },
    "mcf": {
        "tiny": dict(count=600, arcs=8192, seed=101),
        "bench": dict(count=3500, arcs=65536, seed=101),
        "full": dict(count=20000, arcs=262144, seed=101),
    },
    "gcc": {
        "tiny": dict(count=800, seed=113),
        "bench": dict(count=4500, seed=113),
        "full": dict(count=25000, seed=113),
    },
    "omnetpp": {
        "tiny": dict(count=200, heap_size=128, seed=127),
        "bench": dict(count=1100, heap_size=512, seed=127),
        "full": dict(count=6000, heap_size=2048, seed=127),
    },
    "deepsjeng": {
        "tiny": dict(depth=5, seed=131),
        "bench": dict(depth=7, seed=131),
        "full": dict(depth=9, seed=131),
    },
    "leela": {
        "tiny": dict(playouts=60, seed=139),
        "bench": dict(playouts=330, seed=139),
        "full": dict(playouts=2000, seed=139),
    },
    "perlbench": {
        "tiny": dict(count=700, seed=149),
        "bench": dict(count=4000, seed=149),
        "full": dict(count=20000, seed=149),
    },
    "xalancbmk": {
        "tiny": dict(num_nodes=800, seed=151),
        "bench": dict(num_nodes=4500, seed=151),
        "full": dict(num_nodes=20000, seed=151),
    },
    "xz": {
        "tiny": dict(positions=400, seed=157),
        "bench": dict(positions=2200, seed=157),
        "full": dict(positions=12000, seed=157),
    },
    "x264": {
        "tiny": dict(blocks=120, seed=163),
        "bench": dict(blocks=700, seed=163),
        "full": dict(blocks=4000, seed=163),
    },
    "exchange2": {
        "tiny": dict(size=5, seed=167),
        "bench": dict(size=6, seed=167),
        "full": dict(size=8, seed=167),
    },
    "nab": {
        "tiny": dict(num_pairs=600, num_atoms=8192, seed=173),
        "bench": dict(num_pairs=3200, num_atoms=32768, seed=173),
        "full": dict(num_pairs=18000, num_atoms=131072, seed=173),
    },
}

_BUILDERS: dict[str, Callable[..., Workload]] = {
    "bfs": gap.bfs,
    "cc": gap.cc,
    "sssp": gap.sssp,
    "pr": gap.pr,
    "bc": gap.bc,
    "tc": gap.tc,
    "mcf": spec.mcf,
    "gcc": spec.gcc,
    "omnetpp": spec.omnetpp,
    "deepsjeng": spec.deepsjeng,
    "leela": spec.leela,
    "perlbench": spec.perlbench,
    "xalancbmk": spec.xalancbmk,
    "xz": spec.xz,
    "x264": spec.x264,
    "exchange2": spec.exchange2,
    "nab": spec.nab,
}

GAP_NAMES = ("bfs", "bc", "cc", "pr", "sssp", "tc")
SPEC_NAMES = (
    "mcf",
    "gcc",
    "omnetpp",
    "deepsjeng",
    "leela",
    "perlbench",
    "xalancbmk",
    "xz",
    "x264",
    "exchange2",
    "nab",
)
ALL_NAMES = SPEC_NAMES + GAP_NAMES


def workload_names() -> tuple[str, ...]:
    """All workload names, SPEC first then GAP (paper figure order)."""
    return ALL_NAMES


def make_workload(name: str, scale: str = "bench") -> Workload:
    """Construct a workload by name at the given scale.

    Names under the ``fuzz/`` namespace resolve to minimized fuzz repro
    records from the corpus (``benchmarks/fuzz/``); they are
    self-contained programs, so ``scale`` is ignored for them.  The
    import is lazy — the registry sits below :mod:`repro.fuzz` in the
    architecture layering and must not import it at module scope.
    """
    if name.startswith("fuzz/"):
        from ..fuzz.corpus import make_corpus_workload

        return make_corpus_workload(name)
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; see workload_names()") from None
    try:
        kwargs = _SCALES[name][scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r} for {name!r}; "
            "use tiny/bench/full (or small where registered)"
        ) from None
    return builder(**kwargs)


def fuzz_corpus_names() -> tuple[str, ...]:
    """``fuzz/<stem>`` names for every repro record in the corpus.

    Empty when the corpus directory is absent or empty — the fuzz
    regression namespace only exists once a campaign has findings.
    """
    from ..fuzz.corpus import corpus_names

    return corpus_names()


def lint_workload(name: str, scale: str = "tiny") -> LintReport:
    """Lint one registered workload's assembled program."""
    return lint_program(make_workload(name, scale).program)


def lint_registered(scale: str = "tiny") -> dict[str, LintReport]:
    """Lint every registered workload (CI gate: all must be clean).

    Registration implies lint-cleanliness: ``repro lint --all`` and
    ``tests/test_analysis_lint.py`` fail if any report here has
    findings, so a new workload cannot land with undefined reads,
    unreachable blocks, or a missing ``halt``.
    """
    return {name: lint_workload(name, scale) for name in ALL_NAMES}


def simple_control_flow_names() -> tuple[str, ...]:
    """Paper §V-C: all GAP benchmarks plus xz."""
    return tuple(
        name for name in ALL_NAMES if make_category(name) == SIMPLE
    )


def complex_control_flow_names() -> tuple[str, ...]:
    """Paper §V-C: every non-GAP benchmark except xz."""
    return tuple(
        name for name in ALL_NAMES if make_category(name) != SIMPLE
    )


_CATEGORY = {name: (SIMPLE if name in GAP_NAMES + ("xz",) else "complex")
             for name in ALL_NAMES}


def make_category(name: str) -> str:
    """Control-flow category without building the workload."""
    return _CATEGORY[name]
