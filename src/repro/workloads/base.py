"""Workload infrastructure: arena allocation, the Workload record.

A workload bundles an assembled program, a populated memory image, a
control-flow *category* (the paper's Fig. 8 split into simple/complex
control flow), and an optional functional validator that checks
committed architectural state after the run — the execution-driven
simulator computes real results, so kernels can be verified end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..isa import Program, assemble
from ..memory import MemoryImage

SIMPLE = "simple"
COMPLEX = "complex"

DATA_BASE = 0x0001_0000
STACK_TOP = 0x0100_0000


class Arena:
    """Bump allocator laying out arrays in a memory image."""

    def __init__(self, memory: MemoryImage, base: int = DATA_BASE):
        self.memory = memory
        self._next = base

    def alloc(self, values) -> int:
        """Store ``values`` as consecutive words; returns base address."""
        base = self._next
        self._next = self.memory.write_array(base, values)
        # Pad to a cache line so arrays do not share lines.
        self._next = (self._next + 63) & ~63
        return base

    def reserve(self, count: int) -> int:
        """Reserve ``count`` zeroed words; returns base address."""
        return self.alloc([0] * count)


@dataclass
class Workload:
    """A runnable benchmark: program + data + metadata."""

    name: str
    program: Program
    memory: MemoryImage
    category: str                      # SIMPLE or COMPLEX control flow
    description: str = ""
    validate: Callable | None = field(default=None, repr=False)

    def fresh_memory(self) -> MemoryImage:
        """An isolated copy of the input image (runs mutate memory)."""
        return MemoryImage(self.memory.snapshot())


def build(
    name: str,
    source: str,
    populate: Callable[[Arena], dict],
    category: str,
    description: str = "",
    validate: Callable | None = None,
) -> Workload:
    """Assemble + populate a workload.

    ``populate`` receives an :class:`Arena` and returns a dict of
    symbol -> value substituted into the assembly source via
    ``str.format`` (so kernels reference data addresses symbolically).
    """
    memory = MemoryImage()
    arena = Arena(memory)
    symbols = populate(arena)
    program = assemble(source.format(**symbols))
    return Workload(
        name=name,
        program=program,
        memory=memory,
        category=category,
        description=description,
        validate=validate,
    )
