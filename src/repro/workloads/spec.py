"""SPEC CPU2017 proxy kernels.

SPEC sources and ref inputs are proprietary and 200M-instruction
SimPoints are far beyond Python simulation speed, so each benchmark is
replaced by a micro-ISA kernel reproducing the *branch behaviour* the
paper attributes to it (DESIGN.md §5):

==============  ====================================================
benchmark       proxy behaviour
==============  ====================================================
mcf             multi-path dependence chains into one H2P compare
                (paper Fig. 3) + large pointer-permuted working set
gcc             jump-table dispatch over many handlers, moderate MPKI,
                large static footprint
omnetpp         binary-heap event queue; sift compares are H2P; large
                heap pressures the Block Cache
deepsjeng       recursive alpha-beta with hash probes; deep call
                stacks and big static footprint
leela           tree descent picking argmax children; compare H2Ps
perlbench       bytecode interpreter: indirect-jump dispatch (H2P
                *targets*) + hash lookups with long-latency loads
xalancbmk       pointer-chasing tree traversal; gains come mostly from
                the prefetch side-effect of precomputed chains
xz              match-length loops; the one simple-control-flow SPEC
                benchmark (paper Fig. 8)
x264            SAD loops with data-dependent early exit
exchange2       backtracking permutation search; mostly predictable
nab             FP pair interactions; few H2Ps guarding long loads
==============  ====================================================

All kernels validate against a Python re-implementation.
"""

from __future__ import annotations

import random

from .base import COMPLEX, SIMPLE, Arena, Workload, build
from .data import random_ints, random_permutation, random_signs


def _read(pipeline, base: int, count: int) -> list:
    return pipeline.memory.read_array(base, count)


# ======================================================================
# mcf — multi-path H2P chains over a permuted (cache-hostile) arc array
# ======================================================================
_MCF_SRC = """
    li  r1, {perm}
    li  r2, {cost}
    li  r3, {potential}
    li  r4, {flags}
    li  r5, {result}
    li  r17, {count}
    li  r20, 0           # pivot counter
    li  r21, 0           # acc
    li  r8, 0            # i
loop:
    bge r8, r17, done
    shli r9, r8, 3
    add r10, r9, r1
    ld  r11, 0(r10)      # a = perm[i]  (random arc index)
    add r12, r9, r4
    ld  r13, 0(r12)      # flag[i]
    shli r14, r11, 3
    add r15, r14, r2
    ld  r16, 0(r15)      # cost[a]  (long-latency: permuted)
    beqz r13, path_b     # intermediate branch (biased, learnable)
    add r18, r14, r3
    ld  r19, 0(r18)      # potential[a]
    sub r22, r16, r19    # t = cost - potential   (path A)
    jmp join
path_b:
    add r18, r14, r3
    ld  r19, 8(r18)      # potential[a+1]
    add r22, r16, r19    # t = cost + potential   (path B)
join:
    bge r22, r0, next    # H2P: pivot test, depends on either path
    addi r20, r20, 1
    add r21, r21, r22
next:
    addi r8, r8, 1
    jmp loop
done:
    st  r20, 0(r5)
    st  r21, 8(r5)
    halt
"""


def mcf(count: int = 6000, arcs: int = 65536, seed: int = 101) -> Workload:
    """Network-simplex pivot search proxy (paper Fig. 3 pattern)."""
    rng = random.Random(seed)
    perm = [rng.randrange(arcs) for _ in range(count)]
    cost = random_signs(arcs, 1000, seed + 1)
    potential = random_ints(arcs + 1, 0, 900, seed + 2)
    # The intermediate path-select branch follows a short repeating
    # pattern: TAGE learns it almost perfectly (the paper observes
    # ~80% intermediate-branch accuracy on mcf), but the *chain* into
    # the H2P pivot test alternates between two paths every few
    # iterations — the paper's Fig. 3 situation, which defeats
    # single-path (Branch Runahead style) chains while the TEA
    # thread's OR-combined bit-masks stay correct on both.
    pattern = (1, 1, 0, 1, 0)
    flags = [
        pattern[i % len(pattern)] if rng.random() < 0.97 else 1 - pattern[i % len(pattern)]
        for i in range(count)
    ]
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["perm"] = arena.alloc(perm)
        symbols["cost"] = arena.alloc(cost)
        symbols["potential"] = arena.alloc(potential)
        symbols["flags"] = arena.alloc(flags)
        symbols["result"] = arena.alloc([0, 0])
        symbols["count"] = count
        return symbols

    def validate(pipeline) -> bool:
        pivots = acc = 0
        for i in range(count):
            a = perm[i]
            t = (
                cost[a] - potential[a]
                if flags[i]
                else cost[a] + potential[a + 1]
            )
            if t < 0:
                pivots += 1
                acc += t
        return _read(pipeline, symbols["result"], 2) == [pivots, acc]

    return build(
        "mcf",
        _MCF_SRC,
        populate,
        COMPLEX,
        "multi-path chains into one H2P pivot test; permuted working set",
        validate,
    )


# ======================================================================
# gcc — jump-table dispatch over handlers with data-dependent branches
# ======================================================================
_GCC_SRC = """
    li  r1, {ops}
    li  r2, {vals}
    li  r3, {table}
    li  r5, {result}
    li  r17, {count}
    li  r20, 0           # acc
    li  r8, 0            # i
loop:
    bge r8, r17, done
    shli r9, r8, 3
    add r10, r9, r1
    ld  r11, 0(r10)      # op = ops[i]
    add r12, r9, r2
    ld  r13, 0(r12)      # v = vals[i]
    shli r14, r11, 3
    add r14, r14, r3
    ld  r15, 0(r14)      # handler address
    addi r8, r8, 1
    jr  r15              # dispatch (indirect, data-dependent target)
h0: add r20, r20, r13
    jmp loop
h1: sub r20, r20, r13
    jmp loop
h2: bge r13, r0, h2pos   # data-dependent branch in handler
    subi r20, r20, 1
    jmp loop
h2pos:
    addi r20, r20, 1
    jmp loop
h3: xor r20, r20, r13
    jmp loop
h4: shri r18, r13, 1
    add r20, r20, r18
    jmp loop
h5: andi r18, r13, 255
    add r20, r20, r18
    jmp loop
h6: blt r20, r13, h6lt   # data-dependent compare vs accumulator
    subi r20, r20, 3
    jmp loop
h6lt:
    addi r20, r20, 3
    jmp loop
h7: mul r18, r13, r13
    andi r18, r18, 1023
    add r20, r20, r18
    jmp loop
done:
    st  r20, 0(r5)
    halt
"""


def gcc(count: int = 7000, seed: int = 113) -> Workload:
    """Compiler-pass proxy: 8-way indirect dispatch, branchy handlers."""
    rng = random.Random(seed)
    # Skewed opcode mix with phase changes, like IR streams.
    ops = []
    for i in range(count):
        if (i // 512) % 2 == 0:
            ops.append(rng.choice([0, 1, 2, 2, 3, 6]))
        else:
            ops.append(rng.choice([2, 4, 5, 6, 6, 7]))
    # Mostly-positive values: handler-internal branches are biased and
    # learnable, keeping gcc's MPKI moderate (paper Fig. 6).
    vals = [
        v if rng.random() < 0.85 else -v
        for v in random_ints(count, 1, 500, seed + 1)
    ]
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["ops"] = arena.alloc(ops)
        symbols["vals"] = arena.alloc(vals)
        symbols["table"] = arena.reserve(8)   # patched after assembly
        symbols["result"] = arena.alloc([0])
        symbols["count"] = count
        return symbols

    def validate(pipeline) -> bool:
        acc = 0
        mask = (1 << 64) - 1

        def wrap(x):
            x &= mask
            return x - (1 << 64) if x >> 63 else x

        for op, v in zip(ops, vals):
            if op == 0:
                acc = wrap(acc + v)
            elif op == 1:
                acc = wrap(acc - v)
            elif op == 2:
                acc = wrap(acc + (1 if v >= 0 else -1))
            elif op == 3:
                acc = wrap(acc ^ v)
            elif op == 4:
                acc = wrap(acc + ((v & mask) >> 1))
            elif op == 5:
                acc = wrap(acc + (v & 255))
            elif op == 6:
                acc = wrap(acc + (3 if acc < v else -3))
            else:
                acc = wrap(acc + ((v * v) & 1023))
        return _read(pipeline, symbols["result"], 1) == [acc]

    workload = build(
        "gcc",
        _GCC_SRC,
        populate,
        COMPLEX,
        "jump-table dispatch with branchy handlers",
        validate,
    )
    # Patch the handler table now that label PCs are known.
    labels = workload.program.labels
    handlers = [labels[f"h{k}"] for k in range(8)]
    workload.memory.write_array(symbols["table"], handlers)
    return workload


# ======================================================================
# omnetpp — binary-heap event queue (discrete event simulation core)
# ======================================================================
_OMNETPP_SRC = """
    li  r1, {heap}
    li  r2, {keys}
    li  r5, {result}
    li  r17, {count}
    li  r18, {heap_size}   # current size (pre-seeded)
    li  r20, 0             # checksum
    li  r8, 0              # event counter
event_loop:
    bge r8, r17, done
    # --- pop-min: root value to checksum, move last up, sift down ---
    ld  r9, 0(r1)          # min
    add r20, r20, r9
    subi r18, r18, 1
    shli r10, r18, 3
    add r10, r10, r1
    ld  r11, 0(r10)        # last element
    li  r12, 0             # hole index
sift_down:
    shli r13, r12, 1
    addi r13, r13, 1       # left child
    bge r13, r18, place
    shli r14, r13, 3
    add r14, r14, r1
    ld  r15, 0(r14)        # left value
    addi r16, r13, 1
    bge r16, r18, no_right
    shli r19, r16, 3
    add r19, r19, r1
    ld  r21, 0(r19)        # right value
    bge r21, r15, no_right # H2P: which child is smaller?
    mov r13, r16
    mov r15, r21
no_right:
    bge r15, r11, place    # H2P: done sifting?
    shli r22, r12, 3
    add r22, r22, r1
    st  r15, 0(r22)        # move child up
    mov r12, r13
    jmp sift_down
place:
    shli r22, r12, 3
    add r22, r22, r1
    st  r11, 0(r22)
    # --- push: new key, sift up ---
    shli r9, r8, 3
    add r9, r9, r2
    ld  r11, 0(r9)         # new key
    mov r12, r18
    addi r18, r18, 1
sift_up:
    beqz r12, place_up
    subi r13, r12, 1
    shri r13, r13, 1       # parent
    shli r14, r13, 3
    add r14, r14, r1
    ld  r15, 0(r14)
    ble r15, r11, place_up # H2P: heap order satisfied?
    shli r16, r12, 3
    add r16, r16, r1
    st  r15, 0(r16)        # move parent down
    mov r12, r13
    jmp sift_up
place_up:
    shli r16, r12, 3
    add r16, r16, r1
    st  r11, 0(r16)
    addi r8, r8, 1
    jmp event_loop
done:
    st  r20, 0(r5)
    halt
"""


def omnetpp(count: int = 1500, heap_size: int = 512, seed: int = 127) -> Workload:
    """Discrete-event-simulation proxy: heap pop+push per event."""
    rng = random.Random(seed)
    initial = sorted(rng.randrange(1 << 30) for _ in range(heap_size))
    # Heapify by construction: a sorted array is a valid min-heap.
    keys = [rng.randrange(1 << 30) for _ in range(count)]
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["heap"] = arena.alloc(initial + [0] * (count + 4))
        symbols["keys"] = arena.alloc(keys)
        symbols["result"] = arena.alloc([0])
        symbols["count"] = count
        symbols["heap_size"] = heap_size
        return symbols

    def validate(pipeline) -> bool:
        heap = list(initial)
        checksum = 0

        def sift_down(hole, last_val, size):
            while True:
                child = 2 * hole + 1
                if child >= size:
                    break
                if child + 1 < size and heap[child + 1] < heap[child]:
                    child += 1
                if heap[child] >= last_val:
                    break
                heap[hole] = heap[child]
                hole = child
            heap[hole] = last_val

        for key in keys:
            checksum += heap[0]
            last_val = heap.pop()
            if heap:
                sift_down(0, last_val, len(heap))
            # push
            heap.append(key)
            i = len(heap) - 1
            while i > 0:
                parent = (i - 1) >> 1
                if heap[parent] <= key:
                    break
                heap[i] = heap[parent]
                i = parent
            heap[i] = key
        return _read(pipeline, symbols["result"], 1) == [checksum]

    return build(
        "omnetpp",
        _OMNETPP_SRC,
        populate,
        COMPLEX,
        "binary-heap event queue; sift compares are H2P",
        validate,
    )


# ======================================================================
# deepsjeng — recursive alpha-beta search with hash probes
# ======================================================================
_DEEPSJENG_SRC = """
    li  sp, {stack_top}
    li  r1, {scores}
    li  r2, {hash}
    li  r5, {result}
    li  r25, {hash_mask}
    li  r26, {score_mask}
    li  r20, 0             # node counter
    li  r3, {depth}        # depth
    li  r4, 0              # position key
    call search
    st  r20, 0(r5)
    st  r10, 8(r5)
    halt

# search(r3=depth, r4=key) -> r10=score ; clobbers caller-saved
search:
    addi r20, r20, 1
    bnez r3, recurse
    # leaf: score = scores[key & score_mask]
    and r10, r4, r26
    shli r10, r10, 3
    add r10, r10, r1
    ld  r10, 0(r10)
    ret
recurse:
    # hash probe: if hash[key & mask] == key, cut off (H2P)
    and r11, r4, r25
    shli r11, r11, 3
    add r11, r11, r2
    ld  r12, 0(r11)
    bne r12, r4, no_hit    # H2P: transposition hit?
    li  r10, 0
    ret
no_hit:
    st  r4, 0(r11)         # install in hash table
    # iterate 3 child moves, negamax with pruning
    subi sp, sp, 40
    st  ra, 0(sp)
    st  r3, 8(sp)          # depth
    st  r4, 16(sp)         # key
    li  r13, -1000000
    st  r13, 24(sp)        # best
    st  r0, 32(sp)         # move index
child_loop:
    ld  r14, 32(sp)        # m
    li  r15, 3
    bge r14, r15, children_done
    ld  r4, 16(sp)
    mul r16, r4, r15
    add r16, r16, r14
    addi r16, r16, 1
    li  r17, 1048573
    rem r4, r16, r17       # child key
    ld  r3, 8(sp)
    subi r3, r3, 1
    call search            # recurse
    ld  r13, 24(sp)
    sub r10, r0, r10       # negamax
    ble r10, r13, not_better   # H2P: new best?
    st  r10, 24(sp)
    # beta cutoff: prune when score big (data-dependent)
    li  r18, 400
    blt r10, r18, not_better
    jmp children_done
not_better:
    ld  r14, 32(sp)
    addi r14, r14, 1
    st  r14, 32(sp)
    jmp child_loop
children_done:
    ld  r10, 24(sp)
    ld  ra, 0(sp)
    addi sp, sp, 40
    ret
"""


def deepsjeng(depth: int = 7, seed: int = 131) -> Workload:
    """Game-tree search proxy: recursion, hash probes, pruning."""
    score_count = 4096
    hash_size = 2048
    scores = random_ints(score_count, -500, 500, seed)
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        from .base import STACK_TOP

        symbols["scores"] = arena.alloc(scores)
        symbols["hash"] = arena.alloc([-1] * hash_size)
        symbols["result"] = arena.alloc([0, 0])
        symbols["hash_mask"] = hash_size - 1
        symbols["score_mask"] = score_count - 1
        symbols["depth"] = depth
        symbols["stack_top"] = STACK_TOP
        return symbols

    def validate(pipeline) -> bool:
        hash_table = [-1] * hash_size
        nodes = 0

        def search(d, key):
            nonlocal nodes
            nodes += 1
            if d == 0:
                return scores[key & (score_count - 1)]
            slot = key & (hash_size - 1)
            if hash_table[slot] == key:
                return 0
            hash_table[slot] = key
            best = -1000000
            for m in range(3):
                child = (key * 3 + m + 1) % 1048573
                score = -search(d - 1, child)
                if score > best:
                    best = score
                    if score >= 400:
                        break
            return best

        score = search(depth, 0)
        return _read(pipeline, symbols["result"], 2) == [nodes, score]

    return build(
        "deepsjeng",
        _DEEPSJENG_SRC,
        populate,
        COMPLEX,
        "alpha-beta recursion with hash-probe and pruning H2Ps",
        validate,
    )


# ======================================================================
# leela — tree descent picking argmax-scored children (MCTS proxy)
# ======================================================================
_LEELA_SRC = """
    li  r1, {visits}
    li  r2, {values}
    li  r5, {result}
    li  r17, {playouts}
    li  r25, {node_mask}
    li  r20, 0             # playout counter
    li  r21, 0             # checksum
playout:
    bge r20, r17, done
    li  r4, 0              # node = root
    li  r22, 0             # depth
descend:
    li  r23, 6
    bge r22, r23, leaf
    # pick argmax over 4 children: score = value[c]*64 / (visits[c]+1)
    li  r9, 0              # m
    li  r10, -1000000000   # best score
    li  r11, 0             # best child
child:
    li  r23, 4
    bge r9, r23, picked
    shli r12, r4, 2
    add r12, r12, r9       # child id = node*4 + m
    addi r12, r12, 1
    and r12, r12, r25
    shli r13, r12, 3
    add r14, r13, r2
    ld  r15, 0(r14)        # value[c]
    add r16, r13, r1
    ld  r18, 0(r16)        # visits[c]
    shli r15, r15, 6
    addi r18, r18, 1
    div r15, r15, r18      # exploitation score
    addi r9, r9, 1
    ble r15, r10, child    # H2P: is this child better?
    mov r10, r15
    mov r11, r12
    jmp child
picked:
    # update visit count of chosen child
    shli r13, r11, 3
    add r13, r13, r1
    ld  r18, 0(r13)
    addi r18, r18, 1
    st  r18, 0(r13)
    mov r4, r11
    addi r22, r22, 1
    jmp descend
leaf:
    # rollout: xorshift on node id, add to leaf value
    shli r9, r4, 3
    add r9, r9, r2
    ld  r15, 0(r9)
    mul r16, r4, r20
    addi r16, r16, 12345
    andi r16, r16, 127
    subi r16, r16, 64      # pseudo-random result in [-64, 63]
    add r15, r15, r16
    st  r15, 0(r9)
    add r21, r21, r4       # checksum of visited leaves
    addi r20, r20, 1
    jmp playout
done:
    st  r21, 0(r5)
    halt
"""


def leela(playouts: int = 500, seed: int = 139) -> Workload:
    """MCTS proxy: argmax child selection with evolving statistics."""
    node_count = 8192
    values = random_ints(node_count, -100, 100, seed)
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["visits"] = arena.alloc([0] * node_count)
        symbols["values"] = arena.alloc(values)
        symbols["result"] = arena.alloc([0])
        symbols["playouts"] = playouts
        symbols["node_mask"] = node_count - 1
        return symbols

    def validate(pipeline) -> bool:
        visits = [0] * node_count
        vals = list(values)
        checksum = 0

        def sdiv(a, b):
            q = abs(a) // abs(b)
            return -q if (a < 0) != (b < 0) else q

        for p in range(playouts):
            node = 0
            for _depth in range(6):
                best_score, best_child = -1000000000, 0
                for m in range(4):
                    c = ((node * 4 + m) + 1) & (node_count - 1)
                    score = sdiv(vals[c] * 64, visits[c] + 1)
                    if score > best_score:
                        best_score, best_child = score, c
                visits[best_child] += 1
                node = best_child
            rollout = ((node * p + 12345) & 127) - 64
            vals[node] += rollout
            checksum += node
        return _read(pipeline, symbols["result"], 1) == [checksum]

    return build(
        "leela",
        _LEELA_SRC,
        populate,
        COMPLEX,
        "MCTS descent; argmax compares over evolving statistics",
        validate,
    )


# ======================================================================
# perlbench — bytecode interpreter with indirect dispatch + hashing
# ======================================================================
_PERL_SRC = """
    li  r1, {code}
    li  r2, {table}
    li  r3, {hashtab}
    li  r5, {result}
    li  r17, {count}
    li  r25, {hash_mask}
    li  r20, 0             # acc
    li  r21, 0             # stack-ish register
    li  r8, 0              # ip
dispatch:
    bge r8, r17, done
    shli r9, r8, 3
    add r9, r9, r1
    ld  r10, 0(r9)         # packed (op << 32 | operand)
    shri r11, r10, 32      # op
    li  r26, 4294967295
    and r12, r10, r26      # operand
    addi r8, r8, 1
    shli r13, r11, 3
    add r13, r13, r2
    ld  r14, 0(r13)
    jr  r14                # H2P indirect: opcode-dependent target
op_push:
    mov r21, r12
    jmp dispatch
op_add:
    add r20, r20, r21
    jmp dispatch
op_hash:
    mul r15, r12, r21
    addi r15, r15, 2654435761
    and r15, r15, r25
    shli r15, r15, 3
    add r15, r15, r3
    ld  r16, 0(r15)        # long-latency hash lookup
    add r20, r20, r16
    jmp dispatch
op_cmp:
    blt r21, r12, cmp_lt   # data-dependent compare
    subi r20, r20, 7
    jmp dispatch
cmp_lt:
    addi r20, r20, 7
    jmp dispatch
op_xor:
    xor r20, r20, r12
    jmp dispatch
op_store:
    and r15, r12, r25
    shli r15, r15, 3
    add r15, r15, r3
    st  r20, 0(r15)        # hash store
    jmp dispatch
done:
    st  r20, 0(r5)
    halt
"""


def perlbench(count: int = 5000, seed: int = 149) -> Workload:
    """Interpreter proxy: 6-op bytecode VM, indirect-dispatch H2P."""
    rng = random.Random(seed)
    hash_size = 32768
    # Interpreters run the same bytecode regions repeatedly: tile a
    # small "program" with occasional divergence.  Dispatch is mostly
    # learnable (low MPKI, like real perlbench) while the hash loads
    # under the remaining H2Ps are long-latency.
    pattern = [rng.choice([0, 1, 1, 2, 3, 3, 4, 5]) for _ in range(24)]
    ops = []
    for i in range(count):
        if rng.random() < 0.1:
            ops.append(rng.choice([0, 1, 2, 3, 4, 5]))
        else:
            ops.append(pattern[i % len(pattern)])
    operands = random_ints(count, 0, (1 << 31) - 1, seed + 1)
    code = [(op << 32) | (val & 0xFFFFFFFF) for op, val in zip(ops, operands)]
    hash_init = random_ints(hash_size, -50, 50, seed + 2)
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["code"] = arena.alloc(code)
        symbols["table"] = arena.reserve(6)
        symbols["hashtab"] = arena.alloc(hash_init)
        symbols["result"] = arena.alloc([0])
        symbols["count"] = count
        symbols["hash_mask"] = hash_size - 1
        return symbols

    def validate(pipeline) -> bool:
        mask64 = (1 << 64) - 1

        def wrap(x):
            x &= mask64
            return x - (1 << 64) if x >> 63 else x

        table = list(hash_init)
        acc = reg = 0
        for op, val in zip(ops, operands):
            operand = val & 0xFFFFFFFF
            if op == 0:
                reg = operand
            elif op == 1:
                acc = wrap(acc + reg)
            elif op == 2:
                idx = wrap(operand * reg) + 2654435761
                idx &= hash_size - 1
                acc = wrap(acc + table[idx])
            elif op == 3:
                acc = wrap(acc + (7 if reg < operand else -7))
            elif op == 4:
                acc = wrap(acc ^ operand)
            else:
                table[operand & (hash_size - 1)] = acc
        return _read(pipeline, symbols["result"], 1) == [acc]

    workload = build(
        "perlbench",
        _PERL_SRC,
        populate,
        COMPLEX,
        "bytecode VM; indirect-dispatch target H2P + hash loads",
        validate,
    )
    labels = workload.program.labels
    handlers = [
        labels["op_push"],
        labels["op_add"],
        labels["op_hash"],
        labels["op_cmp"],
        labels["op_xor"],
        labels["op_store"],
    ]
    workload.memory.write_array(symbols["table"], handlers)
    return workload


# ======================================================================
# xalancbmk — pointer-chasing tree traversal (prefetch-dominated)
# ======================================================================
_XALANC_SRC = """
    li  r1, {stack}
    li  r5, {result}
    li  r20, 0             # weight checksum
    li  r21, 0             # node count
    li  r6, 1              # stack size (root pre-pushed)
walk:
    beqz r6, done
    subi r6, r6, 1
    shli r7, r6, 3
    add r7, r7, r1
    ld  r8, 0(r7)          # node address
    ld  r9, 0(r8)          # node.weight   (pointer chase: long latency)
    ld  r10, 8(r8)         # node.kind
    ld  r11, 16(r8)        # node.left
    ld  r12, 24(r8)        # node.right
    addi r21, r21, 1
    beqz r10, skip_weight  # H2P-ish: element vs text node
    add r20, r20, r9
skip_weight:
    beqz r11, no_left
    shli r13, r6, 3
    add r13, r13, r1
    st  r11, 0(r13)        # push left
    addi r6, r6, 1
no_left:
    beqz r12, walk
    shli r13, r6, 3
    add r13, r13, r1
    st  r12, 0(r13)        # push right
    addi r6, r6, 1
    jmp walk
done:
    st  r20, 0(r5)
    st  r21, 8(r5)
    halt
"""


def xalancbmk(num_nodes: int = 6000, seed: int = 151) -> Workload:
    """DOM-traversal proxy: scattered node structs, pointer chasing."""
    rng = random.Random(seed)
    node_base = 0x0200_0000
    stride = 64  # one node per cache line, scattered below
    order = random_permutation(num_nodes, seed + 1)
    addr_of = [node_base + order[i] * stride * 3 for i in range(num_nodes)]
    weights = random_ints(num_nodes, 1, 1000, seed + 2)
    kinds = [1 if rng.random() < 0.88 else 0 for _ in range(num_nodes)]
    symbols: dict[str, int] = {}

    def children(i: int) -> tuple[int, int]:
        left = 2 * i + 1
        right = 2 * i + 2
        return (
            addr_of[left] if left < num_nodes else 0,
            addr_of[right] if right < num_nodes else 0,
        )

    def populate(arena: Arena) -> dict:
        memory = arena.memory
        for i in range(num_nodes):
            left, right = children(i)
            memory.write_array(
                addr_of[i], [weights[i], kinds[i], left, right]
            )
        stack_init = [0] * (num_nodes + 8)
        stack_init[0] = addr_of[0]
        symbols["stack"] = arena.alloc(stack_init)
        symbols["result"] = arena.alloc([0, 0])
        return symbols

    def validate(pipeline) -> bool:
        checksum = sum(w for w, k in zip(weights, kinds) if k)
        got = _read(pipeline, symbols["result"], 2)
        return got == [checksum, num_nodes]

    return build(
        "xalancbmk",
        _XALANC_SRC,
        populate,
        COMPLEX,
        "pointer-chasing DOM walk; prefetch-dominated benefit",
        validate,
    )


# ======================================================================
# xz — LZ match-length scanning (the simple-control-flow SPEC entry)
# ======================================================================
_XZ_SRC = """
    li  r1, {data}
    li  r2, {cand}
    li  r5, {result}
    li  r17, {positions}
    li  r26, {window_mask}
    li  r20, 0             # total match length
    li  r21, 0             # literal count
    li  r8, 0              # position index
pos_loop:
    bge r8, r17, done
    shli r9, r8, 3
    add r9, r9, r2
    ld  r10, 0(r9)         # candidate offset for this position
    and r11, r8, r26       # i = pos & mask
    li  r12, 0             # k = match length
match_loop:
    li  r13, 16
    bge r12, r13, matched  # cap
    add r14, r11, r12
    and r14, r14, r26
    shli r14, r14, 3
    add r14, r14, r1
    ld  r15, 0(r14)        # data[i+k]
    add r16, r10, r12
    and r16, r16, r26
    shli r16, r16, 3
    add r16, r16, r1
    ld  r18, 0(r16)        # data[cand+k]
    bne r15, r18, matched  # H2P: bytes differ? (geometric trips)
    addi r12, r12, 1
    jmp match_loop
matched:
    li  r13, 3
    bge r12, r13, take     # H2P: long enough to encode as match?
    addi r21, r21, 1
    jmp next
take:
    add r20, r20, r12
next:
    addi r8, r8, 1
    jmp pos_loop
done:
    st  r20, 0(r5)
    st  r21, 8(r5)
    halt
"""


def xz(positions: int = 3000, seed: int = 157) -> Workload:
    """LZ match scanning: data-dependent match-length loop exits."""
    window = 4096
    rng = random.Random(seed)
    # Low-entropy symbol stream: matches of geometric length exist.
    data = []
    symbol = 0
    for _ in range(window):
        if rng.random() < 0.35:
            symbol = rng.randint(0, 7)
        data.append(symbol)
    cand = [rng.randrange(window) for _ in range(positions)]
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["data"] = arena.alloc(data)
        symbols["cand"] = arena.alloc(cand)
        symbols["result"] = arena.alloc([0, 0])
        symbols["positions"] = positions
        symbols["window_mask"] = window - 1
        return symbols

    def validate(pipeline) -> bool:
        total = literals = 0
        for pos in range(positions):
            i = pos & (window - 1)
            c = cand[pos]
            k = 0
            while k < 16 and data[(i + k) & (window - 1)] == data[(c + k) & (window - 1)]:
                k += 1
            if k >= 3:
                total += k
            else:
                literals += 1
        return _read(pipeline, symbols["result"], 2) == [total, literals]

    return build(
        "xz",
        _XZ_SRC,
        populate,
        SIMPLE,
        "LZ match-length loops; simple control flow, H2P exits",
        validate,
    )


# ======================================================================
# x264 — SAD loops with data-dependent early termination
# ======================================================================
_X264_SRC = """
    li  r1, {frame}
    li  r2, {refs}
    li  r5, {result}
    li  r17, {blocks}
    li  r26, {frame_mask}
    li  r20, 0             # best-SAD accumulator
    li  r8, 0              # block index
block_loop:
    bge r8, r17, done
    shli r9, r8, 3
    add r9, r9, r2
    ld  r10, 0(r9)         # ref offset
    shli r11, r8, 4        # block base = 16 words per block
    and r11, r11, r26
    li  r12, 0             # k
    li  r13, 0             # sad
    li  r23, 1200          # early-exit threshold
sad_loop:
    li  r14, 16
    bge r12, r14, sad_done
    add r15, r11, r12
    and r15, r15, r26
    shli r15, r15, 3
    add r15, r15, r1
    ld  r16, 0(r15)        # a
    add r18, r10, r12
    and r18, r18, r26
    shli r18, r18, 3
    add r18, r18, r1
    ld  r19, 0(r18)        # b
    sub r21, r16, r19
    bge r21, r0, abs_done
    sub r21, r0, r21
abs_done:
    add r13, r13, r21
    addi r12, r12, 1
    blt r13, r23, sad_loop # H2P: early exit once SAD exceeds threshold
sad_done:
    add r20, r20, r13
    addi r8, r8, 1
    jmp block_loop
done:
    st  r20, 0(r5)
    halt
"""


def x264(blocks: int = 2500, seed: int = 163) -> Workload:
    """Motion-estimation proxy: SAD with early-exit H2P."""
    frame_words = 8192
    rng = random.Random(seed)
    frame = random_ints(frame_words, 0, 255, seed)
    refs = [rng.randrange(frame_words) for _ in range(blocks)]
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["frame"] = arena.alloc(frame)
        symbols["refs"] = arena.alloc(refs)
        symbols["result"] = arena.alloc([0])
        symbols["blocks"] = blocks
        symbols["frame_mask"] = frame_words - 1
        return symbols

    def validate(pipeline) -> bool:
        total = 0
        mask = frame_words - 1
        for b in range(blocks):
            base = (b * 16) & mask
            ref = refs[b]
            sad = 0
            for k in range(16):
                sad += abs(frame[(base + k) & mask] - frame[(ref + k) & mask])
                if sad >= 1200:
                    break
            total += sad
        return _read(pipeline, symbols["result"], 1) == [total]

    return build(
        "x264",
        _X264_SRC,
        populate,
        COMPLEX,
        "SAD with early exit; moderate H2P density",
        validate,
    )


# ======================================================================
# exchange2 — backtracking permutation search (mostly predictable)
# ======================================================================
_EXCHANGE2_SRC = """
    li  sp, {stack_top}
    li  r1, {used}
    li  r2, {weights}
    li  r5, {result}
    li  r25, {size}
    li  r26, {limit}
    li  r20, 0             # solution count
    li  r3, 0              # depth
    li  r4, 0              # partial sum
    call place
    st  r20, 0(r5)
    halt

# place(r3=depth, r4=sum): count permutations with bounded prefix sums
place:
    bne r3, r25, try_digits
    addi r20, r20, 1
    ret
try_digits:
    subi sp, sp, 32
    st  ra, 0(sp)
    st  r3, 8(sp)
    st  r4, 16(sp)
    st  r0, 24(sp)         # digit d = 0
digit_loop:
    ld  r6, 24(sp)
    bge r6, r25, digits_done
    shli r7, r6, 3
    add r7, r7, r1
    ld  r8, 0(r7)          # used[d]?
    bnez r8, next_digit    # mostly-predictable branch
    ld  r3, 8(sp)
    mul r9, r3, r25
    add r9, r9, r6
    shli r9, r9, 3
    add r9, r9, r2
    ld  r10, 0(r9)         # w = weights[depth][d]
    ld  r4, 16(sp)
    add r4, r4, r10
    bgt r4, r26, next_digit   # H2P: prune on bound (data-dependent)
    li  r11, 1
    st  r11, 0(r7)         # used[d] = 1
    ld  r3, 8(sp)
    addi r3, r3, 1
    call place
    ld  r6, 24(sp)
    shli r7, r6, 3
    add r7, r7, r1
    st  r0, 0(r7)          # used[d] = 0
next_digit:
    ld  r6, 24(sp)
    addi r6, r6, 1
    st  r6, 24(sp)
    jmp digit_loop
digits_done:
    ld  ra, 0(sp)
    addi sp, sp, 32
    ret
"""


def exchange2(size: int = 7, seed: int = 167) -> Workload:
    """Backtracking counting with a data-dependent pruning bound."""
    weights = random_ints(size * size, 1, 20, seed)
    limit = size * 11  # prunes some subtrees, keeps others
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        from .base import STACK_TOP

        symbols["used"] = arena.alloc([0] * size)
        symbols["weights"] = arena.alloc(weights)
        symbols["result"] = arena.alloc([0])
        symbols["size"] = size
        symbols["limit"] = limit
        symbols["stack_top"] = STACK_TOP
        return symbols

    def validate(pipeline) -> bool:
        used = [False] * size
        count = 0

        def place(depth, total):
            nonlocal count
            if depth == size:
                count += 1
                return
            for d in range(size):
                if used[d]:
                    continue
                w = weights[depth * size + d]
                if total + w > limit:
                    continue
                used[d] = True
                place(depth + 1, total + w)
                used[d] = False

        place(0, 0)
        return _read(pipeline, symbols["result"], 1) == [count]

    return build(
        "exchange2",
        _EXCHANGE2_SRC,
        populate,
        COMPLEX,
        "backtracking permutation count; pruning-bound H2P",
        validate,
    )


# ======================================================================
# nab — FP pair interactions; few H2Ps guarding long-latency loads
# ======================================================================
_NAB_SRC = """
    li  r1, {pos}
    li  r2, {props}
    li  r3, {pairs}
    li  r5, {result}
    li  r17, {num_pairs}
    li  r20, 0             # interaction count
    fli f4, 0              # energy accumulator
    li  r8, 0
pair_loop:
    bge r8, r17, done
    shli r9, r8, 4         # pair record = 2 words
    add r9, r9, r3
    ld  r10, 0(r9)         # i
    ld  r11, 8(r9)         # j
    shli r12, r10, 3
    add r12, r12, r1
    fld f0, 0(r12)         # x[i]
    shli r13, r11, 3
    add r13, r13, r1
    fld f1, 0(r13)         # x[j]
    fsub f2, f0, f1
    fmul f2, f2, f2        # dist^2 (1-D positions)
    fli f3, 6400           # cutoff^2 = 25.0 (6400/256)
    fcmplt r14, f2, f3
    beqz r14, next         # H2P: inside cutoff?
    addi r20, r20, 1
    shli r15, r10, 3
    add r15, r15, r2
    fld f5, 0(r15)         # props[i]  (long-latency: big array)
    shli r16, r11, 3
    add r16, r16, r2
    fld f6, 0(r16)         # props[j]
    fmul f5, f5, f6
    fli f7, 256            # 1.0
    fadd f6, f2, f7
    fdiv f5, f5, f6        # qq / (d^2 + 1)
    fadd f4, f4, f5
next:
    addi r8, r8, 1
    jmp pair_loop
done:
    st  r20, 0(r5)
    fst f4, 8(r5)
    halt
"""


def nab(num_pairs: int = 4000, num_atoms: int = 32768, seed: int = 173) -> Workload:
    """Molecular-dynamics proxy: cutoff H2P guards long FP loads."""
    rng = random.Random(seed)
    pos = [rng.random() * 40.0 for _ in range(num_atoms)]
    props = [rng.random() * 2.0 - 1.0 for _ in range(num_atoms)]
    pairs = []
    for _ in range(num_pairs):
        pairs.append(rng.randrange(num_atoms))
        pairs.append(rng.randrange(num_atoms))
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["pos"] = arena.alloc(pos)
        symbols["props"] = arena.alloc(props)
        symbols["pairs"] = arena.alloc(pairs)
        symbols["result"] = arena.alloc([0, 0])
        symbols["num_pairs"] = num_pairs
        return symbols

    def validate(pipeline) -> bool:
        count = 0
        energy = 0.0
        for p in range(num_pairs):
            i, j = pairs[2 * p], pairs[2 * p + 1]
            d2 = (pos[i] - pos[j]) ** 2
            if d2 < 25.0:
                count += 1
                energy += (props[i] * props[j]) / (d2 + 1.0)
        got = _read(pipeline, symbols["result"], 2)
        return got[0] == count and abs(got[1] - energy) < 1e-9
    return build(
        "nab",
        _NAB_SRC,
        populate,
        COMPLEX,
        "FP pair interactions; cutoff H2P guards long-latency loads",
        validate,
    )


# ======================================================================
# fpstream — an *excluded* benchmark (paper §V-A inclusion rule)
# ======================================================================
_FPSTREAM_SRC = """
    li  r1, {x}
    li  r2, {y}
    li  r5, {result}
    li  r17, {count}
    fli f3, {alpha}
    fli f4, 0
    li  r8, 0
loop:
    shli r9, r8, 3
    add r10, r9, r1
    fld f0, 0(r10)
    add r11, r9, r2
    fld f1, 0(r11)
    fmul f2, f0, f3
    fadd f2, f2, f1       # alpha*x + y
    fst f2, 0(r11)
    fadd f4, f4, f2       # running checksum
    addi r8, r8, 1
    blt r8, r17, loop
    halt
"""


def fpstream(count: int = 3000, seed: int = 179) -> Workload:
    """Streaming axpy: the class of FP benchmark the paper *excludes*.

    Its only branch is a long counted loop (trivially predicted), so
    MPKI sits far below the paper's 0.5 cutoff and precomputation has
    nothing to work with.  Not part of the evaluation suite; used by
    tests and docs to demonstrate the §V-A inclusion rule.
    """
    rng = random.Random(seed)
    x = [rng.random() for _ in range(count)]
    y = [rng.random() for _ in range(count)]
    alpha_fli = 640  # 2.5 in the ISA's /256 immediate encoding
    symbols: dict[str, int] = {}

    def populate(arena: Arena) -> dict:
        symbols["x"] = arena.alloc(x)
        symbols["y"] = arena.alloc(y)
        symbols["result"] = arena.alloc([0])
        symbols["count"] = count
        symbols["alpha"] = alpha_fli
        return symbols

    def validate(pipeline) -> bool:
        alpha = alpha_fli / 256.0
        expected = [alpha * xv + yv for xv, yv in zip(x, y)]
        got = pipeline.memory.read_array(symbols["y"], count)
        return all(abs(g - e) < 1e-12 for g, e in zip(got, expected))

    return build(
        "fpstream",
        _FPSTREAM_SRC,
        populate,
        SIMPLE,
        "streaming FP axpy; <0.5 MPKI, excluded from the evaluation",
        validate,
    )
