"""Cache hierarchy timing model: L1I + L1D + shared LLC + DRAM + MSHRs.

Latencies follow the paper's Table I: 4-cycle L1s, 18-cycle LLC, DDR4
beyond.  The hierarchy answers *when* an access completes; data values
come from the functional memory image.

Simplifications (documented deliberately):

* Lines are installed in the tag arrays at request time while the
  *timing* of the fill is reported by the returned ready cycle (MSHR
  merging returns the in-flight completion for the same line).  This
  avoids a separate fill pipeline while keeping same-line timing exact.
* Stores update the L1D at retirement without stalling retirement
  (write-allocate, infinite write buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import Cache, line_address
from .dram import DramConfig, DramModel


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry and latency of the cache hierarchy (paper Table I)."""

    l1i_size: int = 32 * 1024
    l1i_ways: int = 8
    l1i_latency: int = 4
    l1d_size: int = 48 * 1024
    l1d_ways: int = 12
    l1d_latency: int = 4
    llc_size: int = 1024 * 1024
    llc_ways: int = 16
    llc_latency: int = 18
    mshr_entries: int = 32
    # Next-line instruction prefetch reach: must cover DRAM latency at
    # the frontend's consumption rate (~2 lines / 8 cycles) to stream
    # cold code, as real sequential I-prefetchers do.
    ifetch_prefetch_depth: int = 12
    dram: DramConfig = field(default_factory=DramConfig)


class MemoryHierarchy:
    """Shared timing model for instruction and data accesses."""

    def __init__(self, config: MemoryConfig | None = None):
        self.config = config or MemoryConfig()
        cfg = self.config
        self.l1i = Cache("l1i", cfg.l1i_size, cfg.l1i_ways)
        self.l1d = Cache("l1d", cfg.l1d_size, cfg.l1d_ways)
        self.llc = Cache("llc", cfg.llc_size, cfg.llc_ways)
        self.dram = DramModel(cfg.dram)
        # In-flight misses: line address -> completion cycle.
        self._mshrs: dict[int, int] = {}
        self.mshr_full_events = 0
        self.demand_loads = 0
        self.loads_to_dram = 0

    # ------------------------------------------------------------------
    def _purge_mshrs(self, cycle: int) -> None:
        if not self._mshrs:
            return
        done = [line for line, ready in self._mshrs.items() if ready <= cycle]
        for line in done:
            del self._mshrs[line]

    def mshr_occupancy(self, cycle: int) -> int:
        self._purge_mshrs(cycle)
        return len(self._mshrs)

    def _miss_to_llc(self, line: int, cycle: int, l1_latency: int) -> int:
        """Handle an L1 miss: probe LLC, then DRAM; returns ready cycle."""
        cfg = self.config
        if self.llc.access(line):
            return cycle + l1_latency + cfg.llc_latency
        self.llc.fill(line)
        dram_done = self.dram.request(line, cycle + l1_latency + cfg.llc_latency)
        return dram_done

    # ------------------------------------------------------------------
    def access_ifetch(self, addr: int, cycle: int) -> int:
        """Instruction fetch of the line containing ``addr``.

        Instruction fetches always get service (no MSHR back-pressure on
        the frontend); returns the cycle the line is available.
        """
        cfg = self.config
        line = line_address(addr)
        ready = self._demand_ifetch(line, cycle)
        # Next-line prefetcher: real decoupled frontends stream
        # sequential lines; without this every cold 64B of code would
        # pay a serial DRAM round-trip.
        for ahead in range(1, cfg.ifetch_prefetch_depth + 1):
            next_line = line + ahead * 64
            if next_line not in self._mshrs and not self.l1i.lookup(next_line):
                self.l1i.fill(next_line)
                self._mshrs[next_line] = self._miss_to_llc(
                    next_line, cycle, cfg.l1i_latency
                )
        return ready

    def _demand_ifetch(self, line: int, cycle: int) -> int:
        cfg = self.config
        in_flight = self._mshrs.get(line)
        if in_flight is not None and in_flight > cycle:
            return in_flight
        if self.l1i.access(line):
            return cycle + cfg.l1i_latency
        self.l1i.fill(line)
        ready = self._miss_to_llc(line, cycle, cfg.l1i_latency)
        self._mshrs[line] = ready
        return ready

    def access_load(self, addr: int, cycle: int) -> int | None:
        """Data load timing; ``None`` means MSHRs are full (retry later)."""
        cfg = self.config
        line = line_address(addr)
        self.demand_loads += 1
        # A line whose fill is still in flight must not appear as a
        # full-speed hit: the MSHR merge check comes before the tag
        # probe (the tag array is filled eagerly at request time).
        self._purge_mshrs(cycle)
        in_flight = self._mshrs.get(line)
        if in_flight is not None:
            return max(in_flight, cycle + cfg.l1d_latency)
        if self.l1d.access(line):
            return cycle + cfg.l1d_latency
        if len(self._mshrs) >= cfg.mshr_entries:
            self.mshr_full_events += 1
            self.demand_loads -= 1
            return None
        self.l1d.fill(line)
        llc_hit = self.llc.lookup(line)
        ready = self._miss_to_llc(line, cycle, cfg.l1d_latency)
        if not llc_hit:
            self.loads_to_dram += 1
        self._mshrs[line] = ready
        return ready

    def access_load_bypass_l1(self, addr: int, cycle: int) -> int:
        """Load that does not allocate in the L1D (LLC only).

        Used by the Branch Runahead chain engine: it has no L1 of its
        own, and its speculative streams must not thrash the core's
        L1D.  Still warms the LLC (the prefetch side-effect) and pays
        DRAM latency on LLC misses.
        """
        cfg = self.config
        line = line_address(addr)
        if self.l1d.lookup(line):
            return cycle + cfg.l1d_latency
        if self.llc.access(line):
            return cycle + cfg.l1d_latency + cfg.llc_latency
        self.llc.fill(line)
        return self.dram.probe(line, cycle + cfg.l1d_latency + cfg.llc_latency)

    def access_store_retire(self, addr: int) -> None:
        """Install the line written by a retiring store (no stall)."""
        line = line_address(addr)
        if not self.l1d.access(line):
            self.l1d.fill(line)
            self.llc.fill(line)
