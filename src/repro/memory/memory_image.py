"""Functional data memory for execution-driven simulation.

The memory image holds the *architectural* memory state: 8-byte words
addressed by byte address (aligned down to a word boundary).  Workload
builders populate it with input data before simulation; the core writes
it only when stores *retire*, so wrong-path and TEA-thread stores never
corrupt it.  Loads of never-written words return 0 — wrong-path code
must not crash the simulator.

Values may be Python ints (wrapped to signed 64-bit by the ALU
semantics) or floats (for ``fld``/``fst``).
"""

from __future__ import annotations

WORD_BYTES = 8


def align_word(addr: int) -> int:
    """Align a byte address down to its containing 8-byte word."""
    return addr & ~(WORD_BYTES - 1)


class MemoryImage:
    """Sparse word-addressable memory holding int/float values."""

    def __init__(self, initial: dict[int, int | float] | None = None):
        self._words: dict[int, int | float] = {}
        if initial:
            for addr, value in initial.items():
                self.store(addr, value)

    def load(self, addr: int) -> int | float:
        """Read the word containing ``addr`` (0 if never written)."""
        return self._words.get(align_word(addr), 0)

    def store(self, addr: int, value: int | float) -> None:
        """Write the word containing ``addr``."""
        self._words[align_word(addr)] = value

    def write_array(self, base: int, values) -> int:
        """Store ``values`` as consecutive words starting at ``base``.

        Returns the first byte address past the array, useful for
        bump-allocating workload data regions.
        """
        addr = align_word(base)
        for value in values:
            self._words[addr] = value
            addr += WORD_BYTES
        return addr

    def read_array(self, base: int, count: int) -> list[int | float]:
        """Read ``count`` consecutive words starting at ``base``."""
        addr = align_word(base)
        return [self._words.get(addr + i * WORD_BYTES, 0) for i in range(count)]

    def snapshot(self) -> dict[int, int | float]:
        """A copy of all written words (for test assertions)."""
        return dict(self._words)

    def __len__(self) -> int:
        return len(self._words)
