"""Memory subsystem: functional memory image + cache/DRAM timing."""

from .cache import LINE_BYTES, Cache, line_address
from .dram import DramConfig, DramModel
from .hierarchy import MemoryConfig, MemoryHierarchy
from .memory_image import WORD_BYTES, MemoryImage, align_word

__all__ = [
    "LINE_BYTES",
    "Cache",
    "line_address",
    "DramConfig",
    "DramModel",
    "MemoryConfig",
    "MemoryHierarchy",
    "WORD_BYTES",
    "MemoryImage",
    "align_word",
]
