"""Generic set-associative cache with true-LRU replacement.

Used for the L1 I-cache, L1 D-cache, and the LLC.  The cache tracks
*presence* only (tags, no data — data values live in the functional
:class:`~repro.memory.memory_image.MemoryImage`); the timing model in
:mod:`repro.memory.hierarchy` combines hit/miss results with latencies,
MSHRs, and the DRAM model.
"""

from __future__ import annotations

from collections import OrderedDict

LINE_BYTES = 64


def line_address(addr: int) -> int:
    """Align a byte address down to its 64-byte cache line."""
    return addr & ~(LINE_BYTES - 1)


class Cache:
    """A set-associative tag array with LRU replacement.

    ``size_bytes`` / ``ways`` / 64B lines determine the set count, which
    must be a power of two.
    """

    def __init__(self, name: str, size_bytes: int, ways: int):
        num_lines = size_bytes // LINE_BYTES
        if num_lines % ways != 0:
            raise ValueError(f"{name}: {num_lines} lines not divisible by {ways} ways")
        self.name = name
        self.ways = ways
        self.num_sets = num_lines // ways
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count {self.num_sets} is not a power of two")
        self._set_mask = self.num_sets - 1
        # Each set is an OrderedDict of tag -> True; order encodes LRU
        # (oldest first).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> tuple[OrderedDict[int, bool], int]:
        line = addr >> 6
        return self._sets[line & self._set_mask], line >> 0

    def lookup(self, addr: int) -> bool:
        """Probe without updating LRU or counters (for tests/telemetry)."""
        cset, tag = self._locate(addr)
        return tag in cset

    def access(self, addr: int) -> bool:
        """Access the line containing ``addr``; returns hit/miss.

        A hit refreshes LRU.  A miss does *not* fill — call
        :meth:`fill` when the fill actually arrives so that the timing
        model controls when a line becomes visible.
        """
        cset, tag = self._locate(addr)
        if tag in cset:
            cset.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        """Install the line containing ``addr``, evicting LRU if needed."""
        cset, tag = self._locate(addr)
        if tag in cset:
            cset.move_to_end(tag)
            return
        if len(cset) >= self.ways:
            cset.popitem(last=False)
        cset[tag] = True

    def invalidate_all(self) -> None:
        for cset in self._sets:
            cset.clear()
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0
