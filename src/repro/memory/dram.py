"""Banked row-buffer DRAM timing model (Ramulator substitute).

Models the paper's DDR4-2400R configuration: 1 rank, 2 channels, 4 bank
groups x 4 banks per channel, tRP-tCL-tRCD = 16-16-16 (DRAM cycles).
The model captures the two effects the paper's results depend on:

* the large latency spread between row-buffer hits and row conflicts
  (H2P-guarded loads that miss the LLC are *expensive*), and
* bank-level parallelism (resolving branches early exposes more
  memory-level parallelism, the paper's §V-B explanation for mcf/bfs).

All times are expressed in *core* cycles; DRAM-cycle parameters are
scaled by ``core_per_dram_cycle`` (3.2 GHz core / 1.2 GHz DDR4-2400 bus
= 2.67).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramConfig:
    """Timing and geometry parameters for the DRAM model."""

    channels: int = 2
    bank_groups: int = 4
    banks_per_group: int = 4
    trp: int = 16     # precharge, DRAM cycles
    trcd: int = 16    # activate-to-read, DRAM cycles
    tcl: int = 16     # CAS latency, DRAM cycles
    burst_cycles: int = 4          # data transfer per 64B line
    core_per_dram_cycle: float = 2.67
    row_bytes: int = 8192
    base_queue_delay: int = 10     # controller queueing/cmd overhead (core cycles)

    @property
    def banks_per_channel(self) -> int:
        return self.bank_groups * self.banks_per_group

    def core_cycles(self, dram_cycles: int) -> int:
        return int(round(dram_cycles * self.core_per_dram_cycle))


class _Bank:
    __slots__ = ("open_row", "ready_at")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.ready_at = 0


class DramModel:
    """Per-bank open-row timing with channel data-bus serialization."""

    def __init__(self, config: DramConfig | None = None):
        self.config = config or DramConfig()
        total_banks = self.config.channels * self.config.banks_per_channel
        self._banks = [_Bank() for _ in range(total_banks)]
        self._channel_bus_free = [0] * self.config.channels
        self.row_hits = 0
        self.row_misses = 0
        self.requests = 0

    def _map(self, line_addr: int) -> tuple[int, int, int]:
        """Map a line address to (channel, flat bank index, row)."""
        cfg = self.config
        line = line_addr >> 6
        channel = line % cfg.channels
        bank = (line // cfg.channels) % cfg.banks_per_channel
        row = (line_addr // cfg.row_bytes) // cfg.channels
        return channel, channel * cfg.banks_per_channel + bank, row

    def request(self, line_addr: int, cycle: int) -> int:
        """Issue a read for a cache line; returns its completion cycle."""
        cfg = self.config
        channel, bank_idx, row = self._map(line_addr)
        bank = self._banks[bank_idx]
        self.requests += 1

        start = max(cycle + cfg.base_queue_delay, bank.ready_at)
        if bank.open_row == row:
            self.row_hits += 1
            access = cfg.core_cycles(cfg.tcl)
        elif bank.open_row is None:
            self.row_misses += 1
            access = cfg.core_cycles(cfg.trcd + cfg.tcl)
        else:
            self.row_misses += 1
            access = cfg.core_cycles(cfg.trp + cfg.trcd + cfg.tcl)
        bank.open_row = row

        data_start = max(start + access, self._channel_bus_free[channel])
        burst = cfg.core_cycles(cfg.burst_cycles)
        done = data_start + burst
        self._channel_bus_free[channel] = done
        bank.ready_at = data_start
        return done

    def probe(self, line_addr: int, cycle: int) -> int:
        """Latency estimate without reserving bank/bus resources.

        Used by speculative helper engines (Branch Runahead's chain
        engine) so their streams see realistic latency without being
        able to congest the demand path unboundedly.
        """
        cfg = self.config
        channel, bank_idx, row = self._map(line_addr)
        bank = self._banks[bank_idx]
        start = max(cycle + cfg.base_queue_delay, bank.ready_at)
        if bank.open_row == row:
            access = cfg.core_cycles(cfg.tcl)
        else:
            access = cfg.core_cycles(cfg.trp + cfg.trcd + cfg.tcl)
        data_start = max(start + access, self._channel_bus_free[channel])
        return data_start + cfg.core_cycles(cfg.burst_cycles)

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
