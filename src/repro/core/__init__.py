"""The out-of-order core: pipeline, rename, scheduling, statistics."""

from .config import ConfigError, CoreConfig, SimConfig
from .dynamic_uop import DynUop, UopState
from .ifbq import IfbqEntry, InFlightBranchQueue
from .lsq import LoadQueue, StoreQueue
from .pipeline import Pipeline, SimulationError
from .rename import (
    PhysicalRegisterFile,
    RegisterAliasTable,
    ZERO_PREG,
    rename_sources,
)
from .scheduler import Scheduler
from .stats import SimStats
from .tracing import PipelineTracer, UopTrace

__all__ = [
    "ConfigError",
    "CoreConfig",
    "SimConfig",
    "DynUop",
    "UopState",
    "IfbqEntry",
    "InFlightBranchQueue",
    "LoadQueue",
    "StoreQueue",
    "Pipeline",
    "SimulationError",
    "PhysicalRegisterFile",
    "RegisterAliasTable",
    "ZERO_PREG",
    "rename_sources",
    "Scheduler",
    "SimStats",
    "PipelineTracer",
    "UopTrace",
]
