"""Pipeline timeline tracing (a lightweight "pipeview").

Attach a :class:`PipelineTracer` to a pipeline to record per-uop stage
timestamps (fetch, rename, issue-to-execute, completion, retirement)
and render them as a textual timeline — the classic way to *see* why a
misprediction costs what it costs, or how far ahead the TEA thread's
copy of a branch executes compared to the main thread's.

Example::

    tracer = PipelineTracer(limit=200)
    pipeline = Pipeline(program, memory, config)
    tracer.attach(pipeline)
    pipeline.run()
    print(tracer.render(start_seq=0, count=30))
    tracer.detach()

The tracer subscribes to the :mod:`repro.obs` event bus (the firehose
events ``cycle_end`` / ``uop_commit`` / ``uop_squash`` /
``tea_uop_done``) instead of monkey-patching pipeline methods; those
events are only emitted while something subscribes to them, so tracing
is off by default and costs nothing when detached.  ``attach`` installs
a bus on the pipeline if none is present, and composes with an already
attached :class:`~repro.obs.Observation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.events import EventBus

_FIREHOSE = ("cycle_end", "uop_commit", "uop_squash", "tea_uop_done")


@dataclass
class UopTrace:
    """Stage timestamps for one dynamic uop (cycle numbers)."""

    seq: int
    pc: int
    opcode: str
    is_tea: bool
    fetch: int = -1
    rename: int = -1
    execute: int = -1
    complete: int = -1
    retire: int = -1
    squashed: bool = False
    mispredicted: bool = False


class PipelineTracer:
    """Records stage timing for the first ``limit`` traced uops."""

    def __init__(self, limit: int = 1000):
        self.limit = limit
        self.records: dict[tuple[int, bool], UopTrace] = {}
        self._pipeline = None
        self._bus: EventBus | None = None

    # ------------------------------------------------------------------
    def attach(self, pipeline) -> None:
        """Subscribe to the pipeline's event bus (installing one if
        the pipeline has no observer yet)."""
        if self._pipeline is not None:
            raise RuntimeError("tracer is already attached")
        bus = pipeline.obs
        if bus is None:
            bus = EventBus()
            bus.bind_clock(lambda: pipeline.cycle)
            pipeline.obs = bus
            pipeline.frontend.obs = bus
        self._pipeline = pipeline
        self._bus = bus
        bus.subscribe(self._on_event, _FIREHOSE)

    def detach(self) -> None:
        """Stop tracing; recorded uops are kept.  The pipeline's event
        bus stays in place (firehose emission turns itself off once
        nothing subscribes), and the tracer can be re-attached."""
        if self._pipeline is None:
            raise RuntimeError("tracer is not attached")
        self._bus.unsubscribe(self._on_event)
        self._pipeline = None
        self._bus = None

    # ------------------------------------------------------------------
    def _on_event(self, event) -> None:
        type_ = event.type
        if type_ == "cycle_end":
            self._scan(self._pipeline)
            return
        uop = event.data["uop"]
        record = self.records.get(self._key(uop))
        if record is None:
            return
        if type_ == "uop_commit":
            record.retire = event.cycle
            record.mispredicted = record.mispredicted or uop.mispredicted
            if record.complete < 0:
                record.complete = uop.done_cycle
        elif type_ == "uop_squash":
            record.squashed = True
        elif type_ == "tea_uop_done":
            # TEA uops leave the controller's live pools within the
            # completion cycle, before the cycle-end scan sees them.
            if record.complete < 0:
                record.complete = uop.done_cycle

    def _key(self, uop) -> tuple[int, bool]:
        return (uop.seq, uop.is_tea)

    def _scan(self, pipeline) -> None:
        from .dynamic_uop import UopState

        cycle = pipeline.cycle
        sources = [
            pipeline.decode_pipe,
            pipeline.rob,
            list(pipeline.executing_uops()),
        ]
        if pipeline.tea is not None:
            sources.append(pipeline.tea.live_uops)
            sources.append(pipeline.tea.rename_pipe)
        for source in sources:
            for uop in source:
                key = self._key(uop)
                record = self.records.get(key)
                if record is None:
                    if len(self.records) >= self.limit:
                        continue
                    record = UopTrace(
                        seq=uop.seq,
                        pc=uop.instr.pc,
                        opcode=uop.instr.opcode,
                        is_tea=uop.is_tea,
                    )
                    self.records[key] = record
                if record.fetch < 0 and uop.fetch_cycle >= 0:
                    record.fetch = uop.fetch_cycle
                if record.rename < 0 and uop.rename_cycle >= 0:
                    record.rename = uop.rename_cycle
                if record.execute < 0 and uop.state is UopState.EXECUTING:
                    record.execute = cycle
                if record.complete < 0 and uop.state is UopState.DONE:
                    record.complete = uop.done_cycle
                if uop.state is UopState.SQUASHED:
                    record.squashed = True
                if uop.state is UopState.RETIRED:
                    record.retire = cycle
                record.mispredicted = record.mispredicted or uop.mispredicted

    # ------------------------------------------------------------------
    def uops(self, include_tea: bool = True, include_squashed: bool = True):
        """Traced records in fetch order."""
        records = sorted(self.records.values(), key=lambda r: (r.seq, r.is_tea))
        return [
            r
            for r in records
            if (include_tea or not r.is_tea)
            and (include_squashed or not r.squashed)
        ]

    def render(
        self,
        start_seq: int = 0,
        count: int = 40,
        width: int = 64,
    ) -> str:
        """ASCII timeline: one row per uop, one column per cycle.

        Legend: ``F`` fetch, ``R`` rename, ``E`` execute start, ``C``
        complete, ``T`` retire, ``x`` squashed; TEA uops are marked
        with ``~`` after the opcode.
        """
        rows = [r for r in self.uops() if r.seq >= start_seq][:count]
        fetch_cycles = [r.fetch for r in rows if r.fetch >= 0]
        if not fetch_cycles:
            return "(no traced uops in range)"
        t0 = min(fetch_cycles)
        lines = [f"timeline from cycle {t0} (one column per cycle)"]
        for r in rows:
            lane = [" "] * width
            for cycle, mark in (
                (r.fetch, "F"),
                (r.rename, "R"),
                (r.execute, "E"),
                (r.complete, "C"),
                (r.retire, "T"),
            ):
                if cycle >= 0 and 0 <= cycle - t0 < width:
                    lane[cycle - t0] = mark
            flags = "~" if r.is_tea else " "
            flags += "x" if r.squashed else " "
            flags += "!" if r.mispredicted else " "
            lines.append(
                f"{r.seq:6d} {r.opcode:6s}{flags} |" + "".join(lane) + "|"
            )
        return "\n".join(lines)

    def branch_resolution_gap(self, seq: int) -> int | None:
        """Cycles between the TEA copy and the main copy of one branch
        completing execution (positive = TEA resolved earlier)."""
        main = self.records.get((seq, False))
        tea = self.records.get((seq, True))
        if not main or not tea:
            return None
        if main.complete < 0 or tea.complete < 0:
            return None
        return main.complete - tea.complete
