"""Load and store queues with store-to-load forwarding.

Memory ordering policy: a load may issue only once every older store's
address is resolved (conservative disambiguation — never a memory-order
violation, so no replay machinery is needed).  The youngest older store
to the same word forwards its data; if the data is not ready yet the
load waits.

TEA-thread loads bypass these queues entirely (paper §IV-E): they read
committed memory plus the TEA store data cache.
"""

from __future__ import annotations

from ..memory.memory_image import align_word
from .dynamic_uop import DynUop


class StoreQueue:
    """In-order (by seq) queue of in-flight main-thread stores."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: list[DynUop] = []

    def __len__(self) -> int:
        return len(self.entries)

    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def insert(self, uop: DynUop) -> None:
        self.entries.append(uop)

    def remove(self, uop: DynUop) -> None:
        self.entries.remove(uop)

    def squash_younger(self, seq: int) -> None:
        self.entries = [u for u in self.entries if u.seq <= seq]

    def addresses_resolved_before(self, seq: int) -> bool:
        """True if every store older than ``seq`` knows its address."""
        for store in self.entries:
            if store.seq < seq and store.mem_addr is None:
                return False
        return True

    def forward(self, addr: int, seq: int) -> tuple[str, int | float | None]:
        """Look up forwarding for a load at ``seq`` reading ``addr``.

        Returns one of ``("none", None)`` — no older store matches;
        ``("hit", value)`` — forward this value; ``("wait", None)`` —
        the matching store's data is not ready yet.
        """
        word = align_word(addr)
        best: DynUop | None = None
        for store in self.entries:
            if store.seq < seq and store.mem_addr is not None:
                if align_word(store.mem_addr) == word:
                    if best is None or store.seq > best.seq:
                        best = store
        if best is None:
            return ("none", None)
        if best.store_value is None:
            return ("wait", None)
        return ("hit", best.store_value)


class LoadQueue:
    """Capacity tracking for in-flight main-thread loads."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: list[DynUop] = []

    def __len__(self) -> int:
        return len(self.entries)

    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def insert(self, uop: DynUop) -> None:
        self.entries.append(uop)

    def remove(self, uop: DynUop) -> None:
        self.entries.remove(uop)

    def squash_younger(self, seq: int) -> None:
        self.entries = [u for u in self.entries if u.seq <= seq]
