"""The out-of-order core: an execution-driven cycle-level pipeline.

Stage order within :meth:`Pipeline.step` runs back-to-front (retire,
complete, schedule, rename, TEA fetch, fetch, predict) so that results
take at least one cycle to traverse each stage boundary.

Thread model: the *main thread* fetches every predicted uop from the
FTQ through a 12-cycle frontend into the shared backend; the optional
*TEA thread* (installed by :mod:`repro.tea`) consumes the shadow FTQ,
fetching only dependence-chain uops out of the Block Cache, renaming
through a shadow RAT, and resolving H2P branches early.  Both threads
share the physical register file values, execution ports, cache ports
and MSHRs; RS/PRF capacity is partitioned (paper §IV-E).

Flush machinery: every dynamic uop carries its FTQ sequence number
(timestamp).  ``flush_at_branch`` squashes all uops younger than the
branch's timestamp in *both* threads — including partial flushes of the
frontend pipe and FTQ (paper §IV-F) — restores the RAT from the
branch's checkpoint when the branch had been renamed, and repairs the
decoupled predictor's speculative state.
"""

from __future__ import annotations

from collections import deque

from ..frontend.decoupled import DecoupledFrontend, FetchBlock
from ..isa import (
    Program,
    REG_ZERO,
    UopClass,
    branch_taken,
    branch_target,
    compute_result,
    effective_address,
)
from ..isa.registers import NUM_ARCH_REGS
from ..memory.cache import line_address
from ..memory.hierarchy import MemoryHierarchy
from ..memory.memory_image import MemoryImage
from .config import SimConfig
from .dynamic_uop import DynUop, UopState
from .ifbq import InFlightBranchQueue
from .lsq import LoadQueue, StoreQueue
from .rename import (
    PhysicalRegisterFile,
    RegisterAliasTable,
    rename_sources,
)
from .scheduler import Scheduler
from .stats import SimStats

from heapq import heappop, heappush
from operator import attrgetter

_MEM_CLASSES = (UopClass.LOAD, UopClass.STORE)
_NO_EXEC_CLASSES = (UopClass.NOP, UopClass.HALT)
_COMPLETE_ORDER = attrgetter("seq", "is_tea")


class SimulationError(RuntimeError):
    """Raised when the simulated machine deadlocks (a model bug).

    ``diagnostics`` (when raised by the forward-progress watchdog) is a
    JSON-safe dict capturing the stalled machine: cycle, ROB head uop,
    FTQ depth, scheduler occupancy, and TEA thread state — enough to
    triage a wedged campaign cell from its journaled failure record
    without re-running the simulation.
    """

    def __init__(self, message: str, diagnostics: dict | None = None):
        super().__init__(message)
        self.diagnostics = diagnostics or {}


class Pipeline:
    """An 8-wide OoO core instance bound to one program + data image."""

    def __init__(
        self,
        program: Program,
        memory: MemoryImage,
        config: SimConfig | None = None,
    ):
        self.config = config or SimConfig()
        core = self.config.core
        self.program = program
        self.memory = memory
        self.frontend = DecoupledFrontend(program, self.config.frontend)
        self.hierarchy = MemoryHierarchy(self.config.memory)
        tea_cfg = self.config.tea
        tea_prf = tea_cfg.physical_registers if tea_cfg else 0
        tea_rs = tea_cfg.rs_entries if tea_cfg else 0
        tea_units = (
            tea_cfg.dedicated_execution_units
            if tea_cfg and tea_cfg.dedicated_engine
            else 0
        )
        self.prf = PhysicalRegisterFile(core.physical_registers, tea_prf)
        self.rat = RegisterAliasTable()
        self.scheduler = Scheduler(core, tea_rs, tea_units)
        self.scheduler.bind_prf(self.prf)
        self.rob: deque[DynUop] = deque()
        self.lq = LoadQueue(core.load_queue)
        self.sq = StoreQueue(core.store_queue)
        self.ifbq = InFlightBranchQueue()
        self.decode_pipe: deque[DynUop] = deque()
        self.stats = SimStats()
        self.cycle = 0
        self.halted = False
        self.retired_total = 0
        self.last_renamed_seq = -1
        self.committed_regs: list[int | float] = [0] * NUM_ARCH_REGS
        # In-flight executions bucketed by completion cycle, with a
        # min-heap of bucket keys: _complete() pops due buckets instead
        # of rescanning every in-flight uop every cycle.
        self._done_buckets: dict[int, list[DynUop]] = {}
        self._done_heap: list[int] = []
        self._post_fetch_delay = max(
            0, core.frontend_depth - self.config.memory.l1i_latency
        )
        # Per-cycle hot-loop constants (attribute-chain hoists).
        self._rob_entries = core.rob_entries
        self._retire_width = core.retire_width
        self._rename_width = core.rename_width
        self._fetch_width = core.fetch_width
        self._frontend_buffer = core.frontend_buffer
        self._max_blocks_fetched = core.max_blocks_fetched_per_cycle
        # Main-thread fetch cursor into the FTQ head block.
        self._cur_block: FetchBlock | None = None
        self._cur_block_ready = 0
        self._block_offset = 0
        self._last_retire_cycle = 0
        # Observability: an optional repro.obs EventBus.  ``None`` by
        # default; every emission site guards on it so the disabled
        # cost is one attribute load + is-None check.
        self.obs = None
        # Optional mechanisms, installed lazily to avoid import cycles.
        self.tea = None
        self.runahead = None
        self.crisp = None
        if tea_cfg is not None:
            from ..tea.controller import TeaController

            self.tea = TeaController(self, tea_cfg)
        if self.config.runahead is not None:
            from ..runahead.controller import RunaheadController

            self.runahead = RunaheadController(self, self.config.runahead)
        if self.config.crisp is not None:
            from ..crisp.controller import CrispController

            self.crisp = CrispController(self, self.config.crisp)
        # Runtime verification (repro.verify), also installed lazily;
        # both stay None on the default path so step() pays only an
        # attribute load + is-None check each.
        self._checker = None
        self._injector = None
        if self.config.check_invariants:
            from ..verify.invariants import InvariantChecker

            self._checker = InvariantChecker(self, self.config.check_invariants)
        if self.config.fault_plan is not None:
            from ..verify.faults import FaultInjector

            self._injector = FaultInjector(self, self.config.fault_plan)
        # Self-profiler (repro.obs.profiler), installed on first run()
        # when config.profile is set.  Unprofiled pipelines never get
        # wrapper attributes, so the disabled path is structurally free.
        self.profiler = None

    # ==================================================================
    # Top-level control
    # ==================================================================
    def run(
        self,
        max_instructions: int | None = None,
        max_cycles: int | None = None,
    ) -> SimStats:
        """Run until HALT retires or a limit is reached; returns stats.

        Warmup handling: once ``config.warmup_instructions`` have
        retired, all statistics are reset and measurement begins.
        """
        max_instructions = max_instructions or self.config.max_instructions
        max_cycles = max_cycles or self.config.max_cycles
        if self.config.profile and self.profiler is None:
            from ..obs.profiler import PipelineProfiler

            self.profiler = PipelineProfiler()
            self.profiler.install(self)
        warmup = self.config.warmup_instructions
        measurement_started = warmup == 0
        if measurement_started:
            self.stats.start_measurement()
            if self.obs is not None:
                self.obs.emit("measurement_start")
        # Fast-forward would skip the cycles a sampled invariant audit
        # or a scheduled fault is due in; disable it under either.
        fast_forward = (
            self.config.fast_forward
            and self._checker is None
            and self._injector is None
        )
        while not self.halted:
            self.step()
            if not measurement_started and self.retired_total >= warmup:
                self.stats.start_measurement()
                measurement_started = True
                if self.obs is not None:
                    self.obs.emit("measurement_start")
            if (
                measurement_started
                and max_instructions is not None
                and self.stats.retired_instructions >= max_instructions
            ):
                break
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if fast_forward and self.obs is None:
                self._idle_fast_forward(max_cycles)
        return self.stats

    def step(self) -> None:
        """Advance the machine by one cycle.

        Each stage is guarded by the same emptiness check it would
        make itself, so an idle stage costs a couple of attribute
        loads instead of a call frame.
        """
        cycle = self.cycle + 1
        self.cycle = cycle
        injector = self._injector
        if injector is not None:
            injector.tick(cycle)
        rob = self.rob
        if rob and rob[0].state is UopState.DONE:
            self._retire()
        heap = self._done_heap
        if heap and heap[0] <= cycle:
            self._complete()
        scheduler = self.scheduler
        if scheduler._ready_main or scheduler._ready_tea:
            self._schedule()
        tea = self.tea
        if self.decode_pipe or (tea is not None and tea.rename_pipe):
            self._rename()
        if tea is not None:
            tea.fetch()
        if self.frontend.ftq:
            self._fetch()
        self._predict()
        if self.runahead is not None:
            self.runahead.tick()
        self.stats.cycles += 1
        obs = self.obs
        if obs is not None and obs.wants("cycle_end"):
            obs.emit("cycle_end")
        checker = self._checker
        if checker is not None:
            # Audit between cycles, when every stage has settled.
            checker.maybe_audit()
        stall = self.cycle - self._last_retire_cycle
        if stall > self.config.watchdog_cycles:
            diagnostics = self.progress_diagnostics()
            raise SimulationError(
                f"no retirement for {stall} cycles at cycle {self.cycle}; "
                f"rob={len(self.rob)} decode={len(self.decode_pipe)} "
                f"ftq={len(self.frontend.ftq)} "
                f"bp_stalled={self.frontend.stalled()} "
                f"rob_head={diagnostics['rob_head']}",
                diagnostics=diagnostics,
            )

    def _idle_fast_forward(self, max_cycles: int | None) -> None:
        """Advance ``cycle`` directly to the next event when every
        stage is provably blocked.

        Called between :meth:`step` calls from :meth:`run` (never from
        :meth:`step`, so single-stepping tests see uniform stepping).
        Skipping is cycle-exact because a cycle is only skipped when no
        stage could have acted during it:

        * retire — the ROB head is not DONE, and only a completion
          (a tracked event) can make it DONE;
        * schedule — no operand-ready candidates exist, and only a
          completion's PRF write creates one;
        * rename — the decode head is either not yet through the
          frontend pipe (tracked event) or structurally stalled, which
          only a completion/retire can clear;
        * fetch — blocked on an in-flight icache fill (tracked event),
          a full decode buffer, or an empty FTQ;
        * predict — the frontend is PC-stalled or the FTQ is full;
        * TEA / runahead — fully quiescent (anything in flight may act
          every cycle, so any activity vetoes the skip).

        The skip is capped at the watchdog deadline (so a wedged
        machine still raises SimulationError at the exact seed cycle)
        and at ``max_cycles``.  Skipped cycles are accounted exactly as
        stepped idle cycles: ``stats.cycles`` and the frontend's stall
        counter advance by the skipped amount.
        """
        rob = self.rob
        if rob and rob[0].state is UopState.DONE:
            return
        if self.scheduler.has_ready():
            return
        frontend = self.frontend
        if not (frontend.stalled() or frontend.ftq_full()):
            return
        tea = self.tea
        if tea is not None and (
            tea.active
            or tea.draining
            or tea.rename_pipe
            or tea._pending_walk is not None
            or frontend.shadow_ftq
        ):
            return
        if self.runahead is not None and self.runahead.engine.runs:
            return
        # The earliest completion bucket may hold only squashed uops;
        # that just makes the skip conservative (shorter), never wrong.
        events = [self._done_heap[0]] if self._done_heap else []
        cycle = self.cycle
        decode_pipe = self.decode_pipe
        if decode_pipe:
            head = decode_pipe[0]
            if head.rename_ready_cycle > cycle:
                events.append(head.rename_ready_cycle)
            elif not self._rename_blocked(head):
                return
        if frontend.ftq and len(decode_pipe) < self.config.core.frontend_buffer:
            block = frontend.ftq[0]
            if block is not self._cur_block:
                return  # fetch would start an icache access next cycle
            if self._cur_block_ready > cycle:
                events.append(self._cur_block_ready)
            else:
                return  # fetch can consume the head block next cycle
        if not events:
            return  # wedged with no pending event; let the watchdog fire
        target = min(events)
        cap = self._last_retire_cycle + self.config.watchdog_cycles + 1
        if target > cap:
            target = cap
        if max_cycles is not None and target > max_cycles:
            target = max_cycles
        skipped = target - 1 - cycle
        if skipped <= 0:
            return
        self.cycle = cycle + skipped
        self.stats.cycles += skipped
        # The frontend would have counted every skipped cycle as a stall.
        frontend.stall_cycles += skipped

    def _rename_blocked(self, uop: DynUop) -> bool:
        """Read-only mirror of ``_try_rename_main``'s structural
        stalls; True means rename cannot proceed until a completion or
        retirement frees resources."""
        if len(self.rob) >= self._rob_entries:
            return True
        cls = uop.instr.uop_class
        if cls not in _NO_EXEC_CLASSES and not self.scheduler.main_has_space():
            return True
        if cls is UopClass.LOAD and self.lq.full():
            return True
        if cls is UopClass.STORE and self.sq.full():
            return True
        return (
            uop.instr.dst not in (None, REG_ZERO)
            and not self.prf.main_free
        )

    def executing_uops(self):
        """All in-flight executions (tracing/diagnostics view)."""
        for bucket in self._done_buckets.values():
            yield from bucket

    def progress_diagnostics(self) -> dict:
        """JSON-safe dump of forward-progress state (watchdog payload).

        The format lives in :mod:`repro.verify.diagnostics` and is
        shared with ``InvariantViolation`` and the harness's fault
        attribution (lazy import: verify sits above core in the layer
        DAG).
        """
        from ..verify.diagnostics import progress_diagnostics

        return progress_diagnostics(self)

    # ==================================================================
    # Branch prediction (decoupled, runs ahead of fetch)
    # ==================================================================
    def _predict(self) -> None:
        block = self.frontend.tick()
        if block is None or block.branches is None:
            return
        for branch in block.branches:
            self.ifbq.add(branch)
            if self.runahead is not None:
                self.runahead.on_branch_predicted(branch)

    # ==================================================================
    # Main-thread fetch: FTQ -> I-cache -> frontend pipe
    # ==================================================================
    def _fetch(self) -> None:
        decode_pipe = self.decode_pipe
        budget = min(self._fetch_width, self._frontend_buffer - len(decode_pipe))
        cycle = self.cycle
        tea = self.tea
        is_chain_seq = tea.is_chain_seq if tea is not None else None
        rename_ready = cycle + self._post_fetch_delay
        append = decode_pipe.append
        stats = self.stats
        blocks_finished = 0
        while budget > 0 and blocks_finished < self._max_blocks_fetched:
            ftq = self.frontend.ftq
            if not ftq:
                break
            block = ftq[0]
            if block is not self._cur_block:
                self._cur_block = block
                self._block_offset = 0
                ready = self.hierarchy.access_ifetch(block.start_pc, cycle)
                last_pc = block.uops[-1].instr.pc if block.uops else block.start_pc
                if line_address(last_pc) != line_address(block.start_pc):
                    ready = max(
                        ready, self.hierarchy.access_ifetch(last_pc, cycle)
                    )
                self._cur_block_ready = ready
            if self._cur_block_ready > cycle:
                break
            uops = block.uops
            offset = self._block_offset
            n = len(uops)
            while budget > 0 and offset < n:
                fuop = uops[offset]
                dyn = DynUop(fuop.seq, fuop.instr, fuop.branch, is_tea=False)
                dyn.fetch_cycle = cycle
                dyn.rename_ready_cycle = rename_ready
                if is_chain_seq is not None and is_chain_seq(fuop.seq):
                    dyn.in_chain = True
                append(dyn)
                stats.fetched_uops += 1
                offset += 1
                budget -= 1
            self._block_offset = offset
            if offset >= n:
                ftq.popleft()
                self._cur_block = None
                blocks_finished += 1
            else:
                break

    # ==================================================================
    # Rename / issue into the backend
    # ==================================================================
    def _rename(self) -> None:
        width = self._rename_width
        if self.tea is not None:
            width = self.tea.rename_first(width)
        decode_pipe = self.decode_pipe
        cycle = self.cycle
        while width > 0 and decode_pipe:
            uop = decode_pipe[0]
            if uop.rename_ready_cycle > cycle:
                break
            if not self._try_rename_main(uop):
                break
            decode_pipe.popleft()
            width -= 1

    def _try_rename_main(self, uop: DynUop) -> bool:
        """Rename one main-thread uop; False on structural stall."""
        if len(self.rob) >= self._rob_entries:
            return False
        instr = uop.instr
        cls = instr.uop_class
        needs_rs = cls not in _NO_EXEC_CLASSES
        if needs_rs and not self.scheduler.main_has_space():
            return False
        if cls is UopClass.LOAD and self.lq.full():
            return False
        if cls is UopClass.STORE and self.sq.full():
            return False
        dst = instr.dst if instr.dst not in (None, REG_ZERO) else None
        preg = None
        if dst is not None:
            preg = self.prf.allocate(tea=False)
            if preg is None:
                return False

        uop.src_pregs = rename_sources(self.rat, instr.srcs)
        if dst is not None:
            uop.dst_preg = preg
            uop.old_dst_preg = self.rat.set(dst, preg)
        uop.state = UopState.RENAMED
        uop.rename_cycle = self.cycle
        self.rob.append(uop)
        self.last_renamed_seq = uop.seq
        if cls is UopClass.LOAD:
            self.lq.insert(uop)
        elif cls is UopClass.STORE:
            self.sq.insert(uop)
        if needs_rs:
            self.scheduler.insert(uop)
        else:
            uop.state = UopState.DONE
            uop.done_cycle = self.cycle
        if uop.branch is not None and uop.branch.can_mispredict:
            entry = self.ifbq.get(uop.seq)
            if entry is not None:
                entry.renamed = True
                entry.rat_checkpoint = self.rat.checkpoint()
        if self.tea is not None:
            self.tea.on_main_rename(uop)
        if self.crisp is not None:
            self.crisp.on_main_rename(uop)
        return True

    # ==================================================================
    # Schedule + execute
    # ==================================================================
    def _issue_gate(self, uop: DynUop) -> bool:
        """Memory-ordering gate for operand-ready select candidates.

        Operand readiness is already guaranteed by the scheduler's
        wakeup pools, so only loads have anything left to check.  A
        False verdict can only change when a store begins execution;
        the scheduler parks rejected uops until that event
        (:meth:`Scheduler.store_executed`).

        For an admitted main-thread load the effective address and the
        store-forward verdict are stashed on the uop so
        ``_start_execution`` does not recompute them the same cycle.
        The address is a pure function of (write-once) operand values
        and is cached across cycles; the forward verdict is refreshed
        on every call because stores may drain from the SQ in between.
        """
        if uop.instr.uop_class is not UopClass.LOAD:
            return True
        if uop.is_tea:
            # Intra-TEA store->load ordering (store cache visibility).
            return self.tea.load_ordered(uop)
        # Conservative disambiguation: wait for older store addresses.
        if not self.sq.addresses_resolved_before(uop.seq):
            return False
        addr = uop.mem_addr
        if addr is None:
            values = self.prf.values
            addr = effective_address(
                uop.instr, tuple([values[p] for p in uop.src_pregs])
            )
            uop.mem_addr = addr
        status, value = self.sq.forward(addr, uop.seq)
        if status == "wait":
            return False
        uop.fwd_status = status
        uop.fwd_value = value
        return True

    def _schedule(self) -> None:
        scheduler = self.scheduler
        if not scheduler.has_ready():
            return
        picked = scheduler.select(self._issue_gate)
        for uop in picked:
            if not self._start_execution(uop):
                # Structural retry (MSHRs full): put it back.
                scheduler.insert(uop)

    def _start_execution(self, uop: DynUop) -> bool:
        instr = uop.instr
        cls = instr.uop_class
        if uop.is_tea and self.tea is not None:
            self.tea.on_operands_read(uop)

        if cls is UopClass.LOAD:
            if uop.is_tea:
                # Recomputed on every attempt: a structural retry may
                # straddle a TEA preg recycle that rewrote a source,
                # and the stale address would target the wrong line.
                values = self.prf.values
                addr = effective_address(
                    instr, tuple([values[p] for p in uop.src_pregs])
                )
                uop.mem_addr = addr
                ready = self.hierarchy.access_load(addr, self.cycle)
                if ready is None:
                    return False
                uop.result = self.tea.load_value(addr)
                uop.done_cycle = ready
            else:
                # Address and forward verdict were cached by the issue
                # gate earlier this cycle.
                if uop.fwd_status == "hit":
                    uop.result = uop.fwd_value
                    uop.load_forwarded = True
                    uop.done_cycle = self.cycle + self.config.memory.l1d_latency
                else:
                    ready = self.hierarchy.access_load(uop.mem_addr, self.cycle)
                    if ready is None:
                        return False
                    uop.result = self.memory.load(uop.mem_addr)
                    uop.done_cycle = ready
        elif cls is UopClass.STORE:
            values = tuple([self.prf.values[p] for p in uop.src_pregs])
            uop.mem_addr = effective_address(instr, values)
            uop.store_value = values[0]
            uop.done_cycle = self.cycle + 1
            # The store's address just resolved: re-arm loads parked on
            # the memory-ordering gate.
            self.scheduler.store_executed(uop.is_tea)
        elif instr.is_branch:
            values = tuple([self.prf.values[p] for p in uop.src_pregs])
            taken = branch_taken(instr, values)
            uop.br_taken = taken
            uop.br_target = (
                branch_target(instr, values) if taken else instr.fallthrough_pc
            )
            uop.result = compute_result(instr, values)
            uop.done_cycle = self.cycle + 1
        else:
            values = tuple([self.prf.values[p] for p in uop.src_pregs])
            uop.result = compute_result(instr, values)
            uop.done_cycle = self.cycle + instr.latency
        uop.state = UopState.EXECUTING
        done = uop.done_cycle
        bucket = self._done_buckets.get(done)
        if bucket is None:
            self._done_buckets[done] = [uop]
            heappush(self._done_heap, done)
        else:
            bucket.append(uop)
        return True

    # ==================================================================
    # Completion: writeback, branch resolution, flushes
    # ==================================================================
    def _complete(self) -> None:
        heap = self._done_heap
        cycle = self.cycle
        if not heap or heap[0] > cycle:
            return
        buckets = self._done_buckets
        squashed = UopState.SQUASHED  # property call is too hot here
        finished: list[DynUop] = []
        while heap and heap[0] <= cycle:
            for uop in buckets.pop(heappop(heap)):
                if uop.state is not squashed:
                    finished.append(uop)
        # Resolve oldest-first; a flush squashes younger completions.
        if len(finished) > 1:
            finished.sort(key=_COMPLETE_ORDER)
        for uop in finished:
            if uop.state is squashed:
                continue
            uop.state = UopState.DONE
            if uop.dst_preg is not None:
                self.prf.write(uop.dst_preg, uop.result)
            if uop.is_tea:
                self._complete_tea(uop)
            else:
                if uop.branch is not None and uop.branch.can_mispredict:
                    self._resolve_main_branch(uop)

    def _complete_tea(self, uop: DynUop) -> None:
        if uop.instr.is_store:
            self.tea.store_to_cache(uop)
        if uop.branch is not None and uop.branch.can_mispredict:
            self.tea.on_tea_branch_resolved(uop)
        obs = self.obs
        if obs is not None and obs.wants("tea_uop_done"):
            obs.emit("tea_uop_done", uop=uop)
        self.tea.on_tea_uop_done(uop)

    def _resolve_main_branch(self, uop: DynUop) -> None:
        info = uop.branch
        actual_taken = uop.br_taken
        actual_next = uop.br_target
        predicted_next = info.predicted_next_pc
        direction_wrong = (
            info.uop_class is UopClass.BR_COND and actual_taken != info.predicted_taken
        )
        target_wrong = (
            info.uop_class is not UopClass.BR_COND and actual_next != predicted_next
        )
        mispredicted = direction_wrong or target_wrong or (
            info.uop_class is UopClass.BR_COND
            and actual_taken
            and actual_next != info.predicted_target
        )
        uop.mispredicted = mispredicted
        entry = self.ifbq.get(uop.seq)
        if entry is not None:
            entry.main_resolved = True
            entry.main_resolve_cycle = self.cycle

        tea_resolved = entry is not None and entry.tea_resolved
        tea_flushed = entry is not None and entry.tea_flush_issued
        obs = self.obs
        gap = None
        lead = None
        if tea_resolved and entry.tea_resolve_cycle >= 0:
            gap = self.cycle - entry.tea_resolve_cycle
            if uop.fetch_cycle >= 0:
                # Timeliness: positive = the TEA copy resolved before
                # the main thread even fetched the branch.
                lead = uop.fetch_cycle - entry.tea_resolve_cycle
        tea_correct = False
        if tea_resolved:
            tea_correct = (
                entry.tea_taken == actual_taken and entry.tea_target == actual_next
            )
            if not tea_correct:
                self.stats.tea_wrong_resolutions += 1
            # Per-chain accuracy sample (graceful degradation).
            self.tea.on_accuracy_sample(info.pc, tea_correct)
        if tea_flushed:
            if tea_correct:
                if mispredicted:
                    saved = max(0, self.cycle - entry.tea_resolve_cycle)
                    self.stats.tea_cycles_saved += saved
                    if saved >= 1:
                        self.stats.covered_timely += 1
                        outcome = "covered_timely"
                    else:
                        self.stats.covered_late += 1
                        outcome = "covered_late"
                    if obs is not None:
                        self._emit_branch_resolved(
                            obs, uop, outcome, tea_resolved, saved, gap, lead
                        )
            else:
                # Incorrect precomputation slipped past the poison
                # check: the fail-safe issues a corrective flush.
                self.stats.extra_flushes += 1
                if mispredicted:
                    self.stats.incorrect_precomputations += 1
                if obs is not None:
                    if mispredicted:
                        self._emit_branch_resolved(
                            obs, uop, "incorrect", tea_resolved, 0, gap, lead
                        )
                    obs.emit(
                        "mispredict_flush",
                        pc=info.pc,
                        seq=info.seq,
                        penalty=self._flush_penalty(uop),
                        corrective=True,
                    )
                self.flush_at_branch(info, actual_taken, actual_next)
            return

        if mispredicted:
            if tea_resolved:
                # TEA resolved but did not flush: it either agreed with
                # the (wrong) prediction or was poison-blocked.
                self.stats.incorrect_precomputations += 1
                outcome = "incorrect"
            else:
                self.stats.uncovered_mispredicts += 1
                outcome = "uncovered"
            if obs is not None:
                self._emit_branch_resolved(
                    obs, uop, outcome, tea_resolved, 0, gap, lead
                )
                obs.emit(
                    "mispredict_flush",
                    pc=info.pc,
                    seq=info.seq,
                    penalty=self._flush_penalty(uop),
                    corrective=False,
                )
            self.flush_at_branch(info, actual_taken, actual_next)

    @staticmethod
    def _flush_penalty(uop: DynUop) -> int:
        """Cycles of wrong-path exposure: resolve cycle - fetch cycle."""
        return max(0, uop.done_cycle - uop.fetch_cycle) if uop.fetch_cycle >= 0 else 0

    @staticmethod
    def _emit_branch_resolved(obs, uop, outcome, tea_resolved, saved, gap,
                              lead=None):
        data = {"outcome": outcome, "tea_resolved": tea_resolved, "saved": saved}
        if gap is not None:
            data["gap"] = gap
        if lead is not None:
            data["lead"] = lead
        obs.emit("branch_resolved", pc=uop.instr.pc, seq=uop.seq, **data)

    # ==================================================================
    # Flush machinery (shared by main resolution and TEA early flushes)
    # ==================================================================
    def flush_at_branch(self, info, actual_taken: bool, actual_target: int) -> None:
        """Flush everything younger than ``info.seq`` and redirect.

        Implements the paper's timestamp-based flush: backend squash,
        partial frontend flush (only uops younger than the branch are
        removed from the frontend pipe and FTQ), predictor state
        repair, and RAT recovery from the branch's checkpoint when the
        branch had been renamed.
        """
        seq = info.seq
        self.stats.flushes += 1
        entry = self.ifbq.get(seq)
        # Backend squash (ROB is ordered by seq).
        squashed_backend = 0
        while self.rob and self.rob[-1].seq > seq:
            self._squash(self.rob.pop())
            squashed_backend += 1
        if entry is not None and entry.renamed and entry.rat_checkpoint is not None:
            self.rat.restore(entry.rat_checkpoint)
        self.scheduler.squash_younger(seq)
        self.lq.squash_younger(seq)
        self.sq.squash_younger(seq)
        # Partial frontend flush.
        squashed_frontend = 0
        if self.decode_pipe and self.decode_pipe[-1].seq > seq:
            kept = [u for u in self.decode_pipe if u.seq <= seq]
            squashed_frontend = len(self.decode_pipe) - len(kept)
            self.decode_pipe = deque(kept)
        if self.obs is not None:
            self.obs.emit(
                "flush",
                pc=info.pc,
                seq=seq,
                squashed_backend=squashed_backend,
                squashed_frontend=squashed_frontend,
            )
        self.frontend.flush_at(info, actual_taken, actual_target)
        # NOTE: the fetch cursor (_cur_block/_block_offset) survives a
        # flush deliberately.  The FTQ head is the *oldest* block: a
        # flush either truncates it at the branch (offset stays valid —
        # this is the paper's partial FTQ flush) or removes it entirely
        # because every uop in it is younger, in which case the next
        # fetch sees a different head object and resets the cursor.
        removed_branches = self.ifbq.squash_younger(seq)
        if self.tea is not None:
            self.tea.on_flush(seq)
        if self.runahead is not None:
            self.runahead.on_branches_squashed(removed_branches)
            self.runahead.on_flush(seq)

    def _squash(self, uop: DynUop) -> None:
        uop.state = UopState.SQUASHED
        if uop.dst_preg is not None:
            self.prf.free(uop.dst_preg)
        obs = self.obs
        if obs is not None and obs.wants("uop_squash"):
            obs.emit("uop_squash", uop=uop)

    # ==================================================================
    # Retire
    # ==================================================================
    def _retire(self) -> None:
        retired = 0
        while retired < self._retire_width and self.rob:
            uop = self.rob[0]
            if uop.state is not UopState.DONE:
                break
            self.rob.popleft()
            uop.state = UopState.RETIRED
            self._commit(uop)
            retired += 1
            self.retired_total += 1
            self.stats.retired_instructions += 1
            self._last_retire_cycle = self.cycle
            if uop.instr.uop_class is UopClass.HALT:
                self.halted = True
                break

    def _commit(self, uop: DynUop) -> None:
        instr = uop.instr
        if instr.is_store:
            self.memory.store(uop.mem_addr, uop.store_value)
            self.hierarchy.access_store_retire(uop.mem_addr)
            self.sq.remove(uop)
        elif instr.is_load:
            self.lq.remove(uop)
        dst = instr.dst if instr.dst not in (None, REG_ZERO) else None
        if dst is not None and uop.dst_preg is not None:
            self.committed_regs[dst] = self.prf.read(uop.dst_preg)
        if uop.old_dst_preg is not None:
            self.prf.free(uop.old_dst_preg)
        if instr.is_branch and uop.branch is not None:
            self.stats.retired_branches += 1
            self.frontend.train_resolved(uop.branch, uop.br_taken, uop.br_target)
            if uop.mispredicted:
                if instr.uop_class is UopClass.BR_COND:
                    self.stats.direction_mispredicts += 1
                else:
                    self.stats.target_mispredicts += 1
                by_pc = self.stats.extra.setdefault("mispredicts_by_pc", {})
                by_pc[instr.pc] = by_pc.get(instr.pc, 0) + 1
            if uop.branch.can_mispredict:
                self.ifbq.remove(uop.seq)
                if self.obs is not None:
                    self.obs.emit(
                        "branch_retire",
                        pc=instr.pc,
                        seq=uop.seq,
                        mispredicted=uop.mispredicted,
                        direction=instr.uop_class is UopClass.BR_COND,
                        taken=bool(uop.br_taken),
                    )
        if self.tea is not None:
            self.tea.on_retire(uop)
        if self.runahead is not None:
            self.runahead.on_retire(uop)
        if self.crisp is not None:
            self.crisp.on_retire(uop)
        obs = self.obs
        if obs is not None and obs.wants("uop_commit"):
            obs.emit("uop_commit", uop=uop)

    # ==================================================================
    # Introspection helpers (tests, examples)
    # ==================================================================
    def architectural_register(self, arch_reg: int) -> int | float:
        """Committed value of an architectural register."""
        return self.committed_regs[arch_reg]

    def top_mispredicting_branches(self, count: int = 10) -> list[tuple[int, int]]:
        """The heaviest mispredictors: ``[(pc, mispredicts), ...]``.

        Tracked at retirement; this is the oracle view of what the H2P
        table approximates with its decaying counters.
        """
        table = self.stats.extra.get("mispredicts_by_pc", {})
        ranked = sorted(table.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:count]
