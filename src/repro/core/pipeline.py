"""The out-of-order core: an execution-driven cycle-level pipeline.

Stage order within :meth:`Pipeline.step` runs back-to-front (retire,
complete, schedule, rename, TEA fetch, fetch, predict) so that results
take at least one cycle to traverse each stage boundary.

Thread model: the *main thread* fetches every predicted uop from the
FTQ through a 12-cycle frontend into the shared backend; the optional
*TEA thread* (installed by :mod:`repro.tea`) consumes the shadow FTQ,
fetching only dependence-chain uops out of the Block Cache, renaming
through a shadow RAT, and resolving H2P branches early.  Both threads
share the physical register file values, execution ports, cache ports
and MSHRs; RS/PRF capacity is partitioned (paper §IV-E).

Flush machinery: every dynamic uop carries its FTQ sequence number
(timestamp).  ``flush_at_branch`` squashes all uops younger than the
branch's timestamp in *both* threads — including partial flushes of the
frontend pipe and FTQ (paper §IV-F) — restores the RAT from the
branch's checkpoint when the branch had been renamed, and repairs the
decoupled predictor's speculative state.
"""

from __future__ import annotations

from collections import deque

from ..frontend.decoupled import DecoupledFrontend, FetchBlock
from ..isa import (
    Program,
    REG_ZERO,
    UopClass,
    branch_taken,
    branch_target,
    compute_result,
    effective_address,
)
from ..isa.registers import NUM_ARCH_REGS
from ..memory.cache import line_address
from ..memory.hierarchy import MemoryHierarchy
from ..memory.memory_image import MemoryImage
from .config import SimConfig
from .dynamic_uop import DynUop, UopState
from .ifbq import InFlightBranchQueue
from .lsq import LoadQueue, StoreQueue
from .rename import (
    PhysicalRegisterFile,
    RegisterAliasTable,
    rename_sources,
)
from .scheduler import Scheduler
from .stats import SimStats

_MEM_CLASSES = (UopClass.LOAD, UopClass.STORE)
_NO_EXEC_CLASSES = (UopClass.NOP, UopClass.HALT)


class SimulationError(RuntimeError):
    """Raised when the simulated machine deadlocks (a model bug).

    ``diagnostics`` (when raised by the forward-progress watchdog) is a
    JSON-safe dict capturing the stalled machine: cycle, ROB head uop,
    FTQ depth, scheduler occupancy, and TEA thread state — enough to
    triage a wedged campaign cell from its journaled failure record
    without re-running the simulation.
    """

    def __init__(self, message: str, diagnostics: dict | None = None):
        super().__init__(message)
        self.diagnostics = diagnostics or {}


class Pipeline:
    """An 8-wide OoO core instance bound to one program + data image."""

    def __init__(
        self,
        program: Program,
        memory: MemoryImage,
        config: SimConfig | None = None,
    ):
        self.config = config or SimConfig()
        core = self.config.core
        self.program = program
        self.memory = memory
        self.frontend = DecoupledFrontend(program, self.config.frontend)
        self.hierarchy = MemoryHierarchy(self.config.memory)
        tea_cfg = self.config.tea
        tea_prf = tea_cfg.physical_registers if tea_cfg else 0
        tea_rs = tea_cfg.rs_entries if tea_cfg else 0
        tea_units = (
            tea_cfg.dedicated_execution_units
            if tea_cfg and tea_cfg.dedicated_engine
            else 0
        )
        self.prf = PhysicalRegisterFile(core.physical_registers, tea_prf)
        self.rat = RegisterAliasTable()
        self.scheduler = Scheduler(core, tea_rs, tea_units)
        self.rob: deque[DynUop] = deque()
        self.lq = LoadQueue(core.load_queue)
        self.sq = StoreQueue(core.store_queue)
        self.ifbq = InFlightBranchQueue()
        self.decode_pipe: deque[DynUop] = deque()
        self.stats = SimStats()
        self.cycle = 0
        self.halted = False
        self.retired_total = 0
        self.last_renamed_seq = -1
        self.committed_regs: list[int | float] = [0] * NUM_ARCH_REGS
        self._executing: list[DynUop] = []
        self._post_fetch_delay = max(
            0, core.frontend_depth - self.config.memory.l1i_latency
        )
        # Main-thread fetch cursor into the FTQ head block.
        self._cur_block: FetchBlock | None = None
        self._cur_block_ready = 0
        self._block_offset = 0
        self._last_retire_cycle = 0
        # Observability: an optional repro.obs EventBus.  ``None`` by
        # default; every emission site guards on it so the disabled
        # cost is one attribute load + is-None check.
        self.obs = None
        # Optional mechanisms, installed lazily to avoid import cycles.
        self.tea = None
        self.runahead = None
        self.crisp = None
        if tea_cfg is not None:
            from ..tea.controller import TeaController

            self.tea = TeaController(self, tea_cfg)
        if self.config.runahead is not None:
            from ..runahead.controller import RunaheadController

            self.runahead = RunaheadController(self, self.config.runahead)
        if self.config.crisp is not None:
            from ..crisp.controller import CrispController

            self.crisp = CrispController(self, self.config.crisp)

    # ==================================================================
    # Top-level control
    # ==================================================================
    def run(
        self,
        max_instructions: int | None = None,
        max_cycles: int | None = None,
    ) -> SimStats:
        """Run until HALT retires or a limit is reached; returns stats.

        Warmup handling: once ``config.warmup_instructions`` have
        retired, all statistics are reset and measurement begins.
        """
        max_instructions = max_instructions or self.config.max_instructions
        max_cycles = max_cycles or self.config.max_cycles
        warmup = self.config.warmup_instructions
        measurement_started = warmup == 0
        if measurement_started:
            self.stats.start_measurement()
            if self.obs is not None:
                self.obs.emit("measurement_start")
        while not self.halted:
            self.step()
            if not measurement_started and self.retired_total >= warmup:
                self.stats.start_measurement()
                measurement_started = True
                if self.obs is not None:
                    self.obs.emit("measurement_start")
            if (
                max_instructions is not None
                and self.stats.retired_instructions >= max_instructions
            ):
                break
            if max_cycles is not None and self.cycle >= max_cycles:
                break
        return self.stats

    def step(self) -> None:
        """Advance the machine by one cycle."""
        self.cycle += 1
        self._retire()
        self._complete()
        self._schedule()
        self._rename()
        if self.tea is not None:
            self.tea.fetch()
        self._fetch()
        self._predict()
        if self.runahead is not None:
            self.runahead.tick()
        self.stats.cycles += 1
        obs = self.obs
        if obs is not None and obs.wants("cycle_end"):
            obs.emit("cycle_end")
        stall = self.cycle - self._last_retire_cycle
        if stall > self.config.watchdog_cycles:
            diagnostics = self.progress_diagnostics()
            raise SimulationError(
                f"no retirement for {stall} cycles at cycle {self.cycle}; "
                f"rob={len(self.rob)} decode={len(self.decode_pipe)} "
                f"ftq={len(self.frontend.ftq)} "
                f"bp_stalled={self.frontend.stalled()} "
                f"rob_head={diagnostics['rob_head']}",
                diagnostics=diagnostics,
            )

    def progress_diagnostics(self) -> dict:
        """JSON-safe dump of forward-progress state (watchdog payload)."""
        head = self.rob[0] if self.rob else None
        main_rs, tea_rs = self.scheduler.occupancy
        diag = {
            "cycle": self.cycle,
            "last_retire_cycle": self._last_retire_cycle,
            "rob_depth": len(self.rob),
            "rob_head": (
                {
                    "seq": head.seq,
                    "pc": head.instr.pc,
                    "opcode": head.instr.opcode,
                    "state": head.state.name,
                }
                if head is not None
                else None
            ),
            "decode_pipe_depth": len(self.decode_pipe),
            "ftq_depth": len(self.frontend.ftq),
            "bp_stalled": self.frontend.stalled(),
            "scheduler_main_rs": main_rs,
            "scheduler_tea_rs": tea_rs,
            "load_queue_depth": len(self.lq.entries),
            "store_queue_depth": len(self.sq.entries),
            "free_pregs": self.prf.main_available(),
        }
        if self.tea is not None:
            diag["tea"] = {
                "active": self.tea.active,
                "draining": self.tea.draining,
            }
        return diag

    # ==================================================================
    # Branch prediction (decoupled, runs ahead of fetch)
    # ==================================================================
    def _predict(self) -> None:
        block = self.frontend.tick()
        if block is None:
            return
        for fuop in block.uops:
            if fuop.branch is not None and fuop.branch.can_mispredict:
                self.ifbq.add(fuop.branch)
                if self.runahead is not None:
                    self.runahead.on_branch_predicted(fuop.branch)

    # ==================================================================
    # Main-thread fetch: FTQ -> I-cache -> frontend pipe
    # ==================================================================
    def _fetch(self) -> None:
        core = self.config.core
        budget = min(
            core.fetch_width, core.frontend_buffer - len(self.decode_pipe)
        )
        blocks_finished = 0
        while budget > 0 and blocks_finished < core.max_blocks_fetched_per_cycle:
            ftq = self.frontend.ftq
            if not ftq:
                break
            block = ftq[0]
            if block is not self._cur_block:
                self._cur_block = block
                self._block_offset = 0
                ready = self.hierarchy.access_ifetch(block.start_pc, self.cycle)
                last_pc = block.uops[-1].instr.pc if block.uops else block.start_pc
                if line_address(last_pc) != line_address(block.start_pc):
                    ready = max(
                        ready, self.hierarchy.access_ifetch(last_pc, self.cycle)
                    )
                self._cur_block_ready = ready
            if self._cur_block_ready > self.cycle:
                break
            uops = block.uops
            while budget > 0 and self._block_offset < len(uops):
                fuop = uops[self._block_offset]
                dyn = DynUop(fuop.seq, fuop.instr, fuop.branch, is_tea=False)
                dyn.fetch_cycle = self.cycle
                dyn.rename_ready_cycle = self.cycle + self._post_fetch_delay
                if self.tea is not None and self.tea.is_chain_seq(fuop.seq):
                    dyn.in_chain = True
                self.decode_pipe.append(dyn)
                self.stats.fetched_uops += 1
                self._block_offset += 1
                budget -= 1
            if self._block_offset >= len(uops):
                ftq.popleft()
                self._cur_block = None
                blocks_finished += 1
            else:
                break

    # ==================================================================
    # Rename / issue into the backend
    # ==================================================================
    def _rename(self) -> None:
        core = self.config.core
        width = core.rename_width
        if self.tea is not None:
            width = self.tea.rename_first(width)
        while width > 0 and self.decode_pipe:
            uop = self.decode_pipe[0]
            if uop.rename_ready_cycle > self.cycle:
                break
            if not self._try_rename_main(uop):
                break
            self.decode_pipe.popleft()
            width -= 1

    def _try_rename_main(self, uop: DynUop) -> bool:
        """Rename one main-thread uop; False on structural stall."""
        if len(self.rob) >= self.config.core.rob_entries:
            return False
        instr = uop.instr
        cls = instr.uop_class
        needs_rs = cls not in _NO_EXEC_CLASSES
        if needs_rs and not self.scheduler.main_has_space():
            return False
        if cls is UopClass.LOAD and self.lq.full():
            return False
        if cls is UopClass.STORE and self.sq.full():
            return False
        dst = instr.dst if instr.dst not in (None, REG_ZERO) else None
        preg = None
        if dst is not None:
            preg = self.prf.allocate(tea=False)
            if preg is None:
                return False

        uop.src_pregs = rename_sources(self.rat, instr.srcs)
        if dst is not None:
            uop.dst_preg = preg
            uop.old_dst_preg = self.rat.set(dst, preg)
        uop.state = UopState.RENAMED
        uop.rename_cycle = self.cycle
        self.rob.append(uop)
        self.last_renamed_seq = uop.seq
        if cls is UopClass.LOAD:
            self.lq.insert(uop)
        elif cls is UopClass.STORE:
            self.sq.insert(uop)
        if needs_rs:
            self.scheduler.insert(uop)
        else:
            uop.state = UopState.DONE
            uop.done_cycle = self.cycle
        if uop.branch is not None and uop.branch.can_mispredict:
            entry = self.ifbq.get(uop.seq)
            if entry is not None:
                entry.renamed = True
                entry.rat_checkpoint = self.rat.checkpoint()
        if self.tea is not None:
            self.tea.on_main_rename(uop)
        if self.crisp is not None:
            self.crisp.on_main_rename(uop)
        return True

    # ==================================================================
    # Schedule + execute
    # ==================================================================
    def _operands_ready(self, uop: DynUop) -> bool:
        ready = self.prf.ready
        for preg in uop.src_pregs:
            if not ready[preg]:
                return False
        return True

    def _ready_to_issue(self, uop: DynUop) -> bool:
        if not self._operands_ready(uop):
            return False
        if uop.is_tea and uop.instr.uop_class is UopClass.LOAD:
            # Intra-TEA store->load ordering (store cache visibility).
            return self.tea.load_ordered(uop)
        if uop.instr.uop_class is UopClass.LOAD and not uop.is_tea:
            # Conservative disambiguation: wait for older store addresses.
            if not self.sq.addresses_resolved_before(uop.seq):
                return False
            addr = effective_address(
                uop.instr, tuple(self.prf.read(p) for p in uop.src_pregs)
            )
            status, _ = self.sq.forward(addr, uop.seq)
            if status == "wait":
                return False
        return True

    def _schedule(self) -> None:
        picked = self.scheduler.select(self._ready_to_issue)
        for uop in picked:
            if not self._start_execution(uop):
                # Structural retry (MSHRs full): put it back.
                self.scheduler.insert(uop)

    def _start_execution(self, uop: DynUop) -> bool:
        instr = uop.instr
        cls = instr.uop_class
        values = tuple(self.prf.read(p) for p in uop.src_pregs)
        if uop.is_tea and self.tea is not None:
            self.tea.on_operands_read(uop)

        if cls is UopClass.LOAD:
            addr = effective_address(instr, values)
            uop.mem_addr = addr
            if uop.is_tea:
                ready = self.hierarchy.access_load(addr, self.cycle)
                if ready is None:
                    return False
                uop.result = self.tea.load_value(addr)
                uop.done_cycle = ready
            else:
                status, value = self.sq.forward(addr, uop.seq)
                if status == "hit":
                    uop.result = value
                    uop.load_forwarded = True
                    uop.done_cycle = self.cycle + self.config.memory.l1d_latency
                else:
                    ready = self.hierarchy.access_load(addr, self.cycle)
                    if ready is None:
                        return False
                    uop.result = self.memory.load(addr)
                    uop.done_cycle = ready
        elif cls is UopClass.STORE:
            uop.mem_addr = effective_address(instr, values)
            uop.store_value = values[0]
            uop.done_cycle = self.cycle + 1
        elif instr.is_branch:
            taken = branch_taken(instr, values)
            uop.br_taken = taken
            uop.br_target = (
                branch_target(instr, values) if taken else instr.fallthrough_pc
            )
            uop.result = compute_result(instr, values)
            uop.done_cycle = self.cycle + 1
        else:
            uop.result = compute_result(instr, values)
            uop.done_cycle = self.cycle + instr.latency
        uop.state = UopState.EXECUTING
        self._executing.append(uop)
        return True

    # ==================================================================
    # Completion: writeback, branch resolution, flushes
    # ==================================================================
    def _complete(self) -> None:
        finished: list[DynUop] = []
        still: list[DynUop] = []
        for uop in self._executing:
            if uop.squashed:
                continue
            if uop.done_cycle <= self.cycle:
                finished.append(uop)
            else:
                still.append(uop)
        self._executing = still
        # Resolve oldest-first; a flush squashes younger completions.
        finished.sort(key=lambda u: (u.seq, u.is_tea))
        for uop in finished:
            if uop.squashed:
                continue
            uop.state = UopState.DONE
            if uop.dst_preg is not None:
                self.prf.write(uop.dst_preg, uop.result)
            if uop.is_tea:
                self._complete_tea(uop)
            else:
                if uop.branch is not None and uop.branch.can_mispredict:
                    self._resolve_main_branch(uop)

    def _complete_tea(self, uop: DynUop) -> None:
        if uop.instr.is_store:
            self.tea.store_to_cache(uop)
        if uop.branch is not None and uop.branch.can_mispredict:
            self.tea.on_tea_branch_resolved(uop)
        obs = self.obs
        if obs is not None and obs.wants("tea_uop_done"):
            obs.emit("tea_uop_done", uop=uop)
        self.tea.on_tea_uop_done(uop)

    def _resolve_main_branch(self, uop: DynUop) -> None:
        info = uop.branch
        actual_taken = uop.br_taken
        actual_next = uop.br_target
        predicted_next = info.predicted_next_pc
        direction_wrong = (
            info.uop_class is UopClass.BR_COND and actual_taken != info.predicted_taken
        )
        target_wrong = (
            info.uop_class is not UopClass.BR_COND and actual_next != predicted_next
        )
        mispredicted = direction_wrong or target_wrong or (
            info.uop_class is UopClass.BR_COND
            and actual_taken
            and actual_next != info.predicted_target
        )
        uop.mispredicted = mispredicted
        entry = self.ifbq.get(uop.seq)
        if entry is not None:
            entry.main_resolved = True
            entry.main_resolve_cycle = self.cycle

        tea_resolved = entry is not None and entry.tea_resolved
        tea_flushed = entry is not None and entry.tea_flush_issued
        obs = self.obs
        gap = None
        if tea_resolved and entry.tea_resolve_cycle >= 0:
            gap = self.cycle - entry.tea_resolve_cycle
        if tea_resolved and (
            entry.tea_taken != actual_taken or entry.tea_target != actual_next
        ):
            self.stats.tea_wrong_resolutions += 1
        if tea_flushed:
            tea_correct = (
                entry.tea_taken == actual_taken and entry.tea_target == actual_next
            )
            if tea_correct:
                if mispredicted:
                    saved = max(0, self.cycle - entry.tea_resolve_cycle)
                    self.stats.tea_cycles_saved += saved
                    if saved >= 1:
                        self.stats.covered_timely += 1
                        outcome = "covered_timely"
                    else:
                        self.stats.covered_late += 1
                        outcome = "covered_late"
                    if obs is not None:
                        self._emit_branch_resolved(
                            obs, uop, outcome, tea_resolved, saved, gap
                        )
            else:
                # Incorrect precomputation slipped past the poison
                # check: the fail-safe issues a corrective flush.
                self.stats.extra_flushes += 1
                if mispredicted:
                    self.stats.incorrect_precomputations += 1
                if obs is not None:
                    if mispredicted:
                        self._emit_branch_resolved(
                            obs, uop, "incorrect", tea_resolved, 0, gap
                        )
                    obs.emit(
                        "mispredict_flush",
                        pc=info.pc,
                        seq=info.seq,
                        penalty=self._flush_penalty(uop),
                        corrective=True,
                    )
                self.flush_at_branch(info, actual_taken, actual_next)
            return

        if mispredicted:
            if tea_resolved:
                # TEA resolved but did not flush: it either agreed with
                # the (wrong) prediction or was poison-blocked.
                self.stats.incorrect_precomputations += 1
                outcome = "incorrect"
            else:
                self.stats.uncovered_mispredicts += 1
                outcome = "uncovered"
            if obs is not None:
                self._emit_branch_resolved(obs, uop, outcome, tea_resolved, 0, gap)
                obs.emit(
                    "mispredict_flush",
                    pc=info.pc,
                    seq=info.seq,
                    penalty=self._flush_penalty(uop),
                    corrective=False,
                )
            self.flush_at_branch(info, actual_taken, actual_next)

    @staticmethod
    def _flush_penalty(uop: DynUop) -> int:
        """Cycles of wrong-path exposure: resolve cycle - fetch cycle."""
        return max(0, uop.done_cycle - uop.fetch_cycle) if uop.fetch_cycle >= 0 else 0

    @staticmethod
    def _emit_branch_resolved(obs, uop, outcome, tea_resolved, saved, gap):
        data = {"outcome": outcome, "tea_resolved": tea_resolved, "saved": saved}
        if gap is not None:
            data["gap"] = gap
        obs.emit("branch_resolved", pc=uop.instr.pc, seq=uop.seq, **data)

    # ==================================================================
    # Flush machinery (shared by main resolution and TEA early flushes)
    # ==================================================================
    def flush_at_branch(self, info, actual_taken: bool, actual_target: int) -> None:
        """Flush everything younger than ``info.seq`` and redirect.

        Implements the paper's timestamp-based flush: backend squash,
        partial frontend flush (only uops younger than the branch are
        removed from the frontend pipe and FTQ), predictor state
        repair, and RAT recovery from the branch's checkpoint when the
        branch had been renamed.
        """
        seq = info.seq
        self.stats.flushes += 1
        entry = self.ifbq.get(seq)
        # Backend squash (ROB is ordered by seq).
        squashed_backend = 0
        while self.rob and self.rob[-1].seq > seq:
            self._squash(self.rob.pop())
            squashed_backend += 1
        if entry is not None and entry.renamed and entry.rat_checkpoint is not None:
            self.rat.restore(entry.rat_checkpoint)
        self.scheduler.squash_younger(seq)
        self.lq.squash_younger(seq)
        self.sq.squash_younger(seq)
        # Partial frontend flush.
        squashed_frontend = 0
        if self.decode_pipe and self.decode_pipe[-1].seq > seq:
            kept = [u for u in self.decode_pipe if u.seq <= seq]
            squashed_frontend = len(self.decode_pipe) - len(kept)
            self.decode_pipe = deque(kept)
        if self.obs is not None:
            self.obs.emit(
                "flush",
                pc=info.pc,
                seq=seq,
                squashed_backend=squashed_backend,
                squashed_frontend=squashed_frontend,
            )
        self.frontend.flush_at(info, actual_taken, actual_target)
        # NOTE: the fetch cursor (_cur_block/_block_offset) survives a
        # flush deliberately.  The FTQ head is the *oldest* block: a
        # flush either truncates it at the branch (offset stays valid —
        # this is the paper's partial FTQ flush) or removes it entirely
        # because every uop in it is younger, in which case the next
        # fetch sees a different head object and resets the cursor.
        removed_branches = self.ifbq.squash_younger(seq)
        if self.tea is not None:
            self.tea.on_flush(seq)
        if self.runahead is not None:
            self.runahead.on_branches_squashed(removed_branches)
            self.runahead.on_flush(seq)

    def _squash(self, uop: DynUop) -> None:
        uop.state = UopState.SQUASHED
        if uop.dst_preg is not None:
            self.prf.free(uop.dst_preg)
        obs = self.obs
        if obs is not None and obs.wants("uop_squash"):
            obs.emit("uop_squash", uop=uop)

    # ==================================================================
    # Retire
    # ==================================================================
    def _retire(self) -> None:
        core = self.config.core
        retired = 0
        while retired < core.retire_width and self.rob:
            uop = self.rob[0]
            if uop.state is not UopState.DONE:
                break
            self.rob.popleft()
            uop.state = UopState.RETIRED
            self._commit(uop)
            retired += 1
            self.retired_total += 1
            self.stats.retired_instructions += 1
            self._last_retire_cycle = self.cycle
            if uop.instr.uop_class is UopClass.HALT:
                self.halted = True
                break

    def _commit(self, uop: DynUop) -> None:
        instr = uop.instr
        if instr.is_store:
            self.memory.store(uop.mem_addr, uop.store_value)
            self.hierarchy.access_store_retire(uop.mem_addr)
            self.sq.remove(uop)
        elif instr.is_load:
            self.lq.remove(uop)
        dst = instr.dst if instr.dst not in (None, REG_ZERO) else None
        if dst is not None and uop.dst_preg is not None:
            self.committed_regs[dst] = self.prf.read(uop.dst_preg)
        if uop.old_dst_preg is not None:
            self.prf.free(uop.old_dst_preg)
        if instr.is_branch and uop.branch is not None:
            self.stats.retired_branches += 1
            self.frontend.train_resolved(uop.branch, uop.br_taken, uop.br_target)
            if uop.mispredicted:
                if instr.uop_class is UopClass.BR_COND:
                    self.stats.direction_mispredicts += 1
                else:
                    self.stats.target_mispredicts += 1
                by_pc = self.stats.extra.setdefault("mispredicts_by_pc", {})
                by_pc[instr.pc] = by_pc.get(instr.pc, 0) + 1
            if uop.branch.can_mispredict:
                self.ifbq.remove(uop.seq)
                if self.obs is not None:
                    self.obs.emit(
                        "branch_retire",
                        pc=instr.pc,
                        seq=uop.seq,
                        mispredicted=uop.mispredicted,
                        direction=instr.uop_class is UopClass.BR_COND,
                        taken=bool(uop.br_taken),
                    )
        if self.tea is not None:
            self.tea.on_retire(uop)
        if self.runahead is not None:
            self.runahead.on_retire(uop)
        if self.crisp is not None:
            self.crisp.on_retire(uop)
        obs = self.obs
        if obs is not None and obs.wants("uop_commit"):
            obs.emit("uop_commit", uop=uop)

    # ==================================================================
    # Introspection helpers (tests, examples)
    # ==================================================================
    def architectural_register(self, arch_reg: int) -> int | float:
        """Committed value of an architectural register."""
        return self.committed_regs[arch_reg]

    def top_mispredicting_branches(self, count: int = 10) -> list[tuple[int, int]]:
        """The heaviest mispredictors: ``[(pc, mispredicts), ...]``.

        Tracked at retirement; this is the oracle view of what the H2P
        table approximates with its decaying counters.
        """
        table = self.stats.extra.get("mispredicts_by_pc", {})
        ranked = sorted(table.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:count]
