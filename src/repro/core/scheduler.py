"""Reservation stations and port-constrained instruction selection.

The main thread owns ``rs_entries`` stations; the TEA thread owns its
own partition (paper: 192 RS reserved when active).  Execution ports
are shared — 6 ALU (also branches/mul/div), 4 load, 2 store, 2 FP —
and selection gives the TEA thread priority (paper §IV-E: "prioritizes
TEA thread instructions and uses the leftover Issue slots for the main
thread"), oldest-first within each thread.

With a *dedicated execution engine* (paper §V-D, Fig. 9) the TEA
thread instead draws from its own pool of ``dedicated_units``
any-class units and does not consume shared ports at all.

Scheduling is **event-driven**, not polled.  Each RS entry lives in
exactly one of three pools per thread:

``waiting``
    At least one source operand outstanding.  The uop sits on the
    PRF's per-preg wakeup lists (:meth:`PhysicalRegisterFile.subscribe`)
    and is untouched by ``select()``.  When its last source is written,
    the PRF calls back into :meth:`_wakeup` and the uop moves to
    ``ready``.
``ready``
    All operands available; a candidate for selection this cycle.
``blocked``
    Operands available but the pipeline's memory-ordering gate said no
    (an older store's address is unresolved, or a TEA load is waiting
    on an older TEA store).  That verdict can only change when a store
    begins execution, so the pool is re-armed by
    :meth:`store_executed` events instead of being re-polled.

Selection order must match the legacy polling scheduler exactly: that
scheduler scanned its RS lists in *insertion* order (rename inserts in
seq order, but an MSHR-full retry re-appends at the tail), so every
insert is stamped with a monotonically increasing ``rs_stamp`` and the
ready pools are kept sorted by it.
"""

from __future__ import annotations

from collections.abc import Callable
from operator import attrgetter

from ..isa import UopClass
from .config import CoreConfig
from .dynamic_uop import DynUop

_LOAD = UopClass.LOAD
_STORE = UopClass.STORE
_FP = UopClass.FP

_BY_STAMP = attrgetter("rs_stamp")


class Scheduler:
    """RS storage plus per-cycle select()."""

    def __init__(
        self,
        config: CoreConfig,
        tea_rs_entries: int = 0,
        tea_dedicated_units: int = 0,
    ):
        self.config = config
        self.tea_rs_entries = tea_rs_entries
        self.tea_dedicated_units = tea_dedicated_units
        # Optional criticality hook (CRISP/IBDA): main-thread uops for
        # which it returns True are selected ahead of older uops.
        self.priority_fn = None
        self.prf = None
        # Per-thread pools; see module docstring.
        self._ready_main: list[DynUop] = []
        self._ready_tea: list[DynUop] = []
        self._blocked_main: list[DynUop] = []
        self._blocked_tea: list[DynUop] = []
        self._waiting_main: dict[int, DynUop] = {}  # id(uop) -> uop
        self._waiting_tea: dict[int, DynUop] = {}
        self._main_sorted = True
        self._tea_sorted = True
        self._next_stamp = 0

    def bind_prf(self, prf) -> None:
        """Wire the PRF's wakeup lists into this scheduler's pools."""
        self.prf = prf
        prf.wakeup_sink = self._wakeup
        prf.unready_sink = self._unwake

    # -- capacity -------------------------------------------------------
    def _main_count(self) -> int:
        return (
            len(self._ready_main)
            + len(self._blocked_main)
            + len(self._waiting_main)
        )

    def _tea_count(self) -> int:
        return (
            len(self._ready_tea)
            + len(self._blocked_tea)
            + len(self._waiting_tea)
        )

    def main_has_space(self) -> bool:
        return self._main_count() < self.config.rs_entries

    def tea_has_space(self) -> bool:
        return self._tea_count() < self.tea_rs_entries

    def has_ready(self) -> bool:
        """True when select() could possibly pick something."""
        return bool(self._ready_main or self._ready_tea)

    # -- insertion and wakeup -------------------------------------------
    def insert(self, uop: DynUop) -> None:
        """Add a uop; it parks on PRF wakeup lists until operand-ready.

        Also the retry path: an MSHR-full load is re-inserted and gets
        a fresh stamp, placing it behind the existing entries exactly
        as the legacy list-append did.
        """
        uop.rs_stamp = self._next_stamp
        self._next_stamp += 1
        prf = self.prf
        pending = 0
        if prf is not None:
            ready = prf.ready
            waiters = prf.waiters
            for preg in uop.src_pregs:
                if preg:  # the zero preg is permanently ready
                    waiters[preg].append(uop)
                    if not ready[preg]:
                        pending += 1
        uop.pending_srcs = pending
        if pending:
            (self._waiting_tea if uop.is_tea else self._waiting_main)[
                id(uop)
            ] = uop
        elif uop.is_tea:
            self._ready_tea.append(uop)
            self._tea_sorted = False
        else:
            self._ready_main.append(uop)
            self._main_sorted = False

    def _wakeup(self, uop: DynUop) -> None:
        """PRF callback: ``uop``'s last outstanding source was written."""
        if uop.is_tea:
            if self._waiting_tea.pop(id(uop), None) is not None:
                self._ready_tea.append(uop)
                self._tea_sorted = False
        elif self._waiting_main.pop(id(uop), None) is not None:
            self._ready_main.append(uop)
            self._main_sorted = False

    def _unwake(self, uop: DynUop) -> None:
        """PRF callback: a source ``uop`` had counted as ready was
        reallocated; pull it back out of the candidate pools.  Rare
        (TEA preg recycling), so the O(n) removes don't matter."""
        if uop.is_tea:
            ready, blocked, waiting = (
                self._ready_tea, self._blocked_tea, self._waiting_tea
            )
        else:
            ready, blocked, waiting = (
                self._ready_main, self._blocked_main, self._waiting_main
            )
        if uop in ready:
            ready.remove(uop)
        elif uop in blocked:
            blocked.remove(uop)
        else:
            return  # already waiting, or not tracked here
        waiting[id(uop)] = uop

    def store_executed(self, tea: bool) -> None:
        """Re-arm memory-blocked loads: a store just resolved its
        address (main) / left the RENAMED state (TEA), which is the
        only event that can change the issue gate's verdict."""
        if tea:
            if self._blocked_tea:
                self._ready_tea.extend(self._blocked_tea)
                self._blocked_tea.clear()
                self._tea_sorted = False
        elif self._blocked_main:
            self._ready_main.extend(self._blocked_main)
            self._blocked_main.clear()
            self._main_sorted = False

    # -- flush support ----------------------------------------------------
    def _unsubscribe(self, uop: DynUop) -> None:
        """Remove a departing uop from every consumer list it sits on,
        so a freed-and-reallocated preg can never wake (or re-block) a
        uop that left the RS."""
        prf = self.prf
        if prf is None:
            return
        waiters = prf.waiters
        for preg in uop.src_pregs:
            if preg:
                pool = waiters[preg]
                if uop in pool:
                    pool.remove(uop)
        uop.pending_srcs = 0

    def _filter_younger(self, pool: list[DynUop], seq: int) -> list[DynUop]:
        kept = []
        for uop in pool:
            if uop.seq <= seq:
                kept.append(uop)
            else:
                self._unsubscribe(uop)
        return kept

    def squash_younger(self, seq: int) -> None:
        self._ready_main = self._filter_younger(self._ready_main, seq)
        self._ready_tea = self._filter_younger(self._ready_tea, seq)
        self._blocked_main = self._filter_younger(self._blocked_main, seq)
        self._blocked_tea = self._filter_younger(self._blocked_tea, seq)
        for pool in (self._waiting_main, self._waiting_tea):
            doomed = [key for key, u in pool.items() if u.seq > seq]
            for key in doomed:
                self._unsubscribe(pool.pop(key))

    def clear_tea(self) -> None:
        for uop in self._waiting_tea.values():
            self._unsubscribe(uop)
        for uop in self._ready_tea:
            self._unsubscribe(uop)
        for uop in self._blocked_tea:
            self._unsubscribe(uop)
        self._waiting_tea.clear()
        self._ready_tea.clear()
        self._blocked_tea.clear()

    def drop(self, uop: DynUop) -> None:
        """Remove one uop wherever it lives, unsubscribing it."""
        if uop.is_tea:
            ready, blocked, waiting = (
                self._ready_tea, self._blocked_tea, self._waiting_tea
            )
        else:
            ready, blocked, waiting = (
                self._ready_main, self._blocked_main, self._waiting_main
            )
        if waiting.pop(id(uop), None) is not None:
            self._unsubscribe(uop)
        elif uop in ready:
            ready.remove(uop)
            self._unsubscribe(uop)
        elif uop in blocked:
            blocked.remove(uop)
            self._unsubscribe(uop)

    # -- selection --------------------------------------------------------
    def select(self, gate: Callable[[DynUop], bool]) -> list[DynUop]:
        """Pick uops to begin execution this cycle.

        Only operand-ready candidates are inspected.  ``gate`` is the
        pipeline's memory-ordering check; a uop it rejects moves to the
        blocked pool until the next :meth:`store_executed` event.
        Selected uops are removed from their pools; the pipeline starts
        them (and re-inserts on a structural retry).
        """
        cfg = self.config
        alu = cfg.alu_ports
        load = cfg.load_ports
        store = cfg.store_ports
        fp = cfg.fp_ports
        picked: list[DynUop] = []

        ready_tea = self._ready_tea
        if ready_tea:
            if not self._tea_sorted:
                ready_tea.sort(key=_BY_STAMP)
                self._tea_sorted = True
            blocked_tea = self._blocked_tea
            remaining: list[DynUop] = []
            if self.tea_dedicated_units > 0:
                dedicated_left = self.tea_dedicated_units
                for i, uop in enumerate(ready_tea):
                    if dedicated_left <= 0:
                        remaining.extend(ready_tea[i:])
                        break
                    if gate(uop):
                        dedicated_left -= 1
                        picked.append(uop)
                    else:
                        blocked_tea.append(uop)
            else:
                for uop in ready_tea:
                    if not gate(uop):
                        blocked_tea.append(uop)
                        continue
                    cls = uop.instr.uop_class
                    if cls is _LOAD:
                        if load <= 0:
                            remaining.append(uop)
                            continue
                        load -= 1
                    elif cls is _STORE:
                        if store <= 0:
                            remaining.append(uop)
                            continue
                        store -= 1
                    elif cls is _FP:
                        if fp <= 0:
                            remaining.append(uop)
                            continue
                        fp -= 1
                    else:
                        if alu <= 0:
                            remaining.append(uop)
                            continue
                        alu -= 1
                    picked.append(uop)
            self._ready_tea = remaining

        ready_main = self._ready_main
        if ready_main:
            if not self._main_sorted:
                ready_main.sort(key=_BY_STAMP)
                self._main_sorted = True
            priority_fn = self.priority_fn
            if priority_fn is None:
                order = ready_main
            else:
                # Single-pass partition: critical uops first, each
                # group preserving age order (stable).
                order = []
                rest: list[DynUop] = []
                for uop in ready_main:
                    (order if priority_fn(uop) else rest).append(uop)
                order += rest
            blocked_main = self._blocked_main
            remaining = []
            for i, uop in enumerate(order):
                if not (alu or load or store or fp):
                    remaining.extend(order[i:])
                    break
                if not gate(uop):
                    blocked_main.append(uop)
                    continue
                cls = uop.instr.uop_class
                if cls is _LOAD:
                    if load <= 0:
                        remaining.append(uop)
                        continue
                    load -= 1
                elif cls is _STORE:
                    if store <= 0:
                        remaining.append(uop)
                        continue
                    store -= 1
                elif cls is _FP:
                    if fp <= 0:
                        remaining.append(uop)
                        continue
                    fp -= 1
                else:
                    if alu <= 0:
                        remaining.append(uop)
                        continue
                    alu -= 1
                picked.append(uop)
            self._ready_main = remaining
            if priority_fn is not None:
                # ``remaining`` inherited the partitioned order.
                self._main_sorted = False

        for uop in picked:
            self._unsubscribe(uop)
        return picked

    @property
    def occupancy(self) -> tuple[int, int]:
        return self._main_count(), self._tea_count()
