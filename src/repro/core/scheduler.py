"""Reservation stations and port-constrained instruction selection.

The main thread owns ``rs_entries`` stations; the TEA thread owns its
own partition (paper: 192 RS reserved when active).  Execution ports
are shared — 6 ALU (also branches/mul/div), 4 load, 2 store, 2 FP —
and selection gives the TEA thread priority (paper §IV-E: "prioritizes
TEA thread instructions and uses the leftover Issue slots for the main
thread"), oldest-first within each thread.

With a *dedicated execution engine* (paper §V-D, Fig. 9) the TEA
thread instead draws from its own pool of ``dedicated_units``
any-class units and does not consume shared ports at all.
"""

from __future__ import annotations

from collections.abc import Callable

from ..isa import UopClass
from .config import CoreConfig
from .dynamic_uop import DynUop

_LOAD = UopClass.LOAD
_STORE = UopClass.STORE
_FP = UopClass.FP


def _port_kind(uop: DynUop) -> str:
    cls = uop.instr.uop_class
    if cls is _LOAD:
        return "load"
    if cls is _STORE:
        return "store"
    if cls is _FP:
        return "fp"
    return "alu"


class Scheduler:
    """RS storage plus per-cycle select()."""

    def __init__(
        self,
        config: CoreConfig,
        tea_rs_entries: int = 0,
        tea_dedicated_units: int = 0,
    ):
        self.config = config
        self.main_rs: list[DynUop] = []
        self.tea_rs: list[DynUop] = []
        self.tea_rs_entries = tea_rs_entries
        self.tea_dedicated_units = tea_dedicated_units
        # Optional criticality hook (CRISP/IBDA): main-thread uops for
        # which it returns True are selected ahead of older uops.
        self.priority_fn = None

    # -- capacity -------------------------------------------------------
    def main_has_space(self) -> bool:
        return len(self.main_rs) < self.config.rs_entries

    def tea_has_space(self) -> bool:
        return len(self.tea_rs) < self.tea_rs_entries

    def insert(self, uop: DynUop) -> None:
        (self.tea_rs if uop.is_tea else self.main_rs).append(uop)

    # -- flush support ----------------------------------------------------
    def squash_younger(self, seq: int) -> None:
        self.main_rs = [u for u in self.main_rs if u.seq <= seq]
        self.tea_rs = [u for u in self.tea_rs if u.seq <= seq]

    def clear_tea(self) -> None:
        self.tea_rs = []

    def drop(self, uop: DynUop) -> None:
        rs = self.tea_rs if uop.is_tea else self.main_rs
        if uop in rs:
            rs.remove(uop)

    # -- selection --------------------------------------------------------
    def select(self, ready_fn: Callable[[DynUop], bool]) -> list[DynUop]:
        """Pick uops to begin execution this cycle.

        ``ready_fn`` decides operand/memory readiness.  Selected uops
        are removed from their stations; the pipeline starts them.
        """
        cfg = self.config
        ports = {
            "alu": cfg.alu_ports,
            "load": cfg.load_ports,
            "store": cfg.store_ports,
            "fp": cfg.fp_ports,
        }
        dedicated_left = self.tea_dedicated_units
        picked: list[DynUop] = []

        # RS lists are maintained in seq (age) order: rename inserts
        # in order and flushes filter without reordering.  TEA first
        # (issue priority), oldest first within each thread.
        for uop in self.tea_rs:
            if not ready_fn(uop):
                continue
            if self.tea_dedicated_units > 0:
                if dedicated_left <= 0:
                    break
                dedicated_left -= 1
                picked.append(uop)
            else:
                kind = _port_kind(uop)
                if ports[kind] <= 0:
                    continue
                ports[kind] -= 1
                picked.append(uop)

        if self.priority_fn is None:
            main_order = self.main_rs
        else:
            critical = [u for u in self.main_rs if self.priority_fn(u)]
            rest = [u for u in self.main_rs if not self.priority_fn(u)]
            main_order = critical + rest
        for uop in main_order:
            if not (ports["alu"] or ports["load"] or ports["store"] or ports["fp"]):
                break
            if not ready_fn(uop):
                continue
            kind = _port_kind(uop)
            if ports[kind] <= 0:
                continue
            ports[kind] -= 1
            picked.append(uop)

        for uop in picked:
            (self.tea_rs if uop.is_tea else self.main_rs).remove(uop)
        return picked

    @property
    def occupancy(self) -> tuple[int, int]:
        return len(self.main_rs), len(self.tea_rs)
