"""Dynamic (in-flight) uop state.

A :class:`DynUop` is created when the main thread (or the TEA thread)
consumes a :class:`~repro.frontend.decoupled.FetchUop` from the FTQ.
Its ``seq`` is the FTQ-assigned sequence number — shared between a TEA
uop and its main-thread counterpart, which is exactly the paper's
synchronized timestamp.
"""

from __future__ import annotations

import enum

from ..frontend.decoupled import BranchInfo
from ..isa import Instruction


class UopState(enum.IntEnum):
    """Lifecycle of a dynamic uop through the pipeline."""

    FETCHED = 0
    RENAMED = 1      # in a reservation station, waiting for operands
    EXECUTING = 2
    DONE = 3
    RETIRED = 4
    SQUASHED = 5


class DynUop:
    """One in-flight instruction instance (main or TEA thread)."""

    __slots__ = (
        "seq",
        "instr",
        "branch",
        "is_tea",
        "state",
        "dst_preg",
        "old_dst_preg",
        "src_pregs",
        "result",
        "mem_addr",
        "store_value",
        "fetch_cycle",
        "rename_ready_cycle",
        "rename_cycle",
        "done_cycle",
        "mispredicted",
        "in_chain",
        "load_forwarded",
        "br_taken",
        "br_target",
        "pending_srcs",
        "rs_stamp",
        "fwd_status",
        "fwd_value",
    )

    def __init__(
        self,
        seq: int,
        instr: Instruction,
        branch: BranchInfo | None = None,
        is_tea: bool = False,
    ):
        self.seq = seq
        self.instr = instr
        self.branch = branch
        self.is_tea = is_tea
        self.state = UopState.FETCHED
        self.dst_preg: int | None = None
        self.old_dst_preg: int | None = None
        self.src_pregs: tuple[int, ...] = ()
        self.result: int | float | None = None
        self.mem_addr: int | None = None
        self.store_value: int | float | None = None
        self.fetch_cycle = -1
        self.rename_ready_cycle = -1
        self.rename_cycle = -1
        self.done_cycle = -1
        self.mispredicted = False
        self.in_chain = False        # fetched by the TEA thread (bit-mask hit)
        self.load_forwarded = False
        self.br_taken: bool | None = None      # resolved direction
        self.br_target: int | None = None      # resolved next PC if taken
        # Scheduler bookkeeping (event-driven wakeup).
        self.pending_srcs = 0        # outstanding not-ready sources
        self.rs_stamp = 0            # RS insertion order (select priority)
        # Store-forward verdict cached by the issue gate; consumed by
        # _start_execution in the same cycle.
        self.fwd_status: str | None = None
        self.fwd_value: int | float | None = None

    @property
    def squashed(self) -> bool:
        return self.state is UopState.SQUASHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "tea" if self.is_tea else "main"
        return f"<DynUop {tag} seq={self.seq} {self.instr} {self.state.name}>"
