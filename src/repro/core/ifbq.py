"""In-flight branch queue (IFBQ).

Tracks every in-flight main-thread branch that can mispredict, keyed by
its synchronized timestamp (sequence number).  The TEA thread writes
its precomputed direction/target into the entry when a TEA branch
resolves (paper §IV-F); the main-thread branch reads the entry at
execution to check whether its misprediction was already resolved —
and to detect incorrect precomputations (the fail-safe path).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.decoupled import BranchInfo


@dataclass(slots=True)
class IfbqEntry:
    """State for one in-flight (possibly not yet fetched) branch."""

    branch: BranchInfo
    renamed: bool = False
    rat_checkpoint: tuple[int, ...] | None = None
    # TEA precomputation results.
    tea_resolved: bool = False
    tea_taken: bool | None = None
    tea_target: int | None = None
    tea_resolve_cycle: int = -1
    tea_flush_issued: bool = False
    tea_blocked: bool = False          # poison-blocked from flushing
    # Main-thread resolution.
    main_resolved: bool = False
    main_resolve_cycle: int = -1

    @property
    def seq(self) -> int:
        return self.branch.seq


class InFlightBranchQueue:
    """seq -> entry map with timestamp-ordered flush support."""

    def __init__(self) -> None:
        self._entries: dict[int, IfbqEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, branch: BranchInfo) -> IfbqEntry:
        entry = IfbqEntry(branch)
        self._entries[branch.seq] = entry
        return entry

    def get(self, seq: int) -> IfbqEntry | None:
        return self._entries.get(seq)

    def remove(self, seq: int) -> None:
        self._entries.pop(seq, None)

    def squash_younger(self, seq: int) -> list[IfbqEntry]:
        """Drop entries younger than ``seq``; returns what was removed."""
        doomed = [s for s in self._entries if s > seq]
        removed = []
        for s in doomed:
            removed.append(self._entries.pop(s))
        return removed

    def entries_younger(self, seq: int) -> list[IfbqEntry]:
        return [e for s, e in self._entries.items() if s > seq]
