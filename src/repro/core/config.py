"""Core configuration (paper Table I) and whole-simulation config.

The defaults model the paper's aggressive 8-wide OoO baseline: 512-entry
ROB, 352 reservation stations, 400 physical registers, 12 execution
ports (6 ALU, 2 LD, 2 LD/ST, 2 FP), 12-cycle frontend, 16-wide retire.

Configs validate eagerly in ``__post_init__``: a nonsensical value
(zero-entry ROB, negative width, PRF smaller than the architectural
register file) raises :class:`ConfigError` at construction time with a
message naming the field, instead of hanging or corrupting a multi-hour
campaign run later.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.decoupled import FrontendConfig
from ..memory.hierarchy import MemoryConfig


class ConfigError(ValueError):
    """A simulation config field has a value the machine cannot run."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (paper Table I)."""

    fetch_width: int = 8
    rename_width: int = 8
    issue_width: int = 8
    retire_width: int = 16
    frontend_depth: int = 12        # cycles from fetch start to rename
    rob_entries: int = 512
    rs_entries: int = 352
    physical_registers: int = 400
    load_queue: int = 256
    store_queue: int = 192
    alu_ports: int = 6
    load_ports: int = 4             # 2 LD + 2 LD/ST
    store_ports: int = 2            # the 2 LD/ST ports' store side
    fp_ports: int = 2
    max_blocks_fetched_per_cycle: int = 1   # one fetch address / cycle
    frontend_buffer: int = 64               # decode-pipe backpressure bound

    @property
    def total_ports(self) -> int:
        return self.alu_ports + self.load_ports + self.fp_ports

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "rename_width",
            "issue_width",
            "retire_width",
            "frontend_depth",
            "rob_entries",
            "rs_entries",
            "load_queue",
            "store_queue",
            "max_blocks_fetched_per_cycle",
            "frontend_buffer",
        ):
            _require(
                getattr(self, name) >= 1,
                f"CoreConfig.{name} must be >= 1, got {getattr(self, name)}",
            )
        for name in ("alu_ports", "load_ports", "store_ports", "fp_ports"):
            _require(
                getattr(self, name) >= 0,
                f"CoreConfig.{name} must be >= 0, got {getattr(self, name)}",
            )
        _require(
            self.physical_registers >= 2,
            f"CoreConfig.physical_registers must be >= 2 (the zero preg "
            f"plus at least one allocatable preg), got "
            f"{self.physical_registers}",
        )


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration.

    ``tea`` / ``runahead`` are optional feature configs (imported
    lazily by the pipeline to avoid circular imports); ``None`` runs the
    plain baseline core.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    tea: object | None = None        # repro.tea.TeaConfig
    runahead: object | None = None   # repro.runahead.RunaheadConfig
    crisp: object | None = None      # repro.crisp.CrispConfig
    max_instructions: int | None = None
    max_cycles: int | None = None
    warmup_instructions: int = 0
    #: Forward-progress watchdog: no retirement for this many cycles
    #: raises SimulationError with a diagnostic state dump.
    watchdog_cycles: int = 20_000
    #: Idle-cycle fast-forward: when fetch, rename, schedule, and
    #: retire are all provably blocked, Pipeline.run advances the
    #: cycle counter directly to the next event instead of stepping
    #: through dead cycles.  Cycle-exact; disable to force uniform
    #: stepping (it is disabled automatically under observation,
    #: invariant checking, and fault injection).
    fast_forward: bool = True
    #: Runtime invariant checking (repro.verify): audit the machine
    #: every N cycles; 0 disables (no checker is even constructed, so
    #: the default simulation path is unchanged).
    check_invariants: int = 0
    #: Optional repro.verify.FaultPlan (imported lazily by the
    #: pipeline): deterministic seeded fault injection mid-simulation.
    fault_plan: object | None = None
    #: Self-profiling (repro.obs.profiler): attribute host wall-clock
    #: to pipeline stages.  Off by default; a disabled pipeline never
    #: constructs the profiler or its wrappers (structurally zero cost).
    profile: bool = False

    def __post_init__(self) -> None:
        _require(
            isinstance(self.core, CoreConfig),
            f"SimConfig.core must be a CoreConfig, got "
            f"{type(self.core).__name__}",
        )
        _require(
            self.warmup_instructions >= 0,
            f"SimConfig.warmup_instructions must be >= 0, got "
            f"{self.warmup_instructions}",
        )
        for name in ("max_instructions", "max_cycles"):
            value = getattr(self, name)
            _require(
                value is None or value >= 1,
                f"SimConfig.{name} must be None or >= 1, got {value}",
            )
        _require(
            self.watchdog_cycles >= 1,
            f"SimConfig.watchdog_cycles must be >= 1 (the watchdog is the "
            f"only guard against silent livelock), got {self.watchdog_cycles}",
        )
        _require(
            self.check_invariants >= 0,
            f"SimConfig.check_invariants must be >= 0 (0 disables, N "
            f"audits every N cycles), got {self.check_invariants}",
        )
