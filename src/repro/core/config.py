"""Core configuration (paper Table I) and whole-simulation config.

The defaults model the paper's aggressive 8-wide OoO baseline: 512-entry
ROB, 352 reservation stations, 400 physical registers, 12 execution
ports (6 ALU, 2 LD, 2 LD/ST, 2 FP), 12-cycle frontend, 16-wide retire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.decoupled import FrontendConfig
from ..memory.hierarchy import MemoryConfig


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (paper Table I)."""

    fetch_width: int = 8
    rename_width: int = 8
    issue_width: int = 8
    retire_width: int = 16
    frontend_depth: int = 12        # cycles from fetch start to rename
    rob_entries: int = 512
    rs_entries: int = 352
    physical_registers: int = 400
    load_queue: int = 256
    store_queue: int = 192
    alu_ports: int = 6
    load_ports: int = 4             # 2 LD + 2 LD/ST
    store_ports: int = 2            # the 2 LD/ST ports' store side
    fp_ports: int = 2
    max_blocks_fetched_per_cycle: int = 1   # one fetch address / cycle
    frontend_buffer: int = 64               # decode-pipe backpressure bound

    @property
    def total_ports(self) -> int:
        return self.alu_ports + self.load_ports + self.fp_ports


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration.

    ``tea`` / ``runahead`` are optional feature configs (imported
    lazily by the pipeline to avoid circular imports); ``None`` runs the
    plain baseline core.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    tea: object | None = None        # repro.tea.TeaConfig
    runahead: object | None = None   # repro.runahead.RunaheadConfig
    crisp: object | None = None      # repro.crisp.CrispConfig
    max_instructions: int | None = None
    max_cycles: int | None = None
    warmup_instructions: int = 0
