"""Register renaming: physical register file, free lists, and RATs.

One flat physical register file holds values for both threads; the
main-thread pool occupies pregs ``1..main_size`` and the TEA partition
(when configured) the pregs above it — the paper's "192 Physical
Registers are reserved for the TEA thread when it is active".
Preg 0 is the hardwired zero register: always ready, value 0, never
allocated, and the permanent mapping of architectural ``r0``.

The main RAT is checkpointed per predicted branch (at rename) for
single-cycle misprediction recovery; the TEA shadow RAT is a plain copy
of the main RAT taken at TEA initiation (paper §IV-D).
"""

from __future__ import annotations

from collections import deque

from ..isa import NUM_ARCH_REGS, REG_ZERO

ZERO_PREG = 0


class PhysicalRegisterFile:
    """Values + ready bits for all physical registers (both pools)."""

    def __init__(self, main_size: int, tea_size: int = 0):
        total = 1 + main_size + tea_size  # +1 for the zero preg
        self.main_size = main_size
        self.tea_size = tea_size
        self.values: list[int | float] = [0] * total
        self.ready: list[bool] = [False] * total
        self.ready[ZERO_PREG] = True
        self.main_free: deque[int] = deque(range(1, 1 + main_size))
        self.tea_free: deque[int] = deque(range(1 + main_size, total))

    def allocate(self, tea: bool = False) -> int | None:
        """Allocate a preg from the requested pool (None if exhausted)."""
        pool = self.tea_free if tea else self.main_free
        if not pool:
            return None
        preg = pool.popleft()
        self.ready[preg] = False
        self.values[preg] = 0
        return preg

    def free(self, preg: int) -> None:
        """Return a preg to its pool (zero preg is never freed)."""
        if preg == ZERO_PREG:
            return
        if preg <= self.main_size:
            self.main_free.append(preg)
        else:
            self.tea_free.append(preg)

    def is_tea_preg(self, preg: int) -> bool:
        return preg > self.main_size

    def write(self, preg: int, value: int | float) -> None:
        if preg == ZERO_PREG:
            return
        self.values[preg] = value
        self.ready[preg] = True

    def read(self, preg: int) -> int | float:
        return self.values[preg]

    def main_available(self) -> int:
        return len(self.main_free)

    def tea_available(self) -> int:
        return len(self.tea_free)


class RegisterAliasTable:
    """Architectural -> physical register map with cheap checkpoints."""

    def __init__(self) -> None:
        self.map: list[int] = [ZERO_PREG] * NUM_ARCH_REGS

    def lookup(self, arch_reg: int) -> int:
        return self.map[arch_reg]

    def set(self, arch_reg: int, preg: int) -> int:
        """Update a mapping; returns the previous preg."""
        old = self.map[arch_reg]
        self.map[arch_reg] = preg
        return old

    def checkpoint(self) -> tuple[int, ...]:
        return tuple(self.map)

    def restore(self, snap: tuple[int, ...]) -> None:
        self.map = list(snap)

    def copy_from(self, other: "RegisterAliasTable") -> None:
        self.map = list(other.map)


def rename_sources(rat: RegisterAliasTable, srcs: tuple[int, ...]) -> tuple[int, ...]:
    """Map architectural sources to physical registers (r0 -> preg 0)."""
    return tuple(
        ZERO_PREG if reg == REG_ZERO else rat.lookup(reg) for reg in srcs
    )
